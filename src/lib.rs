//! Root crate of the Serval reproduction workspace.
//!
//! Re-exports the member crates for convenient use from the examples and
//! integration tests. See `README.md` for an overview and `DESIGN.md` for
//! the system inventory.

pub use serval_bpf as bpf;
pub use serval_core as core_fw;
pub use serval_ir as ir;
pub use serval_jit as jit;
pub use serval_monitors as monitors;
pub use serval_riscv as riscv;
pub use serval_sat as sat;
pub use serval_smt as smt;
pub use serval_sym as sym;
pub use serval_toyrisc as toyrisc;
pub use serval_x86 as x86;
