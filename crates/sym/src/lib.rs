//! Symbolic evaluation for lifted interpreters.
//!
//! This crate plays Rosette's role in the Serval stack (paper Fig. 1): it
//! provides the machinery that turns an ordinary interpreter into a
//! verifier. An interpreter written against [`SymCtx`] and the [`Merge`]
//! trait evaluates concrete programs concretely (partial evaluation comes
//! from the `serval-smt` smart constructors) and symbolic programs
//! *all-paths*, merging state at control-flow joins exactly like Rosette's
//! hybrid strategy of symbolic execution and bounded model checking
//! (paper §3.2).
//!
//! The crate also implements the symbolic profiler (paper §3.2,
//! Bornholt & Torlak OOPSLA'18): interpreters label regions with
//! [`SymCtx::profile`], and [`Profiler::report`] ranks regions by a score
//! combining path splits, state merges, and term creation — the same
//! signals the paper uses to find bottlenecks like the symbolic program
//! counter in the ToyRISC verifier.

mod ctx;
mod merge;
mod profiler;

pub use ctx::{Obligation, SymCtx};
pub use merge::{merge_many, Merge};
pub use profiler::{Profiler, RegionReport, RegionStats};

#[cfg(test)]
mod tests;
