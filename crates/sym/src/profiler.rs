//! The symbolic profiler (paper §3.2).
//!
//! Symbolic evaluation has no useful wall-clock hot spots: the expensive
//! regions are the ones that *split paths*, *merge states*, and *create
//! terms*, because those determine both evaluation time and the difficulty
//! of the final SMT query. The profiler attributes those events to labelled
//! regions and ranks regions by a score, reproducing the workflow the paper
//! uses to find the symbolic-pc bottleneck in the ToyRISC verifier.

use serval_smt::with_ctx;
use serval_smt::QueryStats;
use std::cell::Cell;
use std::collections::HashMap;
use std::time::Instant;

/// Statistics for one labelled region, summed over all its invocations.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegionStats {
    /// Number of times the region was entered.
    pub calls: u64,
    /// Path splits (branches with a symbolic condition) inside the region.
    pub splits: u64,
    /// State merges inside the region.
    pub merges: u64,
    /// Terms interned while inside the region.
    pub terms_created: u64,
    /// Wall time spent inside the region, nanoseconds.
    pub wall_ns: u64,
}

impl RegionStats {
    /// The ranking score: a weighted combination of the signals the paper
    /// reports (splits and merges dominate; term creation tie-breaks).
    pub fn score(&self) -> f64 {
        self.splits as f64 * 100.0 + self.merges as f64 * 10.0 + self.terms_created as f64
    }
}

/// One row of a profiler report.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// The region label.
    pub label: String,
    /// Aggregated statistics.
    pub stats: RegionStats,
}

struct Frame {
    label: String,
    start_terms: usize,
    start_splits: u64,
    start_merges: u64,
    start_time: Instant,
}

/// Collects per-region statistics; owned by [`crate::SymCtx`].
pub struct Profiler {
    regions: HashMap<String, RegionStats>,
    frames: Vec<Frame>,
    total_splits: u64,
    total_merges: u64,
    // Solver-side totals, recorded through `&self` (discharge only holds
    // a shared borrow of the context), hence the `Cell`s.
    solver_queries: Cell<u64>,
    solver_conflicts: Cell<u64>,
    solver_decisions: Cell<u64>,
    solver_propagations: Cell<u64>,
    solver_learnts: Cell<u64>,
    solver_clauses: Cell<u64>,
    solver_reused_clauses: Cell<u64>,
    solver_reused_learnts: Cell<u64>,
    solver_session_goals: Cell<u64>,
    solver_presolve_terms_in: Cell<u64>,
    solver_presolve_terms_out: Cell<u64>,
    solver_eliminated_vars: Cell<u64>,
    solver_subsumed: Cell<u64>,
    solver_strengthened: Cell<u64>,
    solver_resolvents: Cell<u64>,
    solver_wall_ns: Cell<u64>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler {
            regions: HashMap::new(),
            frames: Vec::new(),
            total_splits: 0,
            total_merges: 0,
            solver_queries: Cell::new(0),
            solver_conflicts: Cell::new(0),
            solver_decisions: Cell::new(0),
            solver_propagations: Cell::new(0),
            solver_learnts: Cell::new(0),
            solver_clauses: Cell::new(0),
            solver_reused_clauses: Cell::new(0),
            solver_reused_learnts: Cell::new(0),
            solver_session_goals: Cell::new(0),
            solver_presolve_terms_in: Cell::new(0),
            solver_presolve_terms_out: Cell::new(0),
            solver_eliminated_vars: Cell::new(0),
            solver_subsumed: Cell::new(0),
            solver_strengthened: Cell::new(0),
            solver_resolvents: Cell::new(0),
            solver_wall_ns: Cell::new(0),
        }
    }

    /// Folds one discharged query's solver statistics into the totals.
    pub fn record_solver(&self, stats: &QueryStats) {
        self.solver_queries.set(self.solver_queries.get() + 1);
        self.solver_conflicts
            .set(self.solver_conflicts.get() + stats.conflicts);
        self.solver_decisions
            .set(self.solver_decisions.get() + stats.decisions);
        self.solver_propagations
            .set(self.solver_propagations.get() + stats.propagations);
        self.solver_learnts
            .set(self.solver_learnts.get() + stats.learnts);
        self.solver_clauses
            .set(self.solver_clauses.get() + stats.clauses as u64);
        self.solver_reused_clauses
            .set(self.solver_reused_clauses.get() + stats.reused_clauses as u64);
        self.solver_reused_learnts
            .set(self.solver_reused_learnts.get() + stats.reused_learnts);
        if stats.session_goals > 0 {
            self.solver_session_goals
                .set(self.solver_session_goals.get() + 1);
        }
        self.solver_presolve_terms_in
            .set(self.solver_presolve_terms_in.get() + stats.presolve_terms_in as u64);
        self.solver_presolve_terms_out
            .set(self.solver_presolve_terms_out.get() + stats.presolve_terms_out as u64);
        self.solver_eliminated_vars
            .set(self.solver_eliminated_vars.get() + stats.eliminated_vars);
        self.solver_subsumed
            .set(self.solver_subsumed.get() + stats.subsumed);
        self.solver_strengthened
            .set(self.solver_strengthened.get() + stats.strengthened);
        self.solver_resolvents
            .set(self.solver_resolvents.get() + stats.resolvents);
        self.solver_wall_ns
            .set(self.solver_wall_ns.get() + stats.wall.as_nanos() as u64);
    }

    /// Number of solver queries recorded via [`Profiler::record_solver`].
    pub fn solver_queries(&self) -> u64 {
        self.solver_queries.get()
    }

    /// Total path splits recorded.
    pub fn total_splits(&self) -> u64 {
        self.total_splits
    }

    /// Total state merges recorded.
    pub fn total_merges(&self) -> u64 {
        self.total_merges
    }

    pub(crate) fn record_split(&mut self) {
        self.record_splits(1);
    }

    pub(crate) fn record_splits(&mut self, n: usize) {
        self.total_splits += n as u64;
        if let Some(f) = self.frames.last() {
            let label = f.label.clone();
            self.regions.entry(label).or_default().splits += n as u64;
        }
    }

    pub(crate) fn record_merge(&mut self) {
        self.total_merges += 1;
        if let Some(f) = self.frames.last() {
            let label = f.label.clone();
            self.regions.entry(label).or_default().merges += 1;
        }
    }

    pub(crate) fn enter(&mut self, label: &str) {
        self.regions.entry(label.to_string()).or_default().calls += 1;
        self.frames.push(Frame {
            label: label.to_string(),
            start_terms: with_ctx(|c| c.num_terms()),
            start_splits: self.total_splits,
            start_merges: self.total_merges,
            start_time: Instant::now(),
        });
    }

    pub(crate) fn exit(&mut self, label: &str) {
        let f = self.frames.pop().expect("profiler exit without enter");
        assert_eq!(f.label, label, "mismatched profiler region nesting");
        let terms = with_ctx(|c| c.num_terms()) - f.start_terms;
        let stats = self.regions.entry(f.label).or_default();
        stats.terms_created += terms as u64;
        stats.wall_ns += f.start_time.elapsed().as_nanos() as u64;
        // Splits/merges are attributed to the innermost frame as they
        // happen; re-attribute the child's counts to the parent too, so
        // outer regions subsume inner ones like a call-tree profile.
        let child_splits = self.total_splits - f.start_splits;
        let child_merges = self.total_merges - f.start_merges;
        if let Some(parent) = self.frames.last() {
            let label = parent.label.clone();
            let p = self.regions.entry(label).or_default();
            p.splits += child_splits;
            p.merges += child_merges;
        }
    }

    /// Regions ranked by score, highest (most suspicious) first.
    pub fn report(&self) -> Vec<RegionReport> {
        let mut rows: Vec<RegionReport> = self
            .regions
            .iter()
            .map(|(label, &stats)| RegionReport {
                label: label.clone(),
                stats,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.stats
                .score()
                .partial_cmp(&a.stats.score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<28} {:>6} {:>8} {:>8} {:>10} {:>10}\n",
            "region", "calls", "splits", "merges", "terms", "score"
        );
        for row in self.report() {
            out.push_str(&format!(
                "{:<28} {:>6} {:>8} {:>8} {:>10} {:>10.0}\n",
                row.label,
                row.stats.calls,
                row.stats.splits,
                row.stats.merges,
                row.stats.terms_created,
                row.stats.score()
            ));
        }
        if self.solver_queries.get() > 0 {
            out.push_str(&format!(
                "solver: {} queries, {} conflicts, {} decisions, {} propagations, \
                 {} learned, {} clauses blasted, {:.1} ms\n",
                self.solver_queries.get(),
                self.solver_conflicts.get(),
                self.solver_decisions.get(),
                self.solver_propagations.get(),
                self.solver_learnts.get(),
                self.solver_clauses.get(),
                self.solver_wall_ns.get() as f64 / 1e6,
            ));
            if self.solver_session_goals.get() > 0 {
                out.push_str(&format!(
                    "incremental: {} of {} queries in live sessions, \
                     {} clauses and {} learnts reused\n",
                    self.solver_session_goals.get(),
                    self.solver_queries.get(),
                    self.solver_reused_clauses.get(),
                    self.solver_reused_learnts.get(),
                ));
            }
            if self.solver_presolve_terms_in.get() > 0 {
                let tin = self.solver_presolve_terms_in.get();
                let tout = self.solver_presolve_terms_out.get();
                out.push_str(&format!(
                    "presolve: {} terms in -> {} out ({:.0}% shrink)\n",
                    tin,
                    tout,
                    (1.0 - tout as f64 / tin as f64) * 100.0,
                ));
            }
            let inproc = self.solver_eliminated_vars.get()
                + self.solver_subsumed.get()
                + self.solver_strengthened.get()
                + self.solver_resolvents.get();
            if inproc > 0 {
                out.push_str(&format!(
                    "inprocess: {} vars eliminated ({} resolvents), \
                     {} clauses subsumed, {} strengthened\n",
                    self.solver_eliminated_vars.get(),
                    self.solver_resolvents.get(),
                    self.solver_subsumed.get(),
                    self.solver_strengthened.get(),
                ));
            }
        }
        out
    }
}
