//! The symbolic evaluation context: path conditions, branching,
//! obligations, and profiling hooks.

use crate::merge::Merge;
use crate::profiler::Profiler;
use serval_smt::SBool;

/// A proof obligation collected during symbolic evaluation.
///
/// `condition` must be *valid* (true in all models satisfying the global
/// assumptions); the path condition at collection time is already folded
/// in. `bug_on` checks, memory-model side conditions (paper §4), and
/// user assertions all become obligations.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// The formula that must be proved valid.
    pub condition: SBool,
    /// Human-readable provenance for counterexample reports.
    pub label: String,
}

/// The evaluation context threaded through lifted interpreters.
pub struct SymCtx {
    /// Stack of branch conditions from enclosing `branch`/`with_path`.
    path: Vec<SBool>,
    /// Background assumptions (e.g. representation invariants).
    assumptions: Vec<SBool>,
    /// Collected proof obligations.
    obligations: Vec<Obligation>,
    /// The symbolic profiler.
    pub profiler: Profiler,
}

impl Default for SymCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl SymCtx {
    /// Creates a fresh context with an empty path condition.
    pub fn new() -> SymCtx {
        SymCtx {
            path: Vec::new(),
            assumptions: Vec::new(),
            obligations: Vec::new(),
            profiler: Profiler::new(),
        }
    }

    /// The current path condition as a single formula.
    pub fn path_condition(&self) -> SBool {
        self.path
            .iter()
            .fold(SBool::lit(true), |acc, &c| acc & c)
    }

    /// Adds a background assumption for all subsequent obligations and
    /// queries (e.g. a representation invariant over the initial state).
    pub fn assume(&mut self, c: SBool) {
        self.assumptions.push(c);
    }

    /// The background assumptions.
    pub fn assumptions(&self) -> &[SBool] {
        &self.assumptions
    }

    /// Records the obligation that `c` holds on the current path.
    pub fn require(&mut self, c: SBool, label: impl Into<String>) {
        let cond = self.path_condition().implies(c);
        self.obligations.push(Obligation {
            condition: cond,
            label: label.into(),
        });
    }

    /// The obligations collected so far.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Removes and returns all collected obligations.
    pub fn take_obligations(&mut self) -> Vec<Obligation> {
        std::mem::take(&mut self.obligations)
    }

    /// Runs `f` with `c` pushed onto the path condition.
    pub fn with_path<R>(&mut self, c: SBool, f: impl FnOnce(&mut SymCtx) -> R) -> R {
        self.path.push(c);
        let r = f(self);
        self.path.pop();
        r
    }

    /// Whether `c` is definitely false on the current path — a cheap,
    /// purely syntactic feasibility check (no solver call), mirroring
    /// Rosette's evaluation-time pruning.
    pub fn infeasible(&self, c: SBool) -> bool {
        if c.is_false() {
            return true;
        }
        // The same condition (or its negation) already on the path.
        self.path.iter().any(|&p| p == !c)
    }

    /// Evaluates a symbolic branch, merging the resulting states.
    ///
    /// With a concrete condition only one arm runs (partial evaluation);
    /// with a symbolic condition both arms run on clones of `state` under
    /// the refined path conditions and the results are merged with `ite`
    /// terms — Rosette's hybrid strategy (paper §3.2).
    pub fn branch<S: Merge, R: Merge>(
        &mut self,
        cond: SBool,
        state: &mut S,
        then_f: impl FnOnce(&mut SymCtx, &mut S) -> R,
        else_f: impl FnOnce(&mut SymCtx, &mut S) -> R,
    ) -> R {
        if let Some(b) = cond.as_const() {
            return if b {
                then_f(self, state)
            } else {
                else_f(self, state)
            };
        }
        if self.infeasible(cond) {
            return else_f(self, state);
        }
        if self.infeasible(!cond) {
            return then_f(self, state);
        }
        self.profiler.record_split();
        let mut then_state = state.clone();
        let then_r = self.with_path(cond, |ctx| then_f(ctx, &mut then_state));
        let else_r = self.with_path(!cond, |ctx| else_f(ctx, state));
        self.profiler.record_merge();
        *state = S::merge(cond, &then_state, state);
        R::merge(cond, &then_r, &else_r)
    }

    /// Evaluates `f` once per case, cloning the state, and merges all
    /// results. Cases whose guard is infeasible on the current path are
    /// skipped. This is the engine under `split_pc` and `split_cases`
    /// (paper §4).
    pub fn split<S: Merge, R: Merge, T: Copy>(
        &mut self,
        state: &mut S,
        cases: &[(SBool, T)],
        mut f: impl FnMut(&mut SymCtx, &mut S, T) -> R,
    ) -> R {
        let feasible: Vec<&(SBool, T)> =
            cases.iter().filter(|(g, _)| !self.infeasible(*g)).collect();
        assert!(!feasible.is_empty(), "split with no feasible case");
        if feasible.len() > 1 {
            self.profiler.record_splits(feasible.len() - 1);
        }
        let mut merged: Option<(SBool, S, R)> = None;
        for &&(guard, payload) in feasible.iter().rev() {
            let mut s = state.clone();
            let r = self.with_path(guard, |ctx| f(ctx, &mut s, payload));
            merged = Some(match merged {
                None => (guard, s, r),
                Some((_, ms, mr)) => {
                    self.profiler.record_merge();
                    (guard, S::merge(guard, &s, &ms), R::merge(guard, &r, &mr))
                }
            });
        }
        let (_, s, r) = merged.unwrap();
        *state = s;
        r
    }

    /// Profiles region `label` around `f` (paper §3.2). Splits, merges,
    /// term creation, and wall time inside `f` are attributed to `label`.
    pub fn profile<R>(&mut self, label: &str, f: impl FnOnce(&mut SymCtx) -> R) -> R {
        self.profiler.enter(label);
        let r = f(self);
        self.profiler.exit(label);
        r
    }
}
