//! The [`Merge`] trait: combining program states at control-flow joins.
//!
//! State merging is what keeps all-paths evaluation polynomial: instead of
//! forking the whole evaluation at every branch, both arms are evaluated
//! and their states are merged point-wise with `ite` terms guarded by the
//! branch condition (paper §3.2, state `s3` in Fig. 5).

use serval_smt::{SBool, BV};

/// Values that can be merged under a symbolic condition.
///
/// `Merge::merge(c, t, e)` denotes the value `if c then t else e`.
pub trait Merge: Clone {
    /// Point-wise merge of two values under condition `cond`.
    fn merge(cond: SBool, then_v: &Self, else_v: &Self) -> Self;
}

impl Merge for BV {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        cond.select(*t, *e)
    }
}

impl Merge for SBool {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        cond.ite(*t, *e)
    }
}

impl Merge for () {
    fn merge(_cond: SBool, _t: &Self, _e: &Self) -> Self {}
}

/// Concrete bookkeeping values merge only when equal; diverging concrete
/// state is a verifier bug (the field should have been symbolic).
macro_rules! concrete_merge {
    ($($ty:ty),*) => {$(
        impl Merge for $ty {
            fn merge(_cond: SBool, t: &Self, e: &Self) -> Self {
                assert_eq!(t, e, concat!(
                    "cannot merge diverged concrete ", stringify!($ty),
                    "; make this state component symbolic"));
                t.clone()
            }
        }
    )*};
}

concrete_merge!(bool, u8, u16, u32, u64, u128, usize, i64, String);

impl<T: Merge> Merge for Vec<T> {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        assert_eq!(t.len(), e.len(), "cannot merge vectors of different lengths");
        t.iter()
            .zip(e)
            .map(|(a, b)| T::merge(cond, a, b))
            .collect()
    }
}

impl<T: Merge, const N: usize> Merge for [T; N] {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        std::array::from_fn(|i| T::merge(cond, &t[i], &e[i]))
    }
}

impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        (A::merge(cond, &t.0, &e.0), B::merge(cond, &t.1, &e.1))
    }
}

impl<A: Merge, B: Merge, C: Merge> Merge for (A, B, C) {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        (
            A::merge(cond, &t.0, &e.0),
            B::merge(cond, &t.1, &e.1),
            C::merge(cond, &t.2, &e.2),
        )
    }
}

impl<T: Merge> Merge for Option<T> {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        match (t, e) {
            (None, None) => None,
            (Some(a), Some(b)) => Some(T::merge(cond, a, b)),
            _ => panic!("cannot merge Some with None; model absence symbolically"),
        }
    }
}

/// Merges a non-empty list of `(guard, value)` cases into a single value.
///
/// The guards are expected to be exhaustive under the current path
/// condition; the last case acts as the default.
pub fn merge_many<T: Merge>(cases: &[(SBool, T)]) -> T {
    let (last, rest) = cases.split_last().expect("merge_many of empty case list");
    let mut acc = last.1.clone();
    for (guard, v) in rest.iter().rev() {
        acc = T::merge(*guard, v, &acc);
    }
    acc
}
