//! Tests for the symbolic evaluation engine.

use crate::{merge_many, Merge, SymCtx};
use serval_smt::{reset_ctx, verify, SBool, VerifyResult, BV};

/// A toy two-register machine state for merge tests.
#[derive(Clone, Debug)]
struct Regs {
    a: BV,
    b: BV,
}

impl Merge for Regs {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        Regs {
            a: BV::merge(cond, &t.a, &e.a),
            b: BV::merge(cond, &t.b, &e.b),
        }
    }
}

#[test]
fn concrete_branch_runs_one_arm() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut state = Regs {
        a: BV::lit(8, 1),
        b: BV::lit(8, 2),
    };
    let cond = BV::lit(8, 3).ult(BV::lit(8, 4)); // concretely true
    ctx.branch(
        cond,
        &mut state,
        |_, s| s.a = BV::lit(8, 10),
        |_, s| s.a = BV::lit(8, 20),
    );
    assert_eq!(state.a.as_const(), Some(10));
    assert_eq!(ctx.profiler.total_splits(), 0, "no split for concrete cond");
}

#[test]
fn symbolic_branch_merges() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let mut state = Regs {
        a: x,
        b: BV::lit(8, 0),
    };
    let cond = x.ult(BV::lit(8, 5));
    ctx.branch(
        cond,
        &mut state,
        |_, s| s.a = BV::lit(8, 1),
        |_, s| s.a = BV::lit(8, 2),
    );
    assert_eq!(ctx.profiler.total_splits(), 1);
    assert_eq!(ctx.profiler.total_merges(), 1);
    // The merged value is ite(x < 5, 1, 2): prove it.
    let expect = cond.select(BV::lit(8, 1), BV::lit(8, 2));
    assert!(verify(&[], state.a.eq_(expect)).is_proved());
    // b untouched on both arms merges to itself.
    assert_eq!(state.b.as_const(), Some(0));
}

#[test]
fn branch_return_values_merge() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let mut state = ();
    let r = ctx.branch(
        x.is_zero(),
        &mut state,
        |_, _| BV::lit(8, 100),
        |_, _| BV::lit(8, 200),
    );
    let expect = x.is_zero().select(BV::lit(8, 100), BV::lit(8, 200));
    assert!(verify(&[], r.eq_(expect)).is_proved());
}

#[test]
fn nested_branches_refine_path() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let c = x.ult(BV::lit(8, 10));
    let mut state = ();
    // Inside the then-arm, branching on the same condition again must
    // evaluate only the then-arm (path-based pruning).
    ctx.branch(
        c,
        &mut state,
        |ctx, st| {
            let r = ctx.branch(c, st, |_, _| 1u64, |_, _| 2u64);
            assert_eq!(r, 1, "same condition on path must short-circuit");
        },
        |ctx, st| {
            let r = ctx.branch(c, st, |_, _| 1u64, |_, _| 2u64);
            assert_eq!(r, 2, "negated condition on path must short-circuit");
        },
    );
}

#[test]
fn obligations_respect_path_condition() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let mut state = ();
    ctx.branch(
        x.ult(BV::lit(8, 16)),
        &mut state,
        |ctx, _| {
            // On this path x < 16, so x != 200 is provable.
            ctx.require(x.ne_(BV::lit(8, 200)), "no-200");
        },
        |_, _| {},
    );
    let obs = ctx.take_obligations();
    assert_eq!(obs.len(), 1);
    assert!(verify(&[], obs[0].condition).is_proved());
}

#[test]
fn failed_obligation_produces_counterexample() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    ctx.require(x.ne_(BV::lit(8, 7)), "x-not-7");
    let obs = ctx.take_obligations();
    match verify(&[], obs[0].condition) {
        VerifyResult::Counterexample(m) => assert_eq!(m.eval_bv(x.0), 7),
        r => panic!("expected counterexample, got {r:?}"),
    }
}

#[test]
fn split_enumerates_cases() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let cases: Vec<(SBool, u128)> = (0..4u128)
        .map(|v| (x.eq_(BV::lit(8, v)), v))
        .collect();
    let mut state = Regs {
        a: BV::lit(8, 0),
        b: BV::lit(8, 0),
    };
    let r = ctx.split(&mut state, &cases, |_, s, v| {
        s.a = BV::lit(8, v * 10);
        BV::lit(8, v + 1)
    });
    // Under the assumption x == 2, the merged state must have a == 20 and
    // the merged result must be 3.
    let asm = x.eq_(BV::lit(8, 2));
    assert!(verify(&[asm], state.a.eq_(BV::lit(8, 20))).is_proved());
    assert!(verify(&[asm], r.eq_(BV::lit(8, 3))).is_proved());
}

#[test]
fn merge_many_folds_guards() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let cases = vec![
        (x.eq_(BV::lit(8, 0)), BV::lit(8, 100)),
        (x.eq_(BV::lit(8, 1)), BV::lit(8, 101)),
        (SBool::lit(true), BV::lit(8, 102)),
    ];
    let v = merge_many(&cases);
    assert!(verify(&[x.eq_(BV::lit(8, 1))], v.eq_(BV::lit(8, 101))).is_proved());
    assert!(verify(&[x.eq_(BV::lit(8, 9))], v.eq_(BV::lit(8, 102))).is_proved());
}

#[test]
fn profiler_attributes_regions() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(8, "x");
    let mut state = Regs {
        a: x,
        b: x,
    };
    ctx.profile("outer", |ctx| {
        ctx.profile("hot", |ctx| {
            for i in 0..5u128 {
                ctx.branch(
                    x.eq_(BV::lit(8, i)),
                    &mut state,
                    |_, s| s.a = s.a + BV::lit(8, 1),
                    |_, s| s.b = s.b + BV::lit(8, 1),
                );
            }
        });
        ctx.profile("cold", |_| {});
    });
    let report = ctx.profiler.report();
    // "hot" and its enclosing "outer" tie (inclusive attribution); both
    // must outrank "cold".
    let top2: Vec<&str> = report[..2].iter().map(|r| r.label.as_str()).collect();
    assert!(top2.contains(&"hot"), "hot must rank in top 2:\n{}",
        ctx.profiler.render());
    assert_eq!(report.last().unwrap().label, "cold");
    let hot = &report.iter().find(|r| r.label == "hot").unwrap().stats;
    assert_eq!(hot.splits, 5);
    assert_eq!(hot.merges, 5);
    // The outer region subsumes the inner one.
    let outer = report.iter().find(|r| r.label == "outer").unwrap();
    assert!(outer.stats.splits >= 5);
}

#[test]
fn vec_and_tuple_merge() {
    reset_ctx();
    let c = SBool::fresh("c");
    let v1 = vec![BV::lit(8, 1), BV::lit(8, 2)];
    let v2 = vec![BV::lit(8, 1), BV::lit(8, 9)];
    let m = Vec::merge(c, &v1, &v2);
    assert_eq!(m[0].as_const(), Some(1), "equal elements stay concrete");
    assert!(m[1].as_const().is_none(), "diverged element becomes ite");
    let t = <(BV, u64)>::merge(c, &(BV::lit(8, 3), 7), &(BV::lit(8, 4), 7));
    assert_eq!(t.1, 7);
}

#[test]
#[should_panic(expected = "cannot merge diverged concrete")]
fn concrete_merge_divergence_panics() {
    reset_ctx();
    let c = SBool::fresh("c");
    let _ = u64::merge(c, &1, &2);
}
