//! The unified memory model shared by the verifiers (paper §3.4).
//!
//! Memory is a set of disjoint, named *regions* (extracted in the paper
//! from the binary's symbol table via `objdump`; here declared by the
//! system's build description, which plays the same role). Each region is
//! typed by a [`Layout`] built from three block kinds, mirroring the paper:
//!
//! - **structured blocks** ([`Layout::Struct`]): a collection of fields of
//!   possibly different types (like a C struct);
//! - **uniform blocks** ([`Layout::Array`]): a sequence of same-typed
//!   elements (like a C array), materialized per element;
//! - **cells** ([`Layout::Cell`]): a bitvector value (like a C integer) —
//!   plus [`Layout::SymArray`], a large uniform region backed by an
//!   uninterpreted function with a guarded store chain (used for RAM-like
//!   regions, following KLEE/CompCert-style models).
//!
//! Choosing a representation matching the implementation's access pattern
//! keeps the generated constraints small; a flat byte array would make
//! every access a giant select chain. The `concretize_offsets` knob
//! controls the §4 "symbolic memory addresses" optimization: pattern-match
//! `i*C0 + C1` offsets into (element, field) pairs with a bounds side
//! condition, instead of symbolic division.

use crate::opts::match_scaled_offset;
use crate::BugOn;
use serval_smt::{with_ctx, SBool, UfId, BV};
use serval_sym::{merge_many, Merge, SymCtx};

/// Memory-model configuration (ablation knobs).
#[derive(Clone, Copy, Debug)]
pub struct MemCfg {
    /// Apply the §4 offset-concretization optimization.
    pub concretize_offsets: bool,
}

impl Default for MemCfg {
    fn default() -> Self {
        MemCfg {
            concretize_offsets: true,
        }
    }
}

/// The shape of a region, declared by the system description (the paper
/// derives the same information from symbol tables and debug info).
#[derive(Clone, Debug)]
pub enum Layout {
    /// An integer cell of 1, 2, 4, or 8 bytes.
    Cell(u32),
    /// A struct with named fields laid out sequentially with natural
    /// alignment.
    Struct(Vec<(String, Layout)>),
    /// A uniform array of `count` elements, each materialized.
    Array(u64, Box<Layout>),
    /// A large uniform array of `count` cells of `elem_bytes` bytes backed
    /// by an uninterpreted function (whole-cell accesses only).
    SymArray(u32, u64),
}

impl Layout {
    /// Natural alignment in bytes.
    pub fn align(&self) -> u64 {
        match self {
            Layout::Cell(b) => *b as u64,
            Layout::Struct(fields) => fields.iter().map(|(_, l)| l.align()).max().unwrap_or(1),
            Layout::Array(_, elem) => elem.align(),
            Layout::SymArray(b, _) => *b as u64,
        }
    }

    /// Size in bytes (structs padded to their alignment).
    pub fn size(&self) -> u64 {
        match self {
            Layout::Cell(b) => *b as u64,
            Layout::Struct(fields) => {
                let mut off = 0;
                for (_, l) in fields {
                    off = align_up(off, l.align()) + l.size();
                }
                align_up(off, self.align())
            }
            Layout::Array(n, elem) => n * align_up(elem.size(), elem.align()),
            Layout::SymArray(b, n) => *b as u64 * *n,
        }
    }

    /// Instantiates the layout with fresh symbolic contents; cell names are
    /// derived from their access path for readable counterexamples.
    pub fn instantiate_fresh(&self, prefix: &str) -> Block {
        self.instantiate(&mut |name, bytes| BV::fresh(bytes * 8, name), prefix)
    }

    /// Instantiates the layout with all-zero contents (e.g. for boot-time
    /// `.bss` regions).
    pub fn instantiate_zero(&self, prefix: &str) -> Block {
        self.instantiate(&mut |_name, bytes| BV::lit(bytes * 8, 0), prefix)
    }

    fn instantiate(&self, mk: &mut dyn FnMut(&str, u32) -> BV, prefix: &str) -> Block {
        match self {
            Layout::Cell(b) => Block::Cell {
                bytes: *b,
                value: mk(prefix, *b),
            },
            Layout::Struct(fields) => {
                let mut out = Vec::new();
                let mut off = 0u64;
                for (name, l) in fields {
                    off = align_up(off, l.align());
                    out.push(Field {
                        name: name.clone(),
                        offset: off,
                        block: l.instantiate(mk, &format!("{prefix}.{name}")),
                    });
                    off += l.size();
                }
                Block::Struct {
                    size: self.size(),
                    fields: out,
                }
            }
            Layout::Array(n, elem) => {
                let elem_size = align_up(elem.size(), elem.align());
                let elems = (0..*n)
                    .map(|i| elem.instantiate(mk, &format!("{prefix}[{i}]")))
                    .collect();
                Block::Array {
                    elem_size,
                    elems,
                }
            }
            Layout::SymArray(b, n) => {
                let uf = with_ctx(|c| {
                    c.declare_uf(&format!("{prefix}.init"), vec![64], *b * 8)
                });
                Block::SymArray {
                    elem_bytes: *b,
                    count: *n,
                    init: uf,
                    init_zero: false,
                    stores: Vec::new(),
                }
            }
        }
    }
}

/// A guarded store in a [`Block::SymArray`] chain.
#[derive(Clone, Debug)]
pub struct GuardedStore {
    /// The store happened only when this holds.
    pub guard: SBool,
    /// Element index (64-bit term).
    pub idx: BV,
    /// Stored value.
    pub val: BV,
}

/// A field of a structured block.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (diagnostics and typed access).
    pub name: String,
    /// Byte offset within the struct.
    pub offset: u64,
    /// Field contents.
    pub block: Block,
}

/// Instantiated region contents.
#[derive(Clone, Debug)]
pub enum Block {
    /// An integer cell holding a symbolic value.
    Cell {
        /// Cell size in bytes.
        bytes: u32,
        /// Current value (width `bytes * 8`).
        value: BV,
    },
    /// A structured block.
    Struct {
        /// Total padded size.
        size: u64,
        /// Fields ordered by offset.
        fields: Vec<Field>,
    },
    /// A materialized uniform block.
    Array {
        /// Element stride in bytes.
        elem_size: u64,
        /// Element blocks.
        elems: Vec<Block>,
    },
    /// A UF-backed uniform block with a guarded store chain.
    SymArray {
        /// Element size in bytes.
        elem_bytes: u32,
        /// Number of elements.
        count: u64,
        /// Initial contents (uninterpreted function of the index).
        init: UfId,
        /// If true the initial contents are zero instead of `init`.
        init_zero: bool,
        /// Stores applied on top of the initial contents, oldest first.
        stores: Vec<GuardedStore>,
    },
}

impl Block {
    /// Size in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Block::Cell { bytes, .. } => *bytes as u64,
            Block::Struct { size, .. } => *size,
            Block::Array { elem_size, elems } => elem_size * elems.len() as u64,
            Block::SymArray {
                elem_bytes, count, ..
            } => *elem_bytes as u64 * count,
        }
    }
}

impl Merge for GuardedStore {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        GuardedStore {
            guard: SBool::merge(cond, &t.guard, &e.guard),
            idx: BV::merge(cond, &t.idx, &e.idx),
            val: BV::merge(cond, &t.val, &e.val),
        }
    }
}

impl Merge for Block {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        match (t, e) {
            (
                Block::Cell { bytes, value: v1 },
                Block::Cell { value: v2, .. },
            ) => Block::Cell {
                bytes: *bytes,
                value: cond.select(*v1, *v2),
            },
            (
                Block::Struct { size, fields: f1 },
                Block::Struct { fields: f2, .. },
            ) => Block::Struct {
                size: *size,
                fields: f1
                    .iter()
                    .zip(f2)
                    .map(|(a, b)| Field {
                        name: a.name.clone(),
                        offset: a.offset,
                        block: Block::merge(cond, &a.block, &b.block),
                    })
                    .collect(),
            },
            (
                Block::Array {
                    elem_size,
                    elems: e1,
                },
                Block::Array { elems: e2, .. },
            ) => Block::Array {
                elem_size: *elem_size,
                elems: e1
                    .iter()
                    .zip(e2)
                    .map(|(a, b)| Block::merge(cond, a, b))
                    .collect(),
            },
            (
                Block::SymArray {
                    elem_bytes,
                    count,
                    init,
                    init_zero,
                    stores: s1,
                },
                Block::SymArray { stores: s2, .. },
            ) => {
                // Both sides extend a common prefix (they are clones of the
                // same pre-branch state); suffix stores become conditional.
                let common = s1
                    .iter()
                    .zip(s2.iter())
                    .take_while(|(a, b)| {
                        a.guard == b.guard && a.idx == b.idx && a.val == b.val
                    })
                    .count();
                let mut stores: Vec<GuardedStore> = s1[..common].to_vec();
                for st in &s1[common..] {
                    stores.push(GuardedStore {
                        guard: st.guard & cond,
                        ..st.clone()
                    });
                }
                for st in &s2[common..] {
                    stores.push(GuardedStore {
                        guard: st.guard & !cond,
                        ..st.clone()
                    });
                }
                Block::SymArray {
                    elem_bytes: *elem_bytes,
                    count: *count,
                    init: *init,
                    init_zero: *init_zero,
                    stores,
                }
            }
            _ => panic!("cannot merge blocks of different shapes"),
        }
    }
}

/// A named, typed memory region at a fixed base address.
#[derive(Clone, Debug)]
pub struct Region {
    /// Symbol name.
    pub name: String,
    /// Base physical address.
    pub base: u64,
    /// Contents.
    pub block: Block,
}

/// Typed-access path element for [`Mem::read_path`] / [`Mem::write_path`].
#[derive(Clone, Debug)]
pub enum PathElem<'a> {
    /// Select a struct field by name.
    Field(&'a str),
    /// Select an array element by concrete index.
    Index(u64),
    /// Select an array element by symbolic index (reads only).
    IndexSym(BV),
}

/// The memory state of a machine under verification.
#[derive(Clone, Debug)]
pub struct Mem {
    /// Regions sorted by base address.
    pub regions: Vec<Region>,
    /// Configuration knobs.
    pub cfg: MemCfg,
}

impl Merge for Mem {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        assert_eq!(t.regions.len(), e.regions.len());
        Mem {
            regions: t
                .regions
                .iter()
                .zip(&e.regions)
                .map(|(a, b)| Region {
                    name: a.name.clone(),
                    base: a.base,
                    block: Block::merge(cond, &a.block, &b.block),
                })
                .collect(),
            cfg: t.cfg,
        }
    }
}

impl Mem {
    /// Creates an empty memory.
    pub fn new(cfg: MemCfg) -> Mem {
        Mem {
            regions: Vec::new(),
            cfg,
        }
    }

    /// Adds a region, enforcing the paper's validity checks: disjointness
    /// from existing regions and base alignment.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one or is misaligned.
    pub fn add_region(&mut self, name: &str, base: u64, block: Block) {
        let size = block.size();
        assert!(size > 0, "empty region {name}");
        for r in &self.regions {
            let rsize = r.block.size();
            assert!(
                base + size <= r.base || r.base + rsize <= base,
                "region {name} overlaps {}",
                r.name
            );
        }
        self.regions.push(Region {
            name: name.to_string(),
            base,
            block,
        });
        self.regions.sort_by_key(|r| r.base);
    }

    /// The region named `name`.
    pub fn region(&self, name: &str) -> &Region {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no region {name}"))
    }

    fn region_mut(&mut self, name: &str) -> &mut Region {
        self.regions
            .iter_mut()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no region {name}"))
    }

    /// Base address of region `name`.
    pub fn base_of(&self, name: &str) -> u64 {
        self.region(name).base
    }

    // ------------------------------------------------------------------
    // Address-based access (used by machine-code interpreters)
    // ------------------------------------------------------------------

    /// Loads `bytes` bytes at `addr` (64-bit), returning a `bytes*8`-wide
    /// value. Records bounds/alignment obligations via `bug_on`.
    pub fn load(&mut self, ctx: &mut SymCtx, addr: BV, bytes: u32) -> BV {
        let cases = self.resolve(ctx, addr, bytes);
        let cfg = self.cfg;
        let mut out: Vec<(SBool, BV)> = Vec::new();
        for (guard, idx, offset) in &cases {
            let val = ctx.with_path(*guard, |ctx| {
                load_block(ctx, cfg, &self.regions[*idx].block, *offset, bytes)
            });
            out.push((*guard, val));
        }
        merge_many(&out)
    }

    /// Stores `value` (width `bytes*8`) at `addr`.
    pub fn store(&mut self, ctx: &mut SymCtx, addr: BV, value: BV, bytes: u32) {
        debug_assert_eq!(value.width(), bytes * 8);
        let cases = self.resolve(ctx, addr, bytes);
        let cfg = self.cfg;
        for (guard, idx, offset) in &cases {
            let region = &mut self.regions[*idx];
            // The store guard carries only memory-resolution uncertainty
            // (which region the address hits). Path conditions are *not*
            // folded in: the `Mem` being mutated is already the per-path
            // clone, and guarding by the path condition would block the
            // load-after-store simplification that keeps values (e.g. a
            // saved return address) concrete along a path.
            ctx.with_path(*guard, |ctx| {
                store_block(ctx, cfg, &mut region.block, *offset, value, bytes, *guard);
            });
        }
    }

    /// Resolves `addr` to `(guard, region index, region offset)` cases.
    ///
    /// Fast path: the canonical constant part of the address identifies a
    /// unique region (symbol + offset addressing, as produced by real
    /// compilers and extracted by the paper via `objdump`). Slow path:
    /// all regions guarded by range checks.
    fn resolve(&self, ctx: &mut SymCtx, addr: BV, bytes: u32) -> Vec<(SBool, usize, BV)> {
        let w = addr.width();
        debug_assert_eq!(w, 64);
        // Constant part of the canonical form (x + C) or a constant addr.
        let const_part = addr.as_const().or_else(|| {
            serval_smt::build::as_add(addr.0)
                .and_then(|(_x, c)| serval_smt::build::as_bv_const(c))
        });
        if let Some(k) = const_part {
            if let Some((i, r)) = self
                .regions
                .iter()
                .enumerate()
                .find(|(_, r)| (k as u64) >= r.base && (k as u64) < r.base + r.block.size())
            {
                let offset = addr - BV::lit(64, r.base as u128);
                // Bounds obligation: the whole access stays inside.
                let limit = BV::lit(64, (r.block.size() - bytes as u64 + 1) as u128);
                ctx.bug_on(
                    !offset.ult(limit),
                    &format!("out-of-bounds access to {}", r.name),
                );
                return vec![(SBool::lit(true), i, offset)];
            }
        }
        // Slow path: consider every region.
        let mut cases = Vec::new();
        let mut any = SBool::lit(false);
        for (i, r) in self.regions.iter().enumerate() {
            let base = BV::lit(64, r.base as u128);
            let inside = addr.uge(base)
                & (addr - base).ult(BV::lit(64, (r.block.size() - bytes as u64 + 1) as u128));
            any = any | inside;
            if !inside.is_false() {
                cases.push((inside, i, addr - base));
            }
        }
        ctx.bug_on(!any, "access outside all memory regions");
        assert!(
            !cases.is_empty(),
            "address resolves to no region; add a region covering it"
        );
        cases
    }

    // ------------------------------------------------------------------
    // Typed access (used by abstraction functions and specifications)
    // ------------------------------------------------------------------

    /// Reads the cell at `path` in region `region` (pure; no obligations).
    pub fn read_path(&self, region: &str, path: &[PathElem<'_>]) -> BV {
        read_block_path(&self.region(region).block, path)
    }

    /// Overwrites the cell at `path` (concrete indices only).
    pub fn write_path(&mut self, region: &str, path: &[PathElem<'_>], value: BV) {
        write_block_path(&mut self.region_mut(region).block, path, value);
    }
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

// ---------------------------------------------------------------------
// Block-level access
// ---------------------------------------------------------------------

fn load_block(ctx: &mut SymCtx, cfg: MemCfg, block: &Block, offset: BV, bytes: u32) -> BV {
    match block {
        Block::Cell {
            bytes: cb,
            value,
        } => load_cell(ctx, *cb, *value, offset, bytes),
        Block::Struct { fields, .. } => {
            if let Some(off) = offset.as_const() {
                let off = off as u64;
                let f = fields
                    .iter()
                    .find(|f| off >= f.offset && off + bytes as u64 <= f.offset + f.block.size());
                match f {
                    Some(f) => load_block(
                        ctx,
                        cfg,
                        &f.block,
                        offset - BV::lit(64, f.offset as u128),
                        bytes,
                    ),
                    None => {
                        // Falls in padding or spans fields: UB.
                        ctx.bug_on(
                            SBool::lit(true),
                            "access to struct padding or spanning fields",
                        );
                        BV::lit(bytes * 8, 0)
                    }
                }
            } else {
                // Symbolic in-struct offset: consider every field. This is
                // the quadratic fallback the §4 optimization avoids.
                let mut cases: Vec<(SBool, BV)> = Vec::new();
                for f in fields {
                    let lo = BV::lit(64, f.offset as u128);
                    let guard = offset.uge(lo)
                        & (offset - lo).ult(BV::lit(
                            64,
                            (f.block.size() - (bytes as u64).min(f.block.size()) + 1) as u128,
                        ));
                    let v = ctx.with_path(guard, |ctx| {
                        load_block(ctx, cfg, &f.block, offset - lo, bytes)
                    });
                    cases.push((guard, v));
                }
                merge_many(&cases)
            }
        }
        Block::Array { elem_size, elems } => {
            let (idx, intra) = array_index(ctx, cfg, offset, *elem_size, elems.len() as u64);
            if let Some(i) = idx.as_const() {
                let i = (i as usize).min(elems.len() - 1);
                return load_block(ctx, cfg, &elems[i], intra, bytes);
            }
            let mut cases: Vec<(SBool, BV)> = Vec::new();
            for (i, e) in elems.iter().enumerate() {
                let guard = idx.eq_(BV::lit(64, i as u128));
                let v = ctx.with_path(guard, |ctx| load_block(ctx, cfg, e, intra, bytes));
                cases.push((guard, v));
            }
            merge_many(&cases)
        }
        Block::SymArray {
            elem_bytes,
            count,
            init,
            init_zero,
            stores,
        } => {
            let (idx, intra) =
                array_index(ctx, cfg, offset, *elem_bytes as u64, *count);
            ctx.bug_on(
                intra.ne_(BV::lit(64, 0)),
                "sub-element access to uniform symbolic array",
            );
            debug_assert_eq!(bytes, *elem_bytes, "SymArray access width mismatch");
            let mut v = if *init_zero {
                BV::lit(*elem_bytes * 8, 0)
            } else {
                BV(serval_smt::build::uf_apply(*init, &[idx.0]))
            };
            for st in stores {
                v = (st.guard & idx.eq_(st.idx)).select(st.val, v);
            }
            v
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn store_block(
    ctx: &mut SymCtx,
    cfg: MemCfg,
    block: &mut Block,
    offset: BV,
    value: BV,
    bytes: u32,
    guard: SBool,
) {
    match block {
        Block::Cell {
            bytes: cb,
            value: cell,
        } => {
            let updated = store_cell(ctx, *cb, *cell, offset, value, bytes);
            *cell = guard.select(updated, *cell);
        }
        Block::Struct { fields, .. } => {
            if let Some(off) = offset.as_const() {
                let off = off as u64;
                let f = fields
                    .iter_mut()
                    .find(|f| off >= f.offset && off + bytes as u64 <= f.offset + f.block.size());
                match f {
                    Some(f) => {
                        let rel = offset - BV::lit(64, f.offset as u128);
                        store_block(ctx, cfg, &mut f.block, rel, value, bytes, guard);
                    }
                    None => ctx.bug_on(
                        SBool::lit(true),
                        "store to struct padding or spanning fields",
                    ),
                }
            } else {
                for f in fields.iter_mut() {
                    let lo = BV::lit(64, f.offset as u128);
                    let inside = offset.uge(lo)
                        & (offset - lo).ult(BV::lit(
                            64,
                            (f.block.size() - (bytes as u64).min(f.block.size()) + 1) as u128,
                        ));
                    let rel = offset - lo;
                    store_block(ctx, cfg, &mut f.block, rel, value, bytes, guard & inside);
                }
            }
        }
        Block::Array { elem_size, elems } => {
            let n = elems.len() as u64;
            let (idx, intra) = array_index(ctx, cfg, offset, *elem_size, n);
            if let Some(i) = idx.as_const() {
                let i = (i as usize).min(elems.len() - 1);
                store_block(ctx, cfg, &mut elems[i], intra, value, bytes, guard);
                return;
            }
            for (i, e) in elems.iter_mut().enumerate() {
                let g = guard & idx.eq_(BV::lit(64, i as u128));
                store_block(ctx, cfg, e, intra, value, bytes, g);
            }
        }
        Block::SymArray {
            elem_bytes,
            count,
            stores,
            ..
        } => {
            let (idx, intra) =
                array_index(ctx, cfg, offset, *elem_bytes as u64, *count);
            ctx.bug_on(
                intra.ne_(BV::lit(64, 0)),
                "sub-element store to uniform symbolic array",
            );
            debug_assert_eq!(bytes, *elem_bytes, "SymArray store width mismatch");
            stores.push(GuardedStore {
                guard,
                idx,
                val: value,
            });
        }
    }
}

/// Splits a block-relative byte offset into `(element index, intra-element
/// offset)`. With `concretize_offsets`, pattern-matches `i*C0 + C1` and
/// emits the §4 soundness side condition (here: the index stays in bounds,
/// which implies the scaled form cannot wrap); otherwise falls back to
/// symbolic division.
fn array_index(
    ctx: &mut SymCtx,
    cfg: MemCfg,
    offset: BV,
    elem_size: u64,
    count: u64,
) -> (BV, BV) {
    let es = BV::lit(64, elem_size as u128);
    if cfg.concretize_offsets {
        if let Some((idx, intra)) = match_scaled_offset(offset, elem_size as u128) {
            // Side condition (paper §4): the optimistic rewrite
            // (C0*i + C1) mod C0 → C1 is only sound without overflow; the
            // bounds obligation i < count establishes it, and doubles as
            // the out-of-bounds UB check.
            ctx.bug_on(
                !idx.ult(BV::lit(64, count as u128)),
                "array index out of bounds",
            );
            return (idx, BV::lit(64, intra as u128));
        }
    }
    let idx = offset.udiv(es);
    let intra = offset.urem(es);
    ctx.bug_on(
        !idx.ult(BV::lit(64, count as u128)),
        "array index out of bounds",
    );
    (idx, intra)
}

/// Reads `bytes` bytes at `offset` within a `cb`-byte little-endian cell.
fn load_cell(ctx: &mut SymCtx, cb: u32, value: BV, offset: BV, bytes: u32) -> BV {
    assert!(bytes <= cb, "load wider than cell");
    if bytes == cb {
        ctx.bug_on(offset.ne_(BV::lit(64, 0)), "misaligned full-cell load");
        return value;
    }
    // Sub-cell load: enumerate the aligned byte offsets.
    let mut cases: Vec<(SBool, BV)> = Vec::new();
    let mut aligned = SBool::lit(false);
    for o in (0..cb).step_by(bytes as usize) {
        let guard = offset.eq_(BV::lit(64, o as u128));
        aligned = aligned | guard;
        cases.push((guard, value.extract((o + bytes) * 8 - 1, o * 8)));
    }
    ctx.bug_on(!aligned, "misaligned sub-cell load");
    merge_many(&cases)
}

/// Writes `bytes` bytes at `offset` within a `cb`-byte cell, returning the
/// updated cell value.
fn store_cell(ctx: &mut SymCtx, cb: u32, cell: BV, offset: BV, value: BV, bytes: u32) -> BV {
    assert!(bytes <= cb, "store wider than cell");
    if bytes == cb {
        ctx.bug_on(offset.ne_(BV::lit(64, 0)), "misaligned full-cell store");
        return value;
    }
    let mut cases: Vec<(SBool, BV)> = Vec::new();
    let mut aligned = SBool::lit(false);
    for o in (0..cb).step_by(bytes as usize) {
        let guard = offset.eq_(BV::lit(64, o as u128));
        aligned = aligned | guard;
        // Splice `value` into bits [o*8, (o+bytes)*8).
        let mut parts: Vec<BV> = Vec::new();
        if (o + bytes) * 8 < cb * 8 {
            parts.push(cell.extract(cb * 8 - 1, (o + bytes) * 8));
        }
        parts.push(value);
        if o > 0 {
            parts.push(cell.extract(o * 8 - 1, 0));
        }
        let mut spliced = parts[0];
        for p in &parts[1..] {
            spliced = spliced.concat(*p);
        }
        cases.push((guard, spliced));
    }
    ctx.bug_on(!aligned, "misaligned sub-cell store");
    merge_many(&cases)
}

// ---------------------------------------------------------------------
// Typed paths
// ---------------------------------------------------------------------

fn read_block_path(block: &Block, path: &[PathElem<'_>]) -> BV {
    match (block, path) {
        (Block::Cell { value, .. }, []) => *value,
        (Block::Struct { fields, .. }, [PathElem::Field(name), rest @ ..]) => {
            let f = fields
                .iter()
                .find(|f| f.name == *name)
                .unwrap_or_else(|| panic!("no field {name}"));
            read_block_path(&f.block, rest)
        }
        (Block::Array { elems, .. }, [PathElem::Index(i), rest @ ..]) => {
            read_block_path(&elems[*i as usize], rest)
        }
        (Block::Array { elems, .. }, [PathElem::IndexSym(idx), rest @ ..]) => {
            let cases: Vec<(SBool, BV)> = elems
                .iter()
                .enumerate()
                .map(|(i, e)| (idx.eq_(BV::lit(64, i as u128)), read_block_path(e, rest)))
                .collect();
            merge_many(&cases)
        }
        _ => panic!("path does not match block shape"),
    }
}

fn write_block_path(block: &mut Block, path: &[PathElem<'_>], value: BV) {
    match (block, path) {
        (Block::Cell { value: v, .. }, []) => *v = value,
        (Block::Struct { fields, .. }, [PathElem::Field(name), rest @ ..]) => {
            let f = fields
                .iter_mut()
                .find(|f| f.name == *name)
                .unwrap_or_else(|| panic!("no field {name}"));
            write_block_path(&mut f.block, rest, value)
        }
        (Block::Array { elems, .. }, [PathElem::Index(i), rest @ ..]) => {
            write_block_path(&mut elems[*i as usize], rest, value)
        }
        _ => panic!("path does not match block shape"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_smt::{reset_ctx, verify};

    fn proc_layout() -> Layout {
        Layout::Struct(vec![
            ("state".into(), Layout::Cell(8)),
            ("quota".into(), Layout::Cell(8)),
            ("owner".into(), Layout::Cell(8)),
            ("pad".into(), Layout::Cell(8)),
        ])
    }

    #[test]
    fn layout_sizes() {
        let l = proc_layout();
        assert_eq!(l.size(), 32);
        assert_eq!(l.align(), 8);
        let mixed = Layout::Struct(vec![
            ("a".into(), Layout::Cell(1)),
            ("b".into(), Layout::Cell(4)),
            ("c".into(), Layout::Cell(8)),
        ]);
        assert_eq!(mixed.size(), 16, "padding after the 1-byte field");
    }

    #[test]
    fn concrete_load_store_roundtrip() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "procs",
            0x8000_0000,
            Layout::Array(4, Box::new(proc_layout())).instantiate_fresh("procs"),
        );
        let addr = BV::lit(64, 0x8000_0000 + 32 + 8); // procs[1].quota
        mem.store(&mut ctx, addr, BV::lit(64, 777), 8);
        let v = mem.load(&mut ctx, addr, 8);
        assert_eq!(v.as_const(), Some(777));
        // Typed path agrees.
        let q = mem.read_path("procs", &[PathElem::Index(1), PathElem::Field("quota")]);
        assert_eq!(q.as_const(), Some(777));
        // All obligations hold (bounds were concrete).
        for ob in ctx.take_obligations() {
            assert!(verify(&[], ob.condition).is_proved(), "{}", ob.label);
        }
    }

    #[test]
    fn symbolic_index_store_updates_conditionally() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "procs",
            0x1000,
            Layout::Array(4, Box::new(proc_layout())).instantiate_fresh("procs"),
        );
        let pid = BV::fresh(64, "pid");
        ctx.assume(pid.ult(BV::lit(64, 4)));
        // store procs[pid].quota = 42 via address arithmetic.
        let addr = BV::lit(64, 0x1000) + pid * BV::lit(64, 32) + BV::lit(64, 8);
        mem.store(&mut ctx, addr, BV::lit(64, 42), 8);
        // Under pid == 2, procs[2].quota is 42 and procs[1].quota unchanged.
        let q2 = mem.read_path("procs", &[PathElem::Index(2), PathElem::Field("quota")]);
        let asm = [pid.eq_(BV::lit(64, 2))];
        assert!(verify(&asm, q2.eq_(BV::lit(64, 42))).is_proved());
        let q1 = mem.read_path("procs", &[PathElem::Index(1), PathElem::Field("quota")]);
        assert!(
            verify(&asm, q1.eq_(BV::lit(64, 42))).is_proved() == false,
            "other elements must not be clobbered"
        );
        // Bounds obligation holds under the assumption.
        for ob in ctx.take_obligations() {
            let assumptions: Vec<_> = vec![pid.ult(BV::lit(64, 4))];
            assert!(
                verify(&assumptions, ob.condition).is_proved(),
                "obligation failed: {}",
                ob.label
            );
        }
    }

    #[test]
    fn out_of_bounds_is_flagged() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "arr",
            0x1000,
            Layout::Array(4, Box::new(Layout::Cell(8))).instantiate_fresh("arr"),
        );
        let i = BV::fresh(64, "i"); // unconstrained!
        let addr = BV::lit(64, 0x1000) + i * BV::lit(64, 8);
        let _ = mem.load(&mut ctx, addr, 8);
        let obs = ctx.take_obligations();
        assert!(
            obs.iter()
                .any(|ob| !verify(&[], ob.condition).is_proved()),
            "an out-of-bounds obligation must fail without bounds assumptions"
        );
    }

    #[test]
    fn sym_array_load_store() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "ram",
            0x2000,
            Layout::SymArray(8, 1024).instantiate_fresh("ram"),
        );
        let i = BV::fresh(64, "i");
        ctx.assume(i.ult(BV::lit(64, 1024)));
        let addr = BV::lit(64, 0x2000) + i * BV::lit(64, 8);
        mem.store(&mut ctx, addr, BV::lit(64, 0xdead), 8);
        let v = mem.load(&mut ctx, addr, 8);
        assert!(verify(&[i.ult(BV::lit(64, 1024))], v.eq_(BV::lit(64, 0xdead))).is_proved());
        // A different index is unaffected by this store.
        let j = BV::fresh(64, "j");
        let addr_j = BV::lit(64, 0x2000) + j * BV::lit(64, 8);
        let vj = mem.load(&mut ctx, addr_j, 8);
        let asm = [
            i.ult(BV::lit(64, 1024)),
            j.ult(BV::lit(64, 1024)),
            i.ne_(j),
        ];
        // vj equals the initial (UF) contents at j, hence generally != 0xdead.
        assert!(!verify(&asm, vj.eq_(BV::lit(64, 0xdead))).is_proved());
    }

    #[test]
    fn merge_memories_after_branch() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "data",
            0x1000,
            Layout::Struct(vec![("x".into(), Layout::Cell(8))]).instantiate_fresh("data"),
        );
        let c = SBool::fresh("c");
        let addr = BV::lit(64, 0x1000);
        ctx.branch(
            c,
            &mut mem,
            |ctx, m| m.store(ctx, addr, BV::lit(64, 1), 8),
            |ctx, m| m.store(ctx, addr, BV::lit(64, 2), 8),
        );
        let v = mem.read_path("data", &[PathElem::Field("x")]);
        assert!(verify(&[c], v.eq_(BV::lit(64, 1))).is_proved());
        assert!(verify(&[!c], v.eq_(BV::lit(64, 2))).is_proved());
    }

    #[test]
    fn sub_cell_access() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region(
            "data",
            0x1000,
            Layout::Struct(vec![("x".into(), Layout::Cell(8))]).instantiate_zero("data"),
        );
        // Store a 4-byte value into the high half, then read bytes.
        mem.store(&mut ctx, BV::lit(64, 0x1004), BV::lit(32, 0xaabbccdd), 4);
        let lo = mem.load(&mut ctx, BV::lit(64, 0x1000), 4);
        let hi = mem.load(&mut ctx, BV::lit(64, 0x1004), 4);
        assert_eq!(lo.as_const(), Some(0));
        assert_eq!(hi.as_const(), Some(0xaabbccdd));
        let b = mem.load(&mut ctx, BV::lit(64, 0x1007), 1);
        assert_eq!(b.as_const(), Some(0xaa));
        for ob in ctx.take_obligations() {
            assert!(verify(&[], ob.condition).is_proved(), "{}", ob.label);
        }
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        reset_ctx();
        let mut mem = Mem::new(MemCfg::default());
        mem.add_region("a", 0x1000, Layout::Cell(8).instantiate_zero("a"));
        mem.add_region("b", 0x1004, Layout::Cell(8).instantiate_zero("b"));
    }
}
