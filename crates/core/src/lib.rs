//! The Serval framework core (paper §3–§4).
//!
//! This crate provides what the paper calls the "Serval framework" layer of
//! the verification stack (Fig. 1): everything a lifted interpreter needs
//! beyond raw symbolic evaluation.
//!
//! - [`mem`]: the unified memory model shared by the verifiers (§3.4) —
//!   memory as disjoint typed blocks (structured blocks, uniform blocks,
//!   cells), with symbol-table-driven construction and validity checks.
//! - [`opts`]: the symbolic optimizations (§4) — `split_pc`, `split_cases`,
//!   and in-struct offset concretization with soundness side conditions.
//!   Each can be disabled individually for the §6.4 ablation.
//! - [`spec`]: the specification library (§3.3) — state-machine refinement,
//!   one-/two-safety properties, step consistency, and Nickel-style
//!   intransitive noninterference.
//! - [`report`]: proof reports with rendered counterexamples.
//! - [`BugOn`]: undefined-behaviour checks (`bug_on`) collected as proof
//!   obligations, as in Fig. 4.

pub mod mem;
pub mod opts;
pub mod report;
pub mod spec;

pub use mem::{Block, Layout, Mem, MemCfg, PathElem};
pub use opts::{enumerate_pc, split_cases, split_pc, OptCfg, PcCases};
pub use report::{discharge, discharge_obligations, ProofReport, TheoremResult, Verdict};
pub use spec::{prove_local_respect, prove_one_safety, prove_refinement, prove_step_consistency, Policy, Refinement};

use serval_smt::SBool;
use serval_sym::SymCtx;

/// Undefined-behaviour checks, as inserted by verifiers (paper Fig. 4).
pub trait BugOn {
    /// Records the obligation that `cond` is false on the current path:
    /// the behaviour is undefined whenever `cond` holds.
    fn bug_on(&mut self, cond: SBool, label: &str);
}

impl BugOn for SymCtx {
    fn bug_on(&mut self, cond: SBool, label: &str) {
        self.require(!cond, format!("bug-on: {label}"));
    }
}
