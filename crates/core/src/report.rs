//! Proof reports: named theorems, verdicts, counterexamples, timing.
//!
//! Discharge goes through the process-wide [`serval_engine`] instance:
//! queries are normalized, deduplicated against the cache, and solved on
//! the engine's thread pool. [`discharge_batch`] is the preferred entry
//! point — a batch of independent theorems (split-cases handlers, UB
//! obligations, per-register equalities) is discharged concurrently, in
//! deterministic order.

use serval_engine::{Query, QueryOutcome};
use serval_smt::solver::{QueryStats, SolverConfig, VerifyResult};
use serval_smt::{Model, SBool};
use serval_sym::{Obligation, SymCtx};
use std::time::Duration;

/// The verdict for one theorem.
#[derive(Debug)]
pub enum Verdict {
    /// Proved valid.
    Proved,
    /// Disproved; holds the counterexample model and its rendering.
    Counterexample(Box<Model>, String),
    /// Solver budget exhausted — the paper's "timeout" outcome (§6.4).
    Unknown,
    /// Solve cancelled cooperatively (portfolio losers never surface
    /// here; this means the whole query was cancelled).
    Interrupted,
}

impl Verdict {
    /// Whether the theorem was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }
}

/// One proved (or failed) theorem.
#[derive(Debug)]
pub struct TheoremResult {
    /// Theorem name, e.g. `"refinement: spawn"`.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Wall time of the solver query.
    pub time: Duration,
    /// Solver statistics (absent for cache hits and trivial queries).
    pub stats: Option<QueryStats>,
    /// Whether the verdict came from the engine's query cache.
    pub cache_hit: bool,
}

/// A collection of theorem results for one verification run.
#[derive(Debug, Default)]
pub struct ProofReport {
    /// Individual theorem outcomes, in proof order.
    pub theorems: Vec<TheoremResult>,
}

impl ProofReport {
    /// Whether every theorem was proved.
    pub fn all_proved(&self) -> bool {
        self.theorems.iter().all(|t| t.verdict.is_proved())
    }

    /// Whether any theorem exhausted the solver budget.
    pub fn any_unknown(&self) -> bool {
        self.theorems
            .iter()
            .any(|t| matches!(t.verdict, Verdict::Unknown))
    }

    /// Total solver wall time.
    pub fn total_time(&self) -> Duration {
        self.theorems.iter().map(|t| t.time).sum()
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: ProofReport) {
        self.theorems.extend(other.theorems);
    }

    /// Aggregated solver statistics over all theorems that solved.
    pub fn solver_totals(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for t in self.theorems.iter().filter_map(|t| t.stats.as_ref()) {
            total.conflicts += t.conflicts;
            total.decisions += t.decisions;
            total.propagations += t.propagations;
            total.restarts += t.restarts;
            total.learnts += t.learnts;
            total.clauses += t.clauses;
            total.vars += t.vars;
            total.reused_clauses += t.reused_clauses;
            total.reused_vars += t.reused_vars;
            total.reused_learnts += t.reused_learnts;
            // Count of theorems discharged inside a live session, not a
            // positional sum (per-theorem it is a 1-based position).
            total.session_goals += (t.session_goals > 0) as u64;
            total.presolve_terms_in += t.presolve_terms_in;
            total.presolve_terms_out += t.presolve_terms_out;
            total.presolve_vars_in += t.presolve_vars_in;
            total.presolve_vars_out += t.presolve_vars_out;
            total.eliminated_vars += t.eliminated_vars;
            total.subsumed += t.subsumed;
            total.strengthened += t.strengthened;
            total.resolvents += t.resolvents;
            total.cert_steps += t.cert_steps;
            total.cert_wall += t.cert_wall;
            total.wall += t.wall;
        }
        total
    }

    /// Number of theorems answered from the query cache.
    pub fn cache_hits(&self) -> usize {
        self.theorems.iter().filter(|t| t.cache_hit).count()
    }

    /// Renders a human-readable summary, including per-theorem solver
    /// statistics where a solve actually ran.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.theorems {
            let status = match &t.verdict {
                Verdict::Proved if t.cache_hit => "proved (cached)".to_string(),
                Verdict::Proved => "proved".to_string(),
                Verdict::Counterexample(_, cex) => format!("FAILED\n{cex}"),
                Verdict::Unknown => "UNKNOWN (budget exhausted)".to_string(),
                Verdict::Interrupted => "INTERRUPTED".to_string(),
            };
            out.push_str(&format!(
                "  [{:>8.2?}] {:<40} {}\n",
                t.time, t.name, status
            ));
            if let Some(stats) = &t.stats {
                out.push_str(&format!("             {}\n", stats.render()));
            }
        }
        out
    }

    /// The first failing theorem, if any.
    pub fn first_failure(&self) -> Option<&TheoremResult> {
        self.theorems.iter().find(|t| !t.verdict.is_proved())
    }
}

/// One goal of a batch: proved under the context's assumptions plus
/// `extra`.
pub struct NamedGoal {
    /// Theorem name.
    pub name: String,
    /// Extra assumptions beyond the context's.
    pub extra: Vec<SBool>,
    /// The goal.
    pub goal: SBool,
}

impl NamedGoal {
    /// A goal with no extra assumptions.
    pub fn new(name: impl Into<String>, goal: SBool) -> NamedGoal {
        NamedGoal {
            name: name.into(),
            extra: Vec::new(),
            goal,
        }
    }
}

fn outcome_to_theorem(ctx: Option<&SymCtx>, outcome: QueryOutcome) -> TheoremResult {
    if let (Some(ctx), Some(stats)) = (ctx, outcome.stats.as_ref()) {
        ctx.profiler.record_solver(stats);
    }
    let verdict = match outcome.result {
        VerifyResult::Proved => Verdict::Proved,
        VerifyResult::Counterexample(m) => {
            let rendering = m.render();
            Verdict::Counterexample(m, rendering)
        }
        VerifyResult::Unknown => Verdict::Unknown,
        VerifyResult::Interrupted => Verdict::Interrupted,
    };
    TheoremResult {
        name: outcome.label,
        verdict,
        time: outcome.wall,
        stats: outcome.stats,
        cache_hit: outcome.cache_hit,
    }
}

/// Discharges one goal under the context's assumptions plus `extra`.
pub fn discharge(
    ctx: &SymCtx,
    cfg: SolverConfig,
    name: impl Into<String>,
    extra: &[SBool],
    goal: SBool,
) -> TheoremResult {
    let mut assumptions: Vec<SBool> = ctx.assumptions().to_vec();
    assumptions.extend_from_slice(extra);
    let outcome = serval_engine::discharger().submit(Query {
        label: name.into(),
        assumptions,
        goal,
        cfg,
    });
    outcome_to_theorem(Some(ctx), outcome)
}

/// Discharges a batch of independent goals, sharing the context's
/// assumptions, concurrently on the engine. Results come back in the
/// order given.
pub fn discharge_batch(
    ctx: &SymCtx,
    cfg: SolverConfig,
    goals: Vec<NamedGoal>,
) -> ProofReport {
    let base: Vec<SBool> = ctx.assumptions().to_vec();
    let queries: Vec<Query> = goals
        .into_iter()
        .map(|g| {
            let mut assumptions = base.clone();
            assumptions.extend(g.extra);
            Query {
                label: g.name,
                assumptions,
                goal: g.goal,
                cfg,
            }
        })
        .collect();
    let outcomes = serval_engine::discharger().submit_batch(queries);
    ProofReport {
        theorems: outcomes
            .into_iter()
            .map(|o| outcome_to_theorem(Some(ctx), o))
            .collect(),
    }
}

/// Discharges a batch of fully explicit queries (each with its own
/// assumption set), for proofs that build several contexts — e.g. the
/// per-operation noninterference lemmas.
pub fn discharge_queries(
    cfg: SolverConfig,
    items: Vec<(String, Vec<SBool>, SBool)>,
) -> ProofReport {
    let queries: Vec<Query> = items
        .into_iter()
        .map(|(label, assumptions, goal)| Query {
            label,
            assumptions,
            goal,
            cfg,
        })
        .collect();
    let outcomes = serval_engine::discharger().submit_batch(queries);
    ProofReport {
        theorems: outcomes
            .into_iter()
            .map(|o| outcome_to_theorem(None, o))
            .collect(),
    }
}

/// Discharges every collected obligation (e.g. `bug_on` checks) in `ctx`,
/// consuming them — as one concurrent batch.
pub fn discharge_obligations(
    ctx: &mut SymCtx,
    cfg: SolverConfig,
    prefix: &str,
) -> ProofReport {
    let obligations: Vec<Obligation> = ctx.take_obligations();
    let goals: Vec<NamedGoal> = obligations
        .into_iter()
        .map(|ob| NamedGoal::new(format!("{prefix}{}", ob.label), ob.condition))
        .collect();
    discharge_batch(ctx, cfg, goals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_smt::{reset_ctx, BV};

    #[test]
    fn discharge_routes_through_engine_and_feeds_the_profiler() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let x = BV::fresh(8, "x");
        ctx.assume(x.ult(BV::lit(8, 10)));
        // The goal needs the assumption *relationally* (x + 1 cannot
        // wrap because x < 10), so word-level presolve cannot fold it
        // away and a real solve must run.
        let t = discharge(
            &ctx,
            SolverConfig::default(),
            "bounded",
            &[],
            x.ult(x + BV::lit(8, 1)),
        );
        assert!(t.verdict.is_proved(), "x < 10 implies x < x + 1");
        assert!(t.stats.is_some(), "a real solve must surface its stats");
        assert!(ctx.profiler.solver_queries() >= 1);
        assert!(
            ctx.profiler.render().contains("solver:"),
            "profiler report must include the solver summary line"
        );
    }

    #[test]
    fn batch_preserves_order_and_reports_totals() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let x = BV::fresh(8, "x");
        let y = BV::fresh(8, "y");
        ctx.assume(x.ult(BV::lit(8, 4)));
        let report = discharge_batch(
            &ctx,
            SolverConfig::default(),
            vec![
                NamedGoal::new("first", x.ult(BV::lit(8, 8))),
                NamedGoal::new("second", ((x & y) + (x | y)).eq_(x + y)),
                NamedGoal::new("fails", x.eq_(y)),
            ],
        );
        let names: Vec<&str> =
            report.theorems.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["first", "second", "fails"]);
        assert!(report.theorems[0].verdict.is_proved());
        assert!(report.theorems[1].verdict.is_proved());
        assert!(matches!(
            report.theorems[2].verdict,
            Verdict::Counterexample(..)
        ));
        assert!(report.first_failure().unwrap().name == "fails");
        assert!(report.solver_totals().vars > 0);
    }
}
