//! Proof reports: named theorems, verdicts, counterexamples, timing.

use serval_smt::solver::{verify_with, SolverConfig, VerifyResult};
use serval_smt::{Model, SBool};
use serval_sym::{Obligation, SymCtx};
use std::time::{Duration, Instant};

/// The verdict for one theorem.
#[derive(Debug)]
pub enum Verdict {
    /// Proved valid.
    Proved,
    /// Disproved; holds the counterexample model and its rendering.
    Counterexample(Box<Model>, String),
    /// Solver budget exhausted — the paper's "timeout" outcome (§6.4).
    Unknown,
}

impl Verdict {
    /// Whether the theorem was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }
}

/// One proved (or failed) theorem.
#[derive(Debug)]
pub struct TheoremResult {
    /// Theorem name, e.g. `"refinement: spawn"`.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Wall time of the solver query.
    pub time: Duration,
}

/// A collection of theorem results for one verification run.
#[derive(Debug, Default)]
pub struct ProofReport {
    /// Individual theorem outcomes, in proof order.
    pub theorems: Vec<TheoremResult>,
}

impl ProofReport {
    /// Whether every theorem was proved.
    pub fn all_proved(&self) -> bool {
        self.theorems.iter().all(|t| t.verdict.is_proved())
    }

    /// Whether any theorem exhausted the solver budget.
    pub fn any_unknown(&self) -> bool {
        self.theorems
            .iter()
            .any(|t| matches!(t.verdict, Verdict::Unknown))
    }

    /// Total solver wall time.
    pub fn total_time(&self) -> Duration {
        self.theorems.iter().map(|t| t.time).sum()
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: ProofReport) {
        self.theorems.extend(other.theorems);
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.theorems {
            let status = match &t.verdict {
                Verdict::Proved => "proved".to_string(),
                Verdict::Counterexample(_, cex) => format!("FAILED\n{cex}"),
                Verdict::Unknown => "UNKNOWN (budget exhausted)".to_string(),
            };
            out.push_str(&format!(
                "  [{:>8.2?}] {:<40} {}\n",
                t.time, t.name, status
            ));
        }
        out
    }

    /// The first failing theorem, if any.
    pub fn first_failure(&self) -> Option<&TheoremResult> {
        self.theorems.iter().find(|t| !t.verdict.is_proved())
    }
}

/// Discharges one goal under the context's assumptions plus `extra`.
pub fn discharge(
    ctx: &SymCtx,
    cfg: SolverConfig,
    name: impl Into<String>,
    extra: &[SBool],
    goal: SBool,
) -> TheoremResult {
    let mut assumptions: Vec<SBool> = ctx.assumptions().to_vec();
    assumptions.extend_from_slice(extra);
    let start = Instant::now();
    let verdict = match verify_with(cfg, &assumptions, goal) {
        VerifyResult::Proved => Verdict::Proved,
        VerifyResult::Counterexample(m) => {
            let rendering = m.render();
            Verdict::Counterexample(m, rendering)
        }
        VerifyResult::Unknown => Verdict::Unknown,
    };
    TheoremResult {
        name: name.into(),
        verdict,
        time: start.elapsed(),
    }
}

/// Discharges every collected obligation (e.g. `bug_on` checks) in `ctx`,
/// consuming them.
pub fn discharge_obligations(
    ctx: &mut SymCtx,
    cfg: SolverConfig,
    prefix: &str,
) -> ProofReport {
    let obligations: Vec<Obligation> = ctx.take_obligations();
    let mut report = ProofReport::default();
    for ob in obligations {
        let name = format!("{prefix}{}", ob.label);
        report
            .theorems
            .push(discharge(ctx, cfg, name, &[], ob.condition));
    }
    report
}
