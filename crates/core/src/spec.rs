//! The specification library (paper §3.3): state-machine refinement,
//! safety properties, and noninterference.
//!
//! Quantifiers over finite domains are handled the way Serval handles them:
//! the quantified variables become fresh symbolic constants, so proving the
//! body valid proves the universally quantified formula.

use crate::report::{discharge, discharge_batch, NamedGoal, ProofReport};
use serval_smt::solver::SolverConfig;
use serval_smt::SBool;
use serval_sym::{Merge, SymCtx};

/// A state-machine refinement proof description (paper §3.3).
///
/// The four specification inputs are the ones the paper lists: the
/// specification state (type `Spec`), the functional specification
/// (`run_spec`), the abstraction function (`abstraction`), and the
/// representation invariant (`rep_invariant`).
pub trait Refinement {
    /// Implementation state (e.g. machine registers + typed memory).
    type Impl: Merge;
    /// Specification state.
    type Spec: Merge;

    /// A fresh, fully symbolic implementation state.
    fn fresh_impl(&self, ctx: &mut SymCtx) -> Self::Impl;

    /// The representation invariant `RI` over implementation states.
    fn rep_invariant(&self, c: &Self::Impl) -> SBool;

    /// The abstraction function `AF`.
    fn abstraction(&self, c: &Self::Impl) -> Self::Spec;

    /// Equality of specification states.
    fn spec_eq(&self, a: &Self::Spec, b: &Self::Spec) -> SBool;

    /// Runs the implementation one operation (symbolic evaluation of
    /// machine code). `bug_on` obligations are collected in `ctx`.
    fn run_impl(&self, ctx: &mut SymCtx, c: &mut Self::Impl);

    /// Runs the functional specification for the same operation.
    fn run_spec(&self, ctx: &mut SymCtx, s: &mut Self::Spec);
}

/// Proves the refinement theorems of paper §3.3 for one operation:
///
/// 1. every collected `bug_on` obligation (absence of undefined behavior),
/// 2. `RI(c) ⇒ RI(f_impl(c))` (invariant preservation), and
/// 3. `RI(c) ∧ AF(c) = s ⇒ AF(f_impl(c)) = f_spec(s)` (lock-step
///    commutation).
pub fn prove_refinement<R: Refinement>(
    r: &R,
    cfg: SolverConfig,
    name: &str,
) -> ProofReport {
    let mut ctx = SymCtx::new();
    let mut impl_state = r.fresh_impl(&mut ctx);
    let ri0 = r.rep_invariant(&impl_state);
    ctx.assume(ri0);
    let mut spec_state = r.abstraction(&impl_state);

    r.run_impl(&mut ctx, &mut impl_state);
    r.run_spec(&mut ctx, &mut spec_state);

    // All three theorem families are independent, so collect them first
    // and discharge as one concurrent batch on the engine.
    let mut goals: Vec<NamedGoal> = ctx
        .take_obligations()
        .into_iter()
        .map(|ob| NamedGoal::new(format!("{name}: {}", ob.label), ob.condition))
        .collect();
    // 2. RI preservation.
    let ri1 = r.rep_invariant(&impl_state);
    goals.push(NamedGoal::new(format!("{name}: RI preserved"), ri1));
    // 3. Lock-step commutation through AF.
    let af1 = r.abstraction(&impl_state);
    let eq = r.spec_eq(&af1, &spec_state);
    goals.push(NamedGoal::new(format!("{name}: refinement"), eq));
    discharge_batch(&ctx, cfg, goals)
}

/// Proves a one-safety property: `invariant(s) ⇒ prop(s)` for all spec
/// states produced by `fresh`.
pub fn prove_one_safety<S>(
    cfg: SolverConfig,
    name: &str,
    fresh: impl FnOnce(&mut SymCtx) -> S,
    invariant: impl FnOnce(&S) -> SBool,
    prop: impl FnOnce(&S) -> SBool,
) -> ProofReport {
    let mut ctx = SymCtx::new();
    let s = fresh(&mut ctx);
    ctx.assume(invariant(&s));
    let goal = prop(&s);
    let mut report = ProofReport::default();
    report
        .theorems
        .push(discharge(&ctx, cfg, name, &[], goal));
    report
}

/// Proves step consistency (paper §3.3, §6.2), the core two-safety lemma of
/// noninterference: for any action `a` and states `s1 ∼ s2`,
/// `step(s1, a) ∼ step(s2, a)`.
///
/// `fresh` produces two independent symbolic states; `action` runs the same
/// (shared-symbolic) action on a state; `unwinding` is the observer's
/// indistinguishability relation `∼`.
pub fn prove_step_consistency<S>(
    cfg: SolverConfig,
    name: &str,
    mut fresh: impl FnMut(&mut SymCtx, &str) -> S,
    mut action: impl FnMut(&mut SymCtx, &mut S),
    unwinding: impl Fn(&S, &S) -> SBool,
    invariant: impl Fn(&S) -> SBool,
) -> ProofReport {
    let mut ctx = SymCtx::new();
    let mut s1 = fresh(&mut ctx, "s1");
    let mut s2 = fresh(&mut ctx, "s2");
    ctx.assume(invariant(&s1));
    ctx.assume(invariant(&s2));
    ctx.assume(unwinding(&s1, &s2));
    action(&mut ctx, &mut s1);
    action(&mut ctx, &mut s2);
    let goal = unwinding(&s1, &s2);
    let mut report = ProofReport::default();
    report
        .theorems
        .push(discharge(&ctx, cfg, name, &[], goal));
    report
}

/// Proves local respect (Rushby; paper §6.2 property 2): an action by a
/// domain that may not flow to the observer leaves the observer's view
/// unchanged: `obs(s) = obs(step(s, a))`.
pub fn prove_local_respect<S: Clone>(
    cfg: SolverConfig,
    name: &str,
    fresh: impl FnOnce(&mut SymCtx) -> S,
    mut action: impl FnMut(&mut SymCtx, &mut S),
    view_eq: impl Fn(&S, &S) -> SBool,
    invariant: impl Fn(&S) -> SBool,
) -> ProofReport {
    let mut ctx = SymCtx::new();
    let s0 = fresh(&mut ctx);
    ctx.assume(invariant(&s0));
    let mut s1 = s0.clone();
    action(&mut ctx, &mut s1);
    let goal = view_eq(&s0, &s1);
    let mut report = ProofReport::default();
    report
        .theorems
        .push(discharge(&ctx, cfg, name, &[], goal));
    report
}

/// A Nickel-style intransitive-noninterference policy (paper §6.2): a
/// finite set of domains and a can-flow-to relation. The monitors
/// instantiate this with their observer domains.
pub struct Policy<D> {
    /// The security domains.
    pub domains: Vec<D>,
    /// Whether information may flow from `from` to `to`.
    pub can_flow: Box<dyn Fn(&D, &D) -> bool>,
}

impl<D: Clone + PartialEq + std::fmt::Debug> Policy<D> {
    /// Domains that may *not* flow to `observer`.
    pub fn non_sources(&self, observer: &D) -> Vec<D> {
        self.domains
            .iter()
            .filter(|d| !(self.can_flow)(d, observer))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_smt::{reset_ctx, BV};

    /// A counter machine: spec is the counter value; impl stores it split
    /// across two fields (lo/hi nibbles) to exercise AF/RI.
    struct CounterRefinement;

    #[derive(Clone)]
    struct CImpl {
        lo: BV,
        hi: BV,
    }
    impl Merge for CImpl {
        fn merge(c: SBool, t: &Self, e: &Self) -> Self {
            CImpl {
                lo: BV::merge(c, &t.lo, &e.lo),
                hi: BV::merge(c, &t.hi, &e.hi),
            }
        }
    }

    impl Refinement for CounterRefinement {
        type Impl = CImpl;
        type Spec = BV;

        fn fresh_impl(&self, _ctx: &mut SymCtx) -> CImpl {
            CImpl {
                lo: BV::fresh(8, "lo"),
                hi: BV::fresh(8, "hi"),
            }
        }

        fn rep_invariant(&self, c: &CImpl) -> SBool {
            c.lo.ult(BV::lit(8, 16)) & c.hi.ult(BV::lit(8, 16))
        }

        fn abstraction(&self, c: &CImpl) -> BV {
            c.hi.shl(BV::lit(8, 4)) | c.lo
        }

        fn spec_eq(&self, a: &BV, b: &BV) -> SBool {
            a.eq_(*b)
        }

        fn run_impl(&self, ctx: &mut SymCtx, c: &mut CImpl) {
            // increment with nibble carry
            let lo1 = c.lo + BV::lit(8, 1);
            let carry = lo1.eq_(BV::lit(8, 16));
            ctx.branch(
                carry,
                c,
                |_, c| {
                    c.lo = BV::lit(8, 0);
                    c.hi = (c.hi + BV::lit(8, 1)) & BV::lit(8, 0xf);
                },
                |_, c| c.lo = lo1,
            );
        }

        fn run_spec(&self, _ctx: &mut SymCtx, s: &mut BV) {
            *s = *s + BV::lit(8, 1);
        }
    }

    #[test]
    fn counter_refinement_proves() {
        reset_ctx();
        let report =
            prove_refinement(&CounterRefinement, SolverConfig::default(), "inc");
        assert!(report.all_proved(), "\n{}", report.render());
    }

    /// A broken variant (forgets the carry) must fail refinement.
    struct BrokenCounter;
    impl Refinement for BrokenCounter {
        type Impl = CImpl;
        type Spec = BV;
        fn fresh_impl(&self, ctx: &mut SymCtx) -> CImpl {
            CounterRefinement.fresh_impl(ctx)
        }
        fn rep_invariant(&self, c: &CImpl) -> SBool {
            c.lo.ult(BV::lit(8, 16)) & c.hi.ult(BV::lit(8, 16))
        }
        fn abstraction(&self, c: &CImpl) -> BV {
            CounterRefinement.abstraction(c)
        }
        fn spec_eq(&self, a: &BV, b: &BV) -> SBool {
            a.eq_(*b)
        }
        fn run_impl(&self, _ctx: &mut SymCtx, c: &mut CImpl) {
            c.lo = (c.lo + BV::lit(8, 1)) & BV::lit(8, 0xf); // no carry!
        }
        fn run_spec(&self, _ctx: &mut SymCtx, s: &mut BV) {
            *s = *s + BV::lit(8, 1);
        }
    }

    #[test]
    fn broken_counter_fails_with_counterexample() {
        reset_ctx();
        let report = prove_refinement(&BrokenCounter, SolverConfig::default(), "inc");
        let failure = report.first_failure().expect("must fail");
        assert!(failure.name.contains("refinement"));
    }

    #[test]
    fn step_consistency_toy() {
        reset_ctx();
        // State: (public, secret); action doubles public. Observer sees
        // only public; consistency must hold.
        let report = prove_step_consistency(
            SolverConfig::default(),
            "toy-ni",
            |_, tag| (BV::fresh(8, &format!("{tag}.pub")), BV::fresh(8, &format!("{tag}.sec"))),
            |_, s: &mut (BV, BV)| s.0 = s.0 + s.0,
            |a, b| a.0.eq_(b.0),
            |_| SBool::lit(true),
        );
        assert!(report.all_proved(), "\n{}", report.render());
    }

    #[test]
    fn step_consistency_catches_leak() {
        reset_ctx();
        // Action leaks the secret into public.
        let report = prove_step_consistency(
            SolverConfig::default(),
            "leaky",
            |_, tag| (BV::fresh(8, &format!("{tag}.pub")), BV::fresh(8, &format!("{tag}.sec"))),
            |_, s: &mut (BV, BV)| s.0 = s.0 + s.1,
            |a, b| a.0.eq_(b.0),
            |_| SBool::lit(true),
        );
        assert!(!report.all_proved(), "leak must be caught");
    }

    #[test]
    fn local_respect_toy() {
        reset_ctx();
        let report = prove_local_respect(
            SolverConfig::default(),
            "local-respect",
            |_| (BV::fresh(8, "pub"), BV::fresh(8, "sec")),
            |_, s: &mut (BV, BV)| s.1 = s.1 + BV::lit(8, 1), // touches secret only
            |a, b| a.0.eq_(b.0),
            |_| SBool::lit(true),
        );
        assert!(report.all_proved(), "\n{}", report.render());
    }

    #[test]
    fn policy_non_sources() {
        let p = Policy {
            domains: vec![0u32, 1, 2],
            can_flow: Box::new(|&from, &to| from == to || from == 0),
        };
        assert_eq!(p.non_sources(&1), vec![2]);
    }
}
