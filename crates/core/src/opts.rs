//! Symbolic optimizations (paper §4).
//!
//! These are the domain-knowledge rewrites that make automated verification
//! scale; the paper reports that none of the monitor refinement proofs
//! terminate without them. Each optimization inspects the *structure* of
//! symbolic values (Rosette's "symbolic reflection") and reshapes the
//! evaluation strategy or the residual terms:
//!
//! - [`split_pc`]: concretizes a symbolic program counter by enumerating
//!   the constant leaves of its `ite` tree and evaluating each separately,
//!   maximizing partial evaluation of instruction fetch.
//! - [`split_cases`]: decomposes monolithic trap dispatch by case-splitting
//!   a symbolic value (e.g. the system-call number) on a developer-provided
//!   list of concrete values, with a residual default case.
//! - Offset concretization lives in [`crate::mem`] and is controlled by
//!   [`MemCfg`](crate::mem::MemCfg); [`OptCfg`] gathers all knobs for the
//!   §6.4 ablation.

use serval_smt::build;
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};

/// Master switchboard for the symbolic optimizations; the ablation
/// benchmark (experiment E4) toggles these individually.
#[derive(Clone, Copy, Debug)]
pub struct OptCfg {
    /// Enable [`split_pc`]; when off, callers fall back to merged-pc
    /// evaluation, which diverges on real systems (paper §6.4).
    pub split_pc: bool,
    /// Enable [`split_cases`] for trap dispatch.
    pub split_cases: bool,
    /// Enable in-struct offset concretization in the memory model.
    pub concretize_offsets: bool,
    /// Enable representation-invariant-driven rewriting of system
    /// registers to concrete values (paper §4, "symbolic system registers").
    pub concrete_sysregs: bool,
}

impl Default for OptCfg {
    fn default() -> Self {
        OptCfg {
            split_pc: true,
            split_cases: true,
            concretize_offsets: true,
            concrete_sysregs: true,
        }
    }
}

impl OptCfg {
    /// All optimizations disabled (the ablation baseline).
    pub fn none() -> OptCfg {
        OptCfg {
            split_pc: false,
            split_cases: false,
            concretize_offsets: false,
            concrete_sysregs: false,
        }
    }
}

/// The outcome of enumerating a symbolic program counter.
#[derive(Clone, Debug)]
pub enum PcCases {
    /// The pc takes one of these concrete values (guards are `pc == v`).
    Concrete(Vec<u128>),
    /// The pc contains an opaque symbolic leaf — usually a security bug in
    /// the system under verification (paper §4: an unconstrained jump).
    Opaque,
}

/// Enumerates the concrete values a pc-shaped term can take by walking the
/// leaves of its `ite` tree. Returns [`PcCases::Opaque`] if any leaf is
/// non-constant, and deduplicates values reachable along several paths.
pub fn enumerate_pc(pc: BV) -> PcCases {
    let w = pc.width();
    let mut values: Vec<u128> = Vec::new();
    // Each work item is (term, additive constant): computed jump targets
    // often have the shape `ite(...) + base`, which canonicalizes to an
    // addition with the constant on the right.
    let mut stack = vec![(pc.0, 0u128)];
    while let Some((t, add)) = stack.pop() {
        if let Some((_c, a, b)) = build::as_ite(t) {
            stack.push((a, add));
            stack.push((b, add));
        } else if let Some(v) = build::as_bv_const(t) {
            let v = serval_smt::term::mask(w, v.wrapping_add(add));
            if !values.contains(&v) {
                values.push(v);
            }
        } else if let Some((x, c)) = build::as_add(t) {
            if let Some(cv) = build::as_bv_const(c) {
                stack.push((x, add.wrapping_add(cv)));
            } else {
                return PcCases::Opaque;
            }
        } else {
            return PcCases::Opaque;
        }
    }
    values.sort_unstable();
    PcCases::Concrete(values)
}

/// The `split-pc` symbolic optimization (paper §3.2, §4).
///
/// Enumerates the feasible concrete values of `pc`, clones the state for
/// each, runs `f` with the concrete value under the path condition
/// `pc == v`, and merges the results. Returns `Err(())` when the pc is
/// opaque (unconstrained), in which case verification must fail — the
/// paper notes this usually indicates a security bug.
#[allow(clippy::result_unit_err)]
pub fn split_pc<S: Merge, R: Merge>(
    ctx: &mut SymCtx,
    state: &mut S,
    pc: BV,
    mut f: impl FnMut(&mut SymCtx, &mut S, u128) -> R,
) -> Result<R, ()> {
    let values = match enumerate_pc(pc) {
        PcCases::Concrete(vs) => vs,
        PcCases::Opaque => return Err(()),
    };
    let w = pc.width();
    let cases: Vec<(SBool, u128)> = values
        .into_iter()
        .map(|v| (pc.eq_(BV::lit(w, v)), v))
        .collect();
    // Guards can be concretely false on this path (the ite collapsed);
    // `split` skips infeasible cases syntactically.
    Ok(ctx.split(state, &cases, |ctx, s, v| f(ctx, s, v)))
}

/// The `split-cases` symbolic optimization (paper §4).
///
/// Case-splits symbolic value `x` on the concrete `cases` (e.g. system-call
/// numbers): for each `c`, runs `f` with the literal `c` under the path
/// condition `x == c`; a final residual case runs `f` with the original
/// symbolic `x` under the condition that it differs from every listed
/// value. This decomposes monolithic trap-dispatch constraints into
/// per-handler queries.
pub fn split_cases<S: Merge, R: Merge>(
    ctx: &mut SymCtx,
    state: &mut S,
    x: BV,
    cases: &[u128],
    mut f: impl FnMut(&mut SymCtx, &mut S, BV) -> R,
) -> R {
    let w = x.width();
    let mut guarded: Vec<(SBool, Option<u128>)> = cases
        .iter()
        .map(|&c| (x.eq_(BV::lit(w, c)), Some(c)))
        .collect();
    let residual = cases
        .iter()
        .fold(SBool::lit(true), |acc, &c| acc & x.ne_(BV::lit(w, c)));
    guarded.push((residual, None));
    ctx.split(state, &guarded, |ctx, s, payload| match payload {
        Some(c) => f(ctx, s, BV::lit(w, c)),
        None => f(ctx, s, x),
    })
}

/// Matches the "in-struct offset" pattern `i*C0 + C1` (or `i*C0`, or `C1`)
/// against a byte-offset term, returning `(index, intra)` such that
/// `offset = index*C0 + intra` *syntactically*. Used by the memory model's
/// offset concretization; the caller emits the soundness side condition.
pub fn match_scaled_offset(offset: BV, elem_size: u128) -> Option<(BV, u128)> {
    let w = offset.width();
    // Fully concrete offset.
    if let Some(c) = offset.as_const() {
        return Some((BV::lit(w, c / elem_size), c % elem_size));
    }
    // offset = mul + C1 (canonical constant-right form).
    let (mul_part, c1) = match build::as_add(offset.0) {
        Some((a, b)) => match build::as_bv_const(b) {
            Some(c1) => (BV(a), c1),
            None => (offset, 0),
        },
        None => (offset, 0),
    };
    if c1 >= elem_size {
        // A large constant may embed whole elements: i*C0 + (k*C0 + r)
        // → (i + k)*C0 + r.
        let k = c1 / elem_size;
        let r = c1 % elem_size;
        if let Some((i, c0)) = match_mul_by(mul_part, elem_size) {
            let _ = c0;
            return Some((i + BV::lit(w, k), r));
        }
        return None;
    }
    let (i, _c0) = match_mul_by(mul_part, elem_size)?;
    Some((i, c1))
}

/// Matches `i * C0` where `C0 == elem_size` (either operand order after
/// canonicalization; also accepts shifts by a constant when the element
/// size is a power of two).
fn match_mul_by(t: BV, elem_size: u128) -> Option<(BV, u128)> {
    if let Some((a, b)) = build::as_mul(t.0) {
        if build::as_bv_const(b) == Some(elem_size) {
            return Some((BV(a), elem_size));
        }
        if build::as_bv_const(a) == Some(elem_size) {
            return Some((BV(b), elem_size));
        }
    }
    // i << k with 2^k == elem_size.
    if elem_size.is_power_of_two() {
        let k = elem_size.trailing_zeros();
        let shl = serval_smt::with_ctx(|c| {
            let n = c.term(t.0);
            if n.op == serval_smt::term::Op::BvShl {
                Some((n.children[0], n.children[1]))
            } else {
                None
            }
        });
        if let Some((x, amt)) = shl {
            if build::as_bv_const(amt) == Some(k as u128) {
                return Some((BV(x), elem_size));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_smt::{reset_ctx, verify};

    #[test]
    fn enumerate_simple_ite() {
        reset_ctx();
        let c = SBool::fresh("c");
        let d = SBool::fresh("d");
        let pc = c.select(
            BV::lit(64, 4),
            d.select(BV::lit(64, 8), BV::lit(64, 4)),
        );
        match enumerate_pc(pc) {
            PcCases::Concrete(vs) => assert_eq!(vs, vec![4, 8]),
            PcCases::Opaque => panic!("expected concrete cases"),
        }
    }

    #[test]
    fn enumerate_opaque() {
        reset_ctx();
        let c = SBool::fresh("c");
        let x = BV::fresh(64, "x");
        let pc = c.select(BV::lit(64, 4), x);
        assert!(matches!(enumerate_pc(pc), PcCases::Opaque));
    }

    #[test]
    fn split_pc_merges_results() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let c = SBool::fresh("c");
        let pc = c.select(BV::lit(64, 10), BV::lit(64, 20));
        let mut state = BV::lit(8, 0);
        let r = split_pc(&mut ctx, &mut state, pc, |_, s, v| {
            *s = BV::lit(8, (v / 10) as u128);
            BV::lit(8, v as u128 + 1)
        })
        .unwrap();
        assert!(verify(&[c], r.eq_(BV::lit(8, 11))).is_proved());
        assert!(verify(&[!c], r.eq_(BV::lit(8, 21))).is_proved());
        assert!(verify(&[c], state.eq_(BV::lit(8, 1))).is_proved());
    }

    #[test]
    fn split_cases_residual() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let x = BV::fresh(64, "sysno");
        let mut state = ();
        let r = split_cases(&mut ctx, &mut state, x, &[1, 2], |_, _, v| {
            if let Some(c) = v.as_const() {
                BV::lit(8, c * 10)
            } else {
                BV::lit(8, 0xff) // default handler sees the symbolic value
            }
        });
        assert!(verify(&[x.eq_(BV::lit(64, 2))], r.eq_(BV::lit(8, 20))).is_proved());
        assert!(verify(&[x.eq_(BV::lit(64, 9))], r.eq_(BV::lit(8, 0xff))).is_proved());
    }

    #[test]
    fn scaled_offset_patterns() {
        reset_ctx();
        let pid = BV::fresh(64, "pid");
        // pid*32 + 8.
        let off = pid * BV::lit(64, 32) + BV::lit(64, 8);
        let (i, intra) = match_scaled_offset(off, 32).unwrap();
        assert_eq!(i, pid);
        assert_eq!(intra, 8);
        // pid*32 + 72 = (pid + 2)*32 + 8.
        let off = pid * BV::lit(64, 32) + BV::lit(64, 72);
        let (i, intra) = match_scaled_offset(off, 32).unwrap();
        assert!(verify(&[], i.eq_(pid + BV::lit(64, 2))).is_proved());
        assert_eq!(intra, 8);
        // Shift form: pid << 5.
        let off = pid.shl(BV::lit(64, 5)) + BV::lit(64, 16);
        let (i, intra) = match_scaled_offset(off, 32).unwrap();
        assert_eq!(i, pid);
        assert_eq!(intra, 16);
        // Concrete.
        let (i, intra) = match_scaled_offset(BV::lit(64, 100), 32).unwrap();
        assert_eq!(i.as_const(), Some(3));
        assert_eq!(intra, 4);
    }
}
