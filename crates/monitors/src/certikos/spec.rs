//! The CertiKOS^s functional specification and abstraction function
//! (paper §3.3, §6.2).

use super::{NPROC, PAGE, PMP_CFG, PROC_RAM};
use serval_core::{Mem, PathElem};
use serval_smt::{SBool, BV};
use serval_sym::{merge_many, Merge};

/// Abstract per-process record.
#[derive(Clone, Debug)]
pub struct SpecProc {
    /// 0 = free, 1 = used.
    pub state: BV,
    /// Remaining memory quota in pages.
    pub quota: BV,
    /// First page of the process's contiguous region.
    pub base: BV,
    /// Number of children spawned (bookkeeping; public information).
    pub nr_children: BV,
    /// Saved context: s0, s1, sp, mepc.
    pub ctx: [BV; 4],
}

impl Merge for SpecProc {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        SpecProc {
            state: BV::merge(c, &t.state, &e.state),
            quota: BV::merge(c, &t.quota, &e.quota),
            base: BV::merge(c, &t.base, &e.base),
            nr_children: BV::merge(c, &t.nr_children, &e.nr_children),
            ctx: <[BV; 4]>::merge(c, &t.ctx, &e.ctx),
        }
    }
}

/// The abstract monitor state.
#[derive(Clone, Debug)]
pub struct SpecState {
    /// Currently running PID.
    pub cur: BV,
    /// Per-process records.
    pub procs: Vec<SpecProc>,
}

impl Merge for SpecState {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        SpecState {
            cur: BV::merge(c, &t.cur, &e.cur),
            procs: Vec::merge(c, &t.procs, &e.procs),
        }
    }
}

impl SpecState {
    /// A fully symbolic state (for noninterference proofs).
    pub fn fresh(tag: &str) -> SpecState {
        let f = |n: String| BV::fresh(64, &n);
        SpecState {
            cur: f(format!("{tag}.cur")),
            procs: (0..NPROC)
                .map(|i| SpecProc {
                    state: f(format!("{tag}.p{i}.state")),
                    quota: f(format!("{tag}.p{i}.quota")),
                    base: f(format!("{tag}.p{i}.base")),
                    nr_children: f(format!("{tag}.p{i}.nc")),
                    ctx: std::array::from_fn(|k| f(format!("{tag}.p{i}.ctx{k}"))),
                })
                .collect(),
        }
    }

    /// Reads `procs[idx].field` at a symbolic index.
    pub fn read(&self, idx: BV, f: impl Fn(&SpecProc) -> BV) -> BV {
        let cases: Vec<(SBool, BV)> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| (idx.eq_(BV::lit(64, i as u128)), f(p)))
            .collect();
        merge_many(&cases)
    }

    /// Updates `procs[idx]` at a symbolic index under `guard`.
    pub fn update(&mut self, guard: SBool, idx: BV, f: impl Fn(&mut SpecProc)) {
        for (i, p) in self.procs.iter_mut().enumerate() {
            let here = guard & idx.eq_(BV::lit(64, i as u128));
            let mut updated = p.clone();
            f(&mut updated);
            *p = SpecProc::merge(here, &updated, p);
        }
    }

    /// Structural equality of two states.
    pub fn eq_(&self, other: &SpecState) -> SBool {
        let mut acc = self.cur.eq_(other.cur);
        for (a, b) in self.procs.iter().zip(&other.procs) {
            acc = acc & proc_eq(a, b);
        }
        acc
    }

    /// The representation/state invariant: `cur` names a used process in
    /// range.
    pub fn invariant(&self) -> SBool {
        let in_range = self.cur.ult(BV::lit(64, NPROC as u128));
        let running = self.read(self.cur, |p| p.state).eq_(BV::lit(64, 1));
        in_range & running
    }
}

/// Per-process record equality.
pub fn proc_eq(a: &SpecProc, b: &SpecProc) -> SBool {
    a.state.eq_(b.state)
        & a.quota.eq_(b.quota)
        & a.base.eq_(b.base)
        & a.nr_children.eq_(b.nr_children)
        & a.ctx[0].eq_(b.ctx[0])
        & a.ctx[1].eq_(b.ctx[1])
        & a.ctx[2].eq_(b.ctx[2])
        & a.ctx[3].eq_(b.ctx[3])
}

/// The abstraction function AF: typed memory → abstract state
/// (paper §3.3).
pub fn abstraction(mem: &Mem) -> SpecState {
    SpecState {
        cur: mem.read_path("cur_pid", &[PathElem::Field("cur")]),
        procs: (0..NPROC)
            .map(|i| {
                let f = |name: &'static str| {
                    mem.read_path("procs", &[PathElem::Index(i), PathElem::Field(name)])
                };
                SpecProc {
                    state: f("state"),
                    quota: f("quota"),
                    base: f("base"),
                    nr_children: f("nr_children"),
                    ctx: [f("ctx_s0"), f("ctx_s1"), f("ctx_sp"), f("ctx_mepc")],
                }
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Functional specifications (paper §3.3)
// ---------------------------------------------------------------------

/// `get_quota`: returns the caller's remaining quota; no state change.
pub fn spec_get_quota(s: &SpecState) -> BV {
    s.read(s.cur, |p| p.quota)
}

/// Whether `child` is a PID statically owned by `parent`
/// (children of `p` are `2p+1` and `2p+2`).
pub fn owns_pid(parent: BV, child: BV) -> SBool {
    let two = parent + parent;
    let in_range = child.ult(BV::lit(64, NPROC as u128));
    (child.eq_(two + BV::lit(64, 1)) | child.eq_(two + BV::lit(64, 2))) & in_range
}

/// `spawn(child, quota)` with the caller-chosen child PID (the §6.2
/// retrofit closing the consecutive-PID covert channel). Returns the
/// result value.
pub fn spec_spawn(s: &mut SpecState, child: BV, quota: BV) -> BV {
    let cur = s.cur;
    let ok_pid = owns_pid(cur, child);
    let child_free = s.read(child, |p| p.state).eq_(BV::lit(64, 0));
    // An out-of-range child is already rejected by ok_pid; the read above
    // merges arbitrary in-range records, which ok_pid masks.
    let pq = s.read(cur, |p| p.quota);
    let q_ok = quota.ule(pq);
    let valid = ok_pid & child_free & q_ok;

    let newq = pq - quota;
    let pbase = s.read(cur, |p| p.base);
    let cbase = pbase + newq;
    let entry = BV::lit(64, PROC_RAM as u128) + cbase.shl(BV::lit(64, PAGE.trailing_zeros() as u128));
    let sp0 = entry + quota.shl(BV::lit(64, PAGE.trailing_zeros() as u128));

    s.update(valid, cur, |p| {
        p.quota = newq;
        p.nr_children = p.nr_children + BV::lit(64, 1);
    });
    s.update(valid, child, |p| {
        p.state = BV::lit(64, 1);
        p.quota = quota;
        p.base = cbase;
        p.nr_children = BV::lit(64, 0);
        p.ctx = [BV::lit(64, 0), BV::lit(64, 0), sp0, entry];
    });
    valid.select(child, BV::lit(64, u64::MAX as u128))
}

/// The next used PID after `cur` in round-robin order.
pub fn spec_next(s: &SpecState) -> BV {
    let mut next = s.cur;
    for d in (1..=NPROC).rev() {
        let cand = (s.cur + BV::lit(64, d as u128)) & BV::lit(64, NPROC as u128 - 1);
        let used = s.read(cand, |p| p.state).eq_(BV::lit(64, 1));
        next = used.select(cand, next);
    }
    next
}

/// `yield`: saves the caller's context (as captured at trap entry),
/// switches to the next used process. `saved_ctx` is the caller's
/// context (s0, s1, sp, resume pc). Returns the new current PID.
pub fn spec_yield(s: &mut SpecState, saved_ctx: [BV; 4]) -> BV {
    let cur = s.cur;
    s.update(SBool::lit(true), cur, |p| p.ctx = saved_ctx);
    let next = spec_next(s);
    s.cur = next;
    next
}

/// The PMP configuration the monitor must install for process `p`:
/// `(pmpaddr0, pmpaddr1, pmpcfg0)` delimiting its region.
pub fn spec_pmp(p: &SpecProc) -> (BV, BV, BV) {
    let shift = BV::lit(64, PAGE.trailing_zeros() as u128);
    let start = BV::lit(64, PROC_RAM as u128) + p.base.shl(shift);
    let end = start + p.quota.shl(shift);
    let two = BV::lit(64, 2);
    (
        start.lshr(two),
        end.lshr(two),
        BV::lit(64, PMP_CFG as u128),
    )
}
