//! CertiKOS^s proofs: binary-level refinement (paper §3.3/§6.2) and
//! noninterference (the three small-step properties of §6.2 plus the
//! Nickel-style check that catches the consecutive-PID covert channel).

use super::spec::{
    abstraction, owns_pid, proc_eq, spec_get_quota, spec_next, spec_pmp, spec_spawn,
    spec_yield, SpecState,
};
use super::{build, fresh_mem, sys, CODE_BASE, NPROC};
use serval_core::report::{
    discharge, discharge_batch, discharge_queries, NamedGoal, ProofReport,
};
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_riscv::{reg, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, SBool, BV};
use serval_sym::SymCtx;

/// Proves one monitor call against its functional specification over the
/// compiled binary: absence of UB, state refinement, return value,
/// invariant preservation, control flow, register scrubbing, and (for
/// yield) the installed PMP configuration.
///
/// Resets the thread's term context.
pub fn prove_op(op: u64, level: OptLevel, optcfg: OptCfg, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let interp = build(level, optcfg);
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    mem.cfg.concretize_offsets = optcfg.concretize_offsets;
    let mut m = Machine::fresh_at(CODE_BASE, mem, "m");

    // Abstract view of the entry state; assume the representation
    // invariant (paper §3.3).
    let s0 = abstraction(&m.mem);
    ctx.assume(s0.invariant());

    // Trap-entry registers: the monitor-call number is pinned per proof
    // (the external form of split-cases, paper §4); arguments stay
    // symbolic.
    m.set_reg(reg::A7, BV::lit(64, op as u128));
    let a0 = m.reg(reg::A0);
    let a1 = m.reg(reg::A1);
    let entry = EntryState {
        sp: m.reg(reg::SP),
        s0: m.reg(reg::S0),
        s1: m.reg(reg::S1),
        mepc: m.csrs.mepc,
    };

    let name = op_name(op);
    let mut report = ProofReport::default();
    let outcome = interp.run(&mut ctx, &mut m);
    if !outcome.ok() {
        report.theorems.push(serval_core::report::TheoremResult {
            name: format!("{name}: symbolic evaluation"),
            verdict: serval_core::report::Verdict::Unknown,
            time: std::time::Duration::ZERO,
            stats: None,
            cache_hit: false,
        });
        return report;
    }

    // Run the functional specification.
    let mut s = s0.clone();
    let spec_ret = match op {
        sys::GET_QUOTA => spec_get_quota(&s),
        sys::SPAWN => spec_spawn(&mut s, a0, a1),
        sys::YIELD => {
            let saved = [entry.s0, entry.s1, entry.sp, entry.mepc + BV::lit(64, 4)];
            spec_yield(&mut s, saved);
            BV::lit(64, 0) // yield returns 0 in the resumed process
        }
        _ => panic!("unknown op {op}"),
    };

    // The per-op theorems are independent; collect them all and discharge
    // as one concurrent engine batch at the end.
    let mut goals: Vec<NamedGoal> = Vec::new();

    // 1. UB obligations collected during evaluation of the binary.
    for ob in ctx.take_obligations() {
        goals.push(NamedGoal::new(format!("{name}: {}", ob.label), ob.condition));
    }

    // 2. State refinement: AF(impl') == spec'.
    let s_impl = abstraction(&m.mem);
    goals.push(NamedGoal::new(
        format!("{name}: state refinement"),
        s_impl.eq_(&s),
    ));

    // 3. Return value.
    goals.push(NamedGoal::new(
        format!("{name}: return value"),
        m.reg(reg::A0).eq_(spec_ret),
    ));

    // 4. Invariant preservation.
    goals.push(NamedGoal::new(
        format!("{name}: invariant preserved"),
        s.invariant(),
    ));

    // 5. Control flow and callee-visible registers at trap return.
    let (want_pc, want_sp, want_s0, want_s1) = if op == sys::YIELD {
        let new = s.cur;
        (
            s.read(new, |p| p.ctx[3]),
            s.read(new, |p| p.ctx[2]),
            s.read(new, |p| p.ctx[0]),
            s.read(new, |p| p.ctx[1]),
        )
    } else {
        (
            entry.mepc + BV::lit(64, 4),
            entry.sp,
            entry.s0,
            entry.s1,
        )
    };
    let control = m.pc.eq_(want_pc)
        & m.reg(reg::SP).eq_(want_sp)
        & m.reg(reg::S0).eq_(want_s0)
        & m.reg(reg::S1).eq_(want_s1);
    goals.push(NamedGoal::new(
        format!("{name}: control flow and context"),
        control,
    ));

    // 6. No monitor data leaks through scratch registers.
    let mut scrubbed = SBool::lit(true);
    for r in [
        reg::RA,
        reg::GP,
        reg::TP,
        reg::T0,
        reg::T1,
        reg::T2,
        reg::T3,
        reg::T4,
        reg::T5,
        reg::T6,
        reg::A1,
        reg::A2,
        reg::A3,
        reg::A4,
        reg::A5,
        reg::A6,
        reg::A7,
    ] {
        scrubbed = scrubbed & m.reg(r).eq_(BV::lit(64, 0));
    }
    goals.push(NamedGoal::new(
        format!("{name}: scratch registers scrubbed"),
        scrubbed,
    ));

    // 7. PMP isolation for the process being switched to.
    if op == sys::YIELD {
        let cases: Vec<(SBool, (BV, BV, BV))> = (0..NPROC)
            .map(|i| {
                let guard = s.cur.eq_(BV::lit(64, i as u128));
                (guard, spec_pmp(&s.procs[i as usize]))
            })
            .collect();
        let mut goal = SBool::lit(true);
        for (guard, (lo, hi, cfgv)) in cases {
            goal = goal
                & guard.implies(
                    m.csrs.pmpaddr[0].eq_(lo)
                        & m.csrs.pmpaddr[1].eq_(hi)
                        & m.csrs.pmpcfg0.eq_(cfgv),
                );
        }
        goals.push(NamedGoal::new(format!("{name}: PMP configuration"), goal));
    }

    report.extend(discharge_batch(&ctx, cfg, goals));
    report
}

struct EntryState {
    sp: BV,
    s0: BV,
    s1: BV,
    mepc: BV,
}

fn op_name(op: u64) -> &'static str {
    match op {
        sys::GET_QUOTA => "certikos get_quota",
        sys::SPAWN => "certikos spawn",
        sys::YIELD => "certikos yield",
        _ => "certikos unknown",
    }
}

/// Monolithic-dispatch refinement (the §4 `split-cases` ablation): one
/// query over a *symbolic* monitor-call number instead of one per call.
/// The trap dispatcher's behaviour for every call is folded into a single
/// verification condition, the pathology `split-cases` decomposes.
pub fn prove_monolithic(level: OptLevel, optcfg: OptCfg, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let interp = build(level, optcfg);
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    mem.cfg.concretize_offsets = optcfg.concretize_offsets;
    let mut m = Machine::fresh_at(CODE_BASE, mem, "m");
    let s0 = abstraction(&m.mem);
    ctx.assume(s0.invariant());
    // The monitor-call number stays symbolic: the evaluation and the
    // final query cover every handler at once.
    let a7 = m.reg(reg::A7);
    let a0 = m.reg(reg::A0);
    let a1 = m.reg(reg::A1);
    let entry = EntryState {
        sp: m.reg(reg::SP),
        s0: m.reg(reg::S0),
        s1: m.reg(reg::S1),
        mepc: m.csrs.mepc,
    };
    let mut report = ProofReport::default();
    let outcome = interp.run(&mut ctx, &mut m);
    if !outcome.ok() {
        report.theorems.push(serval_core::report::TheoremResult {
            name: "certikos monolithic: symbolic evaluation".into(),
            verdict: serval_core::report::Verdict::Unknown,
            time: std::time::Duration::ZERO,
            stats: None,
            cache_hit: false,
        });
        return report;
    }
    // Specification dispatch mirrors the monitor's.
    let s_gq = s0.clone();
    let r_gq = spec_get_quota(&s_gq);
    let mut s_sp = s0.clone();
    let r_sp = spec_spawn(&mut s_sp, a0, a1);
    let mut s_yd = s0.clone();
    let saved = [entry.s0, entry.s1, entry.sp, entry.mepc + BV::lit(64, 4)];
    spec_yield(&mut s_yd, saved);
    let is = |n: u64| a7.eq_(BV::lit(64, n as u128));
    let s_impl = abstraction(&m.mem);
    let state_goal = is(sys::GET_QUOTA).implies(s_impl.eq_(&s_gq))
        & is(sys::SPAWN).implies(s_impl.eq_(&s_sp))
        & is(sys::YIELD).implies(s_impl.eq_(&s_yd))
        & (!is(sys::GET_QUOTA) & !is(sys::SPAWN) & !is(sys::YIELD))
            .implies(s_impl.eq_(&s0));
    let ret_goal = is(sys::GET_QUOTA).implies(m.reg(reg::A0).eq_(r_gq))
        & is(sys::SPAWN).implies(m.reg(reg::A0).eq_(r_sp))
        & is(sys::YIELD).implies(m.reg(reg::A0).eq_(BV::lit(64, 0)));
    let mut goals: Vec<NamedGoal> = ctx
        .take_obligations()
        .into_iter()
        .map(|ob| NamedGoal::new(format!("certikos monolithic: {}", ob.label), ob.condition))
        .collect();
    goals.push(NamedGoal::new(
        "certikos monolithic: state refinement (all calls at once)",
        state_goal & ret_goal,
    ));
    report.extend(discharge_batch(&ctx, cfg, goals));
    report
}

/// Proves refinement for all three monitor calls.
pub fn prove_refinement(level: OptLevel, optcfg: OptCfg, cfg: SolverConfig) -> ProofReport {
    let mut report = ProofReport::default();
    for op in [sys::GET_QUOTA, sys::SPAWN, sys::YIELD] {
        report.extend(prove_op(op, level, optcfg, cfg));
    }
    report
}

// ---------------------------------------------------------------------
// Noninterference (paper §6.2)
// ---------------------------------------------------------------------

/// Process `p`'s observation equivalence over abstract states: its own
/// record in full, plus the *availability* of its statically-owned child
/// slots (whether each is still free to spawn into) — the slots are `p`'s
/// resource, but once a child runs, its record belongs to the child's own
/// domain. Scheduling state (`cur`, the set of runnable processes)
/// belongs to the scheduler domain, to which every process may flow — the
/// intransitive-policy treatment Nickel uses (paper §6.2).
pub fn obs_eq(p: BV, s1: &SpecState, s2: &SpecState) -> SBool {
    let mut acc = SBool::lit(true);
    let zero = BV::lit(64, 0);
    for (i, (a, b)) in s1.procs.iter().zip(&s2.procs).enumerate() {
        let i = BV::lit(64, i as u128);
        acc = acc & i.eq_(p).implies(proc_eq(a, b));
        let avail_eq = a.state.eq_(zero).iff(b.state.eq_(zero));
        acc = acc & owns_pid(p, i).implies(avail_eq);
    }
    acc
}

/// Property 1 (§6.2): a small-step action by `p` itself from two
/// indistinguishable states yields indistinguishable states and equal
/// results.
pub fn prove_own_step_consistency(cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    // Each operation gets its own assumption set (its own `SymCtx`), so
    // the lemmas go through the engine as fully explicit queries.
    let mut items: Vec<(String, Vec<SBool>, SBool)> = Vec::new();
    for op in [sys::GET_QUOTA, sys::SPAWN, sys::YIELD] {
        let mut ctx = SymCtx::new();
        let p = BV::fresh(64, "p");
        let mut s1 = SpecState::fresh("s1");
        let mut s2 = SpecState::fresh("s2");
        ctx.assume(p.ult(BV::lit(64, NPROC as u128)));
        ctx.assume(s1.invariant());
        ctx.assume(s2.invariant());
        ctx.assume(s1.cur.eq_(p));
        ctx.assume(s2.cur.eq_(p));
        ctx.assume(obs_eq(p, &s1, &s2));
        // Shared action arguments.
        let a0 = BV::fresh(64, "arg0");
        let a1 = BV::fresh(64, "arg1");
        let ctx4: [BV; 4] = std::array::from_fn(|i| BV::fresh(64, &format!("c{i}")));
        let (r1, r2) = match op {
            sys::GET_QUOTA => (spec_get_quota(&s1), spec_get_quota(&s2)),
            sys::SPAWN => (spec_spawn(&mut s1, a0, a1), spec_spawn(&mut s2, a0, a1)),
            _ => (spec_yield(&mut s1, ctx4), spec_yield(&mut s2, ctx4)),
        };
        let mut goal = obs_eq(p, &s1, &s2);
        // The caller observes the result, except for yield where the
        // caller is suspended and the result goes to the next process.
        if op != sys::YIELD {
            goal = goal & r1.eq_(r2);
        }
        items.push((
            format!("{}: own-step consistency", op_name(op)),
            ctx.assumptions().to_vec(),
            goal,
        ));
    }
    discharge_queries(cfg, items)
}

/// Property 2 (§6.2): a non-yield action by another process `q` (that does
/// not own `p` as a child slot) leaves `p`'s observation unchanged.
pub fn prove_others_invisible(cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut items: Vec<(String, Vec<SBool>, SBool)> = Vec::new();
    for op in [sys::GET_QUOTA, sys::SPAWN] {
        let mut ctx = SymCtx::new();
        let p = BV::fresh(64, "p");
        let mut s = SpecState::fresh("s");
        let s_before = s.clone();
        ctx.assume(p.ult(BV::lit(64, NPROC as u128)));
        ctx.assume(s.invariant());
        // The actor is the current process q != p, and p is not one of
        // q's child slots (spawn may legitimately flow q → child).
        ctx.assume(s.cur.ne_(p));
        ctx.assume(!owns_pid(s.cur, p));
        let a0 = BV::fresh(64, "arg0");
        let a1 = BV::fresh(64, "arg1");
        match op {
            sys::GET_QUOTA => {
                let _ = spec_get_quota(&s);
            }
            _ => {
                let _ = spec_spawn(&mut s, a0, a1);
            }
        }
        items.push((
            format!("{}: invisible to others", op_name(op)),
            ctx.assumptions().to_vec(),
            obs_eq(p, &s_before, &s),
        ));
        ctx.take_obligations();
    }
    discharge_queries(cfg, items)
}

/// Property 3 (§6.2): if `p` is yielded to from two indistinguishable
/// states, the resulting states are indistinguishable to `p`.
pub fn prove_yield_to_consistency(cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut report = ProofReport::default();
    let mut ctx = SymCtx::new();
    let p = BV::fresh(64, "p");
    let mut s1 = SpecState::fresh("s1");
    let mut s2 = SpecState::fresh("s2");
    ctx.assume(p.ult(BV::lit(64, NPROC as u128)));
    ctx.assume(s1.invariant());
    ctx.assume(s2.invariant());
    ctx.assume(s1.cur.ne_(p));
    ctx.assume(s2.cur.ne_(p));
    ctx.assume(obs_eq(p, &s1, &s2));
    // The action: yield, with the (unobservable to p) caller contexts.
    let c1: [BV; 4] = std::array::from_fn(|i| BV::fresh(64, &format!("c1_{i}")));
    let c2: [BV; 4] = std::array::from_fn(|i| BV::fresh(64, &format!("c2_{i}")));
    // "p is yielded to" in both runs.
    ctx.assume(spec_next(&s1).eq_(p));
    ctx.assume(spec_next(&s2).eq_(p));
    spec_yield(&mut s1, c1);
    spec_yield(&mut s2, c2);
    report.theorems.push(discharge(
        &ctx,
        cfg,
        "certikos yield-to consistency",
        &[],
        obs_eq(p, &s1, &s2),
    ));
    report
}

/// The Nickel-style check (paper §6.2) on `spawn`'s child-visible effect:
/// from two states indistinguishable to a prospective child `c`, the same
/// `spawn` action must leave `c`-indistinguishable states. Holds for the
/// retrofit caller-chosen-PID spawn; *fails* for the legacy
/// consecutive-PID spawn, exposing the parent→child covert channel
/// through `nr_children`.
pub fn prove_spawn_child_consistency(legacy: bool, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut report = ProofReport::default();
    let mut ctx = SymCtx::new();
    let c = BV::fresh(64, "c");
    let mut s1 = SpecState::fresh("s1");
    let mut s2 = SpecState::fresh("s2");
    ctx.assume(c.ult(BV::lit(64, NPROC as u128)));
    ctx.assume(s1.invariant());
    ctx.assume(s2.invariant());
    // Same acting parent in both runs; c is one of its child slots but is
    // not running.
    ctx.assume(s1.cur.eq_(s2.cur));
    ctx.assume(owns_pid(s1.cur, c));
    ctx.assume(s1.cur.ne_(c));
    ctx.assume(obs_eq(c, &s1, &s2));
    // Action arguments are public and identical. CertiKOS deliberately
    // permits the parent→child flow *during the child's own creation*
    // (paper §6.2), so the goal exempts the child the action publicly
    // designates. The retrofit interface names the child as an argument;
    // the legacy interface computes it from the parent's private
    // `nr_children`, leaving nothing public to exempt — and the resulting
    // counterexample is exactly the §6.2 covert channel.
    let child_arg = BV::fresh(64, "child");
    let quota = BV::fresh(64, "quota");
    let (goal, name) = if legacy {
        let _ = spec_spawn_legacy(&mut s1, quota);
        let _ = spec_spawn_legacy(&mut s2, quota);
        (
            obs_eq(c, &s1, &s2),
            "certikos legacy spawn: child-view consistency (covert channel)",
        )
    } else {
        let _ = spec_spawn(&mut s1, child_arg, quota);
        let _ = spec_spawn(&mut s2, child_arg, quota);
        (
            child_arg.ne_(c).implies(obs_eq(c, &s1, &s2)),
            "certikos spawn: child-view consistency",
        )
    };
    report.theorems.push(discharge(&ctx, cfg, name, &[], goal));
    report
}

/// The *legacy* CertiKOS spawn: the child PID is `2*cur + nr_children + 1`
/// (consecutive allocation). This discloses the parent's number of
/// children to the child — the covert channel the §6.2 retrofit removes.
pub fn spec_spawn_legacy(s: &mut SpecState, quota: BV) -> BV {
    let cur = s.cur;
    let nr = s.read(cur, |p| p.nr_children);
    let child = cur + cur + nr + BV::lit(64, 1);
    spec_spawn(s, child, quota)
}

/// All noninterference theorems expected to hold.
pub fn prove_noninterference(cfg: SolverConfig) -> ProofReport {
    let mut report = ProofReport::default();
    report.extend(prove_own_step_consistency(cfg));
    report.extend(prove_others_invisible(cfg));
    report.extend(prove_yield_to_consistency(cfg));
    report.extend(prove_spawn_child_consistency(false, cfg));
    report
}

/// Boot verification (paper §3.4): from the architectural reset state
/// with *arbitrary* memory contents, the boot code establishes the
/// initial abstract state (process 0 running with the whole quota), the
/// representation invariant, the trap vector, the PMP window, and enters
/// process 0.
pub fn prove_boot(level: OptLevel, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let (interp, boot_addr) = super::build_with_boot(level, OptCfg::default());
    let mut ctx = SymCtx::new();
    // Reset state: registers and CSRs architecturally zero, memory
    // arbitrary (the boot code must not depend on it).
    let mut m = Machine::reset_at(boot_addr, fresh_mem());
    let mut report = ProofReport::default();
    let outcome = interp.run(&mut ctx, &mut m);
    if !outcome.ok() {
        report.theorems.push(serval_core::report::TheoremResult {
            name: "certikos boot: symbolic evaluation".into(),
            verdict: serval_core::report::Verdict::Unknown,
            time: std::time::Duration::ZERO,
            stats: None,
            cache_hit: false,
        });
        return report;
    }
    let mut goals: Vec<NamedGoal> = ctx
        .take_obligations()
        .into_iter()
        .map(|ob| NamedGoal::new(format!("certikos boot: {}", ob.label), ob.condition))
        .collect();
    // The abstract state after boot: pid 0 running, owning everything.
    let s = abstraction(&m.mem);
    let zero = BV::lit(64, 0);
    let mut goal = s.cur.eq_(zero)
        & s.procs[0].state.eq_(BV::lit(64, 1))
        & s.procs[0].quota.eq_(BV::lit(64, super::TOTAL_QUOTA as u128))
        & s.procs[0].base.eq_(zero)
        & s.invariant();
    for p in &s.procs[1..] {
        goal = goal & p.state.eq_(zero);
    }
    goals.push(NamedGoal::new("certikos boot: initial abstract state", goal));
    // Machine configuration: trap vector, PMP, and entry into process 0.
    let machine_goal = m.csrs.mtvec.eq_(BV::lit(64, CODE_BASE as u128))
        & m.pc.eq_(BV::lit(64, super::PROC_RAM as u128))
        & m.csrs.pmpaddr[0].eq_(BV::lit(64, (super::PROC_RAM >> 2) as u128))
        & m.csrs.pmpaddr[1].eq_(BV::lit(
            64,
            ((super::PROC_RAM + super::TOTAL_QUOTA * super::PAGE) >> 2) as u128,
        ))
        & m.csrs.pmpcfg0.eq_(BV::lit(64, super::PMP_CFG as u128));
    goals.push(NamedGoal::new(
        "certikos boot: trap vector, PMP, and entry",
        machine_goal,
    ));
    report.extend(discharge_batch(&ctx, cfg, goals));
    report
}
