//! CertiKOS^s: the RISC-V port of the CertiKOS security monitor
//! (paper §6.2).
//!
//! The monitor provides strict isolation between up to [`NPROC`] processes.
//! Each process owns a memory quota and a contiguous region of physical
//! memory enforced with PMP; the PID space is statically partitioned
//! (children of `p` are `2p+1` and `2p+2`). The §6.2 retrofit changes are
//! included: `spawn` takes a caller-chosen child PID (closing the
//! consecutive-PID covert channel) and does not load ELF images (that is
//! delegated to untrusted S-mode code).
//!
//! Monitor calls (`a7` selects, arguments in `a0`/`a1`, result in `a0`):
//!
//! | nr | call                     | result |
//! |----|--------------------------|--------|
//! | 1  | `get_quota()`            | caller's remaining quota |
//! | 2  | `spawn(child, quota)`    | `child` or `-1` |
//! | 3  | `yield()`                | `0` (in the resumed process) |
//!
//! The implementation is IR compiled to RV64 (untrusted), plus a
//! hand-written trap stub handling dispatch, context switch, and PMP
//! programming. All proofs are over the final binary.

pub mod proofs;
pub mod spec;

use serval_core::{Layout, Mem, MemCfg, OptCfg};
use serval_ir::ir::{BinOp, FuncBuilder, Module, Pred, Term, Val};
use serval_ir::{compile, OptLevel};
use serval_riscv::insn::{BrOp, CsrOp, CsrSrc, Insn};
use serval_riscv::machine::csr;
use serval_riscv::{reg, Asm, Interp};

/// Number of processes.
pub const NPROC: u64 = 8;
/// Code base address.
pub const CODE_BASE: u64 = 0x8000_0000;
/// Monitor stack top.
pub const STACK_TOP: u64 = 0x8010_0000;
/// `struct proc` array base.
pub const PROCS: u64 = 0x8020_0000;
/// Current-PID cell.
pub const CUR_PID: u64 = 0x8020_1000;
/// Base of the physical memory managed by quotas.
pub const PROC_RAM: u64 = 0x8400_0000;
/// Page size.
pub const PAGE: u64 = 4096;
/// pmpcfg0 value: entry 0 TOR no-access, entry 1 TOR RWX.
pub const PMP_CFG: u64 = 0x0f08;
/// Total memory quota handed to process 0 at boot, in pages.
pub const TOTAL_QUOTA: u64 = 16;

/// Field offsets in `struct proc` (64 bytes).
pub mod field {
    pub const STATE: i64 = 0;
    pub const QUOTA: i64 = 8;
    pub const BASE: i64 = 16;
    pub const NR_CHILDREN: i64 = 24;
    pub const CTX_S0: i64 = 32;
    pub const CTX_S1: i64 = 40;
    pub const CTX_SP: i64 = 48;
    pub const CTX_MEPC: i64 = 56;
}

/// Monitor-call numbers.
pub mod sys {
    pub const GET_QUOTA: u64 = 1;
    pub const SPAWN: u64 = 2;
    pub const YIELD: u64 = 3;
}

/// The `struct proc` layout.
pub fn proc_layout() -> Layout {
    Layout::Struct(vec![
        ("state".into(), Layout::Cell(8)),
        ("quota".into(), Layout::Cell(8)),
        ("base".into(), Layout::Cell(8)),
        ("nr_children".into(), Layout::Cell(8)),
        ("ctx_s0".into(), Layout::Cell(8)),
        ("ctx_s1".into(), Layout::Cell(8)),
        ("ctx_sp".into(), Layout::Cell(8)),
        ("ctx_mepc".into(), Layout::Cell(8)),
    ])
}

/// Builds the monitor's typed memory with fully symbolic contents
/// (trap-handler verification, paper §3.4).
pub fn fresh_mem() -> Mem {
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "procs",
        PROCS,
        Layout::Array(NPROC, Box::new(proc_layout())).instantiate_fresh("procs"),
    );
    mem.add_region(
        "cur_pid",
        CUR_PID,
        Layout::Struct(vec![("cur".into(), Layout::Cell(8))]).instantiate_fresh("cur_pid"),
    );
    mem.add_region(
        "stack",
        STACK_TOP - PAGE,
        Layout::Array(512, Box::new(Layout::Cell(8))).instantiate_fresh("stack"),
    );
    mem
}

/// The monitor's trap handlers in IR.
pub fn module() -> Module {
    let procs = Val::Global("procs");
    let cur_pid = Val::Global("cur_pid");

    // sys_get_quota(): procs[cur].quota.
    let get_quota = {
        let mut b = FuncBuilder::new("sys_get_quota", 0);
        b.block("entry");
        let cur = b.load(cur_pid, 8);
        let off = b.bin(BinOp::Shl, cur, Val::Const(6));
        let p = b.bin(BinOp::Add, procs, off);
        let qa = b.bin(BinOp::Add, p, Val::Const(field::QUOTA));
        let q = b.load(qa, 8);
        b.term(Term::Ret(q));
        b.build()
    };

    // sys_spawn(child, quota).
    let spawn = {
        let mut b = FuncBuilder::new("sys_spawn", 2);
        let child = Val::Param(0);
        let quota = Val::Param(1);
        b.block("entry");
        let cur = b.load(cur_pid, 8);
        let two_cur = b.bin(BinOp::Add, cur, cur);
        let c1v = b.bin(BinOp::Add, two_cur, Val::Const(1));
        let c2v = b.bin(BinOp::Add, two_cur, Val::Const(2));
        let is1 = b.icmp(Pred::Eq, child, c1v);
        let is2 = b.icmp(Pred::Eq, child, c2v);
        let ok_pid = b.bin(BinOp::Or, is1, is2);
        let ok_range = b.icmp(Pred::Ult, child, Val::Const(NPROC as i64));
        let valid1 = b.bin(BinOp::And, ok_pid, ok_range);
        b.term(Term::CondBr(valid1, "check2", "fail"));

        b.block("check2");
        let coff = b.bin(BinOp::Shl, child, Val::Const(6));
        let cp = b.bin(BinOp::Add, procs, coff);
        let cstate = b.load(cp, 8);
        let free = b.icmp(Pred::Eq, cstate, Val::Const(0));
        let poff = b.bin(BinOp::Shl, cur, Val::Const(6));
        let pp = b.bin(BinOp::Add, procs, poff);
        let pq_addr = b.bin(BinOp::Add, pp, Val::Const(field::QUOTA));
        let pq = b.load(pq_addr, 8);
        let qok = b.icmp(Pred::Ule, quota, pq);
        let valid2 = b.bin(BinOp::And, free, qok);
        b.term(Term::CondBr(valid2, "doit", "fail"));

        b.block("doit");
        // Carve the child's region from the top of the parent's.
        let poff = b.bin(BinOp::Shl, cur, Val::Const(6));
        let pp = b.bin(BinOp::Add, procs, poff);
        let pq_addr = b.bin(BinOp::Add, pp, Val::Const(field::QUOTA));
        let pq = b.load(pq_addr, 8);
        let newq = b.bin(BinOp::Sub, pq, quota);
        b.store(pq_addr, newq, 8);
        let pbase_addr = b.bin(BinOp::Add, pp, Val::Const(field::BASE));
        let pbase = b.load(pbase_addr, 8);
        let cbase = b.bin(BinOp::Add, pbase, newq);
        let nc_addr = b.bin(BinOp::Add, pp, Val::Const(field::NR_CHILDREN));
        let nc = b.load(nc_addr, 8);
        let nc1 = b.bin(BinOp::Add, nc, Val::Const(1));
        b.store(nc_addr, nc1, 8);

        let coff = b.bin(BinOp::Shl, child, Val::Const(6));
        let cp = b.bin(BinOp::Add, procs, coff);
        b.store(cp, Val::Const(1), 8); // state = USED
        let cq_addr = b.bin(BinOp::Add, cp, Val::Const(field::QUOTA));
        b.store(cq_addr, quota, 8);
        let cb_addr = b.bin(BinOp::Add, cp, Val::Const(field::BASE));
        b.store(cb_addr, cbase, 8);
        let cn_addr = b.bin(BinOp::Add, cp, Val::Const(field::NR_CHILDREN));
        b.store(cn_addr, Val::Const(0), 8);
        // Initial context: entry at the region start, stack at its end.
        let s0_addr = b.bin(BinOp::Add, cp, Val::Const(field::CTX_S0));
        b.store(s0_addr, Val::Const(0), 8);
        let s1_addr = b.bin(BinOp::Add, cp, Val::Const(field::CTX_S1));
        b.store(s1_addr, Val::Const(0), 8);
        let entry_off = b.bin(BinOp::Shl, cbase, Val::Const(12));
        let entry = b.bin(BinOp::Add, entry_off, Val::Const(PROC_RAM as i64));
        let size = b.bin(BinOp::Shl, quota, Val::Const(12));
        let sp0 = b.bin(BinOp::Add, entry, size);
        let sp_addr = b.bin(BinOp::Add, cp, Val::Const(field::CTX_SP));
        b.store(sp_addr, sp0, 8);
        let mepc_addr = b.bin(BinOp::Add, cp, Val::Const(field::CTX_MEPC));
        b.store(mepc_addr, entry, 8);
        b.term(Term::Ret(child));

        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    };

    // sys_yield(): round-robin to the nearest used process; branchless so
    // the binary stays single-path under symbolic evaluation.
    let yield_ = {
        let mut b = FuncBuilder::new("sys_yield", 0);
        b.block("entry");
        let cur = b.load(cur_pid, 8);
        let mut next = cur;
        for d in (1..=NPROC).rev() {
            let cand_raw = b.bin(BinOp::Add, cur, Val::Const(d as i64));
            let cand = b.bin(BinOp::And, cand_raw, Val::Const(NPROC as i64 - 1));
            let off = b.bin(BinOp::Shl, cand, Val::Const(6));
            let p = b.bin(BinOp::Add, procs, off);
            let st = b.load(p, 8);
            let used = b.icmp(Pred::Eq, st, Val::Const(1));
            next = b.select(used, cand, next);
        }
        b.store(cur_pid, next, 8);
        b.term(Term::Ret(next));
        b.build()
    };

    Module {
        funcs: vec![get_quota, spawn, yield_],
        globals: vec![("procs", PROCS), ("cur_pid", CUR_PID)],
    }
}

/// Builds the monitor binary: trap stub + compiled handlers. Returns the
/// lifted interpreter over the validated machine code.
pub fn build(level: OptLevel, opt: OptCfg) -> Interp {
    build_with_boot(level, opt).0
}

/// Like [`build`], also returning the boot-entry address for reset-state
/// verification (paper §3.4).
pub fn build_with_boot(level: OptLevel, opt: OptCfg) -> (Interp, u64) {
    let mut asm = Asm::new();
    asm.define_symbol("stack_top", STACK_TOP);
    let csrr = |rd, c| Insn::Csr {
        op: CsrOp::Rs,
        rd,
        src: CsrSrc::Reg(reg::ZERO),
        csr: c,
    };
    let csrw = |rs, c| Insn::Csr {
        op: CsrOp::Rw,
        rd: reg::ZERO,
        src: CsrSrc::Reg(rs),
        csr: c,
    };

    // ---- trap entry: save the application sp, switch to monitor stack.
    asm.i(csrw(reg::SP, csr::MSCRATCH));
    asm.la(reg::SP, "stack_top");
    // ---- dispatch on a7.
    asm.li(reg::T0, sys::GET_QUOTA as i64);
    asm.branch(BrOp::Beq, reg::A7, reg::T0, "h_get_quota");
    asm.li(reg::T0, sys::SPAWN as i64);
    asm.branch(BrOp::Beq, reg::A7, reg::T0, "h_spawn");
    asm.li(reg::T0, sys::YIELD as i64);
    asm.branch(BrOp::Beq, reg::A7, reg::T0, "h_yield");
    asm.li(reg::A0, -1); // unknown monitor call
    asm.j("ret_adv");

    asm.label("h_get_quota");
    asm.call("sys_get_quota");
    asm.j("ret_adv");

    asm.label("h_spawn");
    asm.call("sys_spawn"); // arguments already in a0/a1
    asm.j("ret_adv");

    asm.label("h_yield");
    // Save the caller's context into procs[cur].
    asm.la(reg::T0, "cur_pid");
    asm.ld(reg::T1, 0, reg::T0);
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Slli,
        rd: reg::T2,
        rs1: reg::T1,
        imm: 6,
    });
    asm.la(reg::T0, "procs");
    asm.add(reg::T2, reg::T0, reg::T2);
    asm.sd(reg::S0, field::CTX_S0 as i32, reg::T2);
    asm.sd(reg::S1, field::CTX_S1 as i32, reg::T2);
    asm.i(csrr(reg::T3, csr::MSCRATCH));
    asm.sd(reg::T3, field::CTX_SP as i32, reg::T2);
    asm.i(csrr(reg::T3, csr::MEPC));
    asm.addi(reg::T3, reg::T3, 4); // resume after the ecall
    asm.sd(reg::T3, field::CTX_MEPC as i32, reg::T2);
    asm.call("sys_yield"); // a0 = new current pid
    // Restore the target's context.
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Slli,
        rd: reg::T2,
        rs1: reg::A0,
        imm: 6,
    });
    asm.la(reg::T0, "procs");
    asm.add(reg::T2, reg::T0, reg::T2);
    asm.ld(reg::S0, field::CTX_S0 as i32, reg::T2);
    asm.ld(reg::S1, field::CTX_S1 as i32, reg::T2);
    asm.ld(reg::T3, field::CTX_SP as i32, reg::T2);
    asm.i(csrw(reg::T3, csr::MSCRATCH));
    asm.ld(reg::T3, field::CTX_MEPC as i32, reg::T2);
    asm.i(csrw(reg::T3, csr::MEPC));
    // Program PMP for the target's region.
    asm.ld(reg::T3, field::BASE as i32, reg::T2);
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Slli,
        rd: reg::T3,
        rs1: reg::T3,
        imm: 12,
    });
    asm.li(reg::T4, PROC_RAM as i64);
    asm.add(reg::T3, reg::T3, reg::T4);
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Srli,
        rd: reg::T5,
        rs1: reg::T3,
        imm: 2,
    });
    asm.i(csrw(reg::T5, csr::PMPADDR0));
    asm.ld(reg::T5, field::QUOTA as i32, reg::T2);
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Slli,
        rd: reg::T5,
        rs1: reg::T5,
        imm: 12,
    });
    asm.add(reg::T5, reg::T3, reg::T5);
    asm.i(Insn::OpImm {
        op: serval_riscv::insn::IAluOp::Srli,
        rd: reg::T5,
        rs1: reg::T5,
        imm: 2,
    });
    asm.i(csrw(reg::T5, csr::PMPADDR0 + 1));
    asm.li(reg::T5, PMP_CFG as i64);
    asm.i(csrw(reg::T5, csr::PMPCFG0));
    asm.li(reg::A0, 0); // yield returns 0 in the resumed process
    asm.j("ret_common");

    // ---- exit: advance mepc past the ecall, scrub, restore sp, mret.
    asm.label("ret_adv");
    asm.i(csrr(reg::T0, csr::MEPC));
    asm.addi(reg::T0, reg::T0, 4);
    asm.i(csrw(reg::T0, csr::MEPC));
    asm.label("ret_common");
    // Scrub caller-saved registers so no monitor data leaks (the result
    // stays in a0).
    for r in [
        reg::RA,
        reg::GP,
        reg::TP,
        reg::T0,
        reg::T1,
        reg::T2,
        reg::T3,
        reg::T4,
        reg::T5,
        reg::T6,
        reg::A1,
        reg::A2,
        reg::A3,
        reg::A4,
        reg::A5,
        reg::A6,
        reg::A7,
    ] {
        asm.mv(r, reg::ZERO);
    }
    asm.i(csrr(reg::SP, csr::MSCRATCH));
    asm.i(Insn::Mret);

    // ---- boot code (paper §3.4): from the architectural reset state,
    // initialize the monitor's data, trap vector, PMP, and the first
    // process, then drop to S-mode. Verified by `proofs::prove_boot`.
    asm.label("boot");
    asm.la(reg::T0, "procs");
    for off in (0..(NPROC * 64)).step_by(8) {
        asm.sd(reg::ZERO, off as i32, reg::T0);
    }
    // procs[0] = { state: USED, quota: TOTAL_QUOTA, base: 0 }.
    asm.li(reg::T1, 1);
    asm.sd(reg::T1, field::STATE as i32, reg::T0);
    asm.li(reg::T1, TOTAL_QUOTA as i64);
    asm.sd(reg::T1, field::QUOTA as i32, reg::T0);
    asm.la(reg::T0, "cur_pid");
    asm.sd(reg::ZERO, 0, reg::T0);
    // Trap vector: the handler entry at the start of the image.
    asm.li(reg::T1, CODE_BASE as i64);
    asm.i(csrw(reg::T1, csr::MTVEC));
    // PMP: process 0 owns [PROC_RAM, PROC_RAM + TOTAL_QUOTA pages).
    asm.li(reg::T5, (PROC_RAM >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0));
    asm.li(reg::T5, ((PROC_RAM + TOTAL_QUOTA * PAGE) >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0 + 1));
    asm.li(reg::T5, PMP_CFG as i64);
    asm.i(csrw(reg::T5, csr::PMPCFG0));
    // Enter process 0 at the base of its region with the stack at its top.
    asm.li(reg::T1, PROC_RAM as i64);
    asm.i(csrw(reg::T1, csr::MEPC));
    asm.li(reg::SP, (PROC_RAM + TOTAL_QUOTA * PAGE) as i64);
    asm.i(Insn::Mret);

    compile(&module(), level, &mut asm);
    let words = asm.assemble(CODE_BASE);
    // Without split-pc, merged-pc evaluation explores every code address
    // at every step (paper §3.2) and can never terminate; a tiny fuel
    // keeps the §6.4 ablation harness finite — the run still reports
    // divergence, the paper's observed outcome.
    let fuel = if opt.split_pc { 4096 } else { 3 };
    let mut interp = Interp::from_words(CODE_BASE, &words, fuel)
        .expect("monitor binary must decode (encoder-validated)");
    interp.opt = opt;
    (interp, asm.address_of("boot", CODE_BASE))
}

#[cfg(test)]
mod tests;
