//! CertiKOS^s tests: concrete monitor-call execution, binary refinement,
//! and noninterference.

use super::proofs::*;
use super::spec::*;
use super::*;
use serval_core::PathElem;
use serval_riscv::Machine;
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use serval_sym::SymCtx;

fn cfg() -> SolverConfig {
    SolverConfig::default()
}

/// Sets up a concrete two-process machine: pid 0 running with quota 8 at
/// page 0, everything else free.
fn concrete_machine() -> Machine {
    let mut mem = fresh_mem();
    mem.write_path("cur_pid", &[PathElem::Field("cur")], BV::lit(64, 0));
    for i in 0..NPROC {
        for f in [
            "state",
            "quota",
            "base",
            "nr_children",
            "ctx_s0",
            "ctx_s1",
            "ctx_sp",
            "ctx_mepc",
        ] {
            mem.write_path(
                "procs",
                &[PathElem::Index(i), PathElem::Field(f)],
                BV::lit(64, 0),
            );
        }
    }
    mem.write_path("procs", &[PathElem::Index(0), PathElem::Field("state")], BV::lit(64, 1));
    mem.write_path("procs", &[PathElem::Index(0), PathElem::Field("quota")], BV::lit(64, 8));
    let mut m = Machine::reset_at(CODE_BASE, mem);
    m.csrs.mepc = BV::lit(64, 0x1_0000);
    m
}

fn run_call(m: &mut Machine, op: u64, a0: u64, a1: u64) -> u64 {
    let mut ctx = SymCtx::new();
    let interp = build(serval_ir::OptLevel::O1, serval_core::OptCfg::default());
    m.pc = BV::lit(64, CODE_BASE as u128);
    m.set_reg(serval_riscv::reg::A7, BV::lit(64, op as u128));
    m.set_reg(serval_riscv::reg::A0, BV::lit(64, a0 as u128));
    m.set_reg(serval_riscv::reg::A1, BV::lit(64, a1 as u128));
    let o = interp.run(&mut ctx, m);
    assert!(o.ok(), "{o:?}");
    m.reg(serval_riscv::reg::A0).as_const().unwrap() as u64
}

#[test]
fn concrete_spawn_and_quota() {
    reset_ctx();
    let mut m = concrete_machine();
    assert_eq!(run_call(&mut m, sys::GET_QUOTA, 0, 0), 8);
    // Spawn child 1 with quota 3.
    assert_eq!(run_call(&mut m, sys::SPAWN, 1, 3), 1);
    assert_eq!(run_call(&mut m, sys::GET_QUOTA, 0, 0), 5);
    // Child 1 is now used: spawning it again fails.
    assert_eq!(run_call(&mut m, sys::SPAWN, 1, 1), u64::MAX);
    // A PID not owned by pid 0 is rejected.
    assert_eq!(run_call(&mut m, sys::SPAWN, 3, 1), u64::MAX);
    // Over-quota spawn is rejected.
    assert_eq!(run_call(&mut m, sys::SPAWN, 2, 6), u64::MAX);
    // Child base carved from the top: child 1 gets pages [5, 8).
    let cb = m
        .mem
        .read_path("procs", &[PathElem::Index(1), PathElem::Field("base")]);
    assert_eq!(cb.as_const(), Some(5));
}

#[test]
fn concrete_yield_round_robin() {
    reset_ctx();
    let mut m = concrete_machine();
    assert_eq!(run_call(&mut m, sys::SPAWN, 1, 2), 1);
    assert_eq!(run_call(&mut m, sys::SPAWN, 2, 2), 2);
    // Round-robin from 0: next used is 1.
    assert_eq!(run_call(&mut m, sys::YIELD, 0, 0), 0, "yield returns 0");
    let cur = m
        .mem
        .read_path("cur_pid", &[PathElem::Field("cur")]);
    assert_eq!(cur.as_const(), Some(1));
    // PMP now covers child 1's region: pages [6, 8).
    let lo = m.csrs.pmpaddr[0].as_const().unwrap() as u64;
    let hi = m.csrs.pmpaddr[1].as_const().unwrap() as u64;
    assert_eq!(lo << 2, PROC_RAM + 6 * PAGE);
    assert_eq!(hi << 2, PROC_RAM + 8 * PAGE);
    assert_eq!(m.csrs.pmpcfg0.as_const(), Some(PMP_CFG as u128));
    // Control transferred to child 1's entry point.
    assert_eq!(m.pc.as_const(), Some((PROC_RAM + 6 * PAGE) as u128));
}

#[test]
fn refinement_get_quota() {
    let report = prove_op(
        sys::GET_QUOTA,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_spawn() {
    let report = prove_op(
        sys::SPAWN,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_yield() {
    let report = prove_op(
        sys::YIELD,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_all_opt_levels() {
    for level in serval_ir::OptLevel::ALL {
        let report = prove_op(sys::GET_QUOTA, level, serval_core::OptCfg::default(), cfg());
        assert!(report.all_proved(), "{level:?}\n{}", report.render());
    }
}

#[test]
fn noninterference_holds() {
    let report = prove_noninterference(cfg());
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn legacy_spawn_covert_channel_caught() {
    let report = prove_spawn_child_consistency(true, cfg());
    assert!(
        !report.all_proved(),
        "the consecutive-PID covert channel must be detected"
    );
}

#[test]
fn ir_step_matches_spec() {
    // The paper's first verification step (§6.4): check the IR against the
    // spec before touching the binary.
    reset_ctx();
    let mut ctx = SymCtx::new();
    let module = module();
    let mut mem = fresh_mem();
    let s0 = abstraction(&mem);
    ctx.assume(s0.invariant());
    let interp = serval_ir::IrInterp::new(&module);
    let child = BV::fresh(64, "child");
    let quota = BV::fresh(64, "quota");
    let ret = interp.call(&mut ctx, &mut mem, "sys_spawn", &[child, quota]);
    let mut s = s0.clone();
    let spec_ret = spec_spawn(&mut s, child, quota);
    let s_impl = abstraction(&mem);
    let assumptions: Vec<_> = ctx.assumptions().to_vec();
    assert!(
        serval_smt::solver::verify_with(cfg(), &assumptions, s_impl.eq_(&s) & ret.eq_(spec_ret))
            .is_proved(),
        "IR-level spawn must refine the spec"
    );
}

#[test]
fn boot_establishes_initial_state() {
    let report = prove_boot(serval_ir::OptLevel::O1, cfg());
    assert!(report.all_proved(), "\n{}", report.render());
}
