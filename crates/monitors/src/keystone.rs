//! The Keystone case study (paper §7): partial specifications for rapid
//! interface analysis and undefined-behaviour bug finding.
//!
//! Keystone is an open-source security monitor that isolates each enclave
//! with a dedicated PMP region (no paging, unlike Komodo). The paper wrote
//! a functional specification from its design, proved safety properties
//! over the specification, compared against the implementation, and ran
//! the LLVM verifier over the code, producing four findings:
//!
//! 1. Keystone allowed an enclave to create enclaves within itself,
//!    violating the safety property that an enclave's state is not
//!    influenced by other enclaves — reproduced by
//!    [`prove_no_nested_creation`] failing against the
//!    [`KeystoneVariant::AsImplemented`] model and passing against the
//!    specification's behaviour.
//! 2. Keystone required the OS to provide a page table and checked its
//!    well-formedness, although PMP alone guarantees isolation —
//!    reproduced by [`prove_isolation`] holding *without* any page-table
//!    precondition.
//! 3. An oversized-shift UB bug on a monitor-call path — found by the IR
//!    verifier's UBSan-style checks in [`audit_ub`].
//! 4. A buffer overflow on a monitor-call path — found by the memory
//!    model's bounds obligations in [`audit_ub`].

use serval_core::report::{discharge, ProofReport};
use serval_core::{BugOn, Layout, Mem, MemCfg};
use serval_ir::ir::{BinOp, FuncBuilder, Module, Pred, Term, Val};
use serval_ir::IrInterp;
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, SBool, BV};
use serval_sym::{Merge, SymCtx};

/// Number of enclave slots.
pub const NENC: u64 = 4;
/// Sentinel for "no running enclave".
pub const NONE: u64 = NENC;
/// Base of the monitor's config array.
pub const CONFIG: u64 = 0x8040_0000;
/// Number of config slots.
pub const NCONFIG: u64 = 8;
/// Width of region bounds (page numbers); keeping this narrow keeps the
/// pairwise-disjointness queries small for the bit-blasted solver without
/// changing the isolation argument.
pub const W: u32 = 16;

/// Which behaviour to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeystoneVariant {
    /// Keystone as found: `create_enclave` is reachable from enclave
    /// context, and the monitor checks the OS-provided page table.
    AsImplemented,
    /// With the paper's two suggestions applied (both adopted upstream):
    /// nested creation rejected; page-table check dropped.
    Suggested,
}

/// Abstract Keystone state: enclave slots with PMP regions, plus the
/// currently running enclave.
#[derive(Clone, Debug)]
pub struct SpecState {
    /// Per-slot: 0 = free, 1 = active.
    pub state: Vec<BV>,
    /// Per-slot dedicated PMP region `[lo, hi)`.
    pub lo: Vec<BV>,
    /// Region upper bounds.
    pub hi: Vec<BV>,
    /// Currently running enclave or [`NONE`].
    pub cur: BV,
}

impl Merge for SpecState {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        SpecState {
            state: Vec::merge(c, &t.state, &e.state),
            lo: Vec::merge(c, &t.lo, &e.lo),
            hi: Vec::merge(c, &t.hi, &e.hi),
            cur: BV::merge(c, &t.cur, &e.cur),
        }
    }
}

impl SpecState {
    /// A fully symbolic state.
    pub fn fresh(tag: &str) -> SpecState {
        SpecState {
            state: (0..NENC)
                .map(|i| BV::fresh(64, &format!("{tag}.st{i}")))
                .collect(),
            lo: (0..NENC)
                .map(|i| BV::fresh(W, &format!("{tag}.lo{i}")))
                .collect(),
            hi: (0..NENC)
                .map(|i| BV::fresh(W, &format!("{tag}.hi{i}")))
                .collect(),
            cur: BV::fresh(64, &format!("{tag}.cur")),
        }
    }
}

/// `create_enclave(idx, lo, hi)` under the given variant. Returns the
/// result (0 ok / -1 error).
pub fn spec_create(
    variant: KeystoneVariant,
    s: &mut SpecState,
    idx: BV,
    lo: BV,
    hi: BV,
) -> BV {
    let mut valid = idx.ult(BV::lit(64, NENC as u128)) & lo.ult(hi);
    // Slot must be free and the region disjoint from every active one.
    for i in 0..NENC as usize {
        let iv = BV::lit(64, i as u128);
        let active = s.state[i].eq_(BV::lit(64, 1));
        let disjoint = hi.ule(s.lo[i]) | s.hi[i].ule(lo);
        valid = valid & idx.eq_(iv).implies(!active);
        valid = valid & (!idx.eq_(iv)).implies(active.implies(disjoint));
    }
    if variant == KeystoneVariant::Suggested {
        // The paper's first suggestion: creation is an OS operation only.
        valid = valid & s.cur.eq_(BV::lit(64, NONE as u128));
    }
    // (The second suggestion is the *absence* of any page-table
    // precondition here: PMP disjointness alone carries the proof.)
    for i in 0..NENC as usize {
        let here = valid & idx.eq_(BV::lit(64, i as u128));
        s.state[i] = here.select(BV::lit(64, 1), s.state[i]);
        s.lo[i] = here.select(lo, s.lo[i]);
        s.hi[i] = here.select(hi, s.hi[i]);
    }
    valid.select(BV::lit(64, 0), BV::lit(64, u64::MAX as u128))
}

/// Safety property (paper §7): an enclave's state is never influenced by
/// the creation of another enclave. Fails for [`KeystoneVariant::
/// AsImplemented`]: a *running enclave* can invoke creation, so enclave
/// behaviour (its slot bookkeeping and the set of co-resident enclaves it
/// can observe through timing of its own calls) is influenced from enclave
/// context — the paper's suggestion makes creation an OS-only operation.
pub fn prove_no_nested_creation(variant: KeystoneVariant, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut s = SpecState::fresh("s");
    let (idx, lo, hi) = (
        BV::fresh(64, "idx"),
        BV::fresh(W, "lo"),
        BV::fresh(W, "hi"),
    );
    // An enclave is running.
    ctx.assume(s.cur.ult(BV::lit(64, NENC as u128)));
    let r = spec_create(variant, &mut s, idx, lo, hi);
    // The call must fail from enclave context.
    let goal = r.eq_(BV::lit(64, u64::MAX as u128));
    let mut report = ProofReport::default();
    report.theorems.push(discharge(
        &ctx,
        cfg,
        format!("keystone[{variant:?}]: no enclave-in-enclave creation"),
        &[],
        goal,
    ));
    report
}

/// Safety property: active enclaves' PMP regions are pairwise disjoint,
/// preserved by creation — with *no* page-table hypothesis, demonstrating
/// the paper's second suggestion (drop the page-table check; PMP
/// suffices).
pub fn prove_isolation(variant: KeystoneVariant, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut s = SpecState::fresh("s");
    // Invariant: active regions are pairwise disjoint and well-formed.
    let mut inv = SBool::lit(true);
    for i in 0..NENC as usize {
        let ai = s.state[i].eq_(BV::lit(64, 1));
        inv = inv & ai.implies(s.lo[i].ult(s.hi[i]));
        for j in (i + 1)..NENC as usize {
            let aj = s.state[j].eq_(BV::lit(64, 1));
            let disjoint = s.hi[i].ule(s.lo[j]) | s.hi[j].ule(s.lo[i]);
            inv = inv & (ai & aj).implies(disjoint);
        }
    }
    ctx.assume(inv);
    let (idx, lo, hi) = (
        BV::fresh(64, "idx"),
        BV::fresh(W, "lo"),
        BV::fresh(W, "hi"),
    );
    let _ = spec_create(variant, &mut s, idx, lo, hi);
    // Invariant preserved.
    let mut inv2 = SBool::lit(true);
    for i in 0..NENC as usize {
        let ai = s.state[i].eq_(BV::lit(64, 1));
        inv2 = inv2 & ai.implies(s.lo[i].ult(s.hi[i]));
        for j in (i + 1)..NENC as usize {
            let aj = s.state[j].eq_(BV::lit(64, 1));
            let disjoint = s.hi[i].ule(s.lo[j]) | s.hi[j].ule(s.lo[i]);
            inv2 = inv2 & (ai & aj).implies(disjoint);
        }
    }
    let mut report = ProofReport::default();
    report.theorems.push(discharge(
        &ctx,
        cfg,
        format!("keystone[{variant:?}]: PMP isolation without page-table checks"),
        &[],
        inv2,
    ));
    report
}

// ---------------------------------------------------------------------
// Undefined-behaviour bugs (found by the IR verifier, paper §7)
// ---------------------------------------------------------------------

/// The two monitor-call code paths with the §7 UB bug classes. With
/// `buggy`, `region_size` shifts by an unchecked user-controlled order
/// (oversized shift) and `set_config` indexes the config array without a
/// bound (buffer overflow); without, both are guarded.
pub fn module(buggy: bool) -> Module {
    // region_size(order) = 1 << order.
    let region_size = {
        let mut b = FuncBuilder::new("region_size", 1);
        b.block("entry");
        if buggy {
            let r = b.bin(BinOp::Shl, Val::Const(1), Val::Param(0));
            b.term(Term::Ret(r));
        } else {
            let ok = b.icmp(Pred::Ult, Val::Param(0), Val::Const(56));
            b.term(Term::CondBr(ok, "doit", "fail"));
            b.block("doit");
            let r = b.bin(BinOp::Shl, Val::Const(1), Val::Param(0));
            b.term(Term::Ret(r));
            b.block("fail");
            b.term(Term::Ret(Val::Const(0)));
        }
        b.build()
    };
    // set_config(idx, val): config[idx] = val.
    let set_config = {
        let mut b = FuncBuilder::new("set_config", 2);
        b.block("entry");
        if buggy {
            let off = b.bin(BinOp::Shl, Val::Param(0), Val::Const(3));
            let addr = b.bin(BinOp::Add, Val::Global("config"), off);
            b.store(addr, Val::Param(1), 8);
            b.term(Term::Ret(Val::Const(0)));
        } else {
            let ok = b.icmp(Pred::Ult, Val::Param(0), Val::Const(NCONFIG as i64));
            b.term(Term::CondBr(ok, "doit", "fail"));
            b.block("doit");
            let off = b.bin(BinOp::Shl, Val::Param(0), Val::Const(3));
            let addr = b.bin(BinOp::Add, Val::Global("config"), off);
            b.store(addr, Val::Param(1), 8);
            b.term(Term::Ret(Val::Const(0)));
            b.block("fail");
            b.term(Term::Ret(Val::Const(-1)));
        }
        b.build()
    };
    Module {
        funcs: vec![region_size, set_config],
        globals: vec![("config", CONFIG)],
    }
}

/// Runs the IR verifier's UB checks over both monitor-call paths with
/// symbolic arguments, as the paper did with the LLVM verifier. With the
/// bugs present the report contains failures (the two §7 UB bugs); with
/// the fixes it is clean.
pub fn audit_ub(buggy: bool, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let module = module(buggy);
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "config",
        CONFIG,
        Layout::Array(NCONFIG, Box::new(Layout::Cell(8))).instantiate_fresh("config"),
    );
    let interp = IrInterp::new(&module);
    let order = BV::fresh(64, "order");
    let _ = interp.call(&mut ctx, &mut mem, "region_size", &[order]);
    let idx = BV::fresh(64, "idx");
    let val = BV::fresh(64, "val");
    let _ = interp.call(&mut ctx, &mut mem, "set_config", &[idx, val]);
    // Sanity-check obligations also flow through bug_on.
    ctx.bug_on(SBool::lit(false), "audit harness self-check");
    let mut report = ProofReport::default();
    for ob in ctx.take_obligations() {
        report.theorems.push(discharge(
            &ctx,
            cfg,
            format!("keystone ub: {}", ob.label),
            &[],
            ob.condition,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn nested_creation_caught_then_fixed() {
        let report = prove_no_nested_creation(KeystoneVariant::AsImplemented, cfg());
        assert!(!report.all_proved(), "finding 1 must be caught");
        let report = prove_no_nested_creation(KeystoneVariant::Suggested, cfg());
        assert!(report.all_proved(), "\n{}", report.render());
    }

    #[test]
    fn isolation_holds_without_page_table_checks() {
        // Finding 2: both variants prove isolation with no page-table
        // hypothesis anywhere — the check is unnecessary.
        for v in [KeystoneVariant::AsImplemented, KeystoneVariant::Suggested] {
            let report = prove_isolation(v, cfg());
            assert!(report.all_proved(), "{v:?}\n{}", report.render());
        }
    }

    #[test]
    fn ub_bugs_found_and_fixed() {
        let report = audit_ub(true, cfg());
        let failures = report
            .theorems
            .iter()
            .filter(|t| !t.verdict.is_proved())
            .count();
        assert!(failures >= 2, "both §7 UB bugs must be found:\n{}", report.render());
        let report = audit_ub(false, cfg());
        assert!(report.all_proved(), "\n{}", report.render());
    }
}
