//! Komodo^s tests: concrete enclave lifecycle, binary refinement, and
//! noninterference.

use super::proofs::*;
use super::spec::*;
use super::*;
use serval_core::PathElem;
use serval_riscv::Machine;
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use serval_sym::SymCtx;

fn cfg() -> SolverConfig {
    SolverConfig::default()
}

fn concrete_machine() -> Machine {
    let mut mem = fresh_mem();
    for i in 0..NPAGES {
        for f in ["type", "owner", "state", "refcount", "extra", "pad0", "pad1", "pad2"] {
            mem.write_path(
                "pagedb",
                &[PathElem::Index(i), PathElem::Field(f)],
                BV::lit(64, 0),
            );
        }
    }
    mem.write_path("state", &[PathElem::Field("cur_thread")], BV::lit(64, NONE as u128));
    mem.write_path("state", &[PathElem::Field("os_resume")], BV::lit(64, 0));
    mem.write_path("state", &[PathElem::Field("pending_mepc")], BV::lit(64, 0));
    let mut m = Machine::reset_at(CODE_BASE, mem);
    m.csrs.mepc = BV::lit(64, 0x1_0000);
    m
}

fn call(m: &mut Machine, op: u64, args: [u64; 3]) -> u64 {
    let mut ctx = SymCtx::new();
    let interp = build(serval_ir::OptLevel::O1, serval_core::OptCfg::default());
    m.pc = BV::lit(64, CODE_BASE as u128);
    m.set_reg(serval_riscv::reg::A7, BV::lit(64, op as u128));
    for (i, &a) in args.iter().enumerate() {
        m.set_reg(serval_riscv::reg::A0 + i as u8, BV::lit(64, a as u128));
    }
    let o = interp.run(&mut ctx, m);
    assert!(o.ok(), "op {op}: {o:?}");
    m.reg(serval_riscv::reg::A0).as_const().unwrap() as u64
}

#[test]
fn enclave_lifecycle() {
    reset_ctx();
    let mut m = concrete_machine();
    let err = u64::MAX;
    // Build an enclave in pages 0 (addrspace), 1 (l1pt), 2 (thread),
    // 3 (l2pt), 4 (l3pt), 5 (data).
    assert_eq!(call(&mut m, sys::INIT_ADDRSPACE, [0, 1, 0]), 0);
    assert_eq!(call(&mut m, sys::INIT_THREAD, [0, 2, 0x9000_0000]), 0);
    assert_eq!(call(&mut m, sys::INIT_L2PT, [0, 3, 0]), 0);
    assert_eq!(call(&mut m, sys::INIT_L3PT, [0, 4, 0]), 0);
    assert_eq!(call(&mut m, sys::MAP_SECURE, [0, 5, 4]), 0);
    // MapSecure through a non-L3PT page fails.
    assert_eq!(call(&mut m, sys::MAP_SECURE, [0, 6, 3]), err);
    // MapInsecure within/outside the insecure window.
    assert_eq!(call(&mut m, sys::MAP_INSECURE, [0, 4, 10]), 0);
    assert_eq!(call(&mut m, sys::MAP_INSECURE, [0, 4, INSEC_PAGES]), err);
    // Cannot enter before finalising.
    assert_eq!(call(&mut m, sys::ENTER, [2, 0, 0]), err);
    assert_eq!(call(&mut m, sys::FINALISE, [0, 0, 0]), 0);
    // Mapping after finalise fails (no longer INIT).
    assert_eq!(call(&mut m, sys::MAP_SECURE, [0, 6, 4]), err);
    // Enter the enclave thread. (Each completed call above advanced mepc
    // by 4; pin it so the OS resume point below is predictable.)
    m.csrs.mepc = BV::lit(64, 0x2_0000);
    assert_eq!(call(&mut m, sys::ENTER, [2, 0, 0]), 0);
    assert_eq!(m.pc.as_const(), Some(0x9000_0000), "control enters the enclave");
    assert_eq!(
        m.csrs.pmpcfg0.as_const(),
        Some((PMP_DENY | (PMP_ALLOW << 8)) as u128),
        "secure window opened"
    );
    // Exit with a value; control returns to the OS resume point.
    m.csrs.mepc = BV::lit(64, 0x9000_0040); // enclave's own pc
    assert_eq!(call(&mut m, sys::EXIT, [42, 0, 0]), 42);
    assert_eq!(m.pc.as_const(), Some(0x2_0004), "OS resumes after its ecall");
    assert_eq!(
        m.csrs.pmpcfg0.as_const(),
        Some((PMP_DENY | (PMP_DENY << 8)) as u128),
        "secure window closed"
    );
    // Teardown: stop, then remove pages (addrspace last).
    assert_eq!(call(&mut m, sys::STOP, [0, 0, 0]), 0);
    assert_eq!(call(&mut m, sys::REMOVE, [0, 0, 0]), err, "addrspace not last");
    for p in [1, 2, 3, 4, 5] {
        assert_eq!(call(&mut m, sys::REMOVE, [p, 0, 0]), 0, "remove page {p}");
    }
    assert_eq!(call(&mut m, sys::REMOVE, [0, 0, 0]), 0, "addrspace last");
    let t0 = m
        .mem
        .read_path("pagedb", &[PathElem::Index(0), PathElem::Field("type")]);
    assert_eq!(t0.as_const(), Some(ty::FREE as u128));
}

#[test]
fn refinement_init_addrspace() {
    let report = prove_op(
        sys::INIT_ADDRSPACE,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_map_secure() {
    let report = prove_op(
        sys::MAP_SECURE,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_enter_exit() {
    for op in [sys::ENTER, sys::EXIT] {
        let report = prove_op(op, serval_ir::OptLevel::O1, serval_core::OptCfg::default(), cfg());
        assert!(report.all_proved(), "\n{}", report.render());
    }
}

#[test]
fn refinement_remove() {
    let report = prove_op(
        sys::REMOVE,
        serval_ir::OptLevel::O1,
        serval_core::OptCfg::default(),
        cfg(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn refinement_remaining_ops() {
    for op in [
        sys::INIT_THREAD,
        sys::INIT_L2PT,
        sys::INIT_L3PT,
        sys::MAP_INSECURE,
        sys::FINALISE,
        sys::RESUME,
        sys::STOP,
    ] {
        let report = prove_op(op, serval_ir::OptLevel::O1, serval_core::OptCfg::default(), cfg());
        assert!(report.all_proved(), "op {op}\n{}", report.render());
    }
}

#[test]
fn noninterference_holds() {
    let report = prove_noninterference(cfg());
    assert!(report.all_proved(), "\n{}", report.render());
}

#[test]
fn spec_catches_cross_enclave_write() {
    // Sanity check on obs_eq: a buggy "spec" in which MapSecure steals a
    // page already owned by another enclave must violate local respect.
    reset_ctx();
    let mut ctx = SymCtx::new();
    let a = BV::fresh(64, "a");
    let mut s = SpecState::fresh("s");
    let before = s.clone();
    ctx.assume(a.ult(BV::lit(64, NPAGES as u128)));
    ctx.assume(s.wf());
    let target = BV::fresh(64, "target");
    let page = BV::fresh(64, "page");
    ctx.assume(target.ne_(a));
    ctx.assume(page.ult(BV::lit(64, NPAGES as u128)));
    // Buggy transition: takes the page without checking it is free.
    s.update(serval_smt::SBool::lit(true), page, |p| {
        p.ty = BV::lit(64, ty::DATA as u128);
        p.owner = target;
    });
    let assumptions: Vec<_> = ctx.assumptions().to_vec();
    let holds = serval_smt::solver::verify_with(
        cfg(),
        &assumptions,
        obs_eq(a, &before, &s),
    )
    .is_proved();
    assert!(!holds, "stealing an owned page must be visible to its owner");
}

#[test]
fn boot_establishes_initial_state() {
    let report = prove_boot(serval_ir::OptLevel::O1, cfg());
    assert!(report.all_proved(), "\n{}", report.render());
}
