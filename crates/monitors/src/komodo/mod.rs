//! Komodo^s: the RISC-V port of the Komodo enclave monitor (paper §6.3).
//!
//! The monitor manages [`NPAGES`] secure pages through a page database and
//! provides SGX-like enclaves ("addrspaces"). The §6.3 retrofit changes
//! are reflected: three-level paging (the added `InitL3PTable` call),
//! page-number+index arguments for the map calls, and indices instead of
//! pointers in structure fields (simplifying the representation
//! invariant). PMP + TVM provide isolation (paper §6.1): secure pages are
//! inaccessible to the OS; `Enter`/`Exit` flip the PMP window.
//!
//! Monitor calls (`a7` selects; arguments `a0..a2`; result in `a0`,
//! `-1` = error):
//!
//! | nr | call |
//! |----|------|
//! | 1  | `InitAddrspace(asp_page, l1pt_page)` |
//! | 2  | `InitThread(asp_page, th_page, entry)` |
//! | 3  | `InitL2PTable(asp_page, page)` |
//! | 4  | `InitL3PTable(asp_page, page)` (the retrofit addition) |
//! | 5  | `MapSecure(asp_page, page, l3pt_page)` |
//! | 6  | `MapInsecure(asp_page, l3pt_page, phys_page)` |
//! | 7  | `Finalise(asp_page)` |
//! | 8  | `Enter(th_page)` |
//! | 9  | `Resume(th_page)` |
//! | 10 | `Exit(value)` (from the enclave; the value is declassified) |
//! | 11 | `Stop(asp_page)` |
//! | 12 | `Remove(page)` |

pub mod proofs;
pub mod spec;

use serval_core::{Layout, Mem, MemCfg, OptCfg};
use serval_ir::ir::{BinOp, FuncBuilder, Module, Pred, Term, Val};
use serval_ir::{compile, OptLevel};
use serval_riscv::insn::{BrOp, CsrOp, CsrSrc, Insn};
use serval_riscv::machine::csr;
use serval_riscv::{reg, Asm, Interp};

/// Number of secure pages managed by the page database.
pub const NPAGES: u64 = 16;
/// Sentinel for "no current thread".
pub const NONE: u64 = NPAGES;
/// Code base address.
pub const CODE_BASE: u64 = 0x8000_0000;
/// Monitor stack top.
pub const STACK_TOP: u64 = 0x8010_0000;
/// Page-database base.
pub const PAGEDB: u64 = 0x8030_0000;
/// Monitor state cells (cur_thread, os_resume, pending_mepc).
pub const STATE: u64 = 0x8030_1000;
/// Secure-memory window covered by the page database.
pub const SECURE_BASE: u64 = 0x8800_0000;
/// Number of insecure (OS-shared) physical pages for `MapInsecure`.
pub const INSEC_PAGES: u64 = 1024;
/// Where boot hands control to the (untrusted) OS.
pub const OS_ENTRY: u64 = 0x8020_0000;
/// Page size.
pub const PAGE: u64 = 4096;
/// pmpcfg0 denying the OS access to secure memory (entry 0 covers the
/// secure window with no permissions; entry 1 grants RWX below/above via
/// TOR chaining is left to the OS's own entries).
pub const PMP_DENY: u64 = 0x08;
/// pmpcfg0 while an enclave runs: secure window RWX.
pub const PMP_ALLOW: u64 = 0x0f;

/// Page types.
pub mod ty {
    pub const FREE: u64 = 0;
    pub const ADDRSPACE: u64 = 1;
    pub const THREAD: u64 = 2;
    pub const L1PT: u64 = 3;
    pub const L2PT: u64 = 4;
    pub const L3PT: u64 = 5;
    pub const DATA: u64 = 6;
}

/// Addrspace states.
pub mod st {
    pub const INIT: u64 = 1;
    pub const FINAL: u64 = 2;
    pub const STOPPED: u64 = 3;
}

/// Monitor-call numbers.
pub mod sys {
    pub const INIT_ADDRSPACE: u64 = 1;
    pub const INIT_THREAD: u64 = 2;
    pub const INIT_L2PT: u64 = 3;
    pub const INIT_L3PT: u64 = 4;
    pub const MAP_SECURE: u64 = 5;
    pub const MAP_INSECURE: u64 = 6;
    pub const FINALISE: u64 = 7;
    pub const ENTER: u64 = 8;
    pub const RESUME: u64 = 9;
    pub const EXIT: u64 = 10;
    pub const STOP: u64 = 11;
    pub const REMOVE: u64 = 12;
}

/// Field offsets in a page-database entry (64 bytes).
pub mod field {
    pub const TYPE: i64 = 0;
    pub const OWNER: i64 = 8;
    pub const STATE: i64 = 16;
    pub const REFCOUNT: i64 = 24;
    pub const EXTRA: i64 = 32;
}

/// Page-database entry layout.
pub fn entry_layout() -> Layout {
    Layout::Struct(vec![
        ("type".into(), Layout::Cell(8)),
        ("owner".into(), Layout::Cell(8)),
        ("state".into(), Layout::Cell(8)),
        ("refcount".into(), Layout::Cell(8)),
        ("extra".into(), Layout::Cell(8)),
        ("pad0".into(), Layout::Cell(8)),
        ("pad1".into(), Layout::Cell(8)),
        ("pad2".into(), Layout::Cell(8)),
    ])
}

/// Builds the monitor's typed memory with fully symbolic contents.
pub fn fresh_mem() -> Mem {
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "pagedb",
        PAGEDB,
        Layout::Array(NPAGES, Box::new(entry_layout())).instantiate_fresh("pagedb"),
    );
    mem.add_region(
        "state",
        STATE,
        Layout::Struct(vec![
            ("cur_thread".into(), Layout::Cell(8)),
            ("os_resume".into(), Layout::Cell(8)),
            ("pending_mepc".into(), Layout::Cell(8)),
        ])
        .instantiate_fresh("state"),
    );
    mem.add_region(
        "stack",
        STACK_TOP - PAGE,
        Layout::Array(512, Box::new(Layout::Cell(8))).instantiate_fresh("stack"),
    );
    mem
}

/// Shared IR prologue: `&pagedb[page]` plus common checks.
struct Pg;
impl Pg {
    /// Emits `&pagedb[page]` (no bounds check; callers guard).
    fn entry(b: &mut FuncBuilder, page: Val) -> Val {
        let off = b.bin(BinOp::Shl, page, Val::Const(6));
        b.bin(BinOp::Add, Val::Global("pagedb"), off)
    }

    fn fld(b: &mut FuncBuilder, entry: Val, off: i64) -> Val {
        b.bin(BinOp::Add, entry, Val::Const(off))
    }
}

/// The monitor's trap handlers in IR.
pub fn module() -> Module {
    let mut funcs = Vec::new();

    // sys_init_addrspace(asp, l1pt).
    funcs.push({
        let mut b = FuncBuilder::new("sys_init_addrspace", 2);
        let asp = Val::Param(0);
        let l1 = Val::Param(1);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, asp, Val::Const(NPAGES as i64));
        let r2 = b.icmp(Pred::Ult, l1, Val::Const(NPAGES as i64));
        let ne = b.icmp(Pred::Ne, asp, l1);
        let v1 = b.bin(BinOp::And, r1, r2);
        let v1 = b.bin(BinOp::And, v1, ne);
        b.term(Term::CondBr(v1, "check", "fail"));
        b.block("check");
        let ea = Pg::entry(&mut b, asp);
        let el = Pg::entry(&mut b, l1);
        let ta = b.load(ea, 8);
        let tl = b.load(el, 8);
        let fa = b.icmp(Pred::Eq, ta, Val::Const(ty::FREE as i64));
        let fl = b.icmp(Pred::Eq, tl, Val::Const(ty::FREE as i64));
        let v2 = b.bin(BinOp::And, fa, fl);
        b.term(Term::CondBr(v2, "doit", "fail"));
        b.block("doit");
        b.store(ea, Val::Const(ty::ADDRSPACE as i64), 8);
        let oa = Pg::fld(&mut b, ea, field::OWNER);
        b.store(oa, asp, 8);
        let sa = Pg::fld(&mut b, ea, field::STATE);
        b.store(sa, Val::Const(st::INIT as i64), 8);
        let ra = Pg::fld(&mut b, ea, field::REFCOUNT);
        b.store(ra, Val::Const(2), 8); // the addrspace and l1pt pages
        let xa = Pg::fld(&mut b, ea, field::EXTRA);
        b.store(xa, Val::Const(0), 8);
        b.store(el, Val::Const(ty::L1PT as i64), 8);
        let ol = Pg::fld(&mut b, el, field::OWNER);
        b.store(ol, asp, 8);
        let sl = Pg::fld(&mut b, el, field::STATE);
        b.store(sl, Val::Const(0), 8);
        let rl = Pg::fld(&mut b, el, field::REFCOUNT);
        b.store(rl, Val::Const(0), 8);
        let xl = Pg::fld(&mut b, el, field::EXTRA);
        b.store(xl, Val::Const(0), 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    // A family of "allocate a page of type T to an INIT addrspace":
    // InitThread (stores entry pc), InitL2PTable, InitL3PTable, MapSecure
    // (additionally requires a valid l3pt owned by the addrspace).
    let alloc = |name: &'static str, page_ty: u64, has_extra: bool, needs_l3: bool| {
        let params = if has_extra || needs_l3 { 3 } else { 2 };
        let mut b = FuncBuilder::new(name, params);
        let asp = Val::Param(0);
        let page = Val::Param(1);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, asp, Val::Const(NPAGES as i64));
        let r2 = b.icmp(Pred::Ult, page, Val::Const(NPAGES as i64));
        let mut v1 = b.bin(BinOp::And, r1, r2);
        if needs_l3 {
            let r3 = b.icmp(Pred::Ult, Val::Param(2), Val::Const(NPAGES as i64));
            v1 = b.bin(BinOp::And, v1, r3);
        }
        b.term(Term::CondBr(v1, "check", "fail"));
        b.block("check");
        let ea = Pg::entry(&mut b, asp);
        let ta = b.load(ea, 8);
        let is_asp = b.icmp(Pred::Eq, ta, Val::Const(ty::ADDRSPACE as i64));
        let sa = Pg::fld(&mut b, ea, field::STATE);
        let state = b.load(sa, 8);
        let is_init = b.icmp(Pred::Eq, state, Val::Const(st::INIT as i64));
        let ep = Pg::entry(&mut b, page);
        let tp = b.load(ep, 8);
        let is_free = b.icmp(Pred::Eq, tp, Val::Const(ty::FREE as i64));
        let mut ok = b.bin(BinOp::And, is_asp, is_init);
        ok = b.bin(BinOp::And, ok, is_free);
        if needs_l3 {
            let el3 = Pg::entry(&mut b, Val::Param(2));
            let tl3 = b.load(el3, 8);
            let is_l3 = b.icmp(Pred::Eq, tl3, Val::Const(ty::L3PT as i64));
            let ol3 = Pg::fld(&mut b, el3, field::OWNER);
            let owner = b.load(ol3, 8);
            let owned = b.icmp(Pred::Eq, owner, asp);
            let both = b.bin(BinOp::And, is_l3, owned);
            ok = b.bin(BinOp::And, ok, both);
        }
        b.term(Term::CondBr(ok, "doit", "fail"));
        b.block("doit");
        let ep = Pg::entry(&mut b, page);
        b.store(ep, Val::Const(page_ty as i64), 8);
        let op = Pg::fld(&mut b, ep, field::OWNER);
        b.store(op, asp, 8);
        // Scrub stale metadata: the new owner must not inherit it.
        let sp_ = Pg::fld(&mut b, ep, field::STATE);
        b.store(sp_, Val::Const(0), 8);
        let rp_ = Pg::fld(&mut b, ep, field::REFCOUNT);
        b.store(rp_, Val::Const(0), 8);
        let xp = Pg::fld(&mut b, ep, field::EXTRA);
        if has_extra {
            b.store(xp, Val::Param(2), 8);
        } else {
            b.store(xp, Val::Const(0), 8);
        }
        let ea = Pg::entry(&mut b, asp);
        let rc_addr = Pg::fld(&mut b, ea, field::REFCOUNT);
        let rc = b.load(rc_addr, 8);
        let rc1 = b.bin(BinOp::Add, rc, Val::Const(1));
        b.store(rc_addr, rc1, 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    };
    funcs.push(alloc("sys_init_thread", ty::THREAD, true, false));
    funcs.push(alloc("sys_init_l2pt", ty::L2PT, false, false));
    funcs.push(alloc("sys_init_l3pt", ty::L3PT, false, false));
    funcs.push(alloc("sys_map_secure", ty::DATA, false, true));

    // sys_map_insecure(asp, l3pt, phys): checks only; the mapping itself
    // lives in the (untracked) page tables.
    funcs.push({
        let mut b = FuncBuilder::new("sys_map_insecure", 3);
        let asp = Val::Param(0);
        let l3 = Val::Param(1);
        let phys = Val::Param(2);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, asp, Val::Const(NPAGES as i64));
        let r2 = b.icmp(Pred::Ult, l3, Val::Const(NPAGES as i64));
        let r3 = b.icmp(Pred::Ult, phys, Val::Const(INSEC_PAGES as i64));
        let mut v = b.bin(BinOp::And, r1, r2);
        v = b.bin(BinOp::And, v, r3);
        b.term(Term::CondBr(v, "check", "fail"));
        b.block("check");
        let ea = Pg::entry(&mut b, asp);
        let ta = b.load(ea, 8);
        let is_asp = b.icmp(Pred::Eq, ta, Val::Const(ty::ADDRSPACE as i64));
        let sa = Pg::fld(&mut b, ea, field::STATE);
        let state = b.load(sa, 8);
        let is_init = b.icmp(Pred::Eq, state, Val::Const(st::INIT as i64));
        let el3 = Pg::entry(&mut b, l3);
        let tl3 = b.load(el3, 8);
        let is_l3 = b.icmp(Pred::Eq, tl3, Val::Const(ty::L3PT as i64));
        let ol3 = Pg::fld(&mut b, el3, field::OWNER);
        let owner = b.load(ol3, 8);
        let owned = b.icmp(Pred::Eq, owner, asp);
        let mut ok = b.bin(BinOp::And, is_asp, is_init);
        ok = b.bin(BinOp::And, ok, is_l3);
        ok = b.bin(BinOp::And, ok, owned);
        b.term(Term::CondBr(ok, "doit", "fail"));
        b.block("doit");
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    // sys_set_state(asp, new_state, required_state): shared by Finalise
    // (INIT→FINAL) and Stop (any addrspace → STOPPED, required = 0 = any).
    funcs.push({
        let mut b = FuncBuilder::new("sys_set_state", 3);
        let asp = Val::Param(0);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, asp, Val::Const(NPAGES as i64));
        b.term(Term::CondBr(r1, "check", "fail"));
        b.block("check");
        let ea = Pg::entry(&mut b, asp);
        let ta = b.load(ea, 8);
        let is_asp = b.icmp(Pred::Eq, ta, Val::Const(ty::ADDRSPACE as i64));
        let sa = Pg::fld(&mut b, ea, field::STATE);
        let state = b.load(sa, 8);
        let any = b.icmp(Pred::Eq, Val::Param(2), Val::Const(0));
        let match_ = b.icmp(Pred::Eq, state, Val::Param(2));
        let st_ok = b.bin(BinOp::Or, any, match_);
        let ok = b.bin(BinOp::And, is_asp, st_ok);
        b.term(Term::CondBr(ok, "doit", "fail"));
        b.block("doit");
        let sa = Pg::fld(&mut b, ea, field::STATE);
        b.store(sa, Val::Param(1), 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    // sys_enter(th): validates and stages the thread's entry pc.
    funcs.push({
        let mut b = FuncBuilder::new("sys_enter", 1);
        let th = Val::Param(0);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, th, Val::Const(NPAGES as i64));
        b.term(Term::CondBr(r1, "check", "fail"));
        b.block("check");
        let et = Pg::entry(&mut b, th);
        let tt = b.load(et, 8);
        let is_th = b.icmp(Pred::Eq, tt, Val::Const(ty::THREAD as i64));
        let ot = Pg::fld(&mut b, et, field::OWNER);
        let asp = b.load(ot, 8);
        let in_range = b.icmp(Pred::Ult, asp, Val::Const(NPAGES as i64));
        let pre = b.bin(BinOp::And, is_th, in_range);
        b.term(Term::CondBr(pre, "check2", "fail"));
        b.block("check2");
        let et = Pg::entry(&mut b, th);
        let ot = Pg::fld(&mut b, et, field::OWNER);
        let asp = b.load(ot, 8);
        let ea = Pg::entry(&mut b, asp);
        let sa = Pg::fld(&mut b, ea, field::STATE);
        let state = b.load(sa, 8);
        let is_final = b.icmp(Pred::Eq, state, Val::Const(st::FINAL as i64));
        let ct = b.load(Val::Global("cur_thread"), 8);
        let idle = b.icmp(Pred::Eq, ct, Val::Const(NONE as i64));
        let ok = b.bin(BinOp::And, is_final, idle);
        b.term(Term::CondBr(ok, "doit", "fail"));
        b.block("doit");
        b.store(Val::Global("cur_thread"), th, 8);
        let et = Pg::entry(&mut b, th);
        let xp = Pg::fld(&mut b, et, field::EXTRA);
        let entry_pc = b.load(xp, 8);
        b.store(Val::Global("pending_mepc"), entry_pc, 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    // sys_exit(): clears the current thread; the stub restores the OS
    // resume point and the deny-PMP window.
    funcs.push({
        let mut b = FuncBuilder::new("sys_exit", 0);
        b.block("entry");
        let ct = b.load(Val::Global("cur_thread"), 8);
        let busy = b.icmp(Pred::Ne, ct, Val::Const(NONE as i64));
        b.term(Term::CondBr(busy, "doit", "fail"));
        b.block("doit");
        b.store(Val::Global("cur_thread"), Val::Const(NONE as i64), 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    // sys_remove(page): frees a page of a stopped addrspace; the
    // addrspace page itself goes last (refcount 1).
    funcs.push({
        let mut b = FuncBuilder::new("sys_remove", 1);
        let page = Val::Param(0);
        b.block("entry");
        let r1 = b.icmp(Pred::Ult, page, Val::Const(NPAGES as i64));
        b.term(Term::CondBr(r1, "check", "fail"));
        b.block("check");
        let ep = Pg::entry(&mut b, page);
        let tp = b.load(ep, 8);
        let not_free = b.icmp(Pred::Ne, tp, Val::Const(ty::FREE as i64));
        let op = Pg::fld(&mut b, ep, field::OWNER);
        let owner = b.load(op, 8);
        let in_range = b.icmp(Pred::Ult, owner, Val::Const(NPAGES as i64));
        let pre = b.bin(BinOp::And, not_free, in_range);
        b.term(Term::CondBr(pre, "check2", "fail"));
        b.block("check2");
        let ep = Pg::entry(&mut b, page);
        let ct = b.load(Val::Global("cur_thread"), 8);
        let not_running = b.icmp(Pred::Ne, page, ct);
        let op = Pg::fld(&mut b, ep, field::OWNER);
        let owner = b.load(op, 8);
        let eo = Pg::entry(&mut b, owner);
        let oty = b.load(eo, 8);
        let owner_is_asp_ = b.icmp(Pred::Eq, oty, Val::Const(ty::ADDRSPACE as i64));
        let owner_is_asp = b.bin(BinOp::And, owner_is_asp_, not_running);
        let so = Pg::fld(&mut b, eo, field::STATE);
        let ostate = b.load(so, 8);
        let stopped_ = b.icmp(Pred::Eq, ostate, Val::Const(st::STOPPED as i64));
        let stopped = b.bin(BinOp::And, owner_is_asp, stopped_);
        let tp = b.load(ep, 8);
        let is_asp = b.icmp(Pred::Eq, tp, Val::Const(ty::ADDRSPACE as i64));
        let ro = Pg::fld(&mut b, eo, field::REFCOUNT);
        let rc = b.load(ro, 8);
        let last = b.icmp(Pred::Eq, rc, Val::Const(1));
        let asp_ok = b.select(is_asp, last, Val::Const(1));
        let ok = b.bin(BinOp::And, stopped, asp_ok);
        b.term(Term::CondBr(ok, "doit", "fail"));
        b.block("doit");
        let ep = Pg::entry(&mut b, page);
        let op = Pg::fld(&mut b, ep, field::OWNER);
        let owner = b.load(op, 8);
        let eo = Pg::entry(&mut b, owner);
        let ro = Pg::fld(&mut b, eo, field::REFCOUNT);
        let rc = b.load(ro, 8);
        let rc1 = b.bin(BinOp::Sub, rc, Val::Const(1));
        b.store(ro, rc1, 8);
        b.store(ep, Val::Const(ty::FREE as i64), 8);
        let sp_ = Pg::fld(&mut b, ep, field::OWNER);
        b.store(sp_, Val::Const(0), 8);
        let st_ = Pg::fld(&mut b, ep, field::STATE);
        b.store(st_, Val::Const(0), 8);
        let rf_ = Pg::fld(&mut b, ep, field::REFCOUNT);
        b.store(rf_, Val::Const(0), 8);
        let ex_ = Pg::fld(&mut b, ep, field::EXTRA);
        b.store(ex_, Val::Const(0), 8);
        b.term(Term::Ret(Val::Const(0)));
        b.block("fail");
        b.term(Term::Ret(Val::Const(-1)));
        b.build()
    });

    Module {
        funcs,
        globals: vec![
            ("pagedb", PAGEDB),
            ("cur_thread", STATE),
            ("os_resume", STATE + 8),
            ("pending_mepc", STATE + 16),
        ],
    }
}

/// Builds the monitor binary: trap stub + compiled handlers.
pub fn build(level: OptLevel, opt: OptCfg) -> Interp {
    build_with_boot(level, opt).0
}

/// Like [`build`], also returning the boot-entry address for reset-state
/// verification (paper §3.4).
pub fn build_with_boot(level: OptLevel, opt: OptCfg) -> (Interp, u64) {
    let mut asm = Asm::new();
    asm.define_symbol("stack_top", STACK_TOP);
    let csrr = |rd, c| Insn::Csr {
        op: CsrOp::Rs,
        rd,
        src: CsrSrc::Reg(reg::ZERO),
        csr: c,
    };
    let csrw = |rs, c| Insn::Csr {
        op: CsrOp::Rw,
        rd: reg::ZERO,
        src: CsrSrc::Reg(rs),
        csr: c,
    };

    asm.i(csrw(reg::SP, csr::MSCRATCH));
    asm.la(reg::SP, "stack_top");
    // Dispatch.
    let direct: [(u64, &str); 6] = [
        (sys::INIT_ADDRSPACE, "sys_init_addrspace"),
        (sys::INIT_THREAD, "sys_init_thread"),
        (sys::INIT_L2PT, "sys_init_l2pt"),
        (sys::INIT_L3PT, "sys_init_l3pt"),
        (sys::MAP_SECURE, "sys_map_secure"),
        (sys::MAP_INSECURE, "sys_map_insecure"),
    ];
    for (nr, _) in &direct {
        asm.li(reg::T0, *nr as i64);
        asm.branch(BrOp::Beq, reg::A7, reg::T0, &format!("h_{nr}"));
    }
    for (nr, label) in [
        (sys::FINALISE, "h_finalise"),
        (sys::ENTER, "h_enter"),
        (sys::RESUME, "h_enter"), // resume shares the enter path
        (sys::EXIT, "h_exit"),
        (sys::STOP, "h_stop"),
        (sys::REMOVE, "h_remove"),
    ] {
        asm.li(reg::T0, nr as i64);
        asm.branch(BrOp::Beq, reg::A7, reg::T0, label);
    }
    asm.li(reg::A0, -1);
    asm.j("ret_adv");

    for (nr, func) in &direct {
        asm.label(&format!("h_{nr}"));
        asm.call(func);
        asm.j("ret_adv");
    }
    asm.label("h_finalise");
    asm.mv(reg::A1, reg::ZERO);
    asm.addi(reg::A1, reg::ZERO, st::FINAL as i32);
    asm.addi(reg::A2, reg::ZERO, st::INIT as i32);
    asm.call("sys_set_state");
    asm.j("ret_adv");
    asm.label("h_stop");
    asm.addi(reg::A1, reg::ZERO, st::STOPPED as i32);
    asm.mv(reg::A2, reg::ZERO); // any prior state
    asm.call("sys_set_state");
    asm.j("ret_adv");
    asm.label("h_remove");
    asm.call("sys_remove");
    asm.j("ret_adv");

    // Enter/Resume: provisionally save the OS resume point, then flip the
    // PMP window and jump into the enclave on success.
    asm.label("h_enter");
    asm.i(csrr(reg::T3, csr::MEPC));
    asm.addi(reg::T3, reg::T3, 4);
    asm.la(reg::T0, "os_resume");
    asm.sd(reg::T3, 0, reg::T0);
    asm.call("sys_enter");
    asm.bnez(reg::A0, "ret_adv"); // validation failed: plain error return
    asm.la(reg::T0, "pending_mepc");
    asm.ld(reg::T3, 0, reg::T0);
    asm.i(csrw(reg::T3, csr::MEPC));
    asm.li(reg::T5, (SECURE_BASE >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0));
    asm.li(reg::T5, ((SECURE_BASE + NPAGES * PAGE) >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0 + 1));
    // Entry 0 TOR no-perm below secure, entry 1 TOR RWX over it.
    asm.li(reg::T5, (PMP_DENY | (PMP_ALLOW << 8)) as i64);
    asm.i(csrw(reg::T5, csr::PMPCFG0));
    asm.li(reg::A0, 0);
    asm.j("ret_common");

    // Exit: the value in a0 is declassified to the OS.
    asm.label("h_exit");
    asm.mv(reg::T6, reg::A0); // preserve the exit value across the call
    asm.call("sys_exit");
    asm.bnez(reg::A0, "ret_adv");
    asm.la(reg::T0, "os_resume");
    asm.ld(reg::T3, 0, reg::T0);
    asm.i(csrw(reg::T3, csr::MEPC));
    // Secure window: no access for the OS.
    asm.li(reg::T5, (SECURE_BASE >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0));
    asm.li(reg::T5, ((SECURE_BASE + NPAGES * PAGE) >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0 + 1));
    asm.li(reg::T5, (PMP_DENY | (PMP_DENY << 8)) as i64);
    asm.i(csrw(reg::T5, csr::PMPCFG0));
    asm.mv(reg::A0, reg::T6);
    asm.j("ret_common");

    asm.label("ret_adv");
    asm.i(csrr(reg::T0, csr::MEPC));
    asm.addi(reg::T0, reg::T0, 4);
    asm.i(csrw(reg::T0, csr::MEPC));
    asm.label("ret_common");
    for r in [
        reg::RA,
        reg::GP,
        reg::TP,
        reg::T0,
        reg::T1,
        reg::T2,
        reg::T3,
        reg::T4,
        reg::T5,
        reg::T6,
        reg::A1,
        reg::A2,
        reg::A3,
        reg::A4,
        reg::A5,
        reg::A6,
        reg::A7,
    ] {
        asm.mv(r, reg::ZERO);
    }
    asm.i(csrr(reg::SP, csr::MSCRATCH));
    asm.i(Insn::Mret);

    // ---- boot code (paper §3.4): zero the page database, mark no
    // running thread, set the trap vector, close the secure PMP window,
    // and drop to the OS. Verified by `proofs::prove_boot`.
    asm.label("boot");
    asm.la(reg::T0, "pagedb");
    for off in (0..(NPAGES * 64)).step_by(8) {
        asm.sd(reg::ZERO, off as i32, reg::T0);
    }
    asm.la(reg::T0, "cur_thread");
    asm.li(reg::T1, NONE as i64);
    asm.sd(reg::T1, 0, reg::T0);
    asm.la(reg::T0, "os_resume");
    asm.sd(reg::ZERO, 0, reg::T0);
    asm.la(reg::T0, "pending_mepc");
    asm.sd(reg::ZERO, 0, reg::T0);
    asm.li(reg::T1, CODE_BASE as i64);
    asm.i(csrw(reg::T1, csr::MTVEC));
    asm.li(reg::T5, (SECURE_BASE >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0));
    asm.li(reg::T5, ((SECURE_BASE + NPAGES * PAGE) >> 2) as i64);
    asm.i(csrw(reg::T5, csr::PMPADDR0 + 1));
    asm.li(reg::T5, (PMP_DENY | (PMP_DENY << 8)) as i64);
    asm.i(csrw(reg::T5, csr::PMPCFG0));
    asm.li(reg::T1, OS_ENTRY as i64);
    asm.i(csrw(reg::T1, csr::MEPC));
    asm.i(Insn::Mret);

    compile(&module(), level, &mut asm);
    let words = asm.assemble(CODE_BASE);
    // See the certikos build: merged-pc evaluation must stay finite.
    let fuel = if opt.split_pc { 8192 } else { 3 };
    let mut interp = Interp::from_words(CODE_BASE, &words, fuel)
        .expect("monitor binary must decode (encoder-validated)");
    interp.opt = opt;
    (interp, asm.address_of("boot", CODE_BASE))
}

#[cfg(test)]
mod tests;
