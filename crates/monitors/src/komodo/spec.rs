//! The Komodo^s functional specification and abstraction function.

use super::{st, ty, NONE, NPAGES};
use serval_core::{Mem, PathElem};
use serval_smt::{SBool, BV};
use serval_sym::{merge_many, Merge};

/// Abstract page-database entry.
#[derive(Clone, Debug)]
pub struct SpecPage {
    pub ty: BV,
    pub owner: BV,
    pub state: BV,
    pub refcount: BV,
    pub extra: BV,
}

impl Merge for SpecPage {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        SpecPage {
            ty: BV::merge(c, &t.ty, &e.ty),
            owner: BV::merge(c, &t.owner, &e.owner),
            state: BV::merge(c, &t.state, &e.state),
            refcount: BV::merge(c, &t.refcount, &e.refcount),
            extra: BV::merge(c, &t.extra, &e.extra),
        }
    }
}

/// Equality of page entries.
pub fn page_eq(a: &SpecPage, b: &SpecPage) -> SBool {
    a.ty.eq_(b.ty)
        & a.owner.eq_(b.owner)
        & a.state.eq_(b.state)
        & a.refcount.eq_(b.refcount)
        & a.extra.eq_(b.extra)
}

/// The abstract monitor state.
#[derive(Clone, Debug)]
pub struct SpecState {
    pub pages: Vec<SpecPage>,
    pub cur_thread: BV,
    pub os_resume: BV,
}

impl Merge for SpecState {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        SpecState {
            pages: Vec::merge(c, &t.pages, &e.pages),
            cur_thread: BV::merge(c, &t.cur_thread, &e.cur_thread),
            os_resume: BV::merge(c, &t.os_resume, &e.os_resume),
        }
    }
}

impl SpecState {
    /// A fully symbolic state.
    pub fn fresh(tag: &str) -> SpecState {
        let f = |n: String| BV::fresh(64, &n);
        SpecState {
            pages: (0..NPAGES)
                .map(|i| SpecPage {
                    ty: f(format!("{tag}.pg{i}.ty")),
                    owner: f(format!("{tag}.pg{i}.owner")),
                    state: f(format!("{tag}.pg{i}.state")),
                    refcount: f(format!("{tag}.pg{i}.rc")),
                    extra: f(format!("{tag}.pg{i}.extra")),
                })
                .collect(),
            cur_thread: f(format!("{tag}.cur_thread")),
            os_resume: f(format!("{tag}.os_resume")),
        }
    }

    /// Reads `pages[idx].field` at a symbolic index.
    pub fn read(&self, idx: BV, f: impl Fn(&SpecPage) -> BV) -> BV {
        let cases: Vec<(SBool, BV)> = self
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| (idx.eq_(BV::lit(64, i as u128)), f(p)))
            .collect();
        merge_many(&cases)
    }

    /// Updates `pages[idx]` at a symbolic index under `guard`.
    pub fn update(&mut self, guard: SBool, idx: BV, f: impl Fn(&mut SpecPage)) {
        for (i, p) in self.pages.iter_mut().enumerate() {
            let here = guard & idx.eq_(BV::lit(64, i as u128));
            let mut updated = p.clone();
            f(&mut updated);
            *p = SpecPage::merge(here, &updated, p);
        }
    }

    /// Structural equality (pages + cur_thread + os_resume).
    pub fn eq_(&self, other: &SpecState) -> SBool {
        let mut acc = self.cur_thread.eq_(other.cur_thread) & self.os_resume.eq_(other.os_resume);
        for (a, b) in self.pages.iter().zip(&other.pages) {
            acc = acc & page_eq(a, b);
        }
        acc
    }

    /// Well-formedness of ownership: every addrspace page owns itself.
    /// (Established at InitAddrspace and preserved by every call; assumed
    /// by the noninterference lemmas.)
    pub fn wf(&self) -> SBool {
        let mut acc = SBool::lit(true);
        for (i, p) in self.pages.iter().enumerate() {
            let is_asp = p.ty.eq_(BV::lit(64, ty::ADDRSPACE as u128));
            acc = acc & is_asp.implies(p.owner.eq_(BV::lit(64, i as u128)));
        }
        acc
    }

    /// State invariant: the current thread is NONE or a THREAD page.
    pub fn invariant(&self) -> SBool {
        let idle = self.cur_thread.eq_(BV::lit(64, NONE as u128));
        let valid = self.cur_thread.ult(BV::lit(64, NPAGES as u128))
            & self
                .read(self.cur_thread, |p| p.ty)
                .eq_(BV::lit(64, ty::THREAD as u128));
        idle | valid
    }
}

/// AF: typed memory → abstract state.
pub fn abstraction(mem: &Mem) -> SpecState {
    SpecState {
        pages: (0..NPAGES)
            .map(|i| {
                let f = |name: &'static str| {
                    mem.read_path("pagedb", &[PathElem::Index(i), PathElem::Field(name)])
                };
                SpecPage {
                    ty: f("type"),
                    owner: f("owner"),
                    state: f("state"),
                    refcount: f("refcount"),
                    extra: f("extra"),
                }
            })
            .collect(),
        cur_thread: mem.read_path("state", &[PathElem::Field("cur_thread")]),
        os_resume: mem.read_path("state", &[PathElem::Field("os_resume")]),
    }
}

fn lit(v: u64) -> BV {
    BV::lit(64, v as u128)
}

fn ok_else(valid: SBool) -> BV {
    valid.select(lit(0), lit(u64::MAX))
}

/// `InitAddrspace(asp, l1pt)`.
pub fn spec_init_addrspace(s: &mut SpecState, asp: BV, l1: BV) -> BV {
    let in_range = asp.ult(lit(NPAGES)) & l1.ult(lit(NPAGES)) & asp.ne_(l1);
    let both_free = s.read(asp, |p| p.ty).eq_(lit(ty::FREE))
        & s.read(l1, |p| p.ty).eq_(lit(ty::FREE));
    let valid = in_range & both_free;
    s.update(valid, asp, |p| {
        p.ty = lit(ty::ADDRSPACE);
        p.owner = asp;
        p.state = lit(st::INIT);
        p.refcount = lit(2);
        p.extra = lit(0);
    });
    s.update(valid, l1, |p| {
        p.ty = lit(ty::L1PT);
        p.owner = asp;
        p.state = lit(0);
        p.refcount = lit(0);
        p.extra = lit(0);
    });
    ok_else(valid)
}

/// The shared page-allocation spec (InitThread/InitL2PT/InitL3PT/
/// MapSecure).
pub fn spec_alloc(
    s: &mut SpecState,
    asp: BV,
    page: BV,
    page_ty: u64,
    extra: Option<BV>,
    l3: Option<BV>,
) -> BV {
    let mut valid = asp.ult(lit(NPAGES)) & page.ult(lit(NPAGES));
    if let Some(l3) = l3 {
        valid = valid & l3.ult(lit(NPAGES));
    }
    valid = valid
        & s.read(asp, |p| p.ty).eq_(lit(ty::ADDRSPACE))
        & s.read(asp, |p| p.state).eq_(lit(st::INIT))
        & s.read(page, |p| p.ty).eq_(lit(ty::FREE));
    if let Some(l3) = l3 {
        valid = valid
            & s.read(l3, |p| p.ty).eq_(lit(ty::L3PT))
            & s.read(l3, |p| p.owner).eq_(asp);
    }
    s.update(valid, page, |p| {
        // Fully initialize the entry: stale metadata must not leak into
        // the new owner's view (see the noninterference lemmas).
        p.ty = lit(page_ty);
        p.owner = asp;
        p.state = lit(0);
        p.refcount = lit(0);
        p.extra = extra.unwrap_or_else(|| lit(0));
    });
    s.update(valid, asp, |p| p.refcount = p.refcount + lit(1));
    ok_else(valid)
}

/// `MapInsecure(asp, l3pt, phys)` — checks only.
pub fn spec_map_insecure(s: &SpecState, asp: BV, l3: BV, phys: BV) -> BV {
    let valid = asp.ult(lit(NPAGES))
        & l3.ult(lit(NPAGES))
        & phys.ult(lit(super::INSEC_PAGES))
        & s.read(asp, |p| p.ty).eq_(lit(ty::ADDRSPACE))
        & s.read(asp, |p| p.state).eq_(lit(st::INIT))
        & s.read(l3, |p| p.ty).eq_(lit(ty::L3PT))
        & s.read(l3, |p| p.owner).eq_(asp);
    ok_else(valid)
}

/// `Finalise(asp)` / `Stop(asp)` via the shared state-transition spec.
pub fn spec_set_state(s: &mut SpecState, asp: BV, new: u64, required: u64) -> BV {
    let mut valid =
        asp.ult(lit(NPAGES)) & s.read(asp, |p| p.ty).eq_(lit(ty::ADDRSPACE));
    if required != 0 {
        valid = valid & s.read(asp, |p| p.state).eq_(lit(required));
    }
    s.update(valid, asp, |p| p.state = lit(new));
    ok_else(valid)
}

/// `Enter(th)` / `Resume(th)`: returns `(result, new mepc guard)`; the
/// machine-level theorems check the staged mepc separately.
pub fn spec_enter(s: &mut SpecState, th: BV, os_resume: BV) -> (BV, SBool) {
    let valid = th.ult(lit(NPAGES))
        & s.read(th, |p| p.ty).eq_(lit(ty::THREAD))
        & s.read(th, |p| p.owner).ult(lit(NPAGES))
        & s
            .read(s.read(th, |p| p.owner), |p| p.state)
            .eq_(lit(st::FINAL))
        & s.cur_thread.eq_(lit(NONE));
    let valid_clone = valid;
    s.cur_thread = valid.select(th, s.cur_thread);
    s.os_resume = valid.select(os_resume, s.os_resume);
    (ok_else(valid), valid_clone)
}

/// `Exit(value)`: returns `(result, success)`.
pub fn spec_exit(s: &mut SpecState, value: BV) -> (BV, SBool) {
    let valid = s.cur_thread.ne_(lit(NONE));
    s.cur_thread = valid.select(lit(NONE), s.cur_thread);
    (valid.select(value, lit(u64::MAX)), valid)
}

/// `Remove(page)`.
pub fn spec_remove(s: &mut SpecState, page: BV) -> BV {
    let tp = s.read(page, |p| p.ty);
    let owner = s.read(page, |p| p.owner);
    let mut valid = page.ult(lit(NPAGES)) & tp.ne_(lit(ty::FREE)) & owner.ult(lit(NPAGES));
    // The currently executing thread's page cannot be pulled out from
    // under it (keeps the cur-thread invariant).
    valid = valid & page.ne_(s.cur_thread);
    // The owner entry must actually be an addrspace (its state field is
    // meaningless otherwise) and be stopped.
    valid = valid & s.read(owner, |p| p.ty).eq_(lit(ty::ADDRSPACE));
    let ostate = s.read(owner, |p| p.state);
    valid = valid & ostate.eq_(lit(st::STOPPED));
    // The addrspace page itself can only go when it is the last page.
    let is_asp = tp.eq_(lit(ty::ADDRSPACE));
    let rc = s.read(owner, |p| p.refcount);
    valid = valid & is_asp.implies(rc.eq_(lit(1)));
    s.update(valid, owner, |p| p.refcount = p.refcount - lit(1));
    s.update(valid, page, |p| {
        p.ty = lit(ty::FREE);
        p.owner = lit(0);
        p.state = lit(0);
        p.refcount = lit(0);
        p.extra = lit(0);
    });
    ok_else(valid)
}
