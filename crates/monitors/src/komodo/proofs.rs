//! Komodo^s proofs: binary-level refinement for every monitor call, plus
//! Nickel-style noninterference over the specification (paper §6.3).

use super::spec::{
    abstraction, page_eq, spec_alloc, spec_enter, spec_exit, spec_init_addrspace,
    spec_map_insecure, spec_remove, spec_set_state, SpecState,
};
use super::{build, fresh_mem, st, sys, ty, CODE_BASE, NPAGES, PAGE, PMP_ALLOW, PMP_DENY, SECURE_BASE};
use serval_core::report::{
    discharge, discharge_batch, discharge_queries, NamedGoal, ProofReport,
};
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_riscv::{reg, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, SBool, BV};
use serval_sym::SymCtx;

fn lit(v: u64) -> BV {
    BV::lit(64, v as u128)
}

/// Proves one monitor call of the compiled binary against its functional
/// specification. Resets the thread's term context.
pub fn prove_op(op: u64, level: OptLevel, optcfg: OptCfg, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let interp = build(level, optcfg);
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    mem.cfg.concretize_offsets = optcfg.concretize_offsets;
    let mut m = Machine::fresh_at(CODE_BASE, mem, "m");

    let s0 = abstraction(&m.mem);
    ctx.assume(s0.invariant());

    m.set_reg(reg::A7, lit(op));
    let a0 = m.reg(reg::A0);
    let a1 = m.reg(reg::A1);
    let a2 = m.reg(reg::A2);
    let entry_sp = m.reg(reg::SP);
    let entry_mepc = m.csrs.mepc;

    let name = op_name(op);
    let mut report = ProofReport::default();
    let outcome = interp.run(&mut ctx, &mut m);
    if !outcome.ok() {
        report.theorems.push(serval_core::report::TheoremResult {
            name: format!("{name}: symbolic evaluation"),
            verdict: serval_core::report::Verdict::Unknown,
            time: std::time::Duration::ZERO,
            stats: None,
            cache_hit: false,
        });
        return report;
    }

    // The specification run.
    let mut s = s0.clone();
    let os_resume = entry_mepc + lit(4);
    let (spec_ret, entered, exited) = match op {
        sys::INIT_ADDRSPACE => (spec_init_addrspace(&mut s, a0, a1), None, None),
        sys::INIT_THREAD => (
            spec_alloc(&mut s, a0, a1, ty::THREAD, Some(a2), None),
            None,
            None,
        ),
        sys::INIT_L2PT => (spec_alloc(&mut s, a0, a1, ty::L2PT, None, None), None, None),
        sys::INIT_L3PT => (spec_alloc(&mut s, a0, a1, ty::L3PT, None, None), None, None),
        sys::MAP_SECURE => (
            spec_alloc(&mut s, a0, a1, ty::DATA, None, Some(a2)),
            None,
            None,
        ),
        sys::MAP_INSECURE => (spec_map_insecure(&s, a0, a1, a2), None, None),
        sys::FINALISE => (spec_set_state(&mut s, a0, st::FINAL, st::INIT), None, None),
        sys::STOP => (spec_set_state(&mut s, a0, st::STOPPED, 0), None, None),
        sys::ENTER | sys::RESUME => {
            let (r, ok) = spec_enter(&mut s, a0, os_resume);
            (r, Some(ok), None)
        }
        sys::EXIT => {
            let (r, ok) = spec_exit(&mut s, a0);
            (r, None, Some(ok))
        }
        sys::REMOVE => (spec_remove(&mut s, a0), None, None),
        _ => panic!("unknown op {op}"),
    };

    // Collect every theorem and discharge them as one engine batch.
    let mut goals: Vec<NamedGoal> = Vec::new();

    // 1. UB obligations.
    for ob in ctx.take_obligations() {
        goals.push(NamedGoal::new(format!("{name}: {}", ob.label), ob.condition));
    }

    // 2. State refinement. The implementation's `os_resume` cell differs
    // from the spec's only on paths where it is never consulted again
    // (enter saves it provisionally); compare the spec-relevant parts.
    let s_impl = abstraction(&m.mem);
    let mut state_eq = s_impl.cur_thread.eq_(s.cur_thread);
    for (a, b) in s_impl.pages.iter().zip(&s.pages) {
        state_eq = state_eq & page_eq(a, b);
    }
    if matches!(op, sys::ENTER | sys::RESUME) {
        // On a successful enter the saved resume point must be correct.
        let ok = entered.unwrap();
        state_eq = state_eq & ok.implies(s_impl.os_resume.eq_(os_resume));
    } else {
        state_eq = state_eq & s_impl.os_resume.eq_(s.os_resume);
    }
    goals.push(NamedGoal::new(format!("{name}: state refinement"), state_eq));

    // 3. Return value (for Enter the returned 0 goes to the enclave).
    goals.push(NamedGoal::new(
        format!("{name}: return value"),
        m.reg(reg::A0).eq_(spec_ret),
    ));

    // 4. Invariant preservation.
    goals.push(NamedGoal::new(
        format!("{name}: invariant preserved"),
        s.invariant(),
    ));

    // 5. Control flow: where does the machine resume?
    let want_pc = match op {
        sys::ENTER | sys::RESUME => {
            let ok = entered.unwrap();
            let thread_entry = s0.read(a0, |p| p.extra);
            ok.select(thread_entry, entry_mepc + lit(4))
        }
        sys::EXIT => {
            let ok = exited.unwrap();
            ok.select(s0.os_resume, entry_mepc + lit(4))
        }
        _ => entry_mepc + lit(4),
    };
    let control = m.pc.eq_(want_pc) & m.reg(reg::SP).eq_(entry_sp);
    goals.push(NamedGoal::new(format!("{name}: control flow"), control));

    // 6. Scratch registers scrubbed.
    let mut scrubbed = SBool::lit(true);
    for r in [
        reg::RA,
        reg::GP,
        reg::TP,
        reg::T0,
        reg::T1,
        reg::T2,
        reg::T3,
        reg::T4,
        reg::T5,
        reg::T6,
        reg::A1,
        reg::A2,
        reg::A3,
        reg::A4,
        reg::A5,
        reg::A6,
        reg::A7,
    ] {
        scrubbed = scrubbed & m.reg(r).eq_(lit(0));
    }
    goals.push(NamedGoal::new(
        format!("{name}: scratch registers scrubbed"),
        scrubbed,
    ));

    // 7. PMP window on the secure region after Enter/Exit.
    if matches!(op, sys::ENTER | sys::RESUME | sys::EXIT) {
        let ok = entered.or(exited).unwrap();
        let lo = lit(SECURE_BASE >> 2);
        let hi = lit((SECURE_BASE + NPAGES * PAGE) >> 2);
        let cfg_val = if op == sys::EXIT {
            lit(PMP_DENY | (PMP_DENY << 8))
        } else {
            lit(PMP_DENY | (PMP_ALLOW << 8))
        };
        let goal = ok.implies(
            m.csrs.pmpaddr[0].eq_(lo)
                & m.csrs.pmpaddr[1].eq_(hi)
                & m.csrs.pmpcfg0.eq_(cfg_val),
        );
        goals.push(NamedGoal::new(format!("{name}: PMP window"), goal));
    }

    report.extend(discharge_batch(&ctx, cfg, goals));
    report
}

fn op_name(op: u64) -> String {
    let n = match op {
        sys::INIT_ADDRSPACE => "InitAddrspace",
        sys::INIT_THREAD => "InitThread",
        sys::INIT_L2PT => "InitL2PTable",
        sys::INIT_L3PT => "InitL3PTable",
        sys::MAP_SECURE => "MapSecure",
        sys::MAP_INSECURE => "MapInsecure",
        sys::FINALISE => "Finalise",
        sys::ENTER => "Enter",
        sys::RESUME => "Resume",
        sys::EXIT => "Exit",
        sys::STOP => "Stop",
        sys::REMOVE => "Remove",
        _ => "unknown",
    };
    format!("komodo {n}")
}

/// All monitor calls.
pub const ALL_OPS: [u64; 12] = [
    sys::INIT_ADDRSPACE,
    sys::INIT_THREAD,
    sys::INIT_L2PT,
    sys::INIT_L3PT,
    sys::MAP_SECURE,
    sys::MAP_INSECURE,
    sys::FINALISE,
    sys::ENTER,
    sys::RESUME,
    sys::EXIT,
    sys::STOP,
    sys::REMOVE,
];

/// Proves refinement for every monitor call.
pub fn prove_refinement(level: OptLevel, optcfg: OptCfg, cfg: SolverConfig) -> ProofReport {
    let mut report = ProofReport::default();
    for op in ALL_OPS {
        report.extend(prove_op(op, level, optcfg, cfg));
    }
    report
}

// ---------------------------------------------------------------------
// Noninterference (Nickel-style, paper §6.3)
// ---------------------------------------------------------------------

/// Enclave `a`'s observation equivalence: which pages belong to addrspace
/// `a` must agree, and the contents of those page-database entries must be
/// equal.
pub fn obs_eq(a: BV, s1: &SpecState, s2: &SpecState) -> SBool {
    let mut acc = SBool::lit(true);
    for (i, (p1, p2)) in s1.pages.iter().zip(&s2.pages).enumerate() {
        let i = BV::lit(64, i as u128);
        let b1 = belongs(s1, i, a);
        let b2 = belongs(s2, i, a);
        acc = acc & b1.iff(b2) & b1.implies(page_eq(p1, p2));
    }
    acc
}

fn belongs(s: &SpecState, page: BV, asp: BV) -> SBool {
    s.read(page, |p| p.ty).ne_(BV::lit(64, ty::FREE as u128))
        & s.read(page, |p| p.owner).eq_(asp)
}

/// Local respect: an OS operation targeting addrspace `b != a` leaves
/// enclave `a`'s observation unchanged. Covers the whole construction and
/// teardown interface.
pub fn prove_local_respect(cfg: SolverConfig) -> ProofReport {
    // One term context for the whole family; each lemma gets its own
    // assumption set and the batch goes through the engine at once.
    reset_ctx();
    let mut items: Vec<(String, Vec<SBool>, SBool)> = Vec::new();
    let ops: [(&str, u64); 7] = [
        ("InitAddrspace", sys::INIT_ADDRSPACE),
        ("InitThread", sys::INIT_THREAD),
        ("InitL2PTable", sys::INIT_L2PT),
        ("InitL3PTable", sys::INIT_L3PT),
        ("MapSecure", sys::MAP_SECURE),
        ("Finalise", sys::FINALISE),
        ("Stop", sys::STOP),
    ];
    for (name, op) in ops {
        let mut ctx = SymCtx::new();
        let a = BV::fresh(64, "a");
        let mut s = SpecState::fresh("s");
        let before = s.clone();
        ctx.assume(a.ult(lit(NPAGES)));
        ctx.assume(s.invariant());
        ctx.assume(s.wf());
        let target = BV::fresh(64, "target");
        let arg1 = BV::fresh(64, "arg1");
        let arg2 = BV::fresh(64, "arg2");
        ctx.assume(target.ne_(a)); // the operation is for another enclave
        match op {
            sys::INIT_ADDRSPACE => {
                // The new addrspace page must not currently belong to a
                // (it is required FREE anyway, but the mask keeps the
                // query well-formed).
                let _ = spec_init_addrspace(&mut s, target, arg1);
            }
            sys::INIT_THREAD => {
                let _ = spec_alloc(&mut s, target, arg1, ty::THREAD, Some(arg2), None);
            }
            sys::INIT_L2PT => {
                let _ = spec_alloc(&mut s, target, arg1, ty::L2PT, None, None);
            }
            sys::INIT_L3PT => {
                let _ = spec_alloc(&mut s, target, arg1, ty::L3PT, None, None);
            }
            sys::MAP_SECURE => {
                let _ = spec_alloc(&mut s, target, arg1, ty::DATA, None, Some(arg2));
            }
            sys::FINALISE => {
                let _ = spec_set_state(&mut s, target, st::FINAL, st::INIT);
            }
            _ => {
                let _ = spec_set_state(&mut s, target, st::STOPPED, 0);
            }
        }
        items.push((
            format!("komodo {name}: invisible to other enclaves"),
            ctx.assumptions().to_vec(),
            obs_eq(a, &before, &s),
        ));
    }

    // Remove: frees a page of a *stopped* addrspace b != a.
    let mut ctx = SymCtx::new();
    let a = BV::fresh(64, "a");
    let mut s = SpecState::fresh("s");
    let before = s.clone();
    ctx.assume(a.ult(lit(NPAGES)));
    ctx.assume(s.invariant());
    ctx.assume(s.wf());
    let page = BV::fresh(64, "page");
    // The removed page does not belong to enclave `a`.
    ctx.assume(s.read(page, |p| p.owner).ne_(a));
    let _ = spec_remove(&mut s, page);
    items.push((
        "komodo Remove: invisible to other enclaves".to_string(),
        ctx.assumptions().to_vec(),
        obs_eq(a, &before, &s),
    ));
    discharge_queries(cfg, items)
}

/// Step consistency for the OS construction interface: from two states
/// indistinguishable to enclave `a`, the same operation on `a`'s own
/// addrspace yields `a`-indistinguishable states (the OS builds the
/// enclave deterministically from public arguments).
pub fn prove_construction_consistency(cfg: SolverConfig) -> ProofReport {
    let mut report = ProofReport::default();
    reset_ctx();
    let mut ctx = SymCtx::new();
    let a = BV::fresh(64, "a");
    let mut s1 = SpecState::fresh("s1");
    let mut s2 = SpecState::fresh("s2");
    ctx.assume(a.ult(lit(NPAGES)));
    ctx.assume(s1.invariant());
    ctx.assume(s2.invariant());
    ctx.assume(s1.wf());
    ctx.assume(s2.wf());
    ctx.assume(obs_eq(a, &s1, &s2));
    // The page being granted is free in both runs (not owned by anyone).
    let page = BV::fresh(64, "page");
    let entry_pc = BV::fresh(64, "entry");
    ctx.assume(s1.read(page, |p| p.ty).eq_(lit(ty::FREE)));
    ctx.assume(s2.read(page, |p| p.ty).eq_(lit(ty::FREE)));
    // a's own record agrees (it is part of obs when it belongs to a);
    // require that a is an addrspace in both.
    ctx.assume(belongs(&s1, a, a));
    ctx.assume(belongs(&s2, a, a));
    let r1 = spec_alloc(&mut s1, a, page, ty::THREAD, Some(entry_pc), None);
    let r2 = spec_alloc(&mut s2, a, page, ty::THREAD, Some(entry_pc), None);
    report.theorems.push(discharge(
        &ctx,
        cfg,
        "komodo InitThread: construction consistency",
        &[],
        obs_eq(a, &s1, &s2) & r1.eq_(r2),
    ));
    report
}

/// All noninterference theorems.
pub fn prove_noninterference(cfg: SolverConfig) -> ProofReport {
    let mut report = ProofReport::default();
    report.extend(prove_local_respect(cfg));
    report.extend(prove_construction_consistency(cfg));
    report
}

/// Boot verification (paper §3.4): from the architectural reset state
/// with arbitrary memory, boot zeroes the page database, closes the
/// secure PMP window, installs the trap vector, and enters the OS.
pub fn prove_boot(level: OptLevel, cfg: SolverConfig) -> ProofReport {
    reset_ctx();
    let (interp, boot_addr) = super::build_with_boot(level, OptCfg::default());
    let mut ctx = SymCtx::new();
    let mut m = Machine::reset_at(boot_addr, fresh_mem());
    let mut report = ProofReport::default();
    let outcome = interp.run(&mut ctx, &mut m);
    if !outcome.ok() {
        report.theorems.push(serval_core::report::TheoremResult {
            name: "komodo boot: symbolic evaluation".into(),
            verdict: serval_core::report::Verdict::Unknown,
            time: std::time::Duration::ZERO,
            stats: None,
            cache_hit: false,
        });
        return report;
    }
    let mut goals: Vec<NamedGoal> = ctx
        .take_obligations()
        .into_iter()
        .map(|ob| NamedGoal::new(format!("komodo boot: {}", ob.label), ob.condition))
        .collect();
    let s = abstraction(&m.mem);
    let mut goal = s.cur_thread.eq_(lit(super::NONE)) & s.invariant();
    for p in &s.pages {
        goal = goal & p.ty.eq_(lit(ty::FREE));
    }
    goals.push(NamedGoal::new("komodo boot: initial abstract state", goal));
    let machine_goal = m.csrs.mtvec.eq_(lit(CODE_BASE))
        & m.pc.eq_(lit(super::OS_ENTRY))
        & m.csrs.pmpaddr[0].eq_(lit(SECURE_BASE >> 2))
        & m.csrs.pmpaddr[1].eq_(lit((SECURE_BASE + NPAGES * PAGE) >> 2))
        & m.csrs.pmpcfg0.eq_(lit(PMP_DENY | (PMP_DENY << 8)));
    goals.push(NamedGoal::new(
        "komodo boot: trap vector, PMP window closed, OS entry",
        machine_goal,
    ));
    report.extend(discharge_batch(&ctx, cfg, goals));
    report
}
