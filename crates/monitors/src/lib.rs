//! The verified security monitors (paper §6) and the Keystone case study
//! (paper §7).
//!
//! - [`certikos`]: CertiKOS^s — strict isolation between processes with
//!   memory quotas and PMP-backed contiguous regions (paper §6.2),
//!   including the two retrofit interface changes (caller-chosen child
//!   PID; ELF loading delegated to S-mode) and the legacy consecutive-PID
//!   `spawn` whose covert channel the Nickel-style specification catches.
//! - [`komodo`]: Komodo^s — an SGX-like enclave monitor with a page
//!   database and PMP+paging isolation (paper §6.3).
//! - [`keystone`]: the Keystone partial-specification case study with the
//!   four §7 findings seeded and detected.
//!
//! Each monitor follows the paper's two-step strategy (§6.4): the trap
//! handlers are written in the LLVM-like IR and verified with the IR
//! verifier first; then the *binary* (compiled by the untrusted IR→RV64
//! compiler plus a hand-written trap-dispatch stub) is verified with the
//! RISC-V verifier. Functional correctness is proved by state-machine
//! refinement; noninterference over the specification.

pub mod certikos;
pub mod keystone;
pub mod komodo;
