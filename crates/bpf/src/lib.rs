//! The BPF verifier (paper §5): an extended-BPF (eBPF) interpreter lifted
//! to a verifier.
//!
//! Implements the extended BPF instruction set: 64-bit and 32-bit ALU
//! operations (the 32-bit class zero-extends its result — the semantics
//! the Linux JITs got wrong, paper §7), jumps (64- and 32-bit compares),
//! byte swaps, `lddw`, memory accesses, and limited support for in-kernel
//! helper calls via uninterpreted functions.
//!
//! The instruction encoding follows the kernel's 8-byte layout
//! (`opcode:8 dst:4 src:4 off:16 imm:32`), with both an encoder and a
//! decoder validated against each other.

use serval_core::BugOn;
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};

pub mod encoding;
pub mod interp;

pub use encoding::{decode, decode_validated, encode};
pub use interp::{BpfInterp, StepResult};

/// ALU operations (shared by the 64- and 32-bit classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Or,
    And,
    Lsh,
    Rsh,
    Neg,
    Mod,
    Xor,
    Mov,
    Arsh,
}

impl AluOp {
    /// All ALU operations, for exhaustive checking (paper §7).
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Or,
        AluOp::And,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Neg,
        AluOp::Mod,
        AluOp::Xor,
        AluOp::Mov,
        AluOp::Arsh,
    ];
}

/// Jump comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JmpOp {
    Ja,
    Jeq,
    Jgt,
    Jge,
    Jset,
    Jne,
    Jsgt,
    Jsge,
    Jlt,
    Jle,
    Jslt,
    Jsle,
}

/// Operand source: immediate (`K`) or register (`X`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// 32-bit immediate.
    K,
    /// Source register.
    X,
}

/// Memory access sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Size {
    B,
    H,
    W,
    DW,
}

impl Size {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Size::B => 1,
            Size::H => 2,
            Size::W => 4,
            Size::DW => 8,
        }
    }
}

/// An eBPF instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// 64-bit ALU operation: `dst = dst op (src/imm)`.
    Alu64 { op: AluOp, src: Src, dst: u8, srcr: u8, imm: i32 },
    /// 32-bit ALU operation: low words, result zero-extended to 64 bits.
    Alu32 { op: AluOp, src: Src, dst: u8, srcr: u8, imm: i32 },
    /// Byte swap: `dst = le<bits>(dst)` or `be<bits>(dst)`.
    Endian { be: bool, bits: u32, dst: u8 },
    /// 64-bit jump.
    Jmp { op: JmpOp, src: Src, dst: u8, srcr: u8, off: i16, imm: i32 },
    /// 32-bit jump (compares low words).
    Jmp32 { op: JmpOp, src: Src, dst: u8, srcr: u8, off: i16, imm: i32 },
    /// Load 64-bit immediate (occupies two encoding slots).
    LdDw { dst: u8, imm: i64 },
    /// Memory load: `dst = *(size*)(src + off)`.
    LdX { size: Size, dst: u8, srcr: u8, off: i16 },
    /// Memory store of register.
    StX { size: Size, dst: u8, srcr: u8, off: i16 },
    /// Memory store of immediate.
    St { size: Size, dst: u8, off: i16, imm: i32 },
    /// Call an in-kernel helper by id.
    Call { id: i32 },
    /// Program exit; R0 is the return value.
    Exit,
}

/// BPF machine state: eleven 64-bit registers and an instruction index.
#[derive(Clone, Debug)]
pub struct BpfState {
    /// R0..R10 (R10 is the read-only frame pointer).
    pub regs: Vec<BV>,
    /// Instruction index (not a byte offset).
    pub pc: BV,
}

impl BpfState {
    /// Fully symbolic registers, pc at 0.
    pub fn fresh(tag: &str) -> BpfState {
        BpfState {
            regs: (0..11)
                .map(|i| BV::fresh(64, &format!("{tag}.r{i}")))
                .collect(),
            pc: BV::lit(64, 0),
        }
    }

    /// Reads register `r`.
    pub fn reg(&self, r: u8) -> BV {
        self.regs[r as usize]
    }

    /// Writes register `r`.
    pub fn set_reg(&mut self, ctx: &mut SymCtx, r: u8) -> &mut BV {
        if r == 10 {
            ctx.bug_on(SBool::lit(true), "write to read-only frame pointer r10");
        }
        &mut self.regs[r as usize]
    }
}

impl Merge for BpfState {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        BpfState {
            regs: Vec::merge(c, &t.regs, &e.regs),
            pc: BV::merge(c, &t.pc, &e.pc),
        }
    }
}

#[cfg(test)]
mod tests;
