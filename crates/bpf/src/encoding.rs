//! The kernel's 8-byte eBPF instruction encoding, with encoder and
//! decoder validated against each other (paper §3.4 methodology).

use crate::{AluOp, Insn, JmpOp, Size, Src};

/// One 8-byte encoding slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawInsn {
    /// Operation code.
    pub opcode: u8,
    /// Destination register (low nibble of the reg byte).
    pub dst: u8,
    /// Source register (high nibble of the reg byte).
    pub src: u8,
    /// Signed 16-bit offset.
    pub off: i16,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

const CLASS_LD: u8 = 0x00;
const CLASS_LDX: u8 = 0x01;
const CLASS_ST: u8 = 0x02;
const CLASS_STX: u8 = 0x03;
const CLASS_ALU: u8 = 0x04;
const CLASS_JMP: u8 = 0x05;
const CLASS_JMP32: u8 = 0x06;
const CLASS_ALU64: u8 = 0x07;

const SRC_X: u8 = 0x08;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0x00,
        AluOp::Sub => 0x10,
        AluOp::Mul => 0x20,
        AluOp::Div => 0x30,
        AluOp::Or => 0x40,
        AluOp::And => 0x50,
        AluOp::Lsh => 0x60,
        AluOp::Rsh => 0x70,
        AluOp::Neg => 0x80,
        AluOp::Mod => 0x90,
        AluOp::Xor => 0xa0,
        AluOp::Mov => 0xb0,
        AluOp::Arsh => 0xc0,
    }
}

fn alu_op(code: u8) -> Option<AluOp> {
    Some(match code {
        0x00 => AluOp::Add,
        0x10 => AluOp::Sub,
        0x20 => AluOp::Mul,
        0x30 => AluOp::Div,
        0x40 => AluOp::Or,
        0x50 => AluOp::And,
        0x60 => AluOp::Lsh,
        0x70 => AluOp::Rsh,
        0x80 => AluOp::Neg,
        0x90 => AluOp::Mod,
        0xa0 => AluOp::Xor,
        0xb0 => AluOp::Mov,
        0xc0 => AluOp::Arsh,
        _ => return None,
    })
}

fn jmp_code(op: JmpOp) -> u8 {
    match op {
        JmpOp::Ja => 0x00,
        JmpOp::Jeq => 0x10,
        JmpOp::Jgt => 0x20,
        JmpOp::Jge => 0x30,
        JmpOp::Jset => 0x40,
        JmpOp::Jne => 0x50,
        JmpOp::Jsgt => 0x60,
        JmpOp::Jsge => 0x70,
        JmpOp::Jlt => 0xa0,
        JmpOp::Jle => 0xb0,
        JmpOp::Jslt => 0xc0,
        JmpOp::Jsle => 0xd0,
    }
}

fn jmp_op(code: u8) -> Option<JmpOp> {
    Some(match code {
        0x00 => JmpOp::Ja,
        0x10 => JmpOp::Jeq,
        0x20 => JmpOp::Jgt,
        0x30 => JmpOp::Jge,
        0x40 => JmpOp::Jset,
        0x50 => JmpOp::Jne,
        0x60 => JmpOp::Jsgt,
        0x70 => JmpOp::Jsge,
        0xa0 => JmpOp::Jlt,
        0xb0 => JmpOp::Jle,
        0xc0 => JmpOp::Jslt,
        0xd0 => JmpOp::Jsle,
        _ => return None,
    })
}

fn size_code(s: Size) -> u8 {
    match s {
        Size::W => 0x00,
        Size::H => 0x08,
        Size::B => 0x10,
        Size::DW => 0x18,
    }
}

fn size_of(code: u8) -> Size {
    match code & 0x18 {
        0x00 => Size::W,
        0x08 => Size::H,
        0x10 => Size::B,
        _ => Size::DW,
    }
}

/// Encodes an instruction into one or two slots (`lddw` takes two).
pub fn encode(i: Insn) -> Vec<RawInsn> {
    let raw = |opcode, dst, src, off, imm| RawInsn {
        opcode,
        dst,
        src,
        off,
        imm,
    };
    match i {
        Insn::Alu64 { op, src, dst, srcr, imm } | Insn::Alu32 { op, src, dst, srcr, imm } => {
            let class = if matches!(i, Insn::Alu64 { .. }) {
                CLASS_ALU64
            } else {
                CLASS_ALU
            };
            let (srcbit, srcreg, immv) = match src {
                Src::K => (0, 0, imm),
                Src::X => (SRC_X, srcr, 0),
            };
            vec![raw(alu_code(op) | srcbit | class, dst, srcreg, 0, immv)]
        }
        Insn::Endian { be, bits, dst } => {
            let srcbit = if be { SRC_X } else { 0 };
            vec![raw(0xd0 | srcbit | CLASS_ALU, dst, 0, 0, bits as i32)]
        }
        Insn::Jmp { op, src, dst, srcr, off, imm } | Insn::Jmp32 { op, src, dst, srcr, off, imm } => {
            let class = if matches!(i, Insn::Jmp { .. }) {
                CLASS_JMP
            } else {
                CLASS_JMP32
            };
            let (srcbit, srcreg, immv) = match src {
                Src::K => (0, 0, imm),
                Src::X => (SRC_X, srcr, 0),
            };
            vec![raw(jmp_code(op) | srcbit | class, dst, srcreg, off, immv)]
        }
        Insn::LdDw { dst, imm } => {
            vec![
                raw(0x18, dst, 0, 0, imm as i32),
                raw(0, 0, 0, 0, (imm >> 32) as i32),
            ]
        }
        Insn::LdX { size, dst, srcr, off } => {
            vec![raw(0x60 | size_code(size) | CLASS_LDX, dst, srcr, off, 0)]
        }
        Insn::StX { size, dst, srcr, off } => {
            vec![raw(0x60 | size_code(size) | CLASS_STX, dst, srcr, off, 0)]
        }
        Insn::St { size, dst, off, imm } => {
            vec![raw(0x60 | size_code(size) | CLASS_ST, dst, 0, off, imm)]
        }
        Insn::Call { id } => vec![raw(0x80 | CLASS_JMP, 0, 0, 0, id)],
        Insn::Exit => vec![raw(0x90 | CLASS_JMP, 0, 0, 0, 0)],
    }
}

/// Decodes the instruction at `slots[0]`, returning it and the number of
/// slots consumed.
pub fn decode(slots: &[RawInsn]) -> Result<(Insn, usize), String> {
    let r = slots[0];
    let class = r.opcode & 0x07;
    let code = r.opcode & 0xf0;
    let is_x = r.opcode & SRC_X != 0;
    let src = if is_x { Src::X } else { Src::K };
    match class {
        CLASS_ALU | CLASS_ALU64 => {
            if code == 0xd0 && class == CLASS_ALU {
                let bits = r.imm as u32;
                if !matches!(bits, 16 | 32 | 64) {
                    return Err(format!("bad endian width {bits}"));
                }
                return Ok((
                    Insn::Endian {
                        be: is_x,
                        bits,
                        dst: r.dst,
                    },
                    1,
                ));
            }
            let op = alu_op(code).ok_or(format!("bad alu opcode {:#x}", r.opcode))?;
            let insn = if class == CLASS_ALU64 {
                Insn::Alu64 {
                    op,
                    src,
                    dst: r.dst,
                    srcr: r.src,
                    imm: r.imm,
                }
            } else {
                Insn::Alu32 {
                    op,
                    src,
                    dst: r.dst,
                    srcr: r.src,
                    imm: r.imm,
                }
            };
            Ok((insn, 1))
        }
        CLASS_JMP if code == 0x80 && !is_x => Ok((Insn::Call { id: r.imm }, 1)),
        CLASS_JMP if code == 0x90 && !is_x => Ok((Insn::Exit, 1)),
        CLASS_JMP | CLASS_JMP32 => {
            let op = jmp_op(code).ok_or(format!("bad jmp opcode {:#x}", r.opcode))?;
            let insn = if class == CLASS_JMP {
                Insn::Jmp {
                    op,
                    src,
                    dst: r.dst,
                    srcr: r.src,
                    off: r.off,
                    imm: r.imm,
                }
            } else {
                Insn::Jmp32 {
                    op,
                    src,
                    dst: r.dst,
                    srcr: r.src,
                    off: r.off,
                    imm: r.imm,
                }
            };
            Ok((insn, 1))
        }
        CLASS_LD if r.opcode == 0x18 => {
            if slots.len() < 2 {
                return Err("truncated lddw".into());
            }
            let lo = slots[0].imm as u32 as u64;
            let hi = slots[1].imm as u32 as u64;
            Ok((
                Insn::LdDw {
                    dst: r.dst,
                    imm: (hi << 32 | lo) as i64,
                },
                2,
            ))
        }
        CLASS_LDX if r.opcode & 0xe0 == 0x60 => Ok((
            Insn::LdX {
                size: size_of(r.opcode),
                dst: r.dst,
                srcr: r.src,
                off: r.off,
            },
            1,
        )),
        CLASS_STX if r.opcode & 0xe0 == 0x60 => Ok((
            Insn::StX {
                size: size_of(r.opcode),
                dst: r.dst,
                srcr: r.src,
                off: r.off,
            },
            1,
        )),
        CLASS_ST if r.opcode & 0xe0 == 0x60 => Ok((
            Insn::St {
                size: size_of(r.opcode),
                dst: r.dst,
                off: r.off,
                imm: r.imm,
            },
            1,
        )),
        _ => Err(format!("unknown opcode {:#x}", r.opcode)),
    }
}

/// Decodes and validates by re-encoding (paper §3.4).
pub fn decode_validated(slots: &[RawInsn]) -> Result<(Insn, usize), String> {
    let (insn, used) = decode(slots)?;
    let back = encode(insn);
    if back.len() != used || back != slots[..used] {
        return Err(format!("decode/encode mismatch for {insn:?}"));
    }
    Ok((insn, used))
}
