//! The eBPF interpreter under symbolic evaluation.
//!
//! The ALU semantics follow the kernel's documented behaviour:
//!
//! - 32-bit ALU operations compute on the low words and **zero-extend**
//!   the result to 64 bits (the invariant violated by the JIT bugs found
//!   in §7);
//! - shift amounts are masked to the operand width (63 or 31);
//! - division/modulo by zero yield 0 and the dividend's low bits
//!   respectively (the checked-runtime semantics the verifier enforces).

use crate::{AluOp, BpfState, Insn, JmpOp, Src};
use serval_core::{split_pc, BugOn};
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};

/// Result of one instruction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepResult {
    /// Continue at the (updated) pc.
    Continue,
    /// The program exited.
    Exit,
}

impl Merge for StepResult {
    fn merge(_c: SBool, t: &Self, e: &Self) -> Self {
        // Paths that exited stay exited; the run loop handles per-path
        // termination via split-pc, so a merged Continue is conservative.
        if t == e {
            *t
        } else {
            StepResult::Continue
        }
    }
}

/// The lifted eBPF interpreter.
pub struct BpfInterp {
    /// The program.
    pub program: Vec<Insn>,
    /// Maximum instructions per path.
    pub fuel: usize,
    /// Helper-call results, modelled as uninterpreted functions of r1..r5.
    pub helper_uf: Option<serval_smt::UfId>,
}

impl BpfInterp {
    /// An interpreter for `program`.
    pub fn new(program: Vec<Insn>) -> BpfInterp {
        BpfInterp {
            program,
            fuel: 4096,
            helper_uf: None,
        }
    }

    /// Executes the single instruction `insn` on `s` (used by the JIT
    /// checker, which verifies one instruction at a time; paper §7).
    pub fn step_insn(&self, ctx: &mut SymCtx, s: &mut BpfState, insn: Insn) -> StepResult {
        let one = BV::lit(64, 1);
        match insn {
            Insn::Alu64 { op, src, dst, srcr, imm } => {
                let a = s.reg(dst);
                let b = operand64(s, src, srcr, imm);
                let v = alu64(ctx, op, a, b);
                *s.set_reg(ctx, dst) = v;
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::Alu32 { op, src, dst, srcr, imm } => {
                let a = s.reg(dst).trunc(32);
                let b = operand64(s, src, srcr, imm).trunc(32);
                let v32 = alu32(ctx, op, a, b);
                // BPF semantics: the 32-bit result is zero-extended.
                *s.set_reg(ctx, dst) = v32.zext(64);
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::Endian { be, bits, dst } => {
                let v = s.reg(dst);
                let swapped = byteswap(v, bits);
                // On a little-endian machine: `be` swaps, `le` truncates.
                let result = if be {
                    swapped
                } else {
                    v.trunc(bits).zext(64)
                };
                *s.set_reg(ctx, dst) = result;
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::Jmp { op, src, dst, srcr, off, imm } => {
                let a = s.reg(dst);
                let b = operand64(s, src, srcr, imm);
                let taken = jump_taken(op, a, b);
                let target = s.pc + BV::lit(64, (off as i64 + 1) as u64 as u128);
                let next = s.pc + one;
                s.pc = taken.select(target, next);
                StepResult::Continue
            }
            Insn::Jmp32 { op, src, dst, srcr, off, imm } => {
                let a = s.reg(dst).trunc(32);
                let b = operand64(s, src, srcr, imm).trunc(32);
                let taken = jump_taken(op, a, b);
                let target = s.pc + BV::lit(64, (off as i64 + 1) as u64 as u128);
                let next = s.pc + one;
                s.pc = taken.select(target, next);
                StepResult::Continue
            }
            Insn::LdDw { dst, imm } => {
                *s.set_reg(ctx, dst) = BV::lit(64, imm as u64 as u128);
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::LdX { .. } | Insn::StX { .. } | Insn::St { .. } => {
                // Memory access requires a packet/stack model, which the
                // single-instruction JIT checker does not exercise; a
                // whole-program run treats it as unsupported.
                ctx.bug_on(SBool::lit(true), "memory access unsupported in this run");
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::Call { id } => {
                // Helper calls clobber r1-r5 and return in r0, modelled by
                // an uninterpreted function of the arguments and id.
                let uf = match self.helper_uf {
                    Some(uf) => uf,
                    None => {
                        ctx.bug_on(SBool::lit(true), "helper call without helper model");
                        s.pc = s.pc + one;
                        return StepResult::Continue;
                    }
                };
                let args: Vec<serval_smt::TermId> = vec![
                    BV::lit(64, id as u64 as u128).0,
                    s.reg(1).0,
                    s.reg(2).0,
                    s.reg(3).0,
                    s.reg(4).0,
                    s.reg(5).0,
                ];
                let r0 = BV(serval_smt::build::uf_apply(uf, &args));
                s.regs[0] = r0;
                for r in 1..=5 {
                    s.regs[r] = BV::fresh(64, &format!("clobber.r{r}"));
                }
                s.pc = s.pc + one;
                StepResult::Continue
            }
            Insn::Exit => StepResult::Exit,
        }
    }

    /// Runs the program to exit under all-paths symbolic evaluation.
    pub fn run(&self, ctx: &mut SymCtx, s: &mut BpfState) -> bool {
        self.step(ctx, s, self.fuel)
    }

    fn step(&self, ctx: &mut SymCtx, s: &mut BpfState, fuel: usize) -> bool {
        if fuel == 0 {
            return false;
        }
        let n = self.program.len() as u128;
        ctx.bug_on(s.pc.uge(BV::lit(64, n)), "bpf pc out of bounds");
        let pc = s.pc;
        let r = split_pc(ctx, s, pc, |ctx, s, v| {
            if v >= n {
                return true;
            }
            let insn = self.program[v as usize];
            s.pc = BV::lit(64, v);
            match self.step_insn(ctx, s, insn) {
                StepResult::Exit => true,
                StepResult::Continue => self.step(ctx, s, fuel - 1),
            }
        });
        r.unwrap_or(false)
    }
}

fn operand64(s: &BpfState, src: Src, srcr: u8, imm: i32) -> BV {
    match src {
        Src::K => BV::lit(64, imm as i64 as u64 as u128),
        Src::X => s.reg(srcr),
    }
}

fn alu64(ctx: &mut SymCtx, op: AluOp, a: BV, b: BV) -> BV {
    alu(ctx, op, a, b, 64)
}

fn alu32(ctx: &mut SymCtx, op: AluOp, a: BV, b: BV) -> BV {
    alu(ctx, op, a, b, 32)
}

/// Shared ALU semantics at width `w`.
fn alu(ctx: &mut SymCtx, op: AluOp, a: BV, b: BV, w: u32) -> BV {
    let zero = BV::lit(w, 0);
    let shmask = BV::lit(w, (w - 1) as u128);
    let _ = ctx;
    match op {
        AluOp::Add => a + b,
        AluOp::Sub => a - b,
        AluOp::Mul => a * b,
        // The BPF runtime semantics adopted by the kernel: division by
        // zero yields zero (the in-kernel verifier also forbids provable
        // division by zero; the JIT must still be safe).
        AluOp::Div => b.is_zero().select(zero, a.udiv(b)),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Lsh => a.shl(b & shmask),
        AluOp::Rsh => a.lshr(b & shmask),
        AluOp::Neg => zero - a,
        AluOp::Mod => b.is_zero().select(a, a.urem(b)),
        AluOp::Xor => a ^ b,
        AluOp::Mov => b,
        AluOp::Arsh => a.ashr(b & shmask),
    }
}

fn jump_taken(op: JmpOp, a: BV, b: BV) -> SBool {
    match op {
        JmpOp::Ja => SBool::lit(true),
        JmpOp::Jeq => a.eq_(b),
        JmpOp::Jgt => a.ugt(b),
        JmpOp::Jge => a.uge(b),
        JmpOp::Jset => (a & b).ne_(BV::lit(a.width(), 0)),
        JmpOp::Jne => a.ne_(b),
        JmpOp::Jsgt => a.sgt(b),
        JmpOp::Jsge => a.sge(b),
        JmpOp::Jlt => a.ult(b),
        JmpOp::Jle => a.ule(b),
        JmpOp::Jslt => a.slt(b),
        JmpOp::Jsle => a.sle(b),
    }
}

/// Byte-swaps the low `bits` bits of `v`, zero-extending to 64.
fn byteswap(v: BV, bits: u32) -> BV {
    let nbytes = bits / 8;
    let mut out: Option<BV> = None;
    for i in 0..nbytes {
        let byte = v.extract(i * 8 + 7, i * 8);
        out = Some(match out {
            None => byte,
            Some(acc) => acc.concat(byte),
        });
    }
    out.unwrap().zext(64)
}
