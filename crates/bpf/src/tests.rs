//! BPF verifier tests: encoding round-trips, interpreter semantics vs a
//! Rust reference, and symbolic whole-program runs.

use crate::*;
use serval_check::prelude::*;
use serval_smt::{reset_ctx, verify, BV};
use serval_sym::SymCtx;

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let r = 0u8..10;
    prop_oneof![
        (arb_alu(), any::<bool>(), r.clone(), r.clone(), any::<i32>()).prop_map(
            |(op, x, dst, srcr, imm)| Insn::Alu64 {
                op,
                src: if x { Src::X } else { Src::K },
                dst,
                srcr: if x { srcr } else { 0 },
                imm: if x { 0 } else { imm },
            }
        ),
        (arb_alu(), any::<bool>(), r.clone(), r.clone(), any::<i32>()).prop_map(
            |(op, x, dst, srcr, imm)| Insn::Alu32 {
                op,
                src: if x { Src::X } else { Src::K },
                dst,
                srcr: if x { srcr } else { 0 },
                imm: if x { 0 } else { imm },
            }
        ),
        (any::<bool>(), prop::sample::select(vec![16u32, 32, 64]), r.clone())
            .prop_map(|(be, bits, dst)| Insn::Endian { be, bits, dst }),
        (r.clone(), any::<i64>()).prop_map(|(dst, imm)| Insn::LdDw { dst, imm }),
        Just(Insn::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let slots = encode(insn);
        let (back, used) = decode_validated(&slots).expect("decode");
        prop_assert_eq!(back, insn);
        prop_assert_eq!(used, slots.len());
    }

    /// Differential test: symbolic single-step vs a concrete Rust
    /// reference implementation of the BPF ALU semantics.
    #[test]
    fn alu_matches_reference(
        op in arb_alu(),
        a in any::<u64>(),
        b in any::<u64>(),
        is32 in any::<bool>(),
    ) {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let interp = BpfInterp::new(vec![]);
        let mut s = BpfState::fresh("s");
        s.regs[1] = BV::lit(64, a as u128);
        s.regs[2] = BV::lit(64, b as u128);
        let insn = if is32 {
            Insn::Alu32 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
        } else {
            Insn::Alu64 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
        };
        interp.step_insn(&mut ctx, &mut s, insn);
        let got = s.reg(1).as_const().expect("concrete result") as u64;
        let expect = reference_alu(op, a, b, is32);
        prop_assert_eq!(got, expect, "{:?} is32={}", op, is32);
    }
}

/// Reference BPF ALU semantics in plain Rust.
fn reference_alu(op: AluOp, a: u64, b: u64, is32: bool) -> u64 {
    if is32 {
        let a = a as u32;
        let b = b as u32;
        let r: u32 = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => if b == 0 { 0 } else { a / b },
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Lsh => a.wrapping_shl(b),
            AluOp::Rsh => a.wrapping_shr(b),
            AluOp::Neg => a.wrapping_neg(),
            AluOp::Mod => if b == 0 { a } else { a % b },
            AluOp::Xor => a ^ b,
            AluOp::Mov => b,
            AluOp::Arsh => ((a as i32).wrapping_shr(b)) as u32,
        };
        r as u64 // zero-extended
    } else {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => if b == 0 { 0 } else { a / b },
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Lsh => a.wrapping_shl(b as u32),
            AluOp::Rsh => a.wrapping_shr(b as u32),
            AluOp::Neg => a.wrapping_neg(),
            AluOp::Mod => if b == 0 { a } else { a % b },
            AluOp::Xor => a ^ b,
            AluOp::Mov => b,
            AluOp::Arsh => ((a as i64).wrapping_shr(b as u32)) as u64,
        }
    }
}

#[test]
fn alu32_zero_extends() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let interp = BpfInterp::new(vec![]);
    let mut s = BpfState::fresh("s");
    let r1 = s.reg(1);
    interp.step_insn(
        &mut ctx,
        &mut s,
        Insn::Alu32 { op: AluOp::Add, src: Src::K, dst: 1, srcr: 0, imm: 0 },
    );
    // Adding 0 in 32-bit mode still clears the upper half.
    assert!(verify(&[], s.reg(1).eq_(r1.trunc(32).zext(64))).is_proved());
}

#[test]
fn endian_semantics() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let interp = BpfInterp::new(vec![]);
    let mut s = BpfState::fresh("s");
    s.regs[1] = BV::lit(64, 0x1122334455667788);
    interp.step_insn(&mut ctx, &mut s, Insn::Endian { be: true, bits: 32, dst: 1 });
    assert_eq!(s.reg(1).as_const(), Some(0x88776655));
    s.regs[2] = BV::lit(64, 0x1122334455667788);
    interp.step_insn(&mut ctx, &mut s, Insn::Endian { be: false, bits: 16, dst: 2 });
    assert_eq!(s.reg(2).as_const(), Some(0x7788));
    s.regs[3] = BV::lit(64, 0x1122334455667788);
    interp.step_insn(&mut ctx, &mut s, Insn::Endian { be: true, bits: 64, dst: 3 });
    assert_eq!(s.reg(3).as_const(), Some(0x8877665544332211));
}

#[test]
fn symbolic_program_max() {
    reset_ctx();
    // r0 = max(r1, r2) via jge.
    let prog = vec![
        Insn::Alu64 { op: AluOp::Mov, src: Src::X, dst: 0, srcr: 1, imm: 0 },
        Insn::Jmp { op: JmpOp::Jge, src: Src::X, dst: 1, srcr: 2, off: 1, imm: 0 },
        Insn::Alu64 { op: AluOp::Mov, src: Src::X, dst: 0, srcr: 2, imm: 0 },
        Insn::Exit,
    ];
    let mut ctx = SymCtx::new();
    let interp = BpfInterp::new(prog);
    let mut s = BpfState::fresh("s");
    let (r1, r2) = (s.reg(1), s.reg(2));
    assert!(interp.run(&mut ctx, &mut s), "program must exit on all paths");
    let expect = r1.uge(r2).select(r1, r2);
    assert!(verify(&[], s.reg(0).eq_(expect)).is_proved());
}

#[test]
fn jmp32_compares_low_words() {
    reset_ctx();
    let prog = vec![
        Insn::Alu64 { op: AluOp::Mov, src: Src::K, dst: 0, srcr: 0, imm: 0 },
        Insn::Jmp32 { op: JmpOp::Jeq, src: Src::X, dst: 1, srcr: 2, off: 1, imm: 0 },
        Insn::Exit,
        Insn::Alu64 { op: AluOp::Mov, src: Src::K, dst: 0, srcr: 0, imm: 1 },
        Insn::Exit,
    ];
    let mut ctx = SymCtx::new();
    let interp = BpfInterp::new(prog);
    let mut s = BpfState::fresh("s");
    let (r1, r2) = (s.reg(1), s.reg(2));
    assert!(interp.run(&mut ctx, &mut s));
    let low_eq = r1.trunc(32).eq_(r2.trunc(32));
    assert!(verify(&[low_eq], s.reg(0).eq_(BV::lit(64, 1))).is_proved());
    assert!(verify(&[!low_eq], s.reg(0).eq_(BV::lit(64, 0))).is_proved());
}

#[test]
fn write_to_r10_flagged() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let interp = BpfInterp::new(vec![]);
    let mut s = BpfState::fresh("s");
    interp.step_insn(
        &mut ctx,
        &mut s,
        Insn::Alu64 { op: AluOp::Mov, src: Src::K, dst: 10, srcr: 0, imm: 0 },
    );
    let failed = ctx
        .take_obligations()
        .into_iter()
        .any(|ob| !verify(&[], ob.condition).is_proved());
    assert!(failed, "writing r10 must be flagged");
}

#[test]
fn helper_call_modelled_as_uf() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let uf = serval_smt::with_ctx(|c| c.declare_uf("helper", vec![64; 6], 64));
    let mut interp = BpfInterp::new(vec![]);
    interp.helper_uf = Some(uf);
    let mut s1 = BpfState::fresh("a");
    let mut s2 = s1.clone();
    interp.step_insn(&mut ctx, &mut s1, Insn::Call { id: 7 });
    interp.step_insn(&mut ctx, &mut s2, Insn::Call { id: 7 });
    // Same helper, same arguments: same result (congruence).
    assert!(verify(&[], s1.reg(0).eq_(s2.reg(0))).is_proved());
}
