//! Quick warm-path probe: runs the presolve and incremental harnesses
//! once each and prints their summaries (the warm rows are the point).
fn main() {
    std::env::set_var("SERVAL_BENCH_SAMPLES", "1");
    serval_bench::presolve_bench::run().print_summary();
    serval_bench::incremental_bench::run().print_summary();
}
