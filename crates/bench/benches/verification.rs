//! `cargo bench` target for the verification-pipeline benches (ToyRISC,
//! CertiKOS^s, JIT checker), on the hand-rolled harness in
//! `serval_check::bench`. The `bench_all` binary runs the same suite and
//! also emits JSON.

fn main() {
    let mut h = serval_check::bench::Harness::new("verification");
    serval_bench::suites::verification(&mut h);
    h.print_summary();
}
