//! Criterion benchmarks over the verification pipeline: the ToyRISC
//! refinement proof (paper §3), a CertiKOS^s monitor-call refinement
//! (Fig. 11's unit of work), and a JIT-checker query (§7).

use criterion::{criterion_group, criterion_main, Criterion};
use serval_bpf::{AluOp, Insn as Bpf, Src};
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_jit::{check_rv64, Rv64Jit};
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use serval_smt::reset_ctx;
use serval_toyrisc::prove_sign_refinement;

fn bench_toyrisc(c: &mut Criterion) {
    c.bench_function("toyrisc sign refinement", |b| {
        b.iter(|| {
            reset_ctx();
            let report = prove_sign_refinement(SolverConfig::default());
            assert!(report.all_proved());
        })
    });
}

fn bench_certikos(c: &mut Criterion) {
    let mut g = c.benchmark_group("certikos");
    g.sample_size(10);
    g.bench_function("get_quota refinement (O1)", |b| {
        b.iter(|| {
            let report = certikos::proofs::prove_op(
                certikos::sys::GET_QUOTA,
                OptLevel::O1,
                OptCfg::default(),
                SolverConfig::default(),
            );
            assert!(report.all_proved());
        })
    });
    g.finish();
}

fn bench_jit_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("jit-checker");
    g.sample_size(10);
    let jit = Rv64Jit::fixed();
    for (name, insn) in [
        (
            "alu64 add X",
            Bpf::Alu64 { op: AluOp::Add, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
        (
            "alu32 lsh X",
            Bpf::Alu32 { op: AluOp::Lsh, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
        (
            "alu64 div X",
            Bpf::Alu64 { op: AluOp::Div, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let row = check_rv64(&jit, insn, SolverConfig::default()).unwrap();
                assert!(row.ok);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_toyrisc, bench_certikos, bench_jit_checker);
criterion_main!(benches);
