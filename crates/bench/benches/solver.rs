//! Criterion benchmarks over the substrates: the CDCL SAT solver and the
//! bit-blasting SMT layer (the parts of the stack the paper delegates to
//! Z3).

use criterion::{criterion_group, criterion_main, Criterion};
use serval_sat::{Lit, SolveResult, Solver, Var};
use serval_smt::{reset_ctx, verify, BV};

fn php(n: usize, m: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.sample_size(10);
    g.bench_function("pigeonhole 7 into 6 (unsat)", |b| {
        b.iter(|| {
            let mut s = php(7, 6);
            assert_eq!(s.solve(), SolveResult::Unsat);
        })
    });
    g.finish();
}

fn bench_smt(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt");
    g.sample_size(10);
    // (x & y) + (x | y) == x + y: structurally different sides, so the
    // solver does real work, but adder-only circuits keep it tractable
    // (multiplier equivalence is classically hard for resolution).
    g.bench_function("and-or adder identity, 32-bit", |b| {
        b.iter(|| {
            reset_ctx();
            let x = BV::fresh(32, "x");
            let y = BV::fresh(32, "y");
            assert!(verify(&[], ((x & y) + (x | y)).eq_(x + y)).is_proved());
        })
    });
    // 8-bit keeps the q*d + r = a goal tractable (it contains a
    // multiplier, which is the hard case for CDCL).
    g.bench_function("division relation, 8-bit", |b| {
        b.iter(|| {
            reset_ctx();
            let a = BV::fresh(8, "a");
            let d = BV::fresh(8, "d");
            let nz = !d.is_zero();
            let goal = (a.udiv(d) * d + a.urem(d)).eq_(a);
            assert!(verify(&[nz], goal).is_proved());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sat, bench_smt);
criterion_main!(benches);
