//! `cargo bench` target for the substrate benches (SAT + SMT), on the
//! hand-rolled harness in `serval_check::bench`. The `bench_all` binary
//! runs the same suite and also emits JSON.

fn main() {
    let mut h = serval_check::bench::Harness::new("solver");
    serval_bench::suites::solver(&mut h);
    h.print_summary();
}
