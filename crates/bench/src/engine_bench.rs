//! The engine benchmark: sequential vs parallel discharge of the Fig. 11
//! CertiKOS^s refinement subset, plus a warm-cache rerun. Emitted as
//! `BENCH_engine.json` by `bench_all`.

use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed run of the fig11 subset.
pub struct EngineRun {
    /// Worker count the engine ran with.
    pub jobs: usize,
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Cache hits during this run.
    pub cache_hits: u64,
    /// Cache misses during this run.
    pub cache_misses: u64,
}

/// The sequential-vs-parallel comparison plus the warm-cache rerun.
pub struct EngineBenchReport {
    /// CPU cores available to this process. Parallel speedup is bounded
    /// by this: on a 1-core container, `speedup ≈ 1.0` is the expected
    /// honest result, not an engine defect.
    pub cores: usize,
    /// `SERVAL_JOBS=1` equivalent (fresh engine, cold cache).
    pub sequential: EngineRun,
    /// Parallel run (fresh engine, cold cache).
    pub parallel: EngineRun,
    /// Rerun on the parallel engine's warm cache.
    pub warm: EngineRun,
}

fn verdicts(report: &ProofReport) -> Vec<(String, bool)> {
    report
        .theorems
        .iter()
        .map(|t| (t.name.clone(), t.verdict.is_proved()))
        .collect()
}

/// The workload: the CertiKOS^s refinement proof at `-O1` — the Fig. 11
/// unit of work whose per-op theorem batches the engine parallelizes.
fn workload(cfg: SolverConfig) -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg)
}

fn timed_run(jobs: usize, reuse_engine: bool) -> EngineRun {
    let engine = if reuse_engine {
        serval_engine::handle()
    } else {
        serval_engine::install(EngineCfg {
            jobs,
            portfolio: false,
            disk_cache: None,
            split: true,
            mode: DischargeMode::Session,
            presolve: serval_smt::presolve::env_enabled(),
            cert: EngineCfg::from_env().cert,
        })
    };
    let (h0, m0) = engine.cache_stats();
    let t0 = Instant::now();
    let report = workload(SolverConfig::default());
    let secs = t0.elapsed().as_secs_f64();
    let (h1, m1) = engine.cache_stats();
    EngineRun {
        jobs: engine.jobs(),
        secs,
        verdicts: verdicts(&report),
        cache_hits: h1 - h0,
        cache_misses: m1 - m0,
    }
}

/// Runs the comparison. The parallel worker count comes from
/// `SERVAL_JOBS` (default: available parallelism).
pub fn run() -> EngineBenchReport {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par_jobs = EngineCfg::from_env().jobs.max(2);
    let sequential = timed_run(1, false);
    let parallel = timed_run(par_jobs, false);
    // Same engine again: every query should now hit the in-memory cache.
    let warm = timed_run(par_jobs, true);
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    EngineBenchReport {
        cores,
        sequential,
        parallel,
        warm,
    }
}

impl EngineBenchReport {
    /// Whether the sequential and parallel runs proved exactly the same
    /// theorems.
    pub fn verdicts_equal(&self) -> bool {
        self.sequential.verdicts == self.parallel.verdicts
            && self.sequential.verdicts == self.warm.verdicts
    }

    /// Speedup of the parallel run over the sequential one.
    pub fn speedup(&self) -> f64 {
        self.sequential.secs / self.parallel.secs.max(1e-9)
    }

    /// Warm-run cache hit rate in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm.cache_hits + self.warm.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.warm.cache_hits as f64 / total as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &EngineRun) -> String {
            format!(
                "{{\"jobs\": {}, \"secs\": {:.6}, \"theorems\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}}}",
                r.jobs,
                r.secs,
                r.verdicts.len(),
                r.cache_hits,
                r.cache_misses
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (fig11 subset)\",\n  \
             \"cores\": {},\n  \
             \"sequential\": {},\n  \"parallel\": {},\n  \"warm\": {},\n  \
             \"speedup\": {:.3},\n  \"warm_hit_rate\": {:.3},\n  \
             \"verdicts_equal\": {}\n}}\n",
            self.cores,
            run_json(&self.sequential),
            run_json(&self.parallel),
            run_json(&self.warm),
            self.speedup(),
            self.warm_hit_rate(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!(
            "\nengine: sequential vs parallel (certikos refinement -O1, {} core{})",
            self.cores,
            if self.cores == 1 { "" } else { "s" }
        );
        println!(
            "  jobs=1  {:>8.2}s   jobs={} {:>8.2}s   speedup {:.2}x",
            self.sequential.secs, self.parallel.jobs, self.parallel.secs, self.speedup()
        );
        if self.cores == 1 {
            println!("  (single-core host: parallel parity, not speedup, is the ceiling)");
        }
        println!(
            "  warm rerun {:>8.2}s   cache hits {}/{} ({:.0}%)   verdicts equal: {}",
            self.warm.secs,
            self.warm.cache_hits,
            self.warm.cache_hits + self.warm.cache_misses,
            self.warm_hit_rate() * 100.0,
            self.verdicts_equal()
        );
    }
}
