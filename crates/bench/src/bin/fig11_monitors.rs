//! Experiment E3 — paper Fig. 11: sizes and verification times of the two
//! security monitors, broken down by theorem and by the optimization level
//! used to compile the implementation.
//!
//! The shapes to check against the paper: verification succeeds at every
//! optimization level; refinement dominates the safety (noninterference)
//! proof for CertiKOS^s while Komodo^s is the more expensive monitor
//! overall; times stay the same order of magnitude across `-O` levels
//! (the paper's §6.4 narrative after adding the symbolic optimizations).
//!
//! Run with: `cargo run --release -p serval-bench --bin fig11_monitors`

use serval_bench::{count_loc, print_table, workspace_root};
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_monitors::{certikos, komodo};
use serval_smt::solver::SolverConfig;
use std::time::Instant;

fn main() {
    let cfg = SolverConfig::default();
    let root = workspace_root().join("crates").join("monitors").join("src");

    let mut rows = Vec::new();
    rows.push((
        "lines of code (impl + stub)".to_string(),
        format!(
            "certikos {}   komodo {}",
            count_loc(&root.join("certikos")),
            count_loc(&root.join("komodo"))
        ),
    ));
    print_table("Fig. 11 (reproduction): monitor sizes", &rows);

    println!("verification times (seconds):");
    println!("{:<34} {:>10} {:>10}", "theorem", "certikos^s", "komodo^s");
    // SERVAL_FIG11_LEVELS=O1 (comma-separated) restricts the sweep for
    // quick runs; the default covers all three levels.
    let levels: Vec<OptLevel> = match std::env::var("SERVAL_FIG11_LEVELS") {
        Ok(s) => s
            .split(',')
            .map(|l| match l.trim() {
                "O0" => OptLevel::O0,
                "O1" => OptLevel::O1,
                "O2" => OptLevel::O2,
                other => panic!("bad level {other}"),
            })
            .collect(),
        Err(_) => OptLevel::ALL.to_vec(),
    };
    for level in levels {
        let t0 = Instant::now();
        let r = certikos::proofs::prove_refinement(level, OptCfg::default(), cfg);
        assert!(r.all_proved(), "certikos refinement at {level:?} failed");
        let certikos_t = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let r = komodo::proofs::prove_refinement(level, OptCfg::default(), cfg);
        assert!(r.all_proved(), "komodo refinement at {level:?} failed");
        let komodo_t = t0.elapsed().as_secs_f64();
        println!(
            "{:<34} {:>10.2} {:>10.2}",
            format!("refinement proof (-{level:?})"),
            certikos_t,
            komodo_t
        );
    }
    let t0 = Instant::now();
    let r = certikos::proofs::prove_noninterference(cfg);
    assert!(r.all_proved(), "certikos NI failed");
    let certikos_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let r = komodo::proofs::prove_noninterference(cfg);
    assert!(r.all_proved(), "komodo NI failed");
    let komodo_t = t0.elapsed().as_secs_f64();
    println!(
        "{:<34} {:>10.2} {:>10.2}",
        "safety (noninterference) proof", certikos_t, komodo_t
    );
    println!();
    let engine = serval_engine::handle();
    let (hits, misses) = engine.cache_stats();
    println!(
        "engine: {} worker(s) (SERVAL_JOBS), query cache {} hits / {} misses",
        engine.jobs(),
        hits,
        misses
    );
    println!();
    println!("paper (seconds, Intel i7-7700K): certikos refinement 92/138/133 (O0/O1/O2),");
    println!("safety 33; komodo refinement 275/309/289, safety 477");
}
