//! Runs every micro/meso benchmark and writes the results as JSON, so
//! per-commit `BENCH_*.json` trajectory files can be generated and
//! diffed.
//!
//! ```sh
//! cargo run --release -p serval-bench --bin bench_all            # → bench_results.json
//! cargo run --release -p serval-bench --bin bench_all -- --out BENCH_pr2.json
//! SERVAL_BENCH_SAMPLES=3 cargo run --release -p serval-bench --bin bench_all
//! ```

use std::path::PathBuf;

fn main() {
    let mut out = PathBuf::from("bench_results.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other} (supported: --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let mut h = serval_check::bench::Harness::new("serval");
    serval_bench::suites::solver(&mut h);
    serval_bench::suites::verification(&mut h);
    h.print_summary();
    if let Err(e) = h.write_json(&out) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nwrote {} ({} benchmarks)", out.display(), h.results.len());

    // The engine comparison: sequential vs parallel discharge of the
    // fig11 subset, plus a warm-cache rerun → BENCH_engine.json next to
    // the main results file.
    let engine_report = serval_bench::engine_bench::run();
    engine_report.print_summary();
    let engine_out = out
        .parent()
        .map(|d| d.join("BENCH_engine.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_engine.json"));
    if let Err(e) = engine_report.write_json(&engine_out) {
        eprintln!("failed to write {}: {e}", engine_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", engine_out.display());

    // Fresh-per-sub-query vs incremental sessions on the same workload
    // → BENCH_incremental.json.
    let inc_report = serval_bench::incremental_bench::run();
    inc_report.print_summary();
    let inc_out = out
        .parent()
        .map(|d| d.join("BENCH_incremental.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_incremental.json"));
    if let Err(e) = inc_report.write_json(&inc_out) {
        eprintln!("failed to write {}: {e}", inc_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", inc_out.display());

    // Raw vs presolved queries on the same workload
    // → BENCH_presolve.json.
    let pre_report = serval_bench::presolve_bench::run();
    pre_report.print_summary();
    let pre_out = out
        .parent()
        .map(|d| d.join("BENCH_presolve.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_presolve.json"));
    if let Err(e) = pre_report.write_json(&pre_out) {
        eprintln!("failed to write {}: {e}", pre_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", pre_out.display());

    // Plain CDCL vs inprocessing + polarity-aware CNF on the same
    // workload → BENCH_sat.json.
    let sat_report = serval_bench::sat_bench::run();
    sat_report.print_summary();
    let sat_out = out
        .parent()
        .map(|d| d.join("BENCH_sat.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_sat.json"));
    if let Err(e) = sat_report.write_json(&sat_out) {
        eprintln!("failed to write {}: {e}", sat_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", sat_out.display());

    // Uncertified vs certified discharge on the same workload
    // → BENCH_cert.json.
    let cert_report = serval_bench::cert_bench::run();
    cert_report.print_summary();
    let cert_out = out
        .parent()
        .map(|d| d.join("BENCH_cert.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_cert.json"));
    if let Err(e) = cert_report.write_json(&cert_out) {
        eprintln!("failed to write {}: {e}", cert_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", cert_out.display());

    // In-process vs loopback-server discharge on the same workload
    // → BENCH_net.json.
    let net_report = serval_bench::net_bench::run();
    net_report.print_summary();
    let net_out = out
        .parent()
        .map(|d| d.join("BENCH_net.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_net.json"));
    if let Err(e) = net_report.write_json(&net_out) {
        eprintln!("failed to write {}: {e}", net_out.display());
        std::process::exit(1);
    }
    println!("wrote {}", net_out.display());
}
