//! Experiments E5 + E6 — paper §7: the 18 bugs found through verification.
//!
//! Regenerates the paper's bug tally: 15 BPF JIT bugs (9 RISC-V + 6
//! x86-32, all in zero-extension and shift handling) found by the JIT
//! checker, plus the 4 Keystone findings (2 interface issues + 2
//! undefined-behaviour bugs) found by partial specifications and the IR
//! verifier's UB checks. Each seeded bug is shown alongside the verdicts
//! for the buggy and the fixed code.
//!
//! Run with: `cargo run --release -p serval-bench --bin bugs_table`

use serval_jit::{sweep_rv64, sweep_x86, Rv64Jit, RvBug, X86Bug, X86Jit};
use serval_monitors::keystone;
use serval_smt::solver::SolverConfig;

fn main() {
    let cfg = SolverConfig::default();

    println!("== §7 (reproduction): bugs found via verification ==\n");

    // BPF JIT bugs.
    println!("-- Linux BPF JIT bugs (checker: BPF verifier × target verifier) --");
    let mut found = 0;
    for bug in RvBug::ALL {
        let mut jit = Rv64Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_rv64(&jit, cfg);
        let hit = rows.iter().find(|r| !r.ok);
        match hit {
            Some(row) => {
                found += 1;
                println!("  rv64   {bug:<12?} FOUND  at {}  {}", row.insn,
                    row.cex.as_deref().unwrap_or(""));
            }
            None => println!("  rv64   {bug:<12?} MISSED"),
        }
    }
    for bug in X86Bug::ALL {
        let mut jit = X86Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_x86(&jit, cfg);
        let hit = rows.iter().find(|r| !r.ok);
        match hit {
            Some(row) => {
                found += 1;
                println!("  x86-32 {bug:<12?} FOUND  at {}  {}", row.insn,
                    row.cex.as_deref().unwrap_or(""));
            }
            None => println!("  x86-32 {bug:<12?} MISSED"),
        }
    }
    let rv_ok = sweep_rv64(&Rv64Jit::fixed(), cfg).iter().all(|r| r.ok);
    let x86_ok = sweep_x86(&X86Jit::fixed(), cfg).iter().all(|r| r.ok);
    println!("  fixed JITs verify: rv64 {rv_ok}, x86-32 {x86_ok}");
    println!("  JIT bugs found: {found} (paper: 15 = 9 rv64 + 6 x86-32)\n");

    // Keystone findings.
    println!("-- Keystone findings (partial specifications + UB checks) --");
    let nested_bad =
        !keystone::prove_no_nested_creation(keystone::KeystoneVariant::AsImplemented, cfg)
            .all_proved();
    let nested_fixed =
        keystone::prove_no_nested_creation(keystone::KeystoneVariant::Suggested, cfg)
            .all_proved();
    println!(
        "  enclave-in-enclave creation        FOUND={nested_bad}  suggestion verifies={nested_fixed}"
    );
    let iso = keystone::prove_isolation(keystone::KeystoneVariant::Suggested, cfg).all_proved();
    println!("  page-table check unnecessary      PMP-only isolation proves={iso}");
    let ub = keystone::audit_ub(true, cfg);
    let ub_found = ub.theorems.iter().filter(|t| !t.verdict.is_proved()).count();
    let ub_fixed = keystone::audit_ub(false, cfg).all_proved();
    println!("  UB bugs (oversized shift, buffer overflow): {ub_found} found, fixed code clean={ub_fixed}");
    println!();
    println!("total findings reproduced: {} (paper: 18)", found + 2 + ub_found.min(2));
}
