//! A/B diagnostic for incremental-session performance: runs the
//! CertiKOS^s `-O1` split refinement twice (fresh solvers, then live
//! sessions) on one worker and prints solver totals plus the slowest
//! theorems with their per-goal stats and session position. Interleave
//! several invocations when comparing wall times — single runs on a
//! shared host are dominated by machine noise. Not wired into any
//! suite; `BENCH_incremental.json` (via `bench_all`) is the tracked
//! artifact.

use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::time::Instant;

fn main() {
    for incremental in [false, true] {
        serval_engine::install(EngineCfg {
            jobs: 1,
            portfolio: false,
            disk_cache: None,
            split: true,
            mode: if incremental { DischargeMode::Session } else { DischargeMode::Fresh },
            presolve: serval_smt::presolve::env_enabled(),
            cert: EngineCfg::from_env().cert,
        });
        let t0 = Instant::now();
        let report = certikos::proofs::prove_refinement(
            OptLevel::O1,
            OptCfg::default(),
            SolverConfig::default(),
        );
        let secs = t0.elapsed().as_secs_f64();
        let t = report.solver_totals();
        println!(
            "incremental={incremental}: {secs:.2}s conflicts={} decisions={} props={} restarts={} learnts={} vars={} clauses={} reused_clauses={} session={} elim={} res={}",
            t.conflicts,
            t.decisions,
            t.propagations,
            t.restarts,
            t.learnts,
            t.vars,
            t.clauses,
            t.reused_clauses,
            t.session_goals,
            t.eliminated_vars,
            t.resolvents
        );
        let mut rows: Vec<_> = report
            .theorems
            .iter()
            .filter(|th| th.stats.is_some())
            .map(|th| {
                let s = th.stats.as_ref().unwrap();
                (
                    th.name.clone(),
                    s.session_goals,
                    s.wall.as_secs_f64(),
                    s.conflicts,
                    s.propagations,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        let solve_total: f64 = rows.iter().map(|r| r.2).sum();
        println!("  total in-solver wall {solve_total:.2}s; slowest theorems:");
        for (name, pos, wall, confl, props) in rows.iter().take(8) {
            println!(
                "    pos={pos:>3} wall={wall:>7.3}s conflicts={confl} props={props} {name}"
            );
        }
    }
}
