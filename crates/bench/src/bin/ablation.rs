//! Experiment E4 — paper §6.4: the symbolic optimizations are essential.
//!
//! The paper reports that with the symbolic optimizations disabled, the
//! refinement proofs of both monitors fail to terminate (two-hour
//! timeout), under any gcc optimization level. This harness disables each
//! optimization and reports the outcome:
//!
//! - without `split-pc`, symbolic evaluation of the monitor binary
//!   explores every instruction at every step and exhausts its evaluation
//!   fuel (the divergence the paper describes) — shown here on both a
//!   bounded monitor run and the ToyRISC walkthrough;
//! - without offset concretization, memory accesses fall back to symbolic
//!   division and quadratic field enumeration, blowing up solve times
//!   (bounded here by a conflict budget, reported as UNKNOWN).
//!
//! Run with: `cargo run --release -p serval-bench --bin ablation`

use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use serval_smt::reset_ctx;
use serval_sym::SymCtx;
use serval_toyrisc::{sign_program, Cpu, ToyRisc};
use std::time::Instant;

fn main() {
    let budget = SolverConfig {
        conflict_budget: Some(2_000_000),
        ..SolverConfig::default()
    };

    println!("§6.4 ablation (reproduction): disabling symbolic optimizations\n");

    // ToyRISC: merged-pc evaluation diverges (paper §3.2).
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut t = ToyRisc::new(sign_program());
    t.use_split_pc = false;
    t.fuel = 7;
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    println!(
        "toyrisc sign, split-pc OFF : diverged={} after {} splits (fuel 7)",
        o.diverged,
        ctx.profiler.total_splits()
    );
    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(sign_program());
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    println!(
        "toyrisc sign, split-pc ON  : diverged={} after {} splits\n",
        o.diverged,
        ctx.profiler.total_splits()
    );

    // CertiKOS^s get_quota with each optimization toggled.
    let cases: [(&str, OptCfg); 3] = [
        ("all optimizations", OptCfg::default()),
        (
            "split-pc disabled",
            OptCfg {
                split_pc: false,
                ..OptCfg::default()
            },
        ),
        (
            "offset concretization disabled",
            OptCfg {
                concretize_offsets: false,
                ..OptCfg::default()
            },
        ),
    ];
    println!("certikos^s get_quota refinement (conflict budget 2M):");
    for (name, optcfg) in cases {
        let t0 = Instant::now();
        let report = certikos::proofs::prove_op(
            certikos::sys::GET_QUOTA,
            OptLevel::O1,
            optcfg,
            budget,
        );
        let secs = t0.elapsed().as_secs_f64();
        let status = if report.all_proved() {
            "proved".to_string()
        } else if report.any_unknown() {
            "TIMEOUT (diverged or budget exhausted)".to_string()
        } else {
            "FAILED".to_string()
        };
        println!("  {name:<34} {secs:>8.2}s  {status}");
    }
    // split-cases (paper §4): per-call verification vs one monolithic
    // query with a symbolic call number over the whole dispatcher.
    println!();
    println!("certikos^s dispatch decomposition (split-cases):");
    let t0 = Instant::now();
    let per_call = certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), budget);
    let per_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mono = certikos::proofs::prove_monolithic(OptLevel::O1, OptCfg::default(), budget);
    let mono_secs = t0.elapsed().as_secs_f64();
    println!(
        "  per-call (split-cases)             {per_secs:>8.2}s  {}",
        if per_call.all_proved() { "proved" } else { "FAILED/TIMEOUT" }
    );
    println!(
        "  monolithic (one symbolic query)    {mono_secs:>8.2}s  {}",
        if mono.all_proved() {
            "proved"
        } else if mono.any_unknown() {
            "TIMEOUT (budget exhausted)"
        } else {
            "FAILED"
        }
    );
    println!();
    println!("paper: with optimizations disabled, neither monitor's refinement proof");
    println!("terminates within two hours at any gcc optimization level.");
}
