//! Experiment E2 — paper Fig. 7: line counts of the Serval framework and
//! the verifiers built with it.
//!
//! The paper reports Rosette line counts (framework 1,244; RISC-V 1,036;
//! x86-32 856; LLVM 789; BPF 472). This reproduction is in Rust, which is
//! considerably more verbose than Rosette, and it additionally implements
//! the substrates Rosette/Z3 provided for free; the *shape* to check is
//! that each verifier is small (about a thousand lines) relative to the
//! systems it verifies.
//!
//! Run with: `cargo run -p serval-bench --bin fig7_loc`

use serval_bench::{count_loc, print_table, workspace_root};

fn main() {
    let root = workspace_root().join("crates");
    let rows_spec: &[(&str, &[&str])] = &[
        ("Serval framework (core+sym)", &["core", "sym"]),
        ("RISC-V verifier", &["riscv"]),
        ("x86-32 verifier", &["x86"]),
        ("LLVM-style IR verifier + compiler", &["ir"]),
        ("BPF verifier", &["bpf"]),
        ("-- substrates the paper got from Rosette/Z3 --", &[]),
        ("SAT solver", &["sat"]),
        ("SMT bitvector layer", &["smt"]),
        ("-- systems studied --", &[]),
        ("monitors (CertiKOS^s, Komodo^s, Keystone)", &["monitors"]),
        ("BPF JITs + checker", &["jit"]),
        ("ToyRISC", &["toyrisc"]),
    ];
    let mut rows = Vec::new();
    let mut total = 0;
    for (name, dirs) in rows_spec {
        if dirs.is_empty() {
            rows.push((name.to_string(), String::new()));
            continue;
        }
        let n: usize = dirs.iter().map(|d| count_loc(&root.join(d))).sum();
        total += n;
        rows.push((name.to_string(), n.to_string()));
    }
    rows.push(("total".to_string(), total.to_string()));
    print_table(
        "Fig. 7 (reproduction): line counts of the framework and verifiers",
        &rows,
    );
    println!("paper (Rosette): framework 1244, riscv 1036, x86-32 856, llvm 789, bpf 472, total 4397");
}
