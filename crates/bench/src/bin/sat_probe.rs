//! Quick config-matrix probe for the core-solver work: one cold run of
//! the certikos `-O1` refinement per invocation, with the discharge
//! mode and solver features picked by environment variables, printing
//! wall time and the solver totals on one line. A developer tool for
//! iterating on inprocessing heuristics without waiting for the full
//! best-of-N `bench_all` comparison.
//!
//! ```sh
//! P_INC=0 P_INP=1 P_POL=1 cargo run --release -p serval-bench --bin sat_probe
//! ```

use serval_core::OptCfg;
use serval_engine::EngineCfg;
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::time::Instant;

fn flag(name: &str, default: bool) -> bool {
    std::env::var(name).map(|v| v.trim() == "1").unwrap_or(default)
}

fn main() {
    let inc = flag("P_INC", true);
    let inp = flag("P_INP", true);
    let pol = flag("P_POL", true);
    serval_engine::install(EngineCfg {
        jobs: EngineCfg::from_env().jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        incremental: inc,
        presolve: serval_smt::presolve::env_enabled(),
        cert: EngineCfg::from_env().cert,
    });
    let cfg = SolverConfig { inprocess: inp, polarity: pol, ..SolverConfig::default() };
    let t0 = Instant::now();
    let report =
        certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg);
    let secs = t0.elapsed().as_secs_f64();
    let t = report.solver_totals();
    println!(
        "inc={} inp={} pol={} wall={:.2}s proved={}/{} conflicts={} props={} \
         vars={} clauses={} elim={} sub={} str={} res={} cert_wall={:.2}s",
        inc as u8,
        inp as u8,
        pol as u8,
        secs,
        report.theorems.iter().filter(|t| t.verdict.is_proved()).count(),
        report.theorems.len(),
        t.conflicts,
        t.propagations,
        t.vars,
        t.clauses,
        t.eliminated_vars,
        t.subsumed,
        t.strengthened,
        t.resolvents,
        t.cert_wall.as_secs_f64(),
    );
}
