//! Quick config-matrix probe for the core-solver work: cold runs of
//! the certikos `-O1` refinement with the discharge mode and solver
//! features picked by environment variables, printing wall time and
//! the solver totals on one line per leg. A developer tool for
//! iterating on inprocessing heuristics without waiting for the full
//! best-of-N `bench_all` comparison.
//!
//! One-shot (leg picked by env):
//!
//! ```sh
//! P_INC=0 P_INP=1 P_POL=1 cargo run --release -p serval-bench --bin sat_probe
//! ```
//!
//! Whole session×inprocess×polarity matrix from one binary — fresh and
//! session discharge legs, plus session-BVE off/on isolation legs on
//! the sessioned inprocessing rows:
//!
//! ```sh
//! cargo run --release -p serval-bench --bin sat_probe -- --session
//! ```

use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::time::Instant;

fn flag(name: &str, default: bool) -> bool {
    std::env::var(name).map(|v| v.trim() == "1").unwrap_or(default)
}

/// One cold refinement run under the given discharge/solver leg.
fn probe(inc: bool, inp: bool, pol: bool, sbve: bool) {
    serval_engine::install(EngineCfg {
        jobs: EngineCfg::from_env().jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: if inc { DischargeMode::Session } else { DischargeMode::Fresh },
        presolve: serval_smt::presolve::env_enabled(),
        cert: EngineCfg::from_env().cert,
    });
    let cfg = SolverConfig {
        inprocess: inp,
        polarity: pol,
        session_bve: sbve,
        ..SolverConfig::default()
    };
    let t0 = Instant::now();
    let report = certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg);
    let secs = t0.elapsed().as_secs_f64();
    let t = report.solver_totals();
    println!(
        "inc={} inp={} pol={} sbve={} wall={:.2}s proved={}/{} conflicts={} props={} \
         vars={} clauses={} elim={} sub={} str={} res={} cert_wall={:.2}s",
        inc as u8,
        inp as u8,
        pol as u8,
        sbve as u8,
        secs,
        report.theorems.iter().filter(|t| t.verdict.is_proved()).count(),
        report.theorems.len(),
        t.conflicts,
        t.propagations,
        t.vars,
        t.clauses,
        t.eliminated_vars,
        t.subsumed,
        t.strengthened,
        t.resolvents,
        t.cert_wall.as_secs_f64(),
    );
}

fn main() {
    if std::env::args().any(|a| a == "--session") {
        // The full discharge-mode matrix. Session BVE only exists on
        // the sessioned inprocessing legs, where it gets an off/on
        // pair; everywhere else it rides along with `inp` (it is
        // inert without sessions or inprocessing).
        for inc in [false, true] {
            for inp in [false, true] {
                for pol in [false, true] {
                    if inc && inp {
                        probe(inc, inp, pol, false);
                        probe(inc, inp, pol, true);
                    } else {
                        probe(inc, inp, pol, inp);
                    }
                }
            }
        }
        return;
    }
    let inc = flag("P_INC", true);
    let inp = flag("P_INP", true);
    let pol = flag("P_POL", true);
    let sbve = flag("P_SBVE", inp);
    probe(inc, inp, pol, sbve);
}
