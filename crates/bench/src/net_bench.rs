//! The verification-service benchmark: the CertiKOS^s `-O1` refinement
//! workload discharged in-process vs through a loopback `servald`, plus
//! a small-query latency probe. Emitted as `BENCH_net.json` by
//! `bench_all`.
//!
//! Three timed runs of the same workload: `local` (in-process engine,
//! the baseline), `remote_cold` (every obligation serialized, routed
//! across the server's shards, solved, and shipped back), and
//! `remote_warm` (same server again, so shard verdict-cache partitions
//! and the hot tier answer). The headline honesty check is
//! `verdicts_equal`: the wire must change *nothing* about what is
//! proved. On a 1-CPU container the interesting numbers are the wire
//! overhead ratio, the warm hit rate through the server, and the
//! per-shard work spread — not parallel speedup.

use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{Discharge, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_net::service::NetCfg;
use serval_net::wire::ShardStatsRow;
use serval_net::{Client, RemoteEngine, Server};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One timed run of the refinement workload.
pub struct NetRun {
    /// Wall time (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
}

/// The small-query latency probe (one query per frame, round-trip).
pub struct ProbeStats {
    /// Queries probed.
    pub queries: usize,
    /// Round-trips per second over the probe loop.
    pub qps: f64,
    /// Median round-trip, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile round-trip, microseconds.
    pub p95_micros: u64,
}

/// In-process vs loopback-server discharge.
pub struct NetBenchReport {
    /// Shards the server ran.
    pub shards: usize,
    /// Workers per shard.
    pub shard_jobs: usize,
    /// In-process baseline.
    pub local: NetRun,
    /// First run through the server (cold shard caches).
    pub remote_cold: NetRun,
    /// Second run through the same server (warm shard caches + hot tier).
    pub remote_warm: NetRun,
    /// Per-shard stats after both remote runs.
    pub shard_rows: Vec<ShardStatsRow>,
    /// Hot-tier hits across both remote runs.
    pub hot_hits: u64,
    /// (shard hits + hot hits) / (shard queued + hot hits) during the
    /// warm run only.
    pub warm_hit_rate: f64,
    /// Shards that did work (`queued > 0`).
    pub shards_exercised: usize,
    /// Wire payload bytes sent / received across both remote runs.
    pub bytes_sent: u64,
    /// See `bytes_sent`.
    pub bytes_received: u64,
    /// The latency probe.
    pub probe: ProbeStats,
}

fn workload() -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), SolverConfig::default())
}

fn verdicts_of(report: &ProofReport) -> Vec<(String, bool)> {
    report
        .theorems
        .iter()
        .map(|t| (t.name.clone(), t.verdict.is_proved()))
        .collect()
}

fn timed_run() -> NetRun {
    let t0 = Instant::now();
    let report = workload();
    NetRun { secs: t0.elapsed().as_secs_f64(), verdicts: verdicts_of(&report) }
}

/// 200 distinct single-query round trips against the running server;
/// distinct forms, so each probe pays serialize + route + solve + reply.
fn probe_latency(addr: &str) -> ProbeStats {
    let mut client = Client::connect(addr).expect("probe client must connect");
    let queries = 200usize;
    let mut micros: Vec<u64> = Vec::with_capacity(queries);
    let t0 = Instant::now();
    for i in 0..queries {
        reset_ctx();
        let x = BV::fresh(32, "x");
        let k = BV::lit(32, i as u128 + 1);
        let q = serval_engine::Query {
            label: format!("probe/{i}"),
            assumptions: vec![],
            goal: (x & k).ule(x | k),
            cfg: SolverConfig::default(),
        };
        let t = Instant::now();
        let out = client.submit_batch(vec![q]).expect("probe batch must succeed");
        micros.push(t.elapsed().as_micros() as u64);
        assert!(
            matches!(out[0].result, serval_smt::solver::VerifyResult::Proved),
            "probe tautology {i} came back {:?}",
            out[0].result
        );
    }
    let total = t0.elapsed().as_secs_f64();
    micros.sort_unstable();
    ProbeStats {
        queries,
        qps: queries as f64 / total.max(1e-9),
        p50_micros: micros[queries / 2],
        p95_micros: micros[queries * 95 / 100],
    }
}

/// Runs the comparison: local baseline, then cold + warm through one
/// loopback server, then the latency probe against the same (now warm)
/// server.
pub fn run() -> NetBenchReport {
    // Local baseline on a fresh in-process engine.
    serval_engine::clear_discharger();
    serval_engine::install(EngineCfg { disk_cache: None, ..EngineCfg::from_env() });
    let local = timed_run();

    // One loopback server for both remote runs: at least 2 shards so the
    // routing/reassembly machinery is actually exercised.
    let mut cfg = NetCfg::from_env();
    cfg.shards = cfg.shards.max(2);
    cfg.engine.disk_cache = None;
    let shards = cfg.shards;
    let server = Server::bind("127.0.0.1:0", cfg).expect("loopback bind must succeed");
    let addr = server.local_addr().to_string();
    let shard_jobs = server.core().shard_jobs();

    let remote = Arc::new(RemoteEngine::connect(&addr).expect("bench client must connect"));
    serval_engine::install_discharger(Arc::clone(&remote) as Arc<dyn Discharge>);
    let remote_cold = timed_run();
    let after_cold = server.core().stats();
    let remote_warm = timed_run();
    serval_engine::clear_discharger();
    let stats = server.core().stats();
    let (bytes_sent, bytes_received) = remote.bytes();

    let probe = probe_latency(&addr);
    server.shutdown();

    // Warm-run deltas: how much of the rerun the server answered from
    // its shard cache partitions and the hot tier.
    let row_sum = |rows: &[ShardStatsRow], f: fn(&ShardStatsRow) -> u64| -> u64 {
        rows.iter().map(f).sum()
    };
    let warm_hits = row_sum(&stats.shards, |r| r.hits) - row_sum(&after_cold.shards, |r| r.hits)
        + (stats.hot_hits - after_cold.hot_hits);
    let warm_routed = row_sum(&stats.shards, |r| r.queued)
        - row_sum(&after_cold.shards, |r| r.queued)
        + (stats.hot_hits - after_cold.hot_hits);
    let warm_hit_rate = if warm_routed == 0 { 0.0 } else { warm_hits as f64 / warm_routed as f64 };
    let shards_exercised = stats.shards.iter().filter(|r| r.queued > 0).count();

    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    NetBenchReport {
        shards,
        shard_jobs,
        local,
        remote_cold,
        remote_warm,
        shard_rows: stats.shards,
        hot_hits: stats.hot_hits,
        warm_hit_rate,
        shards_exercised,
        bytes_sent,
        bytes_received,
        probe,
    }
}

impl NetBenchReport {
    /// Whether all three runs proved exactly the same theorems
    /// (per-theorem, in order).
    pub fn verdicts_equal(&self) -> bool {
        self.local.verdicts == self.remote_cold.verdicts
            && self.local.verdicts == self.remote_warm.verdicts
    }

    /// Remote cold wall over local wall — what the wire costs.
    pub fn overhead_ratio(&self) -> f64 {
        self.remote_cold.secs / self.local.secs.max(1e-9)
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &NetRun) -> String {
            format!("{{\"secs\": {:.6}, \"theorems\": {}}}", r.secs, r.verdicts.len())
        }
        let rows: Vec<String> = self
            .shard_rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"shard\": {}, \"queued\": {}, \"solved\": {}, \"hits\": {}, \
                     \"cert_checked\": {}, \"mode_session\": {}, \"mode_fresh\": {}}}",
                    r.shard,
                    r.queued,
                    r.solved,
                    r.hits,
                    r.cert_checked,
                    r.mode_session,
                    r.mode_fresh
                )
            })
            .collect();
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 via loopback servald\",\n  \
             \"shards\": {},\n  \"shard_jobs\": {},\n  \
             \"local\": {},\n  \"remote_cold\": {},\n  \"remote_warm\": {},\n  \
             \"overhead_ratio\": {:.3},\n  \"warm_hit_rate\": {:.4},\n  \
             \"hot_hits\": {},\n  \"shards_exercised\": {},\n  \
             \"bytes_sent\": {},\n  \"bytes_received\": {},\n  \
             \"probe\": {{\"queries\": {}, \"qps\": {:.1}, \"p50_micros\": {}, \
             \"p95_micros\": {}}},\n  \
             \"per_shard\": [{}],\n  \"verdicts_equal\": {}\n}}\n",
            self.shards,
            self.shard_jobs,
            run_json(&self.local),
            run_json(&self.remote_cold),
            run_json(&self.remote_warm),
            self.overhead_ratio(),
            self.warm_hit_rate,
            self.hot_hits,
            self.shards_exercised,
            self.bytes_sent,
            self.bytes_received,
            self.probe.queries,
            self.probe.qps,
            self.probe.p50_micros,
            self.probe.p95_micros,
            rows.join(", "),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!(
            "\nnet: in-process vs loopback servald (certikos refinement -O1, {} shards x {} workers)",
            self.shards, self.shard_jobs
        );
        println!(
            "  local {:>8.2}s   remote cold {:>8.2}s ({:.2}x)   remote warm {:>8.2}s",
            self.local.secs,
            self.remote_cold.secs,
            self.overhead_ratio(),
            self.remote_warm.secs
        );
        println!(
            "  warm hit rate {:.1}%   hot hits {}   shards exercised {}/{}   wire {} B out / {} B in",
            self.warm_hit_rate * 100.0,
            self.hot_hits,
            self.shards_exercised,
            self.shards,
            self.bytes_sent,
            self.bytes_received
        );
        for r in &self.shard_rows {
            println!(
                "    shard {}: queued {}, solved {}, hits {}, certs {}, sessions {}, fresh {}",
                r.shard, r.queued, r.solved, r.hits, r.cert_checked, r.mode_session, r.mode_fresh
            );
        }
        println!(
            "  probe: {} round-trips, {:.0} qps, p50 {}us, p95 {}us",
            self.probe.queries, self.probe.qps, self.probe.p50_micros, self.probe.p95_micros
        );
        println!("  verdicts equal: {}", self.verdicts_equal());
    }
}
