//! The incremental-discharge benchmark: fresh-solver-per-sub-query vs
//! one live session per shared assumption set, on the CertiKOS^s `-O1`
//! split refinement workload. Emitted as `BENCH_incremental.json` by
//! `bench_all` (same schema conventions as `BENCH_engine.json`).
//!
//! Four discharge configurations are compared: fresh solvers, sessions
//! *without* plan-scoped elimination (the pre-elimination session, kept
//! as the historical baseline), sessions with plan-scoped elimination
//! (the default — the `session_inprocess` row), and adaptive
//! `SERVAL_MODE=auto` (the `mode_auto` row, which also reports how the
//! reuse predictor split the assumption groups).

use crate::CacheRow;
use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed run of the refinement workload.
pub struct IncRun {
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Total SAT variables *encoded* (per-goal deltas for sessions, so
    /// the number is directly comparable to the fresh-solver total).
    pub sat_vars: usize,
    /// Total SAT clauses encoded (same delta convention).
    pub sat_clauses: usize,
    /// Clauses answered from a live session instead of re-blasted.
    pub reused_clauses: usize,
    /// Theorems discharged inside a live session.
    pub session_theorems: u64,
    /// Assumption groups discharged as live sessions during the run.
    pub mode_session: u64,
    /// Assumption groups discharged with fresh per-goal solvers.
    pub mode_fresh: u64,
    /// Cache accounting for this run (shared row; see [`CacheRow`]).
    pub cache: CacheRow,
}

/// The discharge configurations compared, each cold (new engine) and —
/// for the fresh/session/inprocess legs — warm (cache rerun).
pub struct IncrementalBenchReport {
    /// `SERVAL_INCREMENTAL=0` equivalent, cold cache.
    pub fresh_cold: IncRun,
    /// Rerun on the fresh engine's warm cache.
    pub fresh_warm: IncRun,
    /// Sessions with plan-scoped elimination off
    /// (`SERVAL_SESSION_INPROCESS=0`): the pre-elimination session.
    pub session_cold: IncRun,
    /// Rerun on that engine's warm cache.
    pub session_warm: IncRun,
    /// Sessions with plan-scoped elimination on (the default config).
    pub inproc_cold: IncRun,
    /// Rerun on that engine's warm cache.
    pub inproc_warm: IncRun,
    /// `SERVAL_MODE=auto`, cold cache: the reuse predictor picks
    /// session vs fresh per assumption group.
    pub auto_cold: IncRun,
}

fn workload(cfg: SolverConfig) -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg)
}

fn run_once(mode: DischargeMode, session_bve: bool, reuse_engine: bool) -> IncRun {
    let engine = if reuse_engine {
        serval_engine::handle()
    } else {
        serval_engine::install(EngineCfg {
            jobs: EngineCfg::from_env().jobs,
            portfolio: false,
            disk_cache: None,
            split: true,
            mode,
            presolve: serval_smt::presolve::env_enabled(),
            cert: EngineCfg::from_env().cert,
        })
    };
    let before = CacheRow::snapshot(&engine);
    let (ms0, mf0) = engine.mode_counts();
    let t0 = Instant::now();
    let report = workload(SolverConfig { session_bve, ..SolverConfig::default() });
    let secs = t0.elapsed().as_secs_f64();
    let cache = CacheRow::snapshot(&engine).since(&before);
    let (ms1, mf1) = engine.mode_counts();
    let totals = report.solver_totals();
    IncRun {
        secs,
        verdicts: report
            .theorems
            .iter()
            .map(|t| (t.name.clone(), t.verdict.is_proved()))
            .collect(),
        sat_vars: totals.vars,
        sat_clauses: totals.clauses,
        reused_clauses: totals.reused_clauses,
        session_theorems: totals.session_goals,
        mode_session: ms1 - ms0,
        mode_fresh: mf1 - mf0,
        cache,
    }
}

/// Best-of-N cold run (each sample on a freshly installed engine, so
/// every sample really is cold). Wall noise on a shared single-core
/// host swamps a single measurement; min-of-N is the same convention
/// the `serval-check` bench harness uses.
fn run_cold(mode: DischargeMode, session_bve: bool, samples: usize) -> IncRun {
    let mut best = run_once(mode, session_bve, false);
    for _ in 1..samples {
        let r = run_once(mode, session_bve, false);
        if r.secs < best.secs {
            best = r;
        }
    }
    best
}

/// Runs the comparison.
pub fn run() -> IncrementalBenchReport {
    let samples: usize = std::env::var("SERVAL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    // Each warm run reuses the engine installed by that mode's final
    // cold sample, so its cache is genuinely warm.
    let fresh_cold = run_cold(DischargeMode::Fresh, true, samples);
    let fresh_warm = run_once(DischargeMode::Fresh, true, true);
    let session_cold = run_cold(DischargeMode::Session, false, samples);
    let session_warm = run_once(DischargeMode::Session, false, true);
    let inproc_cold = run_cold(DischargeMode::Session, true, samples);
    let inproc_warm = run_once(DischargeMode::Session, true, true);
    let auto_cold = run_cold(DischargeMode::Auto, true, samples);
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    IncrementalBenchReport {
        fresh_cold,
        fresh_warm,
        session_cold,
        session_warm,
        inproc_cold,
        inproc_warm,
        auto_cold,
    }
}

impl IncrementalBenchReport {
    /// Whether every run proved exactly the same theorems.
    pub fn verdicts_equal(&self) -> bool {
        let base = &self.fresh_cold.verdicts;
        [
            &self.fresh_warm,
            &self.session_cold,
            &self.session_warm,
            &self.inproc_cold,
            &self.inproc_warm,
            &self.auto_cold,
        ]
        .iter()
        .all(|r| &r.verdicts == base)
    }

    /// Cold-run speedup of default sessions (plan-scoped elimination
    /// on) over fresh solvers — the headline number the
    /// `SERVAL_INCREMENTAL` default follows.
    pub fn cold_speedup(&self) -> f64 {
        self.fresh_cold.secs / self.inproc_cold.secs.max(1e-9)
    }

    /// Cold-run speedup of the *pre-elimination* session over fresh
    /// solvers (the historical baseline elimination reclaimed).
    pub fn cold_speedup_noelim(&self) -> f64 {
        self.fresh_cold.secs / self.session_cold.secs.max(1e-9)
    }

    /// Cold-run speedup of adaptive mode over fresh solvers.
    pub fn auto_speedup(&self) -> f64 {
        self.fresh_cold.secs / self.auto_cold.secs.max(1e-9)
    }

    /// The worst of the warm runs' cache coverage — asserting the
    /// same batch invariant as the presolve harness, through the same
    /// [`CacheRow`] code path: a genuinely warm rerun covers every
    /// non-trivial query in every discharge mode.
    pub fn warm_hit_rate(&self) -> f64 {
        self.fresh_warm
            .cache
            .hit_rate()
            .min(self.session_warm.cache.hit_rate())
            .min(self.inproc_warm.cache.hit_rate())
    }

    /// Fraction of the fresh encoding work (SAT vars) sessions avoid.
    pub fn encoded_vars_ratio(&self) -> f64 {
        if self.fresh_cold.sat_vars == 0 {
            1.0
        } else {
            self.inproc_cold.sat_vars as f64 / self.fresh_cold.sat_vars as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &IncRun) -> String {
            format!(
                "{{\"secs\": {:.6}, \"theorems\": {}, \"sat_vars\": {}, \
                 \"sat_clauses\": {}, \"reused_clauses\": {}, \
                 \"session_theorems\": {}, \"mode_session\": {}, \
                 \"mode_fresh\": {}, {}}}",
                r.secs,
                r.verdicts.len(),
                r.sat_vars,
                r.sat_clauses,
                r.reused_clauses,
                r.session_theorems,
                r.mode_session,
                r.mode_fresh,
                r.cache.json_fields()
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (split sub-queries)\",\n  \
             \"fresh_cold\": {},\n  \"session_cold\": {},\n  \
             \"session_inprocess\": {},\n  \"mode_auto\": {},\n  \
             \"fresh_warm\": {},\n  \"session_warm\": {},\n  \
             \"session_inprocess_warm\": {},\n  \
             \"cold_speedup\": {:.3},\n  \"cold_speedup_noelim\": {:.3},\n  \
             \"auto_speedup\": {:.3},\n  \"encoded_vars_ratio\": {:.3},\n  \
             \"warm_hit_rate\": {:.3},\n  \
             \"verdicts_equal\": {}\n}}\n",
            run_json(&self.fresh_cold),
            run_json(&self.session_cold),
            run_json(&self.inproc_cold),
            run_json(&self.auto_cold),
            run_json(&self.fresh_warm),
            run_json(&self.session_warm),
            run_json(&self.inproc_warm),
            self.cold_speedup(),
            self.cold_speedup_noelim(),
            self.auto_speedup(),
            self.encoded_vars_ratio(),
            self.warm_hit_rate(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\nincremental: fresh vs session (certikos refinement -O1)");
        println!(
            "  cold   fresh {:>8.2}s   session(no-elim) {:>8.2}s   session {:>8.2}s   auto {:>8.2}s",
            self.fresh_cold.secs,
            self.session_cold.secs,
            self.inproc_cold.secs,
            self.auto_cold.secs,
        );
        println!(
            "  speedup vs fresh   session(no-elim) {:.2}x   session {:.2}x   auto {:.2}x",
            self.cold_speedup_noelim(),
            self.cold_speedup(),
            self.auto_speedup()
        );
        println!(
            "  encoded  fresh {} vars / {} clauses   session {} vars / {} clauses ({:.0}% of fresh vars)",
            self.fresh_cold.sat_vars,
            self.fresh_cold.sat_clauses,
            self.inproc_cold.sat_vars,
            self.inproc_cold.sat_clauses,
            self.encoded_vars_ratio() * 100.0
        );
        println!(
            "  session discharged {} theorems incrementally, reusing {} clauses",
            self.inproc_cold.session_theorems, self.inproc_cold.reused_clauses
        );
        println!(
            "  auto split {} session groups / {} fresh groups",
            self.auto_cold.mode_session, self.auto_cold.mode_fresh
        );
        println!(
            "  warm   fresh {:>8.2}s   session {:>8.2}s   verdicts equal: {}",
            self.fresh_warm.secs,
            self.inproc_warm.secs,
            self.verdicts_equal()
        );
        println!(
            "  warm coverage  fresh {}/{} hits   session {}/{} hits   rate {:.2}",
            self.fresh_warm.cache.hits,
            self.fresh_warm.cache.queries - self.fresh_warm.cache.trivial,
            self.inproc_warm.cache.hits,
            self.inproc_warm.cache.queries - self.inproc_warm.cache.trivial,
            self.warm_hit_rate()
        );
    }
}
