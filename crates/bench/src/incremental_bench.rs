//! The incremental-discharge benchmark: fresh-solver-per-sub-query vs
//! one live session per shared assumption set, on the CertiKOS^s `-O1`
//! split refinement workload. Emitted as `BENCH_incremental.json` by
//! `bench_all` (same schema conventions as `BENCH_engine.json`).

use crate::CacheRow;
use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::EngineCfg;
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed run of the refinement workload.
pub struct IncRun {
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Total SAT variables *encoded* (per-goal deltas for sessions, so
    /// the number is directly comparable to the fresh-solver total).
    pub sat_vars: usize,
    /// Total SAT clauses encoded (same delta convention).
    pub sat_clauses: usize,
    /// Clauses answered from a live session instead of re-blasted.
    pub reused_clauses: usize,
    /// Theorems discharged inside a live session.
    pub session_theorems: u64,
    /// Cache accounting for this run (shared row; see [`CacheRow`]).
    pub cache: CacheRow,
}

/// Fresh vs session, each cold (new engine) and warm (cache rerun).
pub struct IncrementalBenchReport {
    /// `SERVAL_INCREMENTAL=0` equivalent, cold cache.
    pub fresh_cold: IncRun,
    /// Rerun on the fresh engine's warm cache.
    pub fresh_warm: IncRun,
    /// Incremental sessions (the default), cold cache.
    pub session_cold: IncRun,
    /// Rerun on the session engine's warm cache.
    pub session_warm: IncRun,
}

fn workload() -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), SolverConfig::default())
}

fn run_once(incremental: bool, reuse_engine: bool) -> IncRun {
    let engine = if reuse_engine {
        serval_engine::handle()
    } else {
        serval_engine::install(EngineCfg {
            jobs: EngineCfg::from_env().jobs,
            portfolio: false,
            disk_cache: None,
            split: true,
            incremental,
            presolve: serval_smt::presolve::env_enabled(),
            cert: EngineCfg::from_env().cert,
        })
    };
    let before = CacheRow::snapshot(&engine);
    let t0 = Instant::now();
    let report = workload();
    let secs = t0.elapsed().as_secs_f64();
    let cache = CacheRow::snapshot(&engine).since(&before);
    let totals = report.solver_totals();
    IncRun {
        secs,
        verdicts: report
            .theorems
            .iter()
            .map(|t| (t.name.clone(), t.verdict.is_proved()))
            .collect(),
        sat_vars: totals.vars,
        sat_clauses: totals.clauses,
        reused_clauses: totals.reused_clauses,
        session_theorems: totals.session_goals,
        cache,
    }
}

/// Best-of-N cold run (each sample on a freshly installed engine, so
/// every sample really is cold). Wall noise on a shared single-core
/// host swamps a single measurement; min-of-N is the same convention
/// the `serval-check` bench harness uses.
fn run_cold(incremental: bool, samples: usize) -> IncRun {
    let mut best = run_once(incremental, false);
    for _ in 1..samples {
        let r = run_once(incremental, false);
        if r.secs < best.secs {
            best = r;
        }
    }
    best
}

/// Runs the four-way comparison.
pub fn run() -> IncrementalBenchReport {
    let samples: usize = std::env::var("SERVAL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    // Each warm run reuses the engine installed by that mode's final
    // cold sample, so its cache is genuinely warm.
    let fresh_cold = run_cold(false, samples);
    let fresh_warm = run_once(false, true);
    let session_cold = run_cold(true, samples);
    let session_warm = run_once(true, true);
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    IncrementalBenchReport {
        fresh_cold,
        fresh_warm,
        session_cold,
        session_warm,
    }
}

impl IncrementalBenchReport {
    /// Whether all four runs proved exactly the same theorems.
    pub fn verdicts_equal(&self) -> bool {
        self.fresh_cold.verdicts == self.session_cold.verdicts
            && self.fresh_cold.verdicts == self.fresh_warm.verdicts
            && self.fresh_cold.verdicts == self.session_warm.verdicts
    }

    /// Cold-run speedup of sessions over fresh solvers.
    pub fn cold_speedup(&self) -> f64 {
        self.fresh_cold.secs / self.session_cold.secs.max(1e-9)
    }

    /// The worse of the two warm runs' cache coverage — asserting the
    /// same batch invariant as the presolve harness, through the same
    /// [`CacheRow`] code path: a genuinely warm rerun covers every
    /// non-trivial query in either discharge mode.
    pub fn warm_hit_rate(&self) -> f64 {
        self.fresh_warm.cache.hit_rate().min(self.session_warm.cache.hit_rate())
    }

    /// Fraction of the fresh encoding work (SAT vars) sessions avoid.
    pub fn encoded_vars_ratio(&self) -> f64 {
        if self.fresh_cold.sat_vars == 0 {
            1.0
        } else {
            self.session_cold.sat_vars as f64 / self.fresh_cold.sat_vars as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &IncRun) -> String {
            format!(
                "{{\"secs\": {:.6}, \"theorems\": {}, \"sat_vars\": {}, \
                 \"sat_clauses\": {}, \"reused_clauses\": {}, \
                 \"session_theorems\": {}, {}}}",
                r.secs,
                r.verdicts.len(),
                r.sat_vars,
                r.sat_clauses,
                r.reused_clauses,
                r.session_theorems,
                r.cache.json_fields()
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (split sub-queries)\",\n  \
             \"fresh_cold\": {},\n  \"session_cold\": {},\n  \
             \"fresh_warm\": {},\n  \"session_warm\": {},\n  \
             \"cold_speedup\": {:.3},\n  \"encoded_vars_ratio\": {:.3},\n  \
             \"warm_hit_rate\": {:.3},\n  \
             \"verdicts_equal\": {}\n}}\n",
            run_json(&self.fresh_cold),
            run_json(&self.session_cold),
            run_json(&self.fresh_warm),
            run_json(&self.session_warm),
            self.cold_speedup(),
            self.encoded_vars_ratio(),
            self.warm_hit_rate(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\nincremental: fresh vs session (certikos refinement -O1)");
        println!(
            "  cold   fresh {:>8.2}s   session {:>8.2}s   speedup {:.2}x",
            self.fresh_cold.secs,
            self.session_cold.secs,
            self.cold_speedup()
        );
        println!(
            "  encoded  fresh {} vars / {} clauses   session {} vars / {} clauses ({:.0}% of fresh vars)",
            self.fresh_cold.sat_vars,
            self.fresh_cold.sat_clauses,
            self.session_cold.sat_vars,
            self.session_cold.sat_clauses,
            self.encoded_vars_ratio() * 100.0
        );
        println!(
            "  session discharged {} theorems incrementally, reusing {} clauses",
            self.session_cold.session_theorems, self.session_cold.reused_clauses
        );
        println!(
            "  warm   fresh {:>8.2}s   session {:>8.2}s   verdicts equal: {}",
            self.fresh_warm.secs,
            self.session_warm.secs,
            self.verdicts_equal()
        );
        println!(
            "  warm coverage  fresh {}/{} hits   session {}/{} hits   rate {:.2}",
            self.fresh_warm.cache.hits,
            self.fresh_warm.cache.queries - self.fresh_warm.cache.trivial,
            self.session_warm.cache.hits,
            self.session_warm.cache.queries - self.session_warm.cache.trivial,
            self.warm_hit_rate()
        );
    }
}
