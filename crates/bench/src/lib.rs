//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (see EXPERIMENTS.md for the
//! experiment index and DESIGN.md for the substitutions).

pub mod engine_bench;
pub mod incremental_bench;
pub mod presolve_bench;
pub mod suites;

use std::path::{Path, PathBuf};

/// Counts non-empty, non-comment lines of Rust source under `dir`
/// (the Fig. 7 metric applied to this reproduction).
pub fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let Ok(text) = std::fs::read_to_string(&p) else {
                    continue;
                };
                total += text
                    .lines()
                    .map(str::trim)
                    .filter(|l| {
                        !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!")
                    })
                    .count();
            }
        }
    }
    total
}

/// The workspace root (assumes the harness runs inside the repository).
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

/// Prints an aligned two-column table.
pub fn print_table(title: &str, rows: &[(String, String)]) {
    println!("{title}");
    let w = rows.iter().map(|(a, _)| a.len()).max().unwrap_or(0);
    for (a, b) in rows {
        println!("  {a:<w$}  {b}");
    }
    println!();
}
