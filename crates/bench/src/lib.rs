//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (see EXPERIMENTS.md for the
//! experiment index and DESIGN.md for the substitutions).

pub mod cert_bench;
pub mod engine_bench;
pub mod incremental_bench;
pub mod presolve_bench;
pub mod suites;

use std::path::{Path, PathBuf};

/// Counts non-empty, non-comment lines of Rust source under `dir`
/// (the Fig. 7 metric applied to this reproduction).
pub fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let Ok(text) = std::fs::read_to_string(&p) else {
                    continue;
                };
                total += text
                    .lines()
                    .map(str::trim)
                    .filter(|l| {
                        !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!")
                    })
                    .count();
            }
        }
    }
    total
}

/// The workspace root (assumes the harness runs inside the repository).
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

/// Prints an aligned two-column table.
pub fn print_table(title: &str, rows: &[(String, String)]) {
    println!("{title}");
    let w = rows.iter().map(|(a, _)| a.len()).max().unwrap_or(0);
    for (a, b) in rows {
        println!("  {a:<w$}  {b}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    //! Regression tests for the harnesses' `verdicts_equal` checks:
    //! they must compare per-theorem verdict vectors in submission
    //! order, so flipping a single theorem's verdict — totals unchanged
    //! — must be detected.

    fn verdicts(flip: Option<usize>) -> Vec<(String, bool)> {
        (0..4)
            .map(|i| (format!("thm{i}"), Some(i) != flip))
            .collect()
    }

    #[test]
    fn engine_bench_detects_single_flipped_verdict() {
        use crate::engine_bench::{EngineBenchReport, EngineRun};
        let run = |flip: Option<usize>| EngineRun {
            jobs: 1,
            secs: 1.0,
            verdicts: verdicts(flip),
            cache_hits: 0,
            cache_misses: 4,
        };
        let ok = EngineBenchReport {
            cores: 1,
            sequential: run(None),
            parallel: run(None),
            warm: run(None),
        };
        assert!(ok.verdicts_equal());
        for field in 0..3 {
            let mut bad = EngineBenchReport {
                cores: 1,
                sequential: run(None),
                parallel: run(None),
                warm: run(None),
            };
            let target = match field {
                0 => &mut bad.sequential,
                1 => &mut bad.parallel,
                _ => &mut bad.warm,
            };
            target.verdicts = verdicts(Some(2));
            assert!(
                !bad.verdicts_equal(),
                "flipping one verdict in run {field} must be detected"
            );
        }
    }

    #[test]
    fn incremental_bench_detects_single_flipped_verdict() {
        use crate::incremental_bench::{IncRun, IncrementalBenchReport};
        let run = |flip: Option<usize>| IncRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            sat_vars: 0,
            sat_clauses: 0,
            reused_clauses: 0,
            session_theorems: 0,
            cache_hits: 0,
            cache_misses: 4,
        };
        let ok = IncrementalBenchReport {
            fresh_cold: run(None),
            fresh_warm: run(None),
            session_cold: run(None),
            session_warm: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = IncrementalBenchReport {
            fresh_cold: run(None),
            fresh_warm: run(None),
            session_cold: run(Some(1)),
            session_warm: run(None),
        };
        assert!(!bad.verdicts_equal());
    }

    #[test]
    fn presolve_bench_detects_single_flipped_verdict() {
        use crate::presolve_bench::{PresolveBenchReport, PresolveRun};
        let run = |flip: Option<usize>| PresolveRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            sat_vars: 0,
            sat_clauses: 0,
            terms_in: 0,
            terms_out: 0,
            cache_hits: 0,
            cache_misses: 4,
            queries: 4,
            trivial: 0,
        };
        let ok = PresolveBenchReport {
            off_cold: run(None),
            off_warm: run(None),
            on_cold: run(None),
            on_warm: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = PresolveBenchReport {
            off_cold: run(None),
            off_warm: run(None),
            on_cold: run(None),
            on_warm: run(Some(3)),
        };
        assert!(!bad.verdicts_equal());
    }

    #[test]
    fn presolve_bench_warm_hit_rate_excludes_trivial_queries() {
        use crate::presolve_bench::PresolveRun;
        // 76 nontrivial lookups all hit in raw mode; presolve folds 50
        // more queries to trivial, so its warm rerun reports only 26
        // hits — but both are full coverage of the queries that looked.
        let raw = PresolveRun {
            secs: 1.0,
            verdicts: verdicts(None),
            sat_vars: 0,
            sat_clauses: 0,
            terms_in: 0,
            terms_out: 0,
            cache_hits: 76,
            cache_misses: 0,
            queries: 1179,
            trivial: 1103,
        };
        assert!((raw.hit_rate() - 1.0).abs() < 1e-9);
        let pre = PresolveRun {
            cache_hits: 26,
            trivial: 1153,
            ..raw
        };
        assert!((pre.hit_rate() - 1.0).abs() < 1e-9);
        // A genuinely missing hit shows up as a sub-1.0 rate.
        let short = PresolveRun {
            cache_hits: 25,
            ..pre
        };
        assert!(short.hit_rate() < 1.0);
    }

    #[test]
    fn cert_bench_detects_single_flipped_verdict() {
        use crate::cert_bench::{CertBenchReport, CertRun};
        let run = |flip: Option<usize>| CertRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            cert_steps: 0,
            cert_secs: 0.0,
            certs_checked: 0,
            certs_rejected: 0,
        };
        let ok = CertBenchReport {
            off: run(None),
            on: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = CertBenchReport {
            off: run(None),
            on: run(Some(0)),
        };
        assert!(!bad.verdicts_equal());
    }
}
