//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (see EXPERIMENTS.md for the
//! experiment index and DESIGN.md for the substitutions).

pub mod cert_bench;
pub mod engine_bench;
pub mod incremental_bench;
pub mod net_bench;
pub mod presolve_bench;
pub mod sat_bench;
pub mod suites;

use std::path::{Path, PathBuf};

/// Cache-accounting deltas for one benchmark run — the *shared* code
/// path every harness uses to report warm-rerun coverage, so cold and
/// warm rows mean the same thing in every `BENCH_*.json`.
///
/// The invariant the warm rows pin down: trivially-discharged queries
/// never consult the cache, so a genuinely warm rerun has
/// `hits = queries - trivial` and `misses = 0` — a [`hit_rate`] of 1.0
/// regardless of discharge mode ([`CacheRow::hit_rate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheRow {
    /// Cache hits during the run.
    pub hits: u64,
    /// Cache misses during the run.
    pub misses: u64,
    /// Queries submitted to the engine during the run.
    pub queries: u64,
    /// Queries discharged trivially during preparation (these never
    /// consult the cache, so hit-rate accounting excludes them).
    pub trivial: u64,
}

impl CacheRow {
    /// Snapshots the engine's cumulative counters; subtract two
    /// snapshots with [`CacheRow::since`] to get one run's row.
    pub fn snapshot(engine: &serval_engine::Engine) -> CacheRow {
        let (hits, misses) = engine.cache_stats();
        let (queries, trivial) = engine.query_counts();
        CacheRow { hits, misses, queries, trivial }
    }

    /// The counters this snapshot added on top of `start`.
    pub fn since(&self, start: &CacheRow) -> CacheRow {
        CacheRow {
            hits: self.hits - start.hits,
            misses: self.misses - start.misses,
            queries: self.queries - start.queries,
            trivial: self.trivial - start.trivial,
        }
    }

    /// Cache coverage over the queries that actually consult the cache
    /// (`queries - trivial`); 1.0 when nothing looked anything up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.queries.saturating_sub(self.trivial);
        if lookups == 0 {
            1.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// The row's JSON fields (no braces), spliced into a run object so
    /// every harness emits identical key names.
    pub fn json_fields(&self) -> String {
        format!(
            "\"cache_hits\": {}, \"cache_misses\": {}, \"queries\": {}, \"trivial\": {}",
            self.hits, self.misses, self.queries, self.trivial
        )
    }
}

/// Counts non-empty, non-comment lines of Rust source under `dir`
/// (the Fig. 7 metric applied to this reproduction).
pub fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let Ok(text) = std::fs::read_to_string(&p) else {
                    continue;
                };
                total += text
                    .lines()
                    .map(str::trim)
                    .filter(|l| {
                        !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!")
                    })
                    .count();
            }
        }
    }
    total
}

/// The workspace root (assumes the harness runs inside the repository).
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

/// Prints an aligned two-column table.
pub fn print_table(title: &str, rows: &[(String, String)]) {
    println!("{title}");
    let w = rows.iter().map(|(a, _)| a.len()).max().unwrap_or(0);
    for (a, b) in rows {
        println!("  {a:<w$}  {b}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    //! Regression tests for the harnesses' `verdicts_equal` checks:
    //! they must compare per-theorem verdict vectors in submission
    //! order, so flipping a single theorem's verdict — totals unchanged
    //! — must be detected.

    fn verdicts(flip: Option<usize>) -> Vec<(String, bool)> {
        (0..4)
            .map(|i| (format!("thm{i}"), Some(i) != flip))
            .collect()
    }

    #[test]
    fn engine_bench_detects_single_flipped_verdict() {
        use crate::engine_bench::{EngineBenchReport, EngineRun};
        let run = |flip: Option<usize>| EngineRun {
            jobs: 1,
            secs: 1.0,
            verdicts: verdicts(flip),
            cache_hits: 0,
            cache_misses: 4,
        };
        let ok = EngineBenchReport {
            cores: 1,
            sequential: run(None),
            parallel: run(None),
            warm: run(None),
        };
        assert!(ok.verdicts_equal());
        for field in 0..3 {
            let mut bad = EngineBenchReport {
                cores: 1,
                sequential: run(None),
                parallel: run(None),
                warm: run(None),
            };
            let target = match field {
                0 => &mut bad.sequential,
                1 => &mut bad.parallel,
                _ => &mut bad.warm,
            };
            target.verdicts = verdicts(Some(2));
            assert!(
                !bad.verdicts_equal(),
                "flipping one verdict in run {field} must be detected"
            );
        }
    }

    #[test]
    fn incremental_bench_detects_single_flipped_verdict() {
        use crate::incremental_bench::{IncRun, IncrementalBenchReport};
        let run = |flip: Option<usize>| IncRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            sat_vars: 0,
            sat_clauses: 0,
            reused_clauses: 0,
            session_theorems: 0,
            mode_session: 0,
            mode_fresh: 0,
            cache: crate::CacheRow { hits: 0, misses: 4, queries: 4, trivial: 0 },
        };
        let report = |flip_slot: Option<usize>| IncrementalBenchReport {
            fresh_cold: run(None),
            fresh_warm: run((flip_slot == Some(0)).then_some(1)),
            session_cold: run((flip_slot == Some(1)).then_some(1)),
            session_warm: run((flip_slot == Some(2)).then_some(1)),
            inproc_cold: run((flip_slot == Some(3)).then_some(1)),
            inproc_warm: run((flip_slot == Some(4)).then_some(1)),
            auto_cold: run((flip_slot == Some(5)).then_some(1)),
        };
        assert!(report(None).verdicts_equal());
        for slot in 0..6 {
            assert!(
                !report(Some(slot)).verdicts_equal(),
                "flipping one verdict in run {slot} must be detected"
            );
        }
    }

    #[test]
    fn presolve_bench_detects_single_flipped_verdict() {
        use crate::presolve_bench::{PresolveBenchReport, PresolveRun};
        let run = |flip: Option<usize>| PresolveRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            sat_vars: 0,
            sat_clauses: 0,
            terms_in: 0,
            terms_out: 0,
            cache: crate::CacheRow { hits: 0, misses: 4, queries: 4, trivial: 0 },
        };
        let ok = PresolveBenchReport {
            off_cold: run(None),
            off_warm: run(None),
            on_cold: run(None),
            on_warm: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = PresolveBenchReport {
            off_cold: run(None),
            off_warm: run(None),
            on_cold: run(None),
            on_warm: run(Some(3)),
        };
        assert!(!bad.verdicts_equal());
    }

    #[test]
    fn net_bench_detects_single_flipped_verdict() {
        use crate::net_bench::{NetBenchReport, NetRun, ProbeStats};
        let run = |flip: Option<usize>| NetRun { secs: 1.0, verdicts: verdicts(flip) };
        let report = |flip: [Option<usize>; 3]| NetBenchReport {
            shards: 2,
            shard_jobs: 1,
            local: run(flip[0]),
            remote_cold: run(flip[1]),
            remote_warm: run(flip[2]),
            shard_rows: Vec::new(),
            hot_hits: 0,
            warm_hit_rate: 1.0,
            shards_exercised: 2,
            bytes_sent: 0,
            bytes_received: 0,
            probe: ProbeStats { queries: 0, qps: 0.0, p50_micros: 0, p95_micros: 0 },
        };
        assert!(report([None, None, None]).verdicts_equal());
        for slot in 0..3 {
            let mut flips = [None, None, None];
            flips[slot] = Some(2);
            assert!(
                !report(flips).verdicts_equal(),
                "flipping one verdict in run {slot} must be detected"
            );
        }
    }

    #[test]
    fn warm_hit_rate_excludes_trivial_queries() {
        use crate::CacheRow;
        // 76 nontrivial lookups all hit: full warm coverage. With the
        // raw-key warm layer, `trivial` counts only raw-trivial queries,
        // so both presolve modes report the same row for the same batch.
        let warm = CacheRow { hits: 76, misses: 0, queries: 1179, trivial: 1103 };
        assert!((warm.hit_rate() - 1.0).abs() < 1e-9);
        // A genuinely missing hit shows up as a sub-1.0 rate.
        let short = CacheRow { hits: 75, ..warm };
        assert!(short.hit_rate() < 1.0);
        // Delta arithmetic: cumulative snapshots subtract field-wise.
        let start = CacheRow { hits: 10, misses: 20, queries: 50, trivial: 5 };
        let end = CacheRow { hits: 86, misses: 20, queries: 1229, trivial: 1108 };
        assert_eq!(end.since(&start), warm);
    }

    #[test]
    fn sat_bench_detects_single_flipped_verdict() {
        use crate::sat_bench::{SatBenchReport, SatRun};
        let run = |flip: Option<usize>| SatRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            sat_vars: 0,
            sat_clauses: 0,
            eliminated_vars: 0,
            subsumed: 0,
            strengthened: 0,
            resolvents: 0,
            conflicts: 0,
            propagations: 0,
            certs_checked: 0,
            certs_rejected: 0,
        };
        let ok = SatBenchReport {
            off_cold: run(None),
            on_cold: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = SatBenchReport {
            off_cold: run(None),
            on_cold: run(Some(2)),
        };
        assert!(!bad.verdicts_equal());
    }

    #[test]
    fn cert_bench_detects_single_flipped_verdict() {
        use crate::cert_bench::{CertBenchReport, CertRun};
        let run = |flip: Option<usize>| CertRun {
            secs: 1.0,
            verdicts: verdicts(flip),
            cert_steps: 0,
            cert_secs: 0.0,
            certs_checked: 0,
            certs_rejected: 0,
        };
        let ok = CertBenchReport {
            off: run(None),
            on_unhinted: run(None),
            on: run(None),
        };
        assert!(ok.verdicts_equal());
        let bad = CertBenchReport {
            off: run(None),
            on_unhinted: run(None),
            on: run(Some(0)),
        };
        assert!(!bad.verdicts_equal());
        let bad_unhinted = CertBenchReport {
            off: run(None),
            on_unhinted: run(Some(2)),
            on: run(None),
        };
        assert!(!bad_unhinted.verdicts_equal());
    }
}
