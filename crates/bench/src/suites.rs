//! The benchmark definitions, shared by the `cargo bench` targets and
//! the `bench_all` binary (which adds JSON emission). Built on
//! `serval_check::bench` — the from-scratch criterion replacement.

use serval_bpf::{AluOp, Insn as Bpf, Src};
use serval_check::bench::Harness;
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_jit::{check_rv64, Rv64Jit};
use serval_monitors::certikos;
use serval_sat::{Lit, SolveResult, Solver, Var};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, verify, BV};
use serval_toyrisc::prove_sign_refinement;

fn php(n: usize, m: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s
}

/// The substrate benches: CDCL SAT and the bit-blasting SMT layer (the
/// parts of the stack the paper delegates to Z3).
pub fn solver(h: &mut Harness) {
    h.bench("sat/pigeonhole 7 into 6 (unsat)", || {
        let mut s = php(7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
    });
    // (x & y) + (x | y) == x + y: structurally different sides, so the
    // solver does real work, but adder-only circuits keep it tractable
    // (multiplier equivalence is classically hard for resolution).
    h.bench("smt/and-or adder identity, 32-bit", || {
        reset_ctx();
        let x = BV::fresh(32, "x");
        let y = BV::fresh(32, "y");
        assert!(verify(&[], ((x & y) + (x | y)).eq_(x + y)).is_proved());
    });
    // 8-bit keeps the q*d + r = a goal tractable (it contains a
    // multiplier, which is the hard case for CDCL).
    h.bench("smt/division relation, 8-bit", || {
        reset_ctx();
        let a = BV::fresh(8, "a");
        let d = BV::fresh(8, "d");
        let nz = !d.is_zero();
        let goal = (a.udiv(d) * d + a.urem(d)).eq_(a);
        assert!(verify(&[nz], goal).is_proved());
    });
    // Division by a constant power of two folds to shift/mask at build
    // time — no divider circuit is blasted at all. This bench regresses
    // if those rewrites break.
    h.bench("smt/division by constant, 8-bit", || {
        reset_ctx();
        let a = BV::fresh(8, "a");
        let goal = (0..8u32)
            .map(|k| {
                let d = BV::lit(8, 1u128 << k);
                (a.udiv(d) * d + a.urem(d)).eq_(a)
            })
            .fold(serval_smt::SBool::lit(true), |acc, g| acc & g);
        assert!(verify(&[], goal).is_proved());
    });
}

/// The verification-pipeline benches: the ToyRISC refinement proof
/// (paper §3), a CertiKOS^s monitor-call refinement (Fig. 11's unit of
/// work), and JIT-checker queries (§7).
pub fn verification(h: &mut Harness) {
    h.bench("toyrisc/sign refinement", || {
        reset_ctx();
        let report = prove_sign_refinement(SolverConfig::default());
        assert!(report.all_proved());
    });
    h.bench("certikos/get_quota refinement (O1)", || {
        let report = certikos::proofs::prove_op(
            certikos::sys::GET_QUOTA,
            OptLevel::O1,
            OptCfg::default(),
            SolverConfig::default(),
        );
        assert!(report.all_proved());
    });
    let jit = Rv64Jit::fixed();
    for (name, insn) in [
        (
            "jit-checker/alu64 add X",
            Bpf::Alu64 { op: AluOp::Add, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
        (
            "jit-checker/alu32 lsh X",
            Bpf::Alu32 { op: AluOp::Lsh, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
        (
            "jit-checker/alu64 div X",
            Bpf::Alu64 { op: AluOp::Div, src: Src::X, dst: 1, srcr: 2, imm: 0 },
        ),
    ] {
        h.bench(name, || {
            let row = check_rv64(&jit, insn, SolverConfig::default()).unwrap();
            assert!(row.ok);
        });
    }
}
