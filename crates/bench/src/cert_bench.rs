//! The certification benchmark: uncertified vs certified discharge of
//! the CertiKOS^s `-O1` split refinement workload. Emitted as
//! `BENCH_cert.json` by `bench_all`.
//!
//! `SERVAL_CERT` (on by default) makes every solver `Unsat` present a
//! DRAT-style proof to the independent `serval-drat` checker before it
//! may become `Proved`. This harness measures what that trust costs:
//! cold wall time with certification off vs on, the checker's share of
//! it, and — the point of the exercise — that the verdicts are
//! identical and every certified run's proofs were actually accepted.
//! Certified discharge is measured twice: with LRAT antecedent hints
//! (`SERVAL_LRAT`, the default — the checker verifies hinted steps by
//! a guided walk) and without (`SERVAL_LRAT=0` — full reverse unit
//! propagation on every derived step), so the JSON pins what the hints
//! reclaim.

use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed cold run of the refinement workload.
pub struct CertRun {
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Proof steps fed to the checker across all solved queries.
    pub cert_steps: u64,
    /// Wall time spent inside the checker across all solved queries.
    pub cert_secs: f64,
    /// Certificates the engine checked and accepted during this run.
    pub certs_checked: u64,
    /// Certificates the engine rejected (verdicts demoted to Unknown).
    pub certs_rejected: u64,
}

/// Certification off vs on (unhinted and hinted), all cold.
pub struct CertBenchReport {
    /// `SERVAL_CERT=0` equivalent: solver verdicts taken on faith.
    pub off: CertRun,
    /// Certified discharge with LRAT hints stripped (`SERVAL_LRAT=0`
    /// equivalent): every derived step checked by full RUP.
    pub on_unhinted: CertRun,
    /// Certified discharge with LRAT hints (the default).
    pub on: CertRun,
}

fn workload(cfg: SolverConfig) -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg)
}

fn run_once(cert: bool, lrat: bool) -> CertRun {
    let engine = serval_engine::install(EngineCfg {
        jobs: EngineCfg::from_env().jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Session,
        presolve: serval_smt::presolve::env_enabled(),
        cert,
    });
    let (c0, r0) = engine.cert_counts();
    let t0 = Instant::now();
    let report = workload(SolverConfig { lrat, ..SolverConfig::default() });
    let secs = t0.elapsed().as_secs_f64();
    let (c1, r1) = engine.cert_counts();
    let totals = report.solver_totals();
    CertRun {
        secs,
        verdicts: report
            .theorems
            .iter()
            .map(|t| (t.name.clone(), t.verdict.is_proved()))
            .collect(),
        cert_steps: totals.cert_steps,
        cert_secs: totals.cert_wall.as_secs_f64(),
        certs_checked: c1 - c0,
        certs_rejected: r1 - r0,
    }
}

/// Keeps the faster of the stored run and `r` (min-of-N convention).
fn keep_min(slot: &mut Option<CertRun>, r: CertRun) {
    match slot {
        Some(best) if best.secs <= r.secs => {}
        _ => *slot = Some(r),
    }
}

/// Runs the comparison. Samples are *interleaved* across the three
/// configurations (off, unhinted, hinted — one of each per round, each
/// on a freshly installed engine) rather than leg-by-leg: the ratios
/// are between numbers measured seconds apart, so slow drift over the
/// process lifetime (allocator state, page cache) lands on every leg
/// equally instead of taxing whichever leg runs last.
pub fn run() -> CertBenchReport {
    let samples: usize = std::env::var("SERVAL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let (mut off, mut on_unhinted, mut on) = (None, None, None);
    for _ in 0..samples {
        keep_min(&mut off, run_once(false, true));
        keep_min(&mut on_unhinted, run_once(true, false));
        keep_min(&mut on, run_once(true, true));
    }
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    CertBenchReport {
        off: off.expect("samples >= 1"),
        on_unhinted: on_unhinted.expect("samples >= 1"),
        on: on.expect("samples >= 1"),
    }
}

impl CertBenchReport {
    /// Whether all runs proved exactly the same theorems (per-theorem,
    /// in order).
    pub fn verdicts_equal(&self) -> bool {
        self.off.verdicts == self.on.verdicts
            && self.off.verdicts == self.on_unhinted.verdicts
    }

    /// Certified (hinted, the default) cold wall over uncertified cold
    /// wall — the price of not trusting the solver (budgeted at ≤ 2x,
    /// targeted at ≤ 1.15x with hints).
    pub fn overhead_ratio(&self) -> f64 {
        self.on.secs / self.off.secs.max(1e-9)
    }

    /// Unhinted certified cold wall over uncertified cold wall — what
    /// certification cost before LRAT hints.
    pub fn overhead_ratio_unhinted(&self) -> f64 {
        self.on_unhinted.secs / self.off.secs.max(1e-9)
    }

    /// Mean checker wall per checked certificate with hints, in seconds.
    pub fn check_secs_per_query(&self) -> f64 {
        if self.on.certs_checked == 0 {
            0.0
        } else {
            self.on.cert_secs / self.on.certs_checked as f64
        }
    }

    /// Mean checker wall per checked certificate without hints.
    pub fn check_secs_per_query_unhinted(&self) -> f64 {
        if self.on_unhinted.certs_checked == 0 {
            0.0
        } else {
            self.on_unhinted.cert_secs / self.on_unhinted.certs_checked as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &CertRun) -> String {
            format!(
                "{{\"secs\": {:.6}, \"theorems\": {}, \"cert_steps\": {}, \
                 \"cert_secs\": {:.6}, \"certs_checked\": {}, \"certs_rejected\": {}}}",
                r.secs,
                r.verdicts.len(),
                r.cert_steps,
                r.cert_secs,
                r.certs_checked,
                r.certs_rejected
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (split sub-queries)\",\n  \
             \"uncertified\": {},\n  \"certified_unhinted\": {},\n  \"certified\": {},\n  \
             \"overhead_ratio\": {:.3},\n  \"overhead_ratio_unhinted\": {:.3},\n  \
             \"check_secs_per_query\": {:.6},\n  \
             \"check_secs_per_query_unhinted\": {:.6},\n  \
             \"verdicts_equal\": {}\n}}\n",
            run_json(&self.off),
            run_json(&self.on_unhinted),
            run_json(&self.on),
            self.overhead_ratio(),
            self.overhead_ratio_unhinted(),
            self.check_secs_per_query(),
            self.check_secs_per_query_unhinted(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\ncert: uncertified vs certified (certikos refinement -O1)");
        println!(
            "  cold   uncertified {:>8.2}s   certified(unhinted) {:>8.2}s   certified {:>8.2}s",
            self.off.secs, self.on_unhinted.secs, self.on.secs,
        );
        println!(
            "  overhead   unhinted {:.2}x   hinted {:.2}x",
            self.overhead_ratio_unhinted(),
            self.overhead_ratio()
        );
        println!(
            "  checker: {} certificates accepted, {} rejected, {} steps, {:.3}s total ({:.1}ms/query hinted vs {:.1}ms unhinted)",
            self.on.certs_checked,
            self.on.certs_rejected,
            self.on.cert_steps,
            self.on.cert_secs,
            self.check_secs_per_query() * 1e3,
            self.check_secs_per_query_unhinted() * 1e3
        );
        println!("  verdicts equal: {}", self.verdicts_equal());
    }
}
