//! The core-solver benchmark: plain CDCL vs inprocessing + polarity-aware
//! CNF on the CertiKOS^s `-O1` split refinement workload. Emitted as
//! `BENCH_sat.json` by `bench_all`.
//!
//! The "off" side pins `SolverConfig { inprocess: false, polarity: false }`
//! — the solver exactly as it behaved before the inprocessing PR — while
//! the "on" side pins both features on, so the comparison is meaningful
//! regardless of the `SERVAL_INPROCESS` / `SERVAL_POLARITY` environment.
//!
//! Both sides run fresh-solver-per-sub-query discharge (`incremental:
//! false`): that is the path where the full inprocessing pipeline
//! applies. Incremental sessions deliberately restrict inprocessing to
//! subsumption — variable elimination would break the extendability of
//! out-of-scope clauses that later goals reuse (see
//! `Solver::decision_scope`) — so a session-mode comparison would
//! measure only the polarity-aware encoding. Everything else (presolve,
//! certification) runs in its default configuration on both sides.

use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed cold run of the refinement workload.
pub struct SatRun {
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Total SAT variables encoded across all solved queries.
    pub sat_vars: usize,
    /// Total SAT clauses encoded across all solved queries.
    pub sat_clauses: usize,
    /// Variables removed by bounded variable elimination (net of
    /// reintroduction), summed over all solved queries.
    pub eliminated_vars: u64,
    /// Clauses deleted by backward subsumption.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
    /// Resolvent clauses added by variable elimination.
    pub resolvents: u64,
    /// Conflicts across all solved queries (search effort).
    pub conflicts: u64,
    /// Propagations across all solved queries.
    pub propagations: u64,
    /// Certificates the engine checked and accepted during this run.
    pub certs_checked: u64,
    /// Certificates the engine rejected (verdicts demoted to Unknown).
    pub certs_rejected: u64,
}

/// Inprocessing + polarity-aware CNF off vs on, both cold.
pub struct SatBenchReport {
    /// `SERVAL_INPROCESS=0 SERVAL_POLARITY=0` equivalent — the solver as
    /// it stood before inprocessing landed.
    pub off_cold: SatRun,
    /// Inprocessing and polarity-aware encoding (the defaults).
    pub on_cold: SatRun,
}

fn workload(cfg: SolverConfig) -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg)
}

fn run_once(inprocess: bool) -> SatRun {
    let engine = serval_engine::install(EngineCfg {
        jobs: EngineCfg::from_env().jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Fresh,
        presolve: serval_smt::presolve::env_enabled(),
        cert: EngineCfg::from_env().cert,
    });
    let cfg = SolverConfig {
        inprocess,
        polarity: inprocess,
        ..SolverConfig::default()
    };
    let (c0, r0) = engine.cert_counts();
    let t0 = Instant::now();
    let report = workload(cfg);
    let secs = t0.elapsed().as_secs_f64();
    let (c1, r1) = engine.cert_counts();
    let totals = report.solver_totals();
    SatRun {
        secs,
        verdicts: report
            .theorems
            .iter()
            .map(|t| (t.name.clone(), t.verdict.is_proved()))
            .collect(),
        sat_vars: totals.vars,
        sat_clauses: totals.clauses,
        eliminated_vars: totals.eliminated_vars,
        subsumed: totals.subsumed,
        strengthened: totals.strengthened,
        resolvents: totals.resolvents,
        conflicts: totals.conflicts,
        propagations: totals.propagations,
        certs_checked: c1 - c0,
        certs_rejected: r1 - r0,
    }
}

/// Best-of-N cold run (each sample on a freshly installed engine) — the
/// min-of-N convention the other harnesses in this crate use.
fn run_cold(inprocess: bool, samples: usize) -> SatRun {
    let mut best = run_once(inprocess);
    for _ in 1..samples {
        let r = run_once(inprocess);
        if r.secs < best.secs {
            best = r;
        }
    }
    best
}

/// Runs the comparison.
pub fn run() -> SatBenchReport {
    let samples: usize = std::env::var("SERVAL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let off_cold = run_cold(false, samples);
    let on_cold = run_cold(true, samples);
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    SatBenchReport { off_cold, on_cold }
}

impl SatBenchReport {
    /// Whether both runs proved exactly the same theorems (per-theorem,
    /// in order) — inprocessing is an equisatisfiable rewrite, so any
    /// difference is a bug.
    pub fn verdicts_equal(&self) -> bool {
        self.off_cold.verdicts == self.on_cold.verdicts
    }

    /// Cold-run speedup of the inprocessing solver over the plain one
    /// (the issue's target is ≥ 1.5x).
    pub fn cold_speedup(&self) -> f64 {
        self.off_cold.secs / self.on_cold.secs.max(1e-9)
    }

    /// Fraction of the plain encoding (SAT vars + clauses) the
    /// polarity-aware blaster avoids emitting: `1 - on/off`.
    pub fn encoded_reduction(&self) -> f64 {
        let off = self.off_cold.sat_vars + self.off_cold.sat_clauses;
        let on = self.on_cold.sat_vars + self.on_cold.sat_clauses;
        if off == 0 {
            0.0
        } else {
            1.0 - on as f64 / off as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &SatRun) -> String {
            format!(
                "{{\"secs\": {:.6}, \"theorems\": {}, \"sat_vars\": {}, \
                 \"sat_clauses\": {}, \"eliminated_vars\": {}, \"subsumed\": {}, \
                 \"strengthened\": {}, \"resolvents\": {}, \"conflicts\": {}, \
                 \"propagations\": {}, \"certs_checked\": {}, \"certs_rejected\": {}}}",
                r.secs,
                r.verdicts.len(),
                r.sat_vars,
                r.sat_clauses,
                r.eliminated_vars,
                r.subsumed,
                r.strengthened,
                r.resolvents,
                r.conflicts,
                r.propagations,
                r.certs_checked,
                r.certs_rejected
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (split sub-queries)\",\n  \
             \"off_cold\": {},\n  \"on_cold\": {},\n  \
             \"cold_speedup\": {:.3},\n  \"encoded_reduction\": {:.3},\n  \
             \"verdicts_equal\": {}\n}}\n",
            run_json(&self.off_cold),
            run_json(&self.on_cold),
            self.cold_speedup(),
            self.encoded_reduction(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\nsat: plain vs inprocessing+polarity (certikos refinement -O1)");
        println!(
            "  cold   plain {:>8.2}s   inprocessed {:>8.2}s   speedup {:.2}x",
            self.off_cold.secs,
            self.on_cold.secs,
            self.cold_speedup()
        );
        println!(
            "  encoded  plain {} vars / {} clauses   polarity-aware {} vars / {} clauses ({:.0}% smaller)",
            self.off_cold.sat_vars,
            self.off_cold.sat_clauses,
            self.on_cold.sat_vars,
            self.on_cold.sat_clauses,
            self.encoded_reduction() * 100.0
        );
        println!(
            "  inprocess: {} vars eliminated ({} resolvents), {} clauses subsumed, {} strengthened",
            self.on_cold.eliminated_vars,
            self.on_cold.resolvents,
            self.on_cold.subsumed,
            self.on_cold.strengthened
        );
        println!(
            "  search   plain {} conflicts / {} props   inprocessed {} conflicts / {} props",
            self.off_cold.conflicts,
            self.off_cold.propagations,
            self.on_cold.conflicts,
            self.on_cold.propagations
        );
        println!(
            "  certs: {} accepted, {} rejected   verdicts equal: {}",
            self.on_cold.certs_checked,
            self.on_cold.certs_rejected,
            self.verdicts_equal()
        );
    }
}
