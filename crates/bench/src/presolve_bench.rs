//! The word-level presolve benchmark: raw queries vs presolved queries
//! on the CertiKOS^s `-O1` split refinement workload. Emitted as
//! `BENCH_presolve.json` by `bench_all` (same schema conventions as
//! `BENCH_incremental.json`).
//!
//! Both sides run the fresh-solver-per-sub-query discharge mode: that
//! is where presolve's full pipeline applies (sessions deliberately
//! disable cone-of-influence splitting to keep their grouping stable),
//! so the encoded-size comparison isolates the presolve effect.

use crate::CacheRow;
use serval_core::report::ProofReport;
use serval_core::OptCfg;
use serval_engine::{DischargeMode, EngineCfg};
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_smt::solver::SolverConfig;
use std::path::Path;
use std::time::Instant;

/// One timed run of the refinement workload.
pub struct PresolveRun {
    /// Wall time of the whole proof (symbolic evaluation + discharge).
    pub secs: f64,
    /// Per-theorem `(name, proved)` verdicts.
    pub verdicts: Vec<(String, bool)>,
    /// Total SAT variables encoded across all solved queries.
    pub sat_vars: usize,
    /// Total SAT clauses encoded across all solved queries.
    pub sat_clauses: usize,
    /// Term-DAG nodes in the queries before presolve (0 when off).
    pub terms_in: u64,
    /// Term-DAG nodes after presolve (0 when off).
    pub terms_out: u64,
    /// Cache accounting for this run (shared row; see [`CacheRow`]).
    /// `trivial` counts only queries whose *raw* form was trivially
    /// unsatisfiable: with the raw-key warm layer, queries presolve
    /// folds to trivial still consult the cache (and hit warm), so both
    /// presolve modes report the same warm coverage over the same batch.
    pub cache: CacheRow,
}

/// Presolve off vs on, each cold (new engine) and warm (cache rerun).
pub struct PresolveBenchReport {
    /// `SERVAL_PRESOLVE=0` equivalent, cold cache.
    pub off_cold: PresolveRun,
    /// Rerun on the raw engine's warm cache.
    pub off_warm: PresolveRun,
    /// Word-level presolve (the default), cold cache.
    pub on_cold: PresolveRun,
    /// Rerun on the presolving engine's warm cache.
    pub on_warm: PresolveRun,
}

fn workload() -> ProofReport {
    certikos::proofs::prove_refinement(OptLevel::O1, OptCfg::default(), SolverConfig::default())
}

fn run_once(presolve: bool, reuse_engine: bool) -> PresolveRun {
    let engine = if reuse_engine {
        serval_engine::handle()
    } else {
        serval_engine::install(EngineCfg {
            jobs: EngineCfg::from_env().jobs,
            portfolio: false,
            disk_cache: None,
            split: true,
            mode: DischargeMode::Fresh,
            presolve,
            cert: EngineCfg::from_env().cert,
        })
    };
    let before = CacheRow::snapshot(&engine);
    let t0 = Instant::now();
    let report = workload();
    let secs = t0.elapsed().as_secs_f64();
    let cache = CacheRow::snapshot(&engine).since(&before);
    let totals = report.solver_totals();
    PresolveRun {
        secs,
        verdicts: report
            .theorems
            .iter()
            .map(|t| (t.name.clone(), t.verdict.is_proved()))
            .collect(),
        sat_vars: totals.vars,
        sat_clauses: totals.clauses,
        terms_in: totals.presolve_terms_in as u64,
        terms_out: totals.presolve_terms_out as u64,
        cache,
    }
}

impl PresolveRun {
    /// Warm-run cache coverage (delegates to the shared row): a
    /// genuinely warm rerun scores 1.0 with zero misses, in *both*
    /// presolve modes (see [`PresolveRun::cache`]).
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Best-of-N cold run (each sample on a freshly installed engine, so
/// every sample really is cold) — the min-of-N convention the other
/// benchmark harnesses in this crate use.
fn run_cold(presolve: bool, samples: usize) -> PresolveRun {
    let mut best = run_once(presolve, false);
    for _ in 1..samples {
        let r = run_once(presolve, false);
        if r.secs < best.secs {
            best = r;
        }
    }
    best
}

/// Runs the four-way comparison.
pub fn run() -> PresolveBenchReport {
    let samples: usize = std::env::var("SERVAL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    // Each warm run reuses the engine installed by that mode's final
    // cold sample, so its cache is genuinely warm.
    let off_cold = run_cold(false, samples);
    let off_warm = run_once(false, true);
    let on_cold = run_cold(true, samples);
    let on_warm = run_once(true, true);
    // Leave the process-wide engine in its environment-default state.
    serval_engine::install(EngineCfg::from_env());
    PresolveBenchReport {
        off_cold,
        off_warm,
        on_cold,
        on_warm,
    }
}

impl PresolveBenchReport {
    /// Whether all four runs proved exactly the same theorems.
    pub fn verdicts_equal(&self) -> bool {
        self.off_cold.verdicts == self.on_cold.verdicts
            && self.off_cold.verdicts == self.off_warm.verdicts
            && self.off_cold.verdicts == self.on_warm.verdicts
    }

    /// Cold-run speedup of presolved queries over raw queries.
    pub fn cold_speedup(&self) -> f64 {
        self.off_cold.secs / self.on_cold.secs.max(1e-9)
    }

    /// The worse of the two warm runs' cache coverage — the number the
    /// batch invariant asserts ≈ 1.0 regardless of presolve mode.
    pub fn warm_hit_rate(&self) -> f64 {
        self.off_warm.hit_rate().min(self.on_warm.hit_rate())
    }

    /// Fraction of the raw encoding (SAT vars + clauses) presolve
    /// eliminates: `1 - on/off`.
    pub fn encoded_reduction(&self) -> f64 {
        let off = self.off_cold.sat_vars + self.off_cold.sat_clauses;
        let on = self.on_cold.sat_vars + self.on_cold.sat_clauses;
        if off == 0 {
            0.0
        } else {
            1.0 - on as f64 / off as f64
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        fn run_json(r: &PresolveRun) -> String {
            format!(
                "{{\"secs\": {:.6}, \"theorems\": {}, \"sat_vars\": {}, \
                 \"sat_clauses\": {}, \"terms_in\": {}, \"terms_out\": {}, {}}}",
                r.secs,
                r.verdicts.len(),
                r.sat_vars,
                r.sat_clauses,
                r.terms_in,
                r.terms_out,
                r.cache.json_fields()
            )
        }
        format!(
            "{{\n  \"workload\": \"certikos refinement -O1 (split sub-queries, fresh solvers)\",\n  \
             \"off_cold\": {},\n  \"on_cold\": {},\n  \
             \"off_warm\": {},\n  \"on_warm\": {},\n  \
             \"cold_speedup\": {:.3},\n  \"encoded_reduction\": {:.3},\n  \
             \"warm_hit_rate\": {:.3},\n  \
             \"verdicts_equal\": {}\n}}\n",
            run_json(&self.off_cold),
            run_json(&self.on_cold),
            run_json(&self.off_warm),
            run_json(&self.on_warm),
            self.cold_speedup(),
            self.encoded_reduction(),
            self.warm_hit_rate(),
            self.verdicts_equal()
        )
    }

    /// Writes the JSON report.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable summary.
    pub fn print_summary(&self) {
        println!("\npresolve: raw vs presolved (certikos refinement -O1, fresh solvers)");
        println!(
            "  cold   raw {:>8.2}s   presolved {:>8.2}s   speedup {:.2}x",
            self.off_cold.secs,
            self.on_cold.secs,
            self.cold_speedup()
        );
        println!(
            "  encoded  raw {} vars / {} clauses   presolved {} vars / {} clauses ({:.0}% smaller)",
            self.off_cold.sat_vars,
            self.off_cold.sat_clauses,
            self.on_cold.sat_vars,
            self.on_cold.sat_clauses,
            self.encoded_reduction() * 100.0
        );
        println!(
            "  terms  {} -> {} across presolved queries",
            self.on_cold.terms_in, self.on_cold.terms_out
        );
        println!(
            "  warm   raw {:>8.2}s   presolved {:>8.2}s   verdicts equal: {}",
            self.off_warm.secs,
            self.on_warm.secs,
            self.verdicts_equal()
        );
        println!(
            "  warm coverage  raw {}/{} hits   presolved {}/{} hits   rate {:.2}",
            self.off_warm.cache.hits,
            self.off_warm.cache.queries - self.off_warm.cache.trivial,
            self.on_warm.cache.hits,
            self.on_warm.cache.queries - self.on_warm.cache.trivial,
            self.warm_hit_rate()
        );
    }
}
