//! Checker tests: end-to-end certificates from the real solver, plus an
//! adversarial proof-mutation suite asserting that tampered logs are
//! rejected.

use crate::{check_refutation, conclusion_covers, hash_steps, hash_steps_seeded, CheckError,
            Checker};
use serval_sat::{Lit, ProofStep, SolveResult, Solver, Var};

/// Solves the pigeonhole formula PHP(holes+1, holes) with proof logging
/// and returns the certificate.
fn php_certificate(holes: usize) -> Vec<ProofStep> {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    s.set_proof_logging(true);
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for p in &v {
        let c: Vec<Lit> = p.iter().map(|&x| Lit::pos(x)).collect();
        s.add_clause(&c);
    }
    for j in 0..holes {
        for i in 0..pigeons {
            for k in i + 1..pigeons {
                s.add_clause(&[Lit::neg(v[i][j]), Lit::neg(v[k][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    s.take_proof()
}

/// A two-goal incremental gadget: each goal's gate clauses force a
/// contradiction under its activation literal; retracting the first goal
/// sweeps its satisfied gate clauses, producing `Delete` steps.
fn session_gadget() -> (Solver, Lit, Lit) {
    let mut s = Solver::new();
    // This gadget pins down retraction's Delete steps; inprocessing
    // would discharge the tiny two-clause goals by resolution first and
    // move the deletions into the first delta.
    s.set_inprocess(false, false);
    s.set_proof_logging(true);
    let x = s.new_var();
    let y = s.new_var();
    let act1 = Lit::pos(s.new_var());
    let act2 = Lit::pos(s.new_var());
    s.add_clause(&[!act1, Lit::pos(x)]);
    s.add_clause(&[!act1, Lit::neg(x)]);
    s.add_clause(&[!act2, Lit::pos(y)]);
    s.add_clause(&[!act2, Lit::neg(y)]);
    (s, act1, act2)
}

#[test]
fn pigeonhole_certificate_accepted() {
    let proof = php_certificate(4);
    assert!(proof.iter().any(|s| matches!(s, ProofStep::Derived(_))));
    assert!(matches!(proof.last(), Some(ProofStep::Derived(l)) if l.is_empty()));
    check_refutation(&proof, &[]).unwrap();
}

#[test]
fn empty_input_clause_is_a_refutation() {
    let proof = vec![ProofStep::Input(vec![]), ProofStep::Derived(vec![])];
    check_refutation(&proof, &[]).unwrap();
}

#[test]
fn mutation_dropped_step_rejected() {
    let mut proof = php_certificate(3);
    // Drop the concluding empty clause: the log no longer ends in a
    // refutation.
    proof.pop();
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_flipped_literal_rejected() {
    let mut proof = php_certificate(3);
    // Flip the first literal of every non-empty derived clause; the
    // corrupted lemmas no longer follow by unit propagation.
    for s in &mut proof {
        if let ProofStep::Derived(l) | ProofStep::DerivedHinted(l, _) = s {
            if let Some(first) = l.first_mut() {
                *first = !*first;
            }
        }
    }
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_truncated_log_rejected() {
    let mut proof = php_certificate(3);
    proof.truncate(proof.len() / 2);
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_reordered_deletion_rejected() {
    let (mut s, act1, act2) = session_gadget();
    assert_eq!(s.solve_assuming(&[act1]), SolveResult::Unsat);
    s.retract(act1);
    assert_eq!(s.solve_assuming(&[act2]), SolveResult::Unsat);
    let mut proof = s.take_proof();
    let del = proof
        .iter()
        .position(|st| matches!(st, ProofStep::Delete(_)))
        .expect("retract should sweep satisfied gate clauses");
    // Move the deletion before the clause ever existed.
    let step = proof.remove(del);
    proof.insert(0, step);
    assert!(matches!(
        check_refutation(&proof, &[act2]),
        Err(CheckError::DeleteMissing { step: 0 })
    ));
}

#[test]
fn delete_of_unknown_clause_rejected() {
    let mut ck = Checker::new();
    ck.apply(&ProofStep::Input(vec![Lit::pos(Var(0))])).unwrap();
    let err = ck.apply(&ProofStep::Delete(vec![Lit::neg(Var(0))]));
    assert!(matches!(err, Err(CheckError::DeleteMissing { step: 1 })));
}

#[test]
fn underived_clause_rejected() {
    // {a, b} alone does not imply {a}.
    let mut ck = Checker::new();
    ck.apply(&ProofStep::Input(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]))
        .unwrap();
    let err = ck.apply(&ProofStep::Derived(vec![Lit::pos(Var(0))]));
    assert!(matches!(err, Err(CheckError::NotImplied { step: 1 })));
}

#[test]
fn session_deltas_check_incrementally() {
    let (mut s, act1, act2) = session_gadget();
    let mut ck = Checker::new();

    assert_eq!(s.solve_assuming(&[act1]), SolveResult::Unsat);
    for st in &s.take_proof() {
        ck.apply(st).unwrap();
    }
    let c1 = ck.take_conclusion().expect("goal 1 conclusion");
    assert!(conclusion_covers(&c1, &[act1]));

    s.retract(act1);
    assert_eq!(s.solve_assuming(&[act2]), SolveResult::Unsat);
    let delta = s.take_proof();
    // The retraction swept goal 1's satisfied gate clauses.
    assert!(delta.iter().any(|st| matches!(st, ProofStep::Delete(_))));
    for st in &delta {
        ck.apply(st).unwrap();
    }
    let c2 = ck.take_conclusion().expect("goal 2 conclusion");
    assert!(conclusion_covers(&c2, &[act2]));
}

// ---------------------------------------------------------------------
// Inprocessing certificates: elimination resolvents in the proof stream
// ---------------------------------------------------------------------

/// An elimination whose parents share a non-pivot literal: resolving
/// `{v, a, b}` against `{!v, a, c}` on `v` gives `{a, b, c}`, which the
/// live parents cannot simulate under unit propagation (both stay
/// two-free when only `b` and `c` are false) — so the solver must log
/// it as a `Derived` step. `a`, `b`, `c` are frozen so `v` is the only
/// elimination candidate. The later contradiction over `{a, b, c}`
/// makes the combined log a refutation that *uses* the resolvent.
/// Returns the log and the index of the logged resolvent.
fn elimination_certificate() -> (Vec<ProofStep>, usize) {
    let mut s = Solver::new();
    s.set_proof_logging(true);
    let v = s.new_var();
    let shared: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
    let (a, b, c) = (shared[0], shared[1], shared[2]);
    for u in &shared {
        s.freeze_var(*u);
    }
    s.add_clause(&[Lit::pos(v), Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(v), Lit::pos(a), Lit::pos(c)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    let mut proof = s.take_proof();
    let resolvent_at = proof
        .iter()
        .position(|st| {
            matches!(st, ProofStep::Derived(l) | ProofStep::DerivedHinted(l, _) if l.len() >= 2)
        })
        .expect("a shared-literal resolvent must be logged");
    // Refute through the resolvent: with a and b false the checker's
    // only path to c is the Derived {a, b, c}.
    assert!(s.add_clause(&[Lit::neg(a)]));
    assert!(s.add_clause(&[Lit::neg(b)]));
    assert!(!s.add_clause(&[Lit::neg(c)]));
    proof.extend(s.take_proof());
    assert!(matches!(proof.last(), Some(ProofStep::Derived(l)) if l.is_empty()));
    (proof, resolvent_at)
}

#[test]
fn elimination_certificate_accepted() {
    let (proof, _) = elimination_certificate();
    assert!(
        !proof.iter().any(|st| matches!(st, ProofStep::Delete(_))),
        "parent deletions must be elided from the proof"
    );
    check_refutation(&proof, &[]).unwrap();
}

/// The complement of `elimination_certificate`: an implication chain
/// whose elimination resolvents all have disjoint parents. None of them
/// may appear in the log — the live parents simulate them — and the
/// refutation must still replay.
#[test]
fn elided_elimination_certificate_accepted() {
    let mut s = Solver::new();
    s.set_proof_logging(true);
    let v: Vec<Var> = (0..16).map(|_| s.new_var()).collect();
    for i in 0..15 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[15])]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.stats().eliminated_vars > 0, "the chain must be eliminated");
    let mut proof = s.take_proof();
    assert!(
        !proof.iter().any(|st| {
            matches!(st, ProofStep::Derived(l) | ProofStep::DerivedHinted(l, _) if l.len() >= 2)
        }),
        "disjoint-parent resolvents must be elided from the proof"
    );
    // !x15 forces the whole (reintroduced) chain false, conflicting
    // with {x0, x15} at level 0; the conclusion is logged by add_clause.
    assert!(!s.add_clause(&[Lit::neg(v[15])]));
    proof.extend(s.take_proof());
    assert!(matches!(proof.last(), Some(ProofStep::Derived(l)) if l.is_empty()));
    check_refutation(&proof, &[]).unwrap();
}

#[test]
fn mutation_tampered_resolvent_rejected() {
    let (mut proof, at) = elimination_certificate();
    let (ProofStep::Derived(l) | ProofStep::DerivedHinted(l, _)) = &mut proof[at] else {
        unreachable!("elimination_certificate returned a non-Derived index")
    };
    l[0] = !l[0];
    // Flipping a literal makes the resolvent satisfiable together with
    // its parents, so RUP at its position finds no conflict.
    assert!(matches!(
        check_refutation(&proof, &[]),
        Err(CheckError::NotImplied { .. } | CheckError::DeleteMissing { .. })
    ));
}

// ---------------------------------------------------------------------
// LRAT hints: fast-path acceptance, tamper rejection, fallback
// ---------------------------------------------------------------------

/// Index of the first hinted step with a non-empty hint list, or a
/// panic — the solver must produce hinted steps on PHP.
fn first_hinted(proof: &[ProofStep]) -> usize {
    proof
        .iter()
        .position(|st| matches!(st, ProofStep::DerivedHinted(_, h) if !h.is_empty()))
        .expect("PHP certificates must carry hinted derivations")
}

#[test]
fn php_certificate_checks_on_the_hinted_fast_path() {
    let proof = php_certificate(4);
    first_hinted(&proof);
    let mut ck = Checker::new();
    for st in &proof {
        ck.apply(st).unwrap();
    }
    assert!(ck.take_conclusion().is_some(), "PHP log must conclude");
    let (hinted_ok, fallbacks) = ck.hint_stats();
    assert!(hinted_ok > 0, "hints must drive the fast path");
    assert_eq!(fallbacks, 0, "solver-produced hints must never miss");
}

/// Hints are a performance contract, not a soundness one: a lenient
/// checker treats a wrecked hint list as "no hints" and re-derives the
/// step by full RUP — same verdict, counted as a fallback.
#[test]
fn tampered_hints_fall_back_to_full_rup() {
    let mut proof = php_certificate(4);
    for st in &mut proof {
        if let ProofStep::DerivedHinted(_, hints) = st {
            // Out-of-range ids: the hinted walk dies immediately.
            for h in hints.iter_mut() {
                *h = h.wrapping_add(100_000);
            }
        }
    }
    let mut ck = Checker::new();
    for st in &proof {
        ck.apply(st).unwrap();
    }
    assert!(ck.take_conclusion().is_some());
    let (_, fallbacks) = ck.hint_stats();
    assert!(fallbacks > 0, "wrecked hints must be counted as fallbacks");
}

/// Strict mode turns that same fallback into a rejection: a tampered
/// hint list is a rejected certificate, never a silently slower one.
#[test]
fn tampered_hints_rejected_in_strict_mode() {
    let mut proof = php_certificate(4);
    let at = first_hinted(&proof);
    if let ProofStep::DerivedHinted(_, hints) = &mut proof[at] {
        hints[0] = hints[0].wrapping_add(100_000);
    }
    let mut ck = Checker::new();
    ck.set_strict_hints(true);
    let err = proof.iter().try_for_each(|st| ck.apply(st));
    assert!(
        matches!(err, Err(CheckError::NotImplied { step }) if step == at),
        "strict mode must reject at the tampered step, got {err:?}"
    );
}

/// Reordering a hint list also breaks the unit-propagation replay
/// (each hint must become unit in order); lenient mode falls back,
/// strict mode rejects.
#[test]
fn reordered_hints_rejected_in_strict_mode() {
    let mut proof = php_certificate(3);
    // Find a hinted step whose reversal actually changes the order.
    let at = proof
        .iter()
        .position(|st| matches!(st, ProofStep::DerivedHinted(_, h) if h.len() >= 2 && h[0] != h[h.len() - 1]))
        .expect("PHP must produce a multi-hint derivation");
    if let ProofStep::DerivedHinted(_, hints) = &mut proof[at] {
        hints.reverse();
    }
    let mut lenient = Checker::new();
    for st in &proof {
        lenient.apply(st).unwrap();
    }
    assert!(lenient.hint_stats().1 > 0, "reversal must force a fallback");
    let mut strict = Checker::new();
    strict.set_strict_hints(true);
    let err = proof.iter().try_for_each(|st| strict.apply(st));
    assert!(matches!(err, Err(CheckError::NotImplied { step }) if step == at));
}

/// No hint list can force acceptance of a clause that does not follow:
/// every literal the hinted walk enqueues is genuinely implied, so a
/// fabricated derivation fails the walk *and* the full-RUP fallback.
#[test]
fn hints_cannot_launder_an_underived_clause() {
    let a = Lit::pos(Var(0));
    let b = Lit::pos(Var(1));
    for strict in [false, true] {
        let mut ck = Checker::new();
        ck.set_strict_hints(strict);
        ck.apply(&ProofStep::Input(vec![a, b])).unwrap();
        // {a, b} alone does not imply {a}, whatever the hints claim.
        let err = ck.apply(&ProofStep::DerivedHinted(vec![a], vec![0]));
        assert!(
            matches!(err, Err(CheckError::NotImplied { step: 1 })),
            "strict={strict}: fabricated hints must not launder the step, got {err:?}"
        );
    }
}

/// Hints are part of the certificate fingerprint: the same clause
/// stream with different hints hashes differently, so a cached verdict
/// cannot be replayed under a doctored hint list.
#[test]
fn hint_lists_are_hashed_into_the_fingerprint() {
    let proof = php_certificate(3);
    let at = first_hinted(&proof);
    let mut doctored = proof.clone();
    if let ProofStep::DerivedHinted(_, hints) = &mut doctored[at] {
        hints[0] = hints[0].wrapping_add(1);
    }
    assert_ne!(hash_steps(&proof), hash_steps(&doctored));
}

mod inprocessed_replay {
    use super::*;
    use serval_check::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every UNSAT verdict from an inprocessing solver on random
        /// CNF must come with a certificate the checker accepts.
        #[test]
        fn prop_inprocessed_unsat_proofs_replay(
            cnf in prop::collection::vec(
                prop::collection::vec((0..8usize, any::<bool>()), 1..=4),
                1..40
            )
        ) {
            let mut s = Solver::new();
            s.set_proof_logging(true);
            let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
            for clause in &cnf {
                let c: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, neg)| Lit::new(vars[v], neg))
                    .collect();
                s.add_clause(&c);
            }
            if s.solve() == SolveResult::Unsat {
                let proof = s.take_proof();
                prop_assert!(
                    check_refutation(&proof, &[]).is_ok(),
                    "inprocessed refutation rejected"
                );
            }
        }
    }
}

#[test]
fn conclusion_covers_subset_only() {
    let a = Lit::pos(Var(0));
    let b = Lit::pos(Var(1));
    assert!(conclusion_covers(&[], &[]));
    assert!(conclusion_covers(&[!a], &[a, b]));
    assert!(conclusion_covers(&[!a, !b], &[a, b]));
    assert!(!conclusion_covers(&[a], &[a, b]));
    assert!(!conclusion_covers(&[!a], &[b]));
    assert!(!conclusion_covers(&[!a], &[]));
}

#[test]
fn hashes_are_stable_and_tamper_sensitive() {
    let proof = php_certificate(3);
    let h1 = hash_steps(&proof);
    let h2 = hash_steps(&proof);
    assert_eq!(h1, h2);
    assert_ne!(h1, 0, "0 is reserved for `no certificate`");

    let mut flipped = proof.clone();
    if let Some(ProofStep::Input(l)) = flipped.first_mut() {
        l[0] = !l[0];
    }
    assert_ne!(hash_steps(&flipped), h1);

    // Chained (session) hashing distinguishes delta order.
    let (a, b) = proof.split_at(proof.len() / 2);
    let chained = hash_steps_seeded(hash_steps(a), b);
    assert_ne!(chained, hash_steps(b));
}
