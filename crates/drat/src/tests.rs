//! Checker tests: end-to-end certificates from the real solver, plus an
//! adversarial proof-mutation suite asserting that tampered logs are
//! rejected.

use crate::{check_refutation, conclusion_covers, hash_steps, hash_steps_seeded, CheckError,
            Checker};
use serval_sat::{Lit, ProofStep, SolveResult, Solver, Var};

/// Solves the pigeonhole formula PHP(holes+1, holes) with proof logging
/// and returns the certificate.
fn php_certificate(holes: usize) -> Vec<ProofStep> {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    s.set_proof_logging(true);
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for p in &v {
        let c: Vec<Lit> = p.iter().map(|&x| Lit::pos(x)).collect();
        s.add_clause(&c);
    }
    for j in 0..holes {
        for i in 0..pigeons {
            for k in i + 1..pigeons {
                s.add_clause(&[Lit::neg(v[i][j]), Lit::neg(v[k][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    s.take_proof()
}

/// A two-goal incremental gadget: each goal's gate clauses force a
/// contradiction under its activation literal; retracting the first goal
/// sweeps its satisfied gate clauses, producing `Delete` steps.
fn session_gadget() -> (Solver, Lit, Lit) {
    let mut s = Solver::new();
    s.set_proof_logging(true);
    let x = s.new_var();
    let y = s.new_var();
    let act1 = Lit::pos(s.new_var());
    let act2 = Lit::pos(s.new_var());
    s.add_clause(&[!act1, Lit::pos(x)]);
    s.add_clause(&[!act1, Lit::neg(x)]);
    s.add_clause(&[!act2, Lit::pos(y)]);
    s.add_clause(&[!act2, Lit::neg(y)]);
    (s, act1, act2)
}

#[test]
fn pigeonhole_certificate_accepted() {
    let proof = php_certificate(4);
    assert!(proof.iter().any(|s| matches!(s, ProofStep::Derived(_))));
    assert!(matches!(proof.last(), Some(ProofStep::Derived(l)) if l.is_empty()));
    check_refutation(&proof, &[]).unwrap();
}

#[test]
fn empty_input_clause_is_a_refutation() {
    let proof = vec![ProofStep::Input(vec![]), ProofStep::Derived(vec![])];
    check_refutation(&proof, &[]).unwrap();
}

#[test]
fn mutation_dropped_step_rejected() {
    let mut proof = php_certificate(3);
    // Drop the concluding empty clause: the log no longer ends in a
    // refutation.
    proof.pop();
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_flipped_literal_rejected() {
    let mut proof = php_certificate(3);
    // Flip the first literal of every non-empty derived clause; the
    // corrupted lemmas no longer follow by unit propagation.
    for s in &mut proof {
        if let ProofStep::Derived(l) = s {
            if let Some(first) = l.first_mut() {
                *first = !*first;
            }
        }
    }
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_truncated_log_rejected() {
    let mut proof = php_certificate(3);
    proof.truncate(proof.len() / 2);
    assert!(check_refutation(&proof, &[]).is_err());
}

#[test]
fn mutation_reordered_deletion_rejected() {
    let (mut s, act1, act2) = session_gadget();
    assert_eq!(s.solve_assuming(&[act1]), SolveResult::Unsat);
    s.retract(act1);
    assert_eq!(s.solve_assuming(&[act2]), SolveResult::Unsat);
    let mut proof = s.take_proof();
    let del = proof
        .iter()
        .position(|st| matches!(st, ProofStep::Delete(_)))
        .expect("retract should sweep satisfied gate clauses");
    // Move the deletion before the clause ever existed.
    let step = proof.remove(del);
    proof.insert(0, step);
    assert!(matches!(
        check_refutation(&proof, &[act2]),
        Err(CheckError::DeleteMissing { step: 0 })
    ));
}

#[test]
fn delete_of_unknown_clause_rejected() {
    let mut ck = Checker::new();
    ck.apply(&ProofStep::Input(vec![Lit::pos(Var(0))])).unwrap();
    let err = ck.apply(&ProofStep::Delete(vec![Lit::neg(Var(0))]));
    assert!(matches!(err, Err(CheckError::DeleteMissing { step: 1 })));
}

#[test]
fn underived_clause_rejected() {
    // {a, b} alone does not imply {a}.
    let mut ck = Checker::new();
    ck.apply(&ProofStep::Input(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]))
        .unwrap();
    let err = ck.apply(&ProofStep::Derived(vec![Lit::pos(Var(0))]));
    assert!(matches!(err, Err(CheckError::NotImplied { step: 1 })));
}

#[test]
fn session_deltas_check_incrementally() {
    let (mut s, act1, act2) = session_gadget();
    let mut ck = Checker::new();

    assert_eq!(s.solve_assuming(&[act1]), SolveResult::Unsat);
    for st in &s.take_proof() {
        ck.apply(st).unwrap();
    }
    let c1 = ck.take_conclusion().expect("goal 1 conclusion");
    assert!(conclusion_covers(&c1, &[act1]));

    s.retract(act1);
    assert_eq!(s.solve_assuming(&[act2]), SolveResult::Unsat);
    let delta = s.take_proof();
    // The retraction swept goal 1's satisfied gate clauses.
    assert!(delta.iter().any(|st| matches!(st, ProofStep::Delete(_))));
    for st in &delta {
        ck.apply(st).unwrap();
    }
    let c2 = ck.take_conclusion().expect("goal 2 conclusion");
    assert!(conclusion_covers(&c2, &[act2]));
}

#[test]
fn conclusion_covers_subset_only() {
    let a = Lit::pos(Var(0));
    let b = Lit::pos(Var(1));
    assert!(conclusion_covers(&[], &[]));
    assert!(conclusion_covers(&[!a], &[a, b]));
    assert!(conclusion_covers(&[!a, !b], &[a, b]));
    assert!(!conclusion_covers(&[a], &[a, b]));
    assert!(!conclusion_covers(&[!a], &[b]));
    assert!(!conclusion_covers(&[!a], &[]));
}

#[test]
fn hashes_are_stable_and_tamper_sensitive() {
    let proof = php_certificate(3);
    let h1 = hash_steps(&proof);
    let h2 = hash_steps(&proof);
    assert_eq!(h1, h2);
    assert_ne!(h1, 0, "0 is reserved for `no certificate`");

    let mut flipped = proof.clone();
    if let Some(ProofStep::Input(l)) = flipped.first_mut() {
        l[0] = !l[0];
    }
    assert_ne!(hash_steps(&flipped), h1);

    // Chained (session) hashing distinguishes delta order.
    let (a, b) = proof.split_at(proof.len() / 2);
    let chained = hash_steps_seeded(hash_steps(a), b);
    assert_ne!(chained, hash_steps(b));
}
