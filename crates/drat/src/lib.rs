//! An independent checker for the SAT solver's proof certificates.
//!
//! `serval-sat` can log every clause it adds, derives, or deletes as a
//! [`ProofStep`] (see `serval_sat::Solver::set_proof_logging`). This crate
//! replays such a log against its *own* clause database and unit
//! propagation — sharing no solver data structures — and accepts it only
//! if every `Derived` clause follows by **reverse unit propagation**
//! (RUP): assert the negation of the clause's literals, propagate, and
//! require a conflict. A log that ends in a derived clause containing
//! only negated assumption literals (the empty clause when there are no
//! assumptions) is a *certificate* of unsatisfiability: the checker's
//! acceptance depends only on the logged `Input` clauses, so a buggy
//! solver cannot smuggle an unsound refutation past it.
//!
//! Conventions (mirroring drat-trim):
//!
//! - `Input` clauses are taken on faith; they define the formula the
//!   certificate refutes.
//! - `Derived` clauses are checked by RUP *before* being added. The empty
//!   derived clause is accepted exactly when the database is already
//!   contradictory.
//! - `Delete` steps must name a live clause (matched as a sorted literal
//!   multiset — watch-list reordering inside the solver does not change
//!   the multiset); deleting a clause that was never added, or was
//!   already deleted, is tamper evidence and rejected.
//! - Unit propagation already performed persists across deletions, so
//!   deletions only ever make later RUP checks harder, never unsound.
//!
//! The checker is incremental: `serval-engine`'s session mode feeds one
//! live [`Checker`] the per-goal proof deltas of an incremental SAT
//! session, calling [`Checker::take_conclusion`] after each goal.

use serval_sat::{Lit, ProofStep};
use std::collections::HashMap;
use std::ops::Range;

/// Why a proof log was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A `Delete` step named a clause that is not live in the database.
    DeleteMissing {
        /// 0-based index of the offending step within the log.
        step: usize,
    },
    /// A `Derived` clause did not follow by reverse unit propagation.
    NotImplied {
        /// 0-based index of the offending step within the log.
        step: usize,
    },
    /// The log contained no `Derived` step to serve as its conclusion.
    NoConclusion,
    /// The final derived clause contains a literal that is not a negated
    /// assumption (for a refutation without assumptions: is non-empty).
    BadConclusion,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::DeleteMissing { step } => {
                write!(f, "proof step {step}: deleted clause is not in the database")
            }
            CheckError::NotImplied { step } => {
                write!(f, "proof step {step}: clause not implied (RUP check failed)")
            }
            CheckError::NoConclusion => write!(f, "proof has no derived conclusion"),
            CheckError::BadConclusion => {
                write!(f, "proof conclusion is not over the negated assumptions")
            }
        }
    }
}

#[derive(Clone, Copy)]
struct ClauseMeta {
    start: usize,
    len: usize,
    deleted: bool,
}

/// Live clause ids sharing one literal-set fingerprint. Almost every
/// bucket holds exactly one id, so the first lives inline and only
/// genuine duplicates (or collisions) allocate.
struct Bucket {
    first: u32,
    rest: Vec<u32>,
}

impl ClauseMeta {
    fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

/// A pass-through hasher for keys that are already FNV fingerprints
/// ([`fp_lits`]) — re-hashing them through SipHash would only burn
/// time on the checker's hottest path (one map touch per clause add
/// and delete).
#[derive(Clone, Copy, Default)]
struct FpBuild;

struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys are hashed via write_u64");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl std::hash::BuildHasher for FpBuild {
    type Hasher = FpHasher;
    fn build_hasher(&self) -> FpHasher {
        FpHasher(0)
    }
}

/// FNV-style fingerprint of a normalized (sorted, deduped) literal
/// slice, used only to bucket clauses for `Delete` matching (never
/// persisted — certificate hashes are [`hash_steps`]). One multiply
/// per literal: this runs once per clause add and delete, and bucket
/// hits verify the actual literal set, so hash quality only affects
/// bucket collision rate.
fn fp_lits(lits: &[Lit]) -> u64 {
    let mut h = FNV_OFFSET;
    for l in lits {
        h = (h ^ l.0 as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental RUP proof checker.
#[derive(Default)]
pub struct Checker {
    /// Flat literal arena; clauses index into it.
    lits: Vec<Lit>,
    clauses: Vec<ClauseMeta>,
    /// Literal-set fingerprint → live clause ids, for `Delete`
    /// matching. Matches are verified against the actual literals, so
    /// a fingerprint collision can never delete the wrong clause.
    by_key: HashMap<u64, Bucket, FpBuild>,
    /// Reusable normalization buffer (sort + dedup scratch).
    scratch: Vec<Lit>,
    /// Two-watched-literal scheme, indexed by `Lit::index()`.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: 0 undef, 1 true, -1 false.
    assign: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Set once the database is contradictory; never cleared.
    contradiction: bool,
    /// Clause id of the most recent `Derived` clause, if any. Stored as
    /// an id (the literal set lives in the arena) so the per-step cost
    /// is a register write; [`Checker::take_conclusion`] materializes
    /// it once per goal.
    last_derived: Option<u32>,
    steps: u64,
    /// When set, a hinted step whose hinted walk fails is rejected
    /// outright instead of falling back to full RUP (see
    /// [`Checker::set_strict_hints`]).
    strict_hints: bool,
    /// Hinted steps whose antecedent walk succeeded.
    hinted_ok: u64,
    /// Hinted steps that fell back to full RUP (lenient mode only).
    hint_fallbacks: u64,
}

impl Checker {
    /// A fresh checker with an empty database.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Applies one proof step. Errors leave the checker poisoned for the
    /// caller to discard — partial state after a rejection is unspecified.
    pub fn apply(&mut self, step: &ProofStep) -> Result<(), CheckError> {
        let idx = self.steps as usize;
        self.steps += 1;
        match step {
            ProofStep::Input(lits) => {
                self.add(lits);
                Ok(())
            }
            ProofStep::Derived(lits) => {
                if !self.rup(lits) {
                    return Err(CheckError::NotImplied { step: idx });
                }
                let cid = self.add(lits);
                self.last_derived = Some(cid);
                Ok(())
            }
            ProofStep::DerivedHinted(lits, hints) => {
                // The hinted walk is an indexed replay of the claimed
                // propagation chain — far cheaper than watch-driven
                // RUP, and sound by construction: every literal it
                // assigns is forced by the negated clause plus live
                // database clauses, so reaching a falsified clause is a
                // genuine implication regardless of where the hints
                // came from. A failed walk therefore only ever costs
                // acceptance: lenient checking falls back to full RUP
                // (absent-or-wrong hints change nothing), strict
                // checking treats it as tamper evidence and rejects.
                let ok = if self.hinted_rup(lits, hints) {
                    self.hinted_ok += 1;
                    true
                } else if self.strict_hints {
                    false
                } else {
                    self.hint_fallbacks += 1;
                    self.rup(lits)
                };
                if !ok {
                    return Err(CheckError::NotImplied { step: idx });
                }
                let cid = self.add(lits);
                self.last_derived = Some(cid);
                Ok(())
            }
            ProofStep::Delete(lits) => self.delete(lits, idx),
        }
    }

    /// In strict mode, a hinted step must check by its hinted walk
    /// alone — a wrong hint rejects the certificate instead of falling
    /// back to full RUP. Default: lenient (fall back), so hints can
    /// never make a previously-accepted certificate fail.
    pub fn set_strict_hints(&mut self, on: bool) {
        self.strict_hints = on;
    }

    /// `(hinted steps verified by their walk, hinted steps that fell
    /// back to full RUP)` so far.
    pub fn hint_stats(&self) -> (u64, u64) {
        (self.hinted_ok, self.hint_fallbacks)
    }

    /// Number of proof steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the database has been refuted outright.
    pub fn contradiction(&self) -> bool {
        self.contradiction
    }

    /// Takes (and clears) the most recent derived clause, normalized.
    /// A session caller invokes this once per goal so a goal that
    /// derives nothing cannot inherit the previous goal's conclusion.
    pub fn take_conclusion(&mut self) -> Option<Vec<Lit>> {
        let cid = self.last_derived.take()?;
        // The arena stores the clause deduped but watch handling may
        // have permuted it; re-sort the copy so callers get the same
        // normalized form as before.
        let mut lits = self.lits[self.clauses[cid as usize].range()].to_vec();
        lits.sort_unstable();
        Some(lits)
    }

    // ------------------------------------------------------------------
    // Database
    // ------------------------------------------------------------------

    fn ensure_capacity(&mut self, lits: &[Lit]) {
        let mut max_var = 0usize;
        for l in lits {
            max_var = max_var.max(l.var().index() + 1);
        }
        if self.assign.len() < max_var {
            self.assign.resize(max_var, 0);
            self.watches.resize(max_var * 2, Vec::new());
        }
    }

    /// Adds a clause persistently (no implication check — callers check
    /// `Derived` clauses first). Satisfied and tautological clauses are
    /// stored inert (matchable by `Delete`, never propagating); unit
    /// clauses propagate persistently.
    /// Normalizes `lits_in` into the reusable scratch buffer and takes
    /// it (callers put it back via `self.scratch = ...`).
    fn normalize(&mut self, lits_in: &[Lit]) -> Vec<Lit> {
        let mut norm = std::mem::take(&mut self.scratch);
        norm.clear();
        norm.extend_from_slice(lits_in);
        norm.sort_unstable();
        norm.dedup();
        norm
    }

    fn add(&mut self, lits_in: &[Lit]) -> u32 {
        let norm = self.normalize(lits_in);
        let taut = norm.windows(2).any(|w| w[1] == !w[0]);
        self.ensure_capacity(&norm);
        let cid = self.clauses.len() as u32;
        let start = self.lits.len();
        self.lits.extend_from_slice(&norm);
        self.clauses.push(ClauseMeta { start, len: norm.len(), deleted: false });
        match self.by_key.entry(fp_lits(&norm)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Bucket { first: cid, rest: Vec::new() });
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                e.into_mut().rest.push(cid);
            }
        }
        if taut || self.contradiction {
            self.scratch = norm;
            return cid;
        }
        // One scan: bail if satisfied by persistent facts (stored
        // inert), else record the first two non-false positions.
        let mut non_false = [0usize; 2];
        let mut found = 0usize;
        for (i, &l) in norm.iter().enumerate() {
            match value_of(&self.assign, l) {
                1 => {
                    self.scratch = norm; // satisfied: inert
                    return cid;
                }
                -1 => {}
                _ => {
                    if found < 2 {
                        non_false[found] = i;
                        found += 1;
                    }
                }
            }
        }
        let unit = norm.get(non_false[0]).copied();
        self.scratch = norm;
        match found {
            0 => self.contradiction = true, // includes the empty clause
            1 => {
                self.enqueue(unit.expect("non-empty clause"));
                if self.propagate() {
                    self.contradiction = true;
                }
            }
            _ => {
                // Watch two non-false literals (swapped into slots 0, 1).
                let r = self.clauses[cid as usize].range();
                let lits = &mut self.lits[r];
                lits.swap(0, non_false[0]);
                let second = (1..lits.len())
                    .find(|&i| value_of(&self.assign, lits[i]) != -1)
                    .expect("second non-false literal");
                lits.swap(1, second);
                let (w0, w1) = (lits[0], lits[1]);
                self.watches[w0.index()].push(cid);
                self.watches[w1.index()].push(cid);
            }
        }
        cid
    }

    fn delete(&mut self, lits_in: &[Lit], step: usize) -> Result<(), CheckError> {
        let norm = self.normalize(lits_in);
        let key = fp_lits(&norm);
        let mut deleted: Option<u32> = None;
        let mut emptied = false;
        if let Some(bucket) = self.by_key.get_mut(&key) {
            // Verify the literal set exactly within the bucket (watch
            // handling permutes stored clauses, so compare as sets —
            // both sides are deduped, so length + membership suffices).
            let matches = |meta: ClauseMeta, lits: &[Lit]| {
                let stored = &lits[meta.range()];
                stored.len() == norm.len() && norm.iter().all(|l| stored.contains(l))
            };
            // Most-recent first, mirroring the old LIFO pop.
            for i in (0..bucket.rest.len()).rev() {
                if matches(self.clauses[bucket.rest[i] as usize], &self.lits) {
                    deleted = Some(bucket.rest.swap_remove(i));
                    break;
                }
            }
            if deleted.is_none() && matches(self.clauses[bucket.first as usize], &self.lits) {
                deleted = Some(bucket.first);
                match bucket.rest.pop() {
                    Some(next) => bucket.first = next,
                    None => emptied = true,
                }
            }
        }
        if emptied {
            self.by_key.remove(&key);
        }
        self.scratch = norm;
        let Some(cid) = deleted else {
            return Err(CheckError::DeleteMissing { step });
        };
        self.clauses[cid as usize].deleted = true;
        // Watch lists drop deleted clauses lazily in propagate; persistent
        // facts already derived stay in force (drat-trim convention).
        Ok(())
    }

    // ------------------------------------------------------------------
    // Propagation and RUP
    // ------------------------------------------------------------------

    #[inline]
    fn value(&self, l: Lit) -> i8 {
        value_of(&self.assign, l)
    }

    fn enqueue(&mut self, l: Lit) {
        self.assign[l.var().index()] = if l.is_neg() { -1 } else { 1 };
        self.trail.push(l);
    }

    /// Propagates to fixpoint from `qhead`. Returns `true` on conflict
    /// (an all-false clause).
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = false;
            while i < ws.len() {
                let cid = ws[i] as usize;
                if self.clauses[cid].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                let r = self.clauses[cid].range();
                let (first, relocated) = {
                    let lits = &mut self.lits[r];
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                    let first = lits[0];
                    if value_of(&self.assign, first) == 1 {
                        (first, None)
                    } else {
                        let mut moved = None;
                        for k in 2..lits.len() {
                            if value_of(&self.assign, lits[k]) != -1 {
                                lits.swap(1, k);
                                moved = Some(lits[1]);
                                break;
                            }
                        }
                        (first, moved)
                    }
                };
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                if let Some(new_watch) = relocated {
                    self.watches[new_watch.index()].push(ws[i] as u32);
                    ws.swap_remove(i);
                    continue;
                }
                match self.value(first) {
                    0 => {
                        self.enqueue(first);
                        i += 1;
                    }
                    _ => {
                        conflict = true;
                        break;
                    }
                }
            }
            self.watches[false_lit.index()] = ws;
            if conflict {
                return true;
            }
        }
        false
    }

    /// Reverse-unit-propagation check: is `lits` implied by the current
    /// database? Temporary assignments are undone before returning.
    fn rup(&mut self, lits: &[Lit]) -> bool {
        if self.contradiction {
            return true;
        }
        self.ensure_capacity(lits);
        let checkpoint = self.trail.len();
        debug_assert_eq!(self.qhead, checkpoint);
        let mut implied = false;
        for &l in lits {
            match self.value(l) {
                // Satisfied under the forced assignment (also covers
                // tautologies: the earlier negation-enqueue of the
                // complementary literal makes this one true).
                1 => {
                    implied = true;
                    break;
                }
                -1 => {}
                _ => self.enqueue(!l),
            }
        }
        if !implied {
            // If every literal was already false, no new assignment was
            // made and propagation cannot surface a fresh conflict; that
            // state only arises from a contradictory database, which the
            // contradiction flag already covers. Reject (sound side).
            implied = self.trail.len() > checkpoint && self.propagate();
        }
        for i in checkpoint..self.trail.len() {
            self.assign[self.trail[i].var().index()] = 0;
        }
        self.trail.truncate(checkpoint);
        self.qhead = checkpoint;
        implied
    }

    /// LRAT-style hinted implication check: assert the negation of
    /// `lits`, then walk `hints` in order — each named clause should be
    /// unit (assign its last free literal) or falsified (conflict:
    /// implication established). Hints naming out-of-range or deleted
    /// clauses end the walk unsuccessfully; hints that are satisfied or
    /// leave two literals free are skipped. Every assignment made is
    /// forced by the negated clause and live database clauses, so a
    /// `true` return is a sound implication no matter what the hints
    /// were; `false` only means "not established by this walk".
    /// Temporary assignments are undone before returning.
    fn hinted_rup(&mut self, lits: &[Lit], hints: &[u32]) -> bool {
        if self.contradiction {
            return true;
        }
        self.ensure_capacity(lits);
        let checkpoint = self.trail.len();
        debug_assert_eq!(self.qhead, checkpoint);
        let mut implied = false;
        for &l in lits {
            match self.value(l) {
                1 => {
                    implied = true;
                    break;
                }
                -1 => {}
                _ => self.enqueue(!l),
            }
        }
        if !implied {
            'walk: for &h in hints {
                let Some(&meta) = self.clauses.get(h as usize) else {
                    break;
                };
                if meta.deleted {
                    break;
                }
                let mut free: Option<Lit> = None;
                for k in meta.range() {
                    let l = self.lits[k];
                    match value_of(&self.assign, l) {
                        1 => continue 'walk, // satisfied: useless hint
                        -1 => {}
                        _ => {
                            if free.is_some() {
                                continue 'walk; // two free literals
                            }
                            free = Some(l);
                        }
                    }
                }
                match free {
                    None => {
                        implied = true; // falsified: conflict reached
                        break;
                    }
                    Some(l) => self.enqueue(l),
                }
            }
        }
        for i in checkpoint..self.trail.len() {
            self.assign[self.trail[i].var().index()] = 0;
        }
        self.trail.truncate(checkpoint);
        self.qhead = checkpoint;
        implied
    }
}

#[inline]
fn value_of(assign: &[i8], l: Lit) -> i8 {
    let a = assign[l.var().index()];
    if l.is_neg() {
        -a
    } else {
        a
    }
}

/// Checks a complete refutation log: applies every step, then requires a
/// conclusion whose literals are all negated `assumptions` (the empty
/// clause when `assumptions` is empty).
pub fn check_refutation(steps: &[ProofStep], assumptions: &[Lit]) -> Result<(), CheckError> {
    let mut ck = Checker::new();
    for s in steps {
        ck.apply(s)?;
    }
    match ck.take_conclusion() {
        None => Err(CheckError::NoConclusion),
        Some(conc) if conclusion_covers(&conc, assumptions) => Ok(()),
        Some(_) => Err(CheckError::BadConclusion),
    }
}

/// Whether every literal of `conclusion` is the negation of one of
/// `assumptions`.
pub fn conclusion_covers(conclusion: &[Lit], assumptions: &[Lit]) -> bool {
    conclusion.iter().all(|&l| assumptions.iter().any(|&a| l == !a))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 fingerprint of a proof log (order-sensitive). Certificate
/// hashes stored in the engine's verdict cache use this; 0 never occurs,
/// so callers can use 0 for "no certificate".
pub fn hash_steps(steps: &[ProofStep]) -> u64 {
    hash_steps_seeded(FNV_OFFSET, steps)
}

/// [`hash_steps`] with an explicit seed, for chaining per-goal deltas of
/// an incremental session into one running certificate hash.
pub fn hash_steps_seeded(seed: u64, steps: &[ProofStep]) -> u64 {
    // FNV-1a over u32 units rather than bytes: one xor-multiply per
    // literal/hint. This fingerprint guards against corruption and
    // accidental replacement (bucket hits re-replay the proof), not
    // adversaries, and it hashes every literal of every step of every
    // certificate — at half a million steps per workload the byte-wise
    // variant was a measurable slice of certified-discharge overhead.
    #[inline]
    fn byte(h: u64, b: u8) -> u64 {
        (h ^ b as u64).wrapping_mul(FNV_PRIME)
    }
    #[inline]
    fn word(h: u64, w: u32) -> u64 {
        (h ^ w as u64).wrapping_mul(FNV_PRIME)
    }
    let mut h = seed;
    for s in steps {
        let (tag, lits) = match s {
            ProofStep::Input(l) => (1u8, l),
            ProofStep::Derived(l) => (2u8, l),
            ProofStep::Delete(l) => (3u8, l),
            ProofStep::DerivedHinted(l, _) => (4u8, l),
        };
        h = byte(h, tag);
        h = word(h, lits.len() as u32);
        for l in lits {
            h = word(h, l.0);
        }
        // Hints are part of the certificate: a fingerprint match must
        // mean the cached proof replays identically, hints included.
        if let ProofStep::DerivedHinted(_, hints) = s {
            h = word(h, hints.len() as u32);
            for &id in hints {
                h = word(h, id);
            }
        }
    }
    // Never collide with the "no certificate" sentinel.
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests;
