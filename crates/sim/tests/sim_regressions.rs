//! Pinned-seed regression corpus for the deterministic simulator.
//!
//! Two kinds of tests live here:
//!
//! 1. **The determinism contract** — running any scenario twice on the
//!    same seed must produce a bit-identical schedule trace and summary.
//!    Everything else (replayable bug reports, the pinned corpus below)
//!    rests on this.
//!
//! 2. **One named seed per bug this harness caught** — each pinned seed
//!    is verified to still *exercise* the fault it was pinned for (the
//!    buggify/IO event appears in the trace) and to uphold the oracle
//!    that used to fail before the fix. If a refactor makes a pinned
//!    seed stop firing its fault, the test fails so the seed can be
//!    re-picked with `cargo run -p serval-sim --example seed_probe`.
//!
//! The sim context is process-global, so every test serializes on
//! [`LOCK`].

use std::sync::Mutex;

use serval_check::sim::SimConfig;
use serval_sim::{run_scenario, ScenarioReport, SCENARIOS};

static LOCK: Mutex<()> = Mutex::new(());

fn run(name: &str, cfg: SimConfig) -> ScenarioReport {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    match run_scenario(name, cfg) {
        Ok(r) => r,
        Err(f) => panic!("{f}"),
    }
}

#[test]
fn same_seed_same_trace_and_summary() {
    for name in SCENARIOS {
        for seed in [0u64, 7, 42] {
            for cfg in [SimConfig::plain(seed), SimConfig::hostile(seed)] {
                let a = run(name, cfg.clone());
                let b = run(name, cfg);
                assert_eq!(
                    (a.trace_hash, &a.summary),
                    (b.trace_hash, &b.summary),
                    "{name} seed {seed} is nondeterministic"
                );
            }
        }
    }
}

#[test]
fn plain_seeds_resolve_everything() {
    // Liveness sample: with no faults armed, every scenario's oracle
    // demands definitive verdicts, full warm coverage, and zero lost
    // disk records (the oracles themselves assert this; a panic here is
    // the failure).
    for name in SCENARIOS {
        for seed in [0u64, 1, 2, 3] {
            run(name, SimConfig::plain(seed));
        }
    }
}

/// Regression: torn appends to the shared disk-cache tier used to leave
/// a half-record that poisoned every later record in the file. Fixed by
/// per-process segment files with per-record checksums and
/// truncate-to-last-good on load. Seed 1 injects torn and bit-flip
/// writes (no crash): some records are lost, none reload wrong.
#[test]
fn torn_append_truncates_to_last_good_record() {
    let r = run("cache_writers", SimConfig::hostile(1));
    assert!(r.injected("torn"), "pinned seed no longer injects a torn write");
    assert!(r.injected("flip"), "pinned seed no longer injects a bit flip");
    assert_eq!(r.summary, "wrote=40 survived=14");
}

/// Regression: a simulated crash mid-run plus every other fault kind at
/// once. The reload oracle (no wrong certificate, no panic) must hold
/// even when nothing survives.
#[test]
fn crash_and_lost_rename_lose_records_but_never_corrupt() {
    let r = run("cache_writers", SimConfig::hostile(9));
    for kind in ["torn", "flip", "crash", "lost-rename"] {
        assert!(r.injected(kind), "pinned seed no longer injects {kind}");
    }
    assert_eq!(r.summary, "wrote=40 survived=0");
}

/// Regression: the loader's truncate-to-last-good repair can itself be
/// skipped by buggify ("cache-load-skip-truncate") — the reload must
/// still never surface a checksum-failing record as a verdict.
#[test]
fn skipped_truncation_still_rejects_bad_records() {
    let r = run("cache_writers", SimConfig::hostile(0));
    assert!(
        r.fired("cache-load-skip-truncate"),
        "pinned seed no longer skips load-time truncation"
    );
    assert!(r.injected("crash"), "pinned seed no longer injects a crash");
    assert_eq!(r.summary, "wrote=40 survived=7");
}

/// Regression: a corrupted proof certificate (buggify pops the final
/// proof step) must demote the verdict to Unknown with the rejection
/// reason — never surface as an unchecked Proved, never flip to
/// Refuted. Seed 19 corrupts two of four proofs.
#[test]
fn corrupted_proofs_demote_to_unknown() {
    let r = run("cert_demotion", SimConfig::hostile(19));
    assert!(
        r.fired("cert-corrupt-proof"),
        "pinned seed no longer corrupts a proof"
    );
    assert_eq!(r.summary, "proved=2 demoted=2");
}

/// Regression: dropping the portfolio's first definitive finisher
/// ("portfolio-drop-winner") may cost a verdict, never flip one. Seed 2
/// drops a winner and a later variant still recovers every verdict;
/// seed 17 corrupts a proof (with hints also stripped) and degrades one
/// query to Unknown.
#[test]
fn dropped_portfolio_winner_degrades_but_never_flips() {
    let recovered = run("portfolio_cancel", SimConfig::hostile(2));
    assert!(
        recovered.fired("portfolio-drop-winner"),
        "pinned seed no longer drops a winner"
    );
    assert_eq!(recovered.summary, "verdicts=PPR variants=001");

    let degraded = run("portfolio_cancel", SimConfig::hostile(17));
    assert!(degraded.fired("cert-corrupt-proof"));
    assert!(degraded.fired("lrat-drop-hint"));
    assert_eq!(degraded.summary, "verdicts=PUR variants=210");
}

/// Regression: buggified queue discipline (submit diverted to the
/// injector, claims forced to steal-first) reorders execution across
/// all three claim sources — results must still come back in
/// submission order.
#[test]
fn buggified_pool_keeps_submission_order() {
    let r = run("pool_determinism", SimConfig::hostile(0));
    assert!(r.fired("pool-submit-injector"));
    assert!(r.fired("pool-claim-steal-first"));
    for source in ["own", "injector", "steal"] {
        assert!(r.claimed_from(source), "pinned seed no longer claims from {source}");
    }
}

/// Regression: the warm-rerun accounting identity (misses = 0,
/// hits = submitted - trivial) must survive a hostile schedule that
/// skips session purging and reroutes pool claims. The engine_batch
/// oracle checks the identity itself in plain mode; here the pinned
/// hostile seed must still land full warm coverage.
#[test]
fn warm_accounting_survives_hostile_schedule() {
    let r = run("engine_batch", SimConfig::hostile(18));
    assert!(r.fired("session-skip-purge"), "pinned seed no longer skips a purge");
    assert!(r.fired("pool-claim-steal-first"));
    assert!(r.fired("pool-submit-injector"));
    assert_eq!(r.summary, "cold=PPRPP warm=PPRPP acct=4h/0m/5q/1t");
}

/// Regression: degraded SAT inprocessing ("inprocess-skip" turns the
/// maintenance round into a no-op) must never flip a verdict —
/// inprocessing is an equisatisfiable rewrite, so the full engine
/// pipeline must land the same cold and warm verdicts with or without
/// it. Seed 2 skips inprocessing *and* a session purge in one run.
#[test]
fn skipped_inprocessing_never_flips_a_verdict() {
    let r = run("engine_batch", SimConfig::hostile(2));
    assert!(
        r.fired("inprocess-skip"),
        "pinned seed no longer skips inprocessing"
    );
    assert!(r.fired("session-skip-purge"));
    assert_eq!(r.summary, "cold=PPRPP warm=PPRPP acct=4h/0m/5q/1t");
}

/// Regression: degraded session elimination ("session-eliminate-skip"
/// turns plan-scoped BVE into subsumption-only maintenance) must never
/// flip a verdict — eliminated clauses are retraction-safe rewrites of
/// the plan's own cone, so skipping the whole pass only costs speed.
/// Seed 5 skips elimination inside the cold run's live session.
#[test]
fn skipped_session_elimination_never_flips_a_verdict() {
    let r = run("engine_batch", SimConfig::hostile(5));
    assert!(
        r.fired("session-eliminate-skip"),
        "pinned seed no longer skips session elimination"
    );
    assert_eq!(r.summary, "cold=PPRPP warm=PPRPP acct=4h/0m/5q/1t");
}

/// Regression: stripping the LRAT hints off every proof step (as a
/// solver version skew would) must leave all verdicts intact with zero
/// certificate rejections — hints are a checker fast path, and the
/// lenient checker falls back to full RUP on every de-hinted step. A
/// demotion would surface as a `U` in the summary.
#[test]
fn dropped_lrat_hints_fall_back_without_losing_verdicts() {
    let r = run("engine_batch", SimConfig::hostile(1));
    assert!(
        r.fired("lrat-drop-hint"),
        "pinned seed no longer strips LRAT hints"
    );
    assert_eq!(r.summary, "cold=PPRPP warm=PPRPP acct=4h/0m/5q/1t");
}
