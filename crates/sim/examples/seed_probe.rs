//! Scans hostile seeds per scenario and prints which fault/buggify
//! events each one fires — used to pick the pinned seeds in
//! `tests/sim_regressions.rs` (a pinned seed must demonstrably exercise
//! the fault it regresses).

use serval_check::sim::{SimConfig, TraceEvent};
use serval_sim::{run_scenario, SCENARIOS};

fn main() {
    let max: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    for name in SCENARIOS {
        println!("== {name}");
        for seed in 0..max {
            let r = match run_scenario(name, SimConfig::hostile(seed)) {
                Ok(r) => r,
                Err(f) => {
                    println!("  seed {seed}: FAILED: {}", f.message);
                    continue;
                }
            };
            let mut tags: Vec<String> = Vec::new();
            for ev in &r.trace {
                match ev {
                    TraceEvent::Buggify { point, .. } => tags.push(format!("b:{point}")),
                    TraceEvent::IoFault { kind, .. } => tags.push(format!("io:{kind}")),
                    TraceEvent::Step { source, .. } => tags.push(format!("s:{source}")),
                    TraceEvent::Mark { .. } => {}
                }
            }
            tags.sort();
            tags.dedup();
            if !tags.is_empty() {
                println!("  seed {seed:3}: {} :: {}", tags.join(" "), r.summary);
            }
        }
    }
}
