//! Seed sweep over the deterministic-simulation scenarios.
//!
//! Environment contract:
//!
//! - `SERVAL_SIM_SEED=<n>`   — replay exactly one seed (prints the full
//!   report per scenario) instead of sweeping.
//! - `SERVAL_SIM_SCENARIO=<name>` — restrict to one scenario.
//! - `SERVAL_SIM_SWEEP=<n>`  — number of seeds per scenario (default 200).
//! - `SERVAL_BUGGIFY=0|1`    — arm buggify + IO faults (default 1: the
//!   sweep's whole point is hostile schedules).
//!
//! Every failure prints the offending seed and the exact replay command,
//! then the process exits nonzero. Every 16th seed is run twice to hold
//! the determinism contract: same seed ⇒ identical trace hash + summary.

use serval_check::sim::SimConfig;
use serval_sim::{run_scenario, SCENARIOS};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn main() {
    // The oracles report bugs by panicking inside run_scenario's
    // catch_unwind; the default hook would spray a backtrace per caught
    // panic. The failure report carries the message and trace tail.
    std::panic::set_hook(Box::new(|_| {}));

    let hostile = env_u64("SERVAL_BUGGIFY").map_or(true, |v| v != 0);
    let cfg_for = |seed: u64| {
        if hostile {
            SimConfig::hostile(seed)
        } else {
            SimConfig::plain(seed)
        }
    };
    let scenario_filter = std::env::var("SERVAL_SIM_SCENARIO").ok();
    let scenarios: Vec<&str> = SCENARIOS
        .iter()
        .copied()
        .filter(|s| scenario_filter.as_deref().map_or(true, |f| f == *s))
        .collect();
    if scenarios.is_empty() {
        eprintln!(
            "SERVAL_SIM_SCENARIO={:?} matches no scenario (known: {SCENARIOS:?})",
            scenario_filter.unwrap_or_default()
        );
        std::process::exit(2);
    }

    let mut failures = 0usize;

    if let Some(seed) = env_u64("SERVAL_SIM_SEED") {
        for name in &scenarios {
            match run_scenario(name, cfg_for(seed)) {
                Ok(r) => println!(
                    "{name} seed={seed} trace_hash={:#018x} vtime={}ns events={} :: {}",
                    r.trace_hash, r.vtime, r.events, r.summary
                ),
                Err(f) => {
                    eprintln!("{f}");
                    failures += 1;
                }
            }
        }
    } else {
        let sweep = env_u64("SERVAL_SIM_SWEEP").unwrap_or(200);
        for name in &scenarios {
            let mut ran = 0u64;
            for seed in 0..sweep {
                match run_scenario(name, cfg_for(seed)) {
                    Ok(r) => {
                        // Determinism spot-check: replay a sample of the
                        // seeds and demand identical traces + summaries.
                        if seed % 16 == 0 {
                            let again = run_scenario(name, cfg_for(seed))
                                .expect("replay of a passing seed must pass");
                            if again.trace_hash != r.trace_hash || again.summary != r.summary {
                                eprintln!(
                                    "SCENARIO {name} NONDETERMINISTIC at seed {seed}: \
                                     {:#018x} :: {} vs {:#018x} :: {}\n  \
                                     replay with SERVAL_SIM_SEED={seed} SERVAL_SIM_SCENARIO={name}",
                                    r.trace_hash, r.summary, again.trace_hash, again.summary
                                );
                                failures += 1;
                            }
                        }
                    }
                    Err(f) => {
                        eprintln!("{f}");
                        failures += 1;
                    }
                }
                ran += 1;
            }
            println!(
                "{name}: {ran} seeds ({}), {} failure(s) so far",
                if hostile { "hostile" } else { "plain" },
                failures
            );
        }
    }

    if failures > 0 {
        eprintln!("sim sweep: {failures} failure(s)");
        std::process::exit(1);
    }
}
