//! serval-sim: deterministic simulation scenarios for the concurrent
//! engine.
//!
//! FoundationDB-style testing: each scenario exercises one concurrent
//! subsystem — the work-stealing pool, the batch engine, the portfolio
//! race, the shared disk cache, the certificate checker — under a
//! [`sim`] context that owns scheduling, time, and IO failure. A
//! scenario is a pure function of its seed: the schedule trace and the
//! verdict summary are bit-identical across same-seed runs, so any
//! failing schedule is a *replayable seed*, not a heisenbug.
//!
//! Two knobs per run ([`SimConfig`]): `buggify` arms the rare-branch
//! hooks planted in production code (lock-order edges, fallback paths,
//! purge skips, SAT-inprocessing skips, proof corruption), and
//! `io_faults` arms torn/flipped/crashed disk writes in the verdict
//! cache. The oracles here are
//! written for *both* modes:
//!
//! - **Safety (always)**: never a wrong definitive verdict — a valid
//!   theorem must not come back `Refuted`, an invalid one must not come
//!   back `Proved`, a reloaded cache record must never carry a wrong
//!   certificate, and nothing may panic.
//! - **Liveness (plain runs only)**: with no faults armed, every query
//!   resolves definitively, warm reruns hit on every non-trivial query
//!   with zero misses, and no disk record is lost.
//!
//! The `sim_sweep` binary drives thousands of seeds per scenario;
//! `tests/sim_regressions.rs` pins one named seed per bug this harness
//! has caught, plus the same-seed determinism contract.

use serval_check::sim::{self, SimConfig, TraceEvent};
use serval_engine::cache::{Cache, CachedVerdict};
use serval_engine::pool::Pool;
use serval_engine::{DischargeMode, Engine, EngineCfg, Query};
use serval_smt::solver::{SolverConfig, VerifyResult};
use serval_smt::{reset_ctx, SBool, BV};

/// Every scenario, in sweep order.
pub const SCENARIOS: &[&str] = &[
    "pool_determinism",
    "engine_batch",
    "portfolio_cancel",
    "cache_writers",
    "cert_demotion",
    "net_batch",
];

/// What a completed scenario run observed.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// The seed the run was driven by.
    pub seed: u64,
    /// FNV fingerprint of the schedule trace (the determinism oracle:
    /// same seed ⇒ same hash).
    pub trace_hash: u64,
    /// Final virtual time, nanoseconds.
    pub vtime: u64,
    /// Number of trace events.
    pub events: usize,
    /// Scenario-defined behavior summary (verdict letters, counters);
    /// also covered by the determinism contract.
    pub summary: String,
    /// The full schedule trace, so regression tests can assert that a
    /// pinned seed really exercises the fault it was pinned for.
    pub trace: Vec<TraceEvent>,
}

impl ScenarioReport {
    /// Whether the trace contains a fired buggify point named `point`.
    pub fn fired(&self, point: &str) -> bool {
        self.trace
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Buggify { point: p, .. } if *p == point))
    }

    /// Whether the trace contains an injected IO fault of kind `kind`
    /// (`torn`, `flip`, `crash`, or `lost-rename`).
    pub fn injected(&self, kind: &str) -> bool {
        self.trace
            .iter()
            .any(|ev| matches!(ev, TraceEvent::IoFault { kind: k, .. } if *k == kind))
    }

    /// Whether any worker claimed a job from `source` (`own`,
    /// `injector`, or `steal`).
    pub fn claimed_from(&self, source: &str) -> bool {
        self.trace
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Step { source: s, .. } if *s == source))
    }
}

/// A scenario that panicked: the replayable bug report.
#[derive(Clone, Debug)]
pub struct ScenarioFailure {
    /// Scenario name.
    pub name: String,
    /// The offending seed — rerunning with it replays the failure.
    pub seed: u64,
    /// The panic message (usually an oracle assertion).
    pub message: String,
    /// The tail of the schedule trace leading up to the failure.
    pub trace_tail: Vec<TraceEvent>,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scenario {} FAILED at seed {}: {}",
            self.name, self.seed, self.message
        )?;
        writeln!(f, "  schedule tail:")?;
        for ev in &self.trace_tail {
            writeln!(f, "    {ev:?}")?;
        }
        write!(
            f,
            "  replay: SERVAL_SIM_SEED={} SERVAL_SIM_SCENARIO={} cargo run -p serval-sim --bin sim_sweep",
            self.seed, self.name
        )
    }
}

/// Runs one scenario under a fresh sim context. The context is always
/// torn down, even when the scenario's oracle panics — the panic becomes
/// an [`ScenarioFailure`] carrying the seed and the trace tail.
pub fn run_scenario(name: &str, cfg: SimConfig) -> Result<ScenarioReport, ScenarioFailure> {
    let body: fn(&SimConfig) -> String = match name {
        "pool_determinism" => pool_determinism,
        "engine_batch" => engine_batch,
        "portfolio_cancel" => portfolio_cancel,
        "cache_writers" => cache_writers,
        "cert_demotion" => cert_demotion,
        "net_batch" => net_batch,
        _ => panic!("unknown scenario {name:?} (known: {SCENARIOS:?})"),
    };
    let seed = cfg.seed;
    sim::begin(cfg.clone());
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&cfg)));
    let report = sim::end();
    match out {
        Ok(summary) => Ok(ScenarioReport {
            name: name.to_string(),
            seed,
            trace_hash: report.trace_hash(),
            vtime: report.vtime,
            events: report.trace.len(),
            summary,
            trace: report.trace,
        }),
        Err(p) => Err(ScenarioFailure {
            name: name.to_string(),
            seed,
            message: panic_text(p),
            trace_tail: report
                .trace
                .iter()
                .rev()
                .take(12)
                .rev()
                .cloned()
                .collect(),
        }),
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "scenario panicked".to_string()
    }
}

fn q(label: &str, assumptions: Vec<SBool>, goal: SBool) -> Query {
    Query {
        label: label.to_string(),
        assumptions,
        goal,
        cfg: SolverConfig::default(),
    }
}

/// One letter per verdict, the compact summary alphabet.
fn letter(r: &VerifyResult) -> char {
    match r {
        VerifyResult::Proved => 'P',
        VerifyResult::Counterexample(_) => 'R',
        VerifyResult::Unknown => 'U',
        VerifyResult::Interrupted => 'I',
    }
}

/// The shared verdict oracle: a *wrong* definitive verdict is fatal in
/// every mode; a non-definitive verdict (`Unknown`/`Interrupted`) is
/// fatal only in plain runs, where nothing can legitimately degrade. A
/// reported counterexample must actually refute the caller's query.
fn check_verdicts(
    outcomes: &[serval_engine::QueryOutcome],
    oracle: &[(Vec<SBool>, SBool, bool)],
    cfg: &SimConfig,
) {
    assert_eq!(outcomes.len(), oracle.len());
    let faulty = cfg.buggify || cfg.io_faults;
    for (o, (assumptions, goal, valid)) in outcomes.iter().zip(oracle) {
        match &o.result {
            VerifyResult::Proved => {
                assert!(
                    *valid,
                    "{}: invalid theorem came back Proved — wrong verdict",
                    o.label
                );
            }
            VerifyResult::Counterexample(m) => {
                assert!(
                    !*valid,
                    "{}: valid theorem came back Refuted — wrong verdict",
                    o.label
                );
                assert!(
                    assumptions.iter().all(|a| m.eval_bool(a.0)) && !m.eval_bool(goal.0),
                    "{}: reported countermodel does not refute the query",
                    o.label
                );
            }
            VerifyResult::Unknown | VerifyResult::Interrupted => {
                assert!(
                    faulty,
                    "{}: non-definitive verdict {:?} in a fault-free run",
                    o.label, o.result
                );
            }
        }
    }
}

// -----------------------------------------------------------------
// Scenarios
// -----------------------------------------------------------------

/// The work-stealing pool under a seeded scheduler: whatever order the
/// virtual workers claim jobs in (own/injector/steal, reordered by
/// buggify), results must come back in submission order, twice in a row
/// on the same pool.
fn pool_determinism(_cfg: &SimConfig) -> String {
    let pool = Pool::new(4);
    assert!(pool.simulated(), "pool must take the sim executor under a sim context");
    for (round, n) in [(0usize, 16usize), (1, 5)] {
        sim::mark(format!("pool-batch-{round}"));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..n)
            .map(|i| {
                let b: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i);
                b
            })
            .collect();
        let results: Vec<usize> = pool
            .run_batch(tasks)
            .into_iter()
            .map(|r| r.expect("no task panics in this scenario"))
            .collect();
        assert_eq!(
            results,
            (0..n).collect::<Vec<_>>(),
            "batch results must arrive in submission order"
        );
    }
    "two batches in submission order".to_string()
}

/// The full engine pipeline (presolve, split, sessions, cache, certs)
/// on a mixed batch with a known verdict oracle, plus the warm-rerun
/// accounting invariant: `hits = submitted - trivial`, `misses = 0`.
fn engine_batch(cfg: &SimConfig) -> String {
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let z = BV::fresh(32, "z");
    let engine = Engine::new(EngineCfg {
        jobs: 3,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Session,
        presolve: true,
        cert: true,
    });
    // (assumptions, goal, is-valid-theorem)
    let oracle: Vec<(Vec<SBool>, SBool, bool)> = vec![
        (vec![], (x & y).ule(x), true),
        (vec![], (x + y).eq_(y + x), true),
        (vec![], x.ule(y), false),
        (vec![x.ult(y), y.ult(z)], x.ult(z), true),
        (vec![], (x & y).ule(x) & ((x & y) + (x | y)).eq_(x + y), true),
    ];
    let make = || -> Vec<Query> {
        oracle
            .iter()
            .enumerate()
            .map(|(i, (a, g, _))| q(&format!("q{i}"), a.clone(), *g))
            .collect()
    };
    sim::mark("cold");
    let cold = engine.submit_batch(make());
    check_verdicts(&cold, &oracle, cfg);
    let (h0, m0) = engine.cache_stats();
    let (s0, t0) = engine.query_counts();
    sim::mark("warm");
    let warm = engine.submit_batch(make());
    check_verdicts(&warm, &oracle, cfg);
    let (h1, m1) = engine.cache_stats();
    let (s1, t1) = engine.query_counts();
    let (wh, wm, ws, wt) = (h1 - h0, m1 - m0, s1 - s0, t1 - t0);
    // Definitive cold and warm verdicts must agree (a degraded Unknown
    // in one run may resolve in the other; that is not a disagreement).
    for (c, w) in cold.iter().zip(&warm) {
        let (lc, lw) = (letter(&c.result), letter(&w.result));
        if "PR".contains(lc) && "PR".contains(lw) {
            assert_eq!(lc, lw, "{}: cold {lc} vs warm {lw}", c.label);
        }
    }
    if !cfg.buggify && !cfg.io_faults {
        // The batch accounting invariant, on a genuinely warm cache.
        assert_eq!(wm, 0, "warm rerun must not miss");
        assert_eq!(wh, ws - wt, "warm hits must cover every non-trivial query");
        for w in &warm {
            assert!(
                w.cache_hit || matches!(w.result, VerifyResult::Proved if w.stats.is_none()),
                "{}: warm outcome neither a cache hit nor trivial",
                w.label
            );
        }
    }
    let cold_s: String = cold.iter().map(|o| letter(&o.result)).collect();
    let warm_s: String = warm.iter().map(|o| letter(&o.result)).collect();
    format!("cold={cold_s} warm={warm_s} acct={wh}h/{wm}m/{ws}q/{wt}t")
}

/// The portfolio race under simulation: sequential seed-ordered
/// variants, first definitive verdict wins, buggify may "cancel" a
/// winner. The verdict may degrade, never flip.
fn portfolio_cancel(cfg: &SimConfig) -> String {
    reset_ctx();
    let x = BV::fresh(24, "x");
    let y = BV::fresh(24, "y");
    let engine = Engine::new(EngineCfg {
        jobs: 3,
        portfolio: true,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Session, // preempted by portfolio
        presolve: true,
        cert: true,
    });
    assert!(!engine.incremental(), "portfolio preempts sessions");
    let oracle: Vec<(Vec<SBool>, SBool, bool)> = vec![
        (vec![], (x ^ y).eq_(y ^ x), true),
        (vec![], x.ule(x | y), true),
        (vec![], x.ult(y), false),
    ];
    let queries: Vec<Query> = oracle
        .iter()
        .enumerate()
        .map(|(i, (a, g, _))| q(&format!("pf{i}"), a.clone(), *g))
        .collect();
    let out = engine.submit_batch(queries);
    check_verdicts(&out, &oracle, cfg);
    let verdicts: String = out.iter().map(|o| letter(&o.result)).collect();
    let variants: String = out
        .iter()
        .map(|o| char::from_digit(o.variant as u32 % 10, 10).unwrap())
        .collect();
    format!("verdicts={verdicts} variants={variants}")
}

/// Two cache instances sharing one directory under hostile IO (torn
/// appends, bit flips, crash-kills-IO, lost renames): whatever subset of
/// records survives a reload, none may carry a wrong certificate, the
/// loader must not panic, and with faults off nothing may be lost.
fn cache_writers(cfg: &SimConfig) -> String {
    let dir = std::env::temp_dir().join(format!(
        "serval-sim-cachew-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let a = Cache::new(Some(dir.clone()), false);
    let b = Cache::new(Some(dir.clone()), false);
    let mut expected: Vec<(Vec<u8>, u64)> = Vec::new();
    for i in 0..40u64 {
        let key = format!("sim-key-{i:03}").into_bytes();
        let cert = 0x5157_0000 + i;
        let writer = if sim::choose(2) == 0 { &a } else { &b };
        writer.insert(key.clone(), CachedVerdict::Proved { cert });
        expected.push((key, cert));
    }
    // A simulated crash may have killed this "process"'s IO mid-run;
    // the next generation reboots on the same disk and reloads.
    sim::io::revive();
    sim::mark("reload");
    let reloaded = Cache::new(Some(dir.clone()), false);
    let mut survived = 0usize;
    for (key, cert) in &expected {
        match reloaded.probe(key) {
            Some(CachedVerdict::Proved { cert: c }) => {
                assert_eq!(
                    c, *cert,
                    "reloaded record for {:?} carries a wrong certificate",
                    String::from_utf8_lossy(key)
                );
                survived += 1;
            }
            Some(CachedVerdict::Refuted(_)) => {
                panic!("proved-only disk tier produced a Refuted entry")
            }
            None => {}
        }
    }
    assert!(
        reloaded.len() <= expected.len(),
        "reload invented records: {} loaded from {} written",
        reloaded.len(),
        expected.len()
    );
    if !cfg.io_faults {
        assert_eq!(
            survived,
            expected.len(),
            "fault-free run must persist every record"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    format!("wrote={} survived={survived}", expected.len())
}

/// Certificate demotion: with buggify able to corrupt proofs before the
/// checker sees them, a solver `Unsat` must come back `Proved` *with a
/// checked certificate* or demote to `Unknown` with the rejection
/// reason — never an unchecked `Proved`, never a flip to `Refuted`.
fn cert_demotion(cfg: &SimConfig) -> String {
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let z = BV::fresh(32, "z");
    let engine = Engine::new(EngineCfg {
        jobs: 2,
        portfolio: false,
        disk_cache: None,
        split: false,
        mode: DischargeMode::Fresh, // fresh solver per query: the corrupt-proof path
        presolve: true,
        cert: true,
    });
    let oracle: Vec<(Vec<SBool>, SBool, bool)> = vec![
        (vec![], (x & y).ule(x), true),
        (vec![], (x | y).ule(x | y), true),
        (vec![], ((x ^ y) ^ y).eq_(x), true),
        (vec![], (x + (y + z)).eq_((x + y) + z), true),
    ];
    let queries: Vec<Query> = oracle
        .iter()
        .enumerate()
        .map(|(i, (a, g, _))| q(&format!("cert{i}"), a.clone(), *g))
        .collect();
    let out = engine.submit_batch(queries);
    check_verdicts(&out, &oracle, cfg);
    let mut proved = 0usize;
    let mut demoted = 0usize;
    for o in &out {
        match &o.result {
            VerifyResult::Proved => {
                assert!(
                    o.cert.is_some(),
                    "{}: certified engine reported Proved without a certificate",
                    o.label
                );
                proved += 1;
            }
            VerifyResult::Unknown => {
                assert!(
                    o.error.is_some(),
                    "{}: demoted verdict must carry the rejection reason",
                    o.label
                );
                demoted += 1;
            }
            _ => {}
        }
    }
    let (_accepted, rejected) = engine.cert_counts();
    assert_eq!(
        rejected as usize, demoted,
        "every rejected certificate is exactly one demoted outcome"
    );
    format!("proved={proved} demoted={demoted}")
}

/// The networked discharge service end to end, minus sockets: three
/// in-memory clients stream chunked query batches through the real wire
/// codec (frame writer → `FrameReader` → `ServerCore::handle_payload`)
/// against one sharded core. The query set is fixed — only scheduling
/// varies with the seed — so plain-mode routing and hot-tier behavior
/// are invariants, not probabilities:
///
/// - Three forms are submitted verbatim by all three clients; with the
///   hot threshold at 2, the third submission of each must be served by
///   the replicated hot tier.
/// - Two forms per client pin `x` to a client-unique constant and claim
///   false, so the only countermodel carries that constant: a lost,
///   duplicated, misrouted, or reordered batch entry is caught by the
///   countermodel oracle, not just by labels.
/// - The `net-frame-drop` buggify point makes the transport drop a
///   frame (the client retransmits it, preserving per-connection
///   order); `net-slow-client` stalls client 2 until the others have
///   fully drained — whose completion is then asserted, so a slow
///   client provably never blocks the rest. `net-route-rehash` and
///   `net-hot-skip` fire inside the core itself.
fn net_batch(cfg: &SimConfig) -> String {
    use serval_engine::form::{self, BackMap};
    use serval_net::client::outcome_of_wire;
    use serval_net::service::{NetCfg, ServerCore};
    use serval_net::wire::{self as nwire, Msg, WireQuery};
    use std::collections::VecDeque;

    reset_ctx();
    let mut ncfg = NetCfg::default();
    ncfg.shards = 3;
    ncfg.hot_threshold = 2;
    ncfg.engine.jobs = 2;
    ncfg.engine.disk_cache = None;
    let core = ServerCore::new(ncfg);

    // A hostile frame first: it must earn an Error reply plus a close
    // verdict, and leave the server fit to serve everything below.
    let (reply, close) = core.handle_payload(b"\x99garbage frame");
    assert!(close, "garbage frame must close the connection");
    assert!(
        matches!(nwire::decode_msg(&reply), Ok(Msg::Error { .. })),
        "garbage frame must be answered with an Error message"
    );

    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let shared: Vec<(Vec<SBool>, SBool, bool)> = vec![
        (vec![], (x & y).ule(x), true),
        (vec![], (x + y).eq_(y + x), true),
        (vec![], x.ule(y), false),
    ];
    let oracles: Vec<Vec<(Vec<SBool>, SBool, bool)>> = (0..3u32)
        .map(|c| {
            let kc = BV::lit(32, 0xABC0 + u128::from(c));
            vec![
                shared[0].clone(),
                (
                    vec![x.eq_(BV::lit(32, u128::from(1000 + 100 * c)))],
                    SBool::lit(false),
                    false,
                ),
                shared[1].clone(),
                (
                    vec![x.eq_(BV::lit(32, u128::from(7 + 100 * c)))],
                    SBool::lit(false),
                    false,
                ),
                shared[2].clone(),
                (vec![], ((x ^ kc) ^ kc).eq_(x), true),
            ]
        })
        .collect();

    // Serialize each client's batch into chunked Batch frames, then push
    // the frames through the byte-stream codec in seed-sized slices (as
    // a TCP reader would see them) before delivery.
    let mut labels: Vec<Vec<String>> = Vec::new();
    let mut backmaps: Vec<Vec<BackMap>> = Vec::new();
    let mut queues: Vec<VecDeque<(u64, Vec<u8>, usize)>> = Vec::new();
    for (c, oracle) in oracles.iter().enumerate() {
        let mut wire_queries = Vec::new();
        let mut my_labels = Vec::new();
        let mut my_backmaps = Vec::new();
        for (i, (assumptions, goal, _)) in oracle.iter().enumerate() {
            let label = format!("net-c{c}q{i}");
            let wp = form::prepare_wire(assumptions, *goal);
            wire_queries.push(WireQuery {
                label: label.clone(),
                cfg: SolverConfig::default(),
                core_bytes: form::wire_bytes(&wp.core),
            });
            my_labels.push(label);
            my_backmaps.push(wp.backmap);
        }
        let chunk = sim::choose(3) + 1;
        let mut frames: VecDeque<(u64, Vec<u8>, usize)> = VecDeque::new();
        let mut queries = wire_queries.into_iter().peekable();
        let mut id = (c as u64) << 32;
        while queries.peek().is_some() {
            let batch: Vec<WireQuery> = queries.by_ref().take(chunk).collect();
            let n = batch.len();
            id += 1;
            frames.push_back((id, nwire::encode_msg(&Msg::Batch { id, queries: batch }), n));
        }
        let mut stream = Vec::new();
        for (_, payload, _) in &frames {
            nwire::write_frame(&mut stream, payload).expect("in-memory write cannot fail");
        }
        let mut reader = nwire::FrameReader::new(nwire::DEFAULT_MAX_FRAME);
        let mut reassembled = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let end = (at + sim::choose(9) + 1).min(stream.len());
            reader.push(&stream[at..end]);
            at = end;
            while let Some(f) = reader.next_frame().expect("own frames must reassemble") {
                reassembled.push(f);
            }
        }
        assert_eq!(
            reassembled,
            frames.iter().map(|(_, p, _)| p.clone()).collect::<Vec<_>>(),
            "byte-chunked reassembly must reproduce the frames exactly"
        );
        labels.push(my_labels);
        backmaps.push(my_backmaps);
        queues.push(frames);
    }

    // Deliver frames interleaved under the seeded scheduler. Client 2
    // may be "slow" (stalled until the others drain); a frame may be
    // "dropped" (retransmitted in place, bounded per client so the run
    // terminates).
    let slow = sim::buggify("net-slow-client");
    let mut outcomes: Vec<Vec<serval_engine::QueryOutcome>> =
        (0..3).map(|_| Vec::new()).collect();
    let mut drops = [0usize; 3];
    let mut slow_checked = false;
    sim::mark("net-deliver");
    loop {
        let mut ready: Vec<usize> = (0..3).filter(|&c| !queues[c].is_empty()).collect();
        if ready.is_empty() {
            break;
        }
        if slow && ready.len() > 1 {
            ready.retain(|&c| c != 2);
        }
        let pick = ready[sim::choose(ready.len())];
        if slow && pick == 2 && !slow_checked {
            // The slow client is only scheduled once everyone else is
            // done — and they must actually be done, with full,
            // submission-ordered outcome vectors: a stalled connection
            // never blocks other clients.
            slow_checked = true;
            for c in 0..2 {
                assert_eq!(
                    outcomes[c].len(),
                    oracles[c].len(),
                    "client {c} incomplete while the slow client stalls"
                );
            }
        }
        if drops[pick] < 2 && sim::buggify("net-frame-drop") {
            drops[pick] += 1;
            continue;
        }
        let (id, payload, expect) = queues[pick].pop_front().expect("ready implies nonempty");
        let (reply, close) = core.handle_payload(&payload);
        assert!(!close, "a well-formed batch must not close the connection");
        match nwire::decode_msg(&reply).expect("reply must decode") {
            Msg::BatchReply { id: rid, results, stats } => {
                assert_eq!(rid, id, "reply id must echo the batch frame id");
                assert_eq!(results.len(), expect, "one outcome per query, always");
                assert_eq!(stats.shards.len(), 3, "stats must carry every shard's row");
                let at = outcomes[pick].len();
                for (j, out) in results.into_iter().enumerate() {
                    outcomes[pick].push(outcome_of_wire(
                        labels[pick][at + j].clone(),
                        out,
                        &backmaps[pick][at + j],
                    ));
                }
            }
            other => panic!("expected BatchReply, got {other:?}"),
        }
    }

    // Verdict safety + submission order, per client.
    let mut verdicts = Vec::new();
    for c in 0..3 {
        assert_eq!(outcomes[c].len(), oracles[c].len(), "client {c} lost outcomes");
        for (i, o) in outcomes[c].iter().enumerate() {
            assert_eq!(o.label, labels[c][i], "client {c} outcomes out of submission order");
        }
        check_verdicts(&outcomes[c], &oracles[c], cfg);
        verdicts.push(outcomes[c].iter().map(|o| letter(&o.result)).collect::<String>());
    }

    let stats = core.stats();
    assert!(stats.protocol_errors >= 1, "the garbage probe must be counted");
    let exercised = stats.shards.iter().filter(|row| row.queued > 0).count();
    if !cfg.buggify && !cfg.io_faults {
        assert!(
            exercised >= 2,
            "fixed query set must spread across at least 2 of 3 shards, got {exercised}"
        );
        assert!(
            stats.hot_hits >= 1 && stats.hot_entries >= 1,
            "three submissions over threshold 2 must produce hot-tier service: {stats:?}"
        );
    }
    format!(
        "c0={} c1={} c2={} shards={exercised} hot={}h/{}e drops={}",
        verdicts[0],
        verdicts[1],
        verdicts[2],
        stats.hot_hits,
        stats.hot_entries,
        drops[0] + drops[1] + drops[2],
    )
}
