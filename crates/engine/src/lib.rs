//! serval-engine: the parallel proof-discharge engine.
//!
//! Serval's workloads are embarrassingly parallel — split-cases factors a
//! monolithic verification condition into independent per-handler
//! queries, and the JIT checker emits one query per BPF opcode — but the
//! term DAG they are phrased over is *thread-local*. This crate bridges
//! the two: a [`Query`] (assumptions + goal + label) is re-serialized
//! into a portable, alpha-invariant normal form ([`form`]), solved on a
//! from-scratch work-stealing thread pool ([`pool`]), memoized in a
//! two-tier cache keyed on the normal form ([`cache`]), and optionally
//! raced across several solver configurations with cooperative
//! cancellation ([`solve`]).
//!
//! Results stream back in deterministic submission order with identical
//! verdicts regardless of worker count, so `SERVAL_JOBS=1` and
//! `SERVAL_JOBS=32` differ only in wall time.
//!
//! Environment knobs (read once, at first use of the global engine):
//!
//! | Variable           | Meaning                                            |
//! |--------------------|----------------------------------------------------|
//! | `SERVAL_JOBS`      | Worker count (default: available parallelism)      |
//! | `SERVAL_CACHE`     | `1`/`on` → disk tier under `target/serval-cache/`; a path → disk tier there; unset/`0` → memory tier only |
//! | `SERVAL_PORTFOLIO` | `1`/`on` → race 3 solver configs per query         |

pub mod cache;
pub mod form;
pub mod pool;
pub mod solve;

#[cfg(test)]
mod tests;

pub use form::Query;

use cache::{Cache, CachedVerdict};
use form::{prepare, BackMap};
use pool::Pool;
use serval_smt::model::Model;
use serval_smt::solver::{QueryStats, VerifyResult};
use solve::{solve_one, solve_portfolio, PortableModel, RawOutcome, RawVerdict};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineCfg {
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Race [`solve::portfolio_variants`] per query instead of solving
    /// each query once.
    pub portfolio: bool,
    /// Directory for the on-disk proved-key tier; `None` disables it.
    pub disk_cache: Option<PathBuf>,
}

impl Default for EngineCfg {
    fn default() -> Self {
        EngineCfg {
            jobs: default_jobs(),
            portfolio: false,
            disk_cache: None,
        }
    }
}

impl EngineCfg {
    /// Reads `SERVAL_JOBS`, `SERVAL_PORTFOLIO`, and `SERVAL_CACHE`.
    pub fn from_env() -> EngineCfg {
        let jobs = std::env::var("SERVAL_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(default_jobs);
        let portfolio = std::env::var("SERVAL_PORTFOLIO")
            .map(|v| matches!(v.trim(), "1" | "on" | "true"))
            .unwrap_or(false);
        let disk_cache = match std::env::var("SERVAL_CACHE") {
            Err(_) => None,
            Ok(v) => match v.trim() {
                "" | "0" | "off" | "false" => None,
                "1" | "on" | "true" => Some(PathBuf::from("target/serval-cache")),
                path => Some(PathBuf::from(path)),
            },
        };
        EngineCfg {
            jobs,
            portfolio,
            disk_cache,
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The outcome of one discharged query, in submission order.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The label the query was submitted with.
    pub label: String,
    /// The verdict, with counterexample models translated back into the
    /// submitting thread's term context.
    pub result: VerifyResult,
    /// Solver statistics (absent for cache hits and trivial queries).
    pub stats: Option<QueryStats>,
    /// Wall time of the solve (zero for cache hits and trivial queries).
    pub wall: Duration,
    /// Whether the verdict came from the cache.
    pub cache_hit: bool,
    /// Which portfolio variant won (0 when portfolio is off).
    pub variant: usize,
    /// Panic message if the query died on a worker; the verdict is then
    /// `Unknown`.
    pub error: Option<String>,
}

/// The proof-discharge engine: pool + cache + portfolio switch.
pub struct Engine {
    pool: Pool,
    cache: Cache,
    portfolio: bool,
}

impl Engine {
    /// Builds an engine (spawns the worker threads eagerly).
    pub fn new(cfg: EngineCfg) -> Engine {
        Engine {
            pool: Pool::new(cfg.jobs),
            cache: Cache::new(cfg.disk_cache),
            portfolio: cfg.portfolio,
        }
    }

    /// Worker thread count.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Whether portfolio mode is on.
    pub fn portfolio(&self) -> bool {
        self.portfolio
    }

    /// Cache (hits, misses) since engine construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Discharges one query (see [`Engine::submit_batch`]).
    pub fn submit(&self, query: Query) -> QueryOutcome {
        self.submit_batch(vec![query])
            .pop()
            .expect("one query in, one outcome out")
    }

    /// Discharges a batch of independent queries, returning outcomes in
    /// submission order. Must be called from the thread that owns the
    /// queries' terms; solving itself happens on the pool workers (and
    /// never mutates the caller's term context).
    pub fn submit_batch(&self, queries: Vec<Query>) -> Vec<QueryOutcome> {
        let n = queries.len();
        let mut slots: Vec<Option<QueryOutcome>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<(usize, BackMap, Vec<u8>)> = Vec::new();
        let mut tasks: Vec<Box<dyn FnOnce() -> RawOutcome + Send + 'static>> = Vec::new();
        for (i, q) in queries.into_iter().enumerate() {
            let prepared = prepare(&q.assumptions, q.goal);
            if prepared.core.trivially_unsat {
                slots[i] = Some(QueryOutcome {
                    label: q.label,
                    result: VerifyResult::Proved,
                    stats: None,
                    wall: Duration::ZERO,
                    cache_hit: false,
                    variant: 0,
                    error: None,
                });
                continue;
            }
            if let Some(cached) = self.cache.lookup(&prepared.key) {
                slots[i] = Some(QueryOutcome {
                    label: q.label,
                    result: rehydrate(cached, &prepared.backmap),
                    stats: None,
                    wall: Duration::ZERO,
                    cache_hit: true,
                    variant: 0,
                    error: None,
                });
                continue;
            }
            let core = Arc::new(prepared.core);
            let cfg = q.cfg;
            let portfolio = self.portfolio;
            tasks.push(Box::new(move || {
                if portfolio {
                    solve_portfolio(&core, cfg, None)
                } else {
                    solve_one(&core, cfg, None)
                }
            }));
            pending.push((i, prepared.backmap, prepared.key));
            slots[i] = Some(QueryOutcome {
                label: q.label,
                result: VerifyResult::Unknown,
                stats: None,
                wall: Duration::ZERO,
                cache_hit: false,
                variant: 0,
                error: None,
            });
        }

        let raw = self.pool.run_batch(tasks);
        for ((i, backmap, key), outcome) in pending.into_iter().zip(raw) {
            let slot = slots[i].as_mut().expect("pending slot was initialized");
            match outcome {
                Err(msg) => {
                    slot.result = VerifyResult::Unknown;
                    slot.error = Some(msg);
                }
                Ok(RawOutcome {
                    verdict,
                    stats,
                    variant,
                }) => {
                    slot.stats = Some(stats);
                    slot.wall = stats.wall;
                    slot.variant = variant;
                    match verdict {
                        RawVerdict::Proved => {
                            self.cache.insert(key, CachedVerdict::Proved);
                            slot.result = VerifyResult::Proved;
                        }
                        RawVerdict::Refuted(pm) => {
                            slot.result = VerifyResult::Counterexample(Box::new(
                                portable_to_model(&pm, &backmap),
                            ));
                            self.cache.insert(key, CachedVerdict::Refuted(pm));
                        }
                        RawVerdict::Unknown => slot.result = VerifyResult::Unknown,
                        RawVerdict::Interrupted => {
                            slot.result = VerifyResult::Interrupted
                        }
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot resolved"))
            .collect()
    }
}

/// Translates a cached verdict into the caller's term context.
fn rehydrate(cached: CachedVerdict, backmap: &BackMap) -> VerifyResult {
    match cached {
        CachedVerdict::Proved => VerifyResult::Proved,
        CachedVerdict::Refuted(pm) => {
            VerifyResult::Counterexample(Box::new(portable_to_model(&pm, backmap)))
        }
    }
}

/// Maps a portable model onto the submitting thread's terms.
fn portable_to_model(pm: &PortableModel, backmap: &BackMap) -> Model {
    let mut m = Model::default();
    for &(k, v) in &pm.bvs {
        m.set_bv(backmap.vars[k as usize].term, v);
    }
    for &(k, b) in &pm.bools {
        m.set_bool(backmap.vars[k as usize].term, b);
    }
    for (k, rows) in &pm.ufs {
        m.uf_tables.insert(
            backmap.ufs[*k as usize],
            rows.iter().cloned().collect(),
        );
    }
    m
}

static GLOBAL: OnceLock<Mutex<Option<Arc<Engine>>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Option<Arc<Engine>>> {
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// The process-wide engine, created from the environment on first use.
pub fn handle() -> Arc<Engine> {
    let mut slot = global_slot().lock().unwrap();
    if slot.is_none() {
        *slot = Some(Arc::new(Engine::new(EngineCfg::from_env())));
    }
    Arc::clone(slot.as_ref().unwrap())
}

/// Replaces the process-wide engine (benchmarks use this to compare
/// worker counts within one process). Returns the new engine.
pub fn install(cfg: EngineCfg) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(cfg));
    *global_slot().lock().unwrap() = Some(Arc::clone(&engine));
    engine
}
