//! serval-engine: the parallel proof-discharge engine.
//!
//! Serval's workloads are embarrassingly parallel — split-cases factors a
//! monolithic verification condition into independent per-handler
//! queries, and the JIT checker emits one query per BPF opcode — but the
//! term DAG they are phrased over is *thread-local*. This crate bridges
//! the two: a [`Query`] (assumptions + goal + label) is re-serialized
//! into a portable, alpha-invariant normal form ([`form`]), solved on a
//! from-scratch work-stealing thread pool ([`pool`]), memoized in a
//! two-tier cache keyed on the normal form ([`cache`]), and optionally
//! raced across several solver configurations with cooperative
//! cancellation ([`solve`]).
//!
//! Results stream back in deterministic submission order with identical
//! verdicts regardless of worker count, so `SERVAL_JOBS=1` and
//! `SERVAL_JOBS=32` differ only in wall time.
//!
//! Environment knobs (read once, at first use of the global engine):
//!
//! | Variable           | Meaning                                            |
//! |--------------------|----------------------------------------------------|
//! | `SERVAL_JOBS`      | Worker count (default: available parallelism)      |
//! | `SERVAL_CACHE`     | `1`/`on` → disk tier under `target/serval-cache/`; a path → disk tier there; unset/`0` → memory tier only |
//! | `SERVAL_PORTFOLIO` | `1`/`on` → race 3 solver configs per query (the pool shrinks to `jobs / 3` so total solver threads stay ≈ `SERVAL_JOBS`). Verdicts stay deterministic, but which variant's counterexample is reported is a timing race — see [`solve::solve_portfolio`]. |
//! | `SERVAL_SPLIT`     | `0`/`off` → disable goal conjunction splitting (on by default; see [`form::split_goal`]) |
//! | `SERVAL_INCREMENTAL` | `0`/`off` → disable incremental discharge sessions, falling back to one fresh solver per sub-query (on by default — the measured winner now that inprocessing runs under live sessions; sub-queries sharing an assumption set are otherwise solved in one live session — see [`solve::solve_session`]). Ignored when `SERVAL_PORTFOLIO` is on: a portfolio race needs independent solvers. |
//! | `SERVAL_MODE`      | `fresh` / `session` / `auto` — names the discharge mode outright and overrides `SERVAL_INCREMENTAL`. `auto` decides per assumption group from predicted reuse (group size × shared-base cone ratio); see [`DischargeMode`]. |
//! | `SERVAL_PRESOLVE`  | `0`/`off` → disable word-level presolve, handing the solver the raw obligation DAG (on by default; each query's assumption base is otherwise simplified once — equality substitution, known-bits/interval folding, cone-of-influence reduction — and the cache keys on the *simplified* normal form; see [`serval_smt::presolve`]). |
//! | `SERVAL_CERT`      | `0`/`off` → disable proof certificates (on by default: every solver `Unsat` must present a DRAT-style proof accepted by the independent `serval-drat` checker before it becomes `Proved`; cached `Proved` entries carry the certificate fingerprint and uncertified disk records are ignored; cached `Refuted` hits re-evaluate their stored countermodel against the term semantics and are evicted on mismatch). |
//! | `SERVAL_INPROCESS` | `0`/`off` → disable SatELite-style SAT inprocessing (on by default: backward subsumption, self-subsuming resolution, and — for fresh solves — bounded variable elimination at level-0 boundaries, every step DRAT-logged so `SERVAL_CERT=1` still accepts the proofs; see [`serval_sat`]). |
//! | `SERVAL_POLARITY`  | `0`/`off` → disable Plaisted–Greenbaum polarity-aware CNF encoding (on by default: gate definition clauses are emitted only in the implication direction the formula actually uses; see [`serval_smt::solver::SolverConfig`]). |

pub mod cache;
pub mod form;
pub mod pool;
pub mod solve;

#[cfg(test)]
mod tests;

pub use form::Query;

use cache::{Cache, CachedVerdict};
use form::{prepare, prepare_session, BackMap};
use pool::Pool;
use serval_sat::ProofStep;
use serval_smt::bv::SBool;
use serval_smt::model::Model;
use serval_smt::presolve;
use serval_smt::solver::{CheckResult, QueryStats, SolverConfig, VerifyResult};
use serval_smt::term::TermId;
use solve::{solve_one, solve_portfolio, solve_session, PortableModel, RawOutcome, RawVerdict};
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// How solver work is discharged for sub-queries that share an
/// assumption set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DischargeMode {
    /// One fresh solver per sub-query.
    Fresh,
    /// One live incremental session per assumption group (see
    /// [`solve::solve_session`]).
    Session,
    /// Pick per assumption group from predicted reuse. A group of `n`
    /// goals whose shared base is a fraction `r` of the group's whole
    /// encoding cone saves roughly `(n - 1) · r` of the work fresh
    /// discharge would redo; the group is sessioned when that score
    /// clears [`AUTO_SESSION_THRESHOLD`]. Small groups over thin bases
    /// (where session bookkeeping outweighs reuse) fall back to fresh
    /// solvers. The decision is a pure function of the batch's terms,
    /// so same batch ⇒ same mode choices.
    Auto,
}

/// Minimum predicted-reuse score (`(group size - 1) × shared-base cone
/// ratio`) for [`DischargeMode::Auto`] to discharge a group as a
/// session. `0.5` means: a two-goal group sessions only when at least
/// half its encoding cone is the shared base; single-goal groups
/// (score 0) always go fresh.
pub const AUTO_SESSION_THRESHOLD: f64 = 0.5;

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineCfg {
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Race [`solve::portfolio_variants`] per query instead of solving
    /// each query once.
    pub portfolio: bool,
    /// Directory for the on-disk proved-key tier; `None` disables it.
    pub disk_cache: Option<PathBuf>,
    /// Split conjunction goals into per-conjunct sub-queries discharged
    /// in parallel (see [`form::split_goal`]). On by default: monitor
    /// refinement goals are monolithic conjunctions over the whole
    /// abstract state, and one such goal can otherwise dominate the
    /// batch's critical path.
    pub split: bool,
    /// Whether sub-queries sharing an assumption set are discharged in
    /// one live incremental session, one fresh solver each, or decided
    /// per group ([`DischargeMode::Auto`]). Defaults to `Session` — the
    /// measured winner on the certikos refinement workload now that
    /// inprocessing runs under live sessions (see
    /// `BENCH_incremental.json`). Has no effect when `portfolio` is on,
    /// since a portfolio races *independent* solvers per query.
    /// Verdicts are identical in every mode — the mode only changes how
    /// much encoding and search work is re-done.
    pub mode: DischargeMode,
    /// Run the word-level presolve pipeline ([`serval_smt::presolve`])
    /// on each query before normalization and blasting: the assumption
    /// base is simplified once per distinct assumption set, every goal
    /// is rewritten against it, and the verdict cache keys on the
    /// simplified normal form. On by default.
    pub presolve: bool,
    /// Require a checker-accepted DRAT proof certificate before any
    /// solver `Unsat` becomes `Proved`, and revalidate cached verdicts
    /// at hit time (see the `SERVAL_CERT` row above). On by default.
    pub cert: bool,
}

impl Default for EngineCfg {
    fn default() -> Self {
        EngineCfg {
            jobs: default_jobs(),
            portfolio: false,
            disk_cache: None,
            split: true,
            mode: DischargeMode::Session,
            presolve: true,
            cert: true,
        }
    }
}

impl EngineCfg {
    /// Reads `SERVAL_JOBS`, `SERVAL_PORTFOLIO`, `SERVAL_CACHE`,
    /// `SERVAL_SPLIT`, `SERVAL_MODE`, `SERVAL_INCREMENTAL`,
    /// `SERVAL_PRESOLVE`, and `SERVAL_CERT`.
    pub fn from_env() -> EngineCfg {
        let jobs = std::env::var("SERVAL_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(default_jobs);
        let portfolio = std::env::var("SERVAL_PORTFOLIO")
            .map(|v| matches!(v.trim(), "1" | "on" | "true"))
            .unwrap_or(false);
        let disk_cache = match std::env::var("SERVAL_CACHE") {
            Err(_) => None,
            Ok(v) => match v.trim() {
                "" | "0" | "off" | "false" => None,
                "1" | "on" | "true" => Some(PathBuf::from("target/serval-cache")),
                path => Some(PathBuf::from(path)),
            },
        };
        let split = std::env::var("SERVAL_SPLIT")
            .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
            .unwrap_or(true);
        let incremental = std::env::var("SERVAL_INCREMENTAL")
            .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
            .unwrap_or(true);
        // `SERVAL_MODE` names the discharge mode outright and wins;
        // otherwise the boolean `SERVAL_INCREMENTAL` keeps its meaning
        // (on → sessions, off → fresh solvers).
        let mode = match std::env::var("SERVAL_MODE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "fresh" => DischargeMode::Fresh,
                "session" | "incremental" => DischargeMode::Session,
                "auto" => DischargeMode::Auto,
                _ if incremental => DischargeMode::Session,
                _ => DischargeMode::Fresh,
            },
            Err(_) if incremental => DischargeMode::Session,
            Err(_) => DischargeMode::Fresh,
        };
        let presolve = serval_smt::presolve::env_enabled();
        let cert = std::env::var("SERVAL_CERT")
            .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
            .unwrap_or(true);
        EngineCfg {
            jobs,
            portfolio,
            disk_cache,
            split,
            mode,
            presolve,
            cert,
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Predicted-reuse score for one assumption group under
/// [`DischargeMode::Auto`]: `(group size - 1) × shared-base cone
/// ratio`. The base ratio is how much of the group's whole encoding
/// cone (assumptions + every goal, term-counted on the hash-consed DAG)
/// is the shared assumption base — the part a session encodes once and
/// fresh discharge re-encodes per goal. Deterministic: term counts are
/// a pure function of the batch.
fn session_score(asms: &[SBool], goals: &[SBool]) -> f64 {
    if goals.len() < 2 {
        return 0.0;
    }
    let base = presolve::measure(asms.iter().map(|a| a.0)).terms;
    let total =
        presolve::measure(asms.iter().map(|a| a.0).chain(goals.iter().map(|g| g.0))).terms;
    if total == 0 {
        return 0.0;
    }
    (goals.len() - 1) as f64 * (base as f64 / total as f64)
}

/// The outcome of one discharged query, in submission order.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The label the query was submitted with.
    pub label: String,
    /// The verdict, with counterexample models translated back into the
    /// submitting thread's term context.
    pub result: VerifyResult,
    /// Solver statistics (absent for cache hits and trivial queries).
    pub stats: Option<QueryStats>,
    /// Wall time of the solve (zero for cache hits and trivial queries).
    pub wall: Duration,
    /// Whether the verdict came from the cache.
    pub cache_hit: bool,
    /// Which portfolio variant won (0 when portfolio is off).
    pub variant: usize,
    /// Fingerprint of the checker-accepted proof certificate backing a
    /// `Proved` verdict (for split queries: the chained fingerprint over
    /// the per-conjunct certificates). `None` when certification is off
    /// or the verdict is not `Proved`.
    pub cert: Option<u64>,
    /// Panic message if the query died on a worker, or the reason a
    /// certificate was rejected; the verdict is then `Unknown`.
    pub error: Option<String>,
}

/// Cap on conjuncts produced by goal splitting, to bound per-conjunct
/// preparation overhead on pathologically wide conjunctions.
const SPLIT_CAP: usize = 512;

/// The proof-discharge engine: pool + cache + portfolio switch.
pub struct Engine {
    pool: Pool,
    cache: Cache,
    portfolio: bool,
    split: bool,
    mode: DischargeMode,
    presolve: bool,
    cert: bool,
    /// Queries submitted (before trivial/cache short-circuits).
    submitted: AtomicU64,
    /// Queries answered `Proved` without solving *or* cache lookup
    /// because preparation found them trivially unsatisfiable. Cache
    /// accounting must exclude these: `hits + misses = submitted -
    /// trivial` on every warm rerun.
    trivial: AtomicU64,
    /// Certificates checked and accepted.
    certs_checked: AtomicU64,
    /// Certificates rejected (verdict demoted to `Unknown`).
    certs_rejected: AtomicU64,
    /// Assumption groups discharged as live sessions.
    groups_session: AtomicU64,
    /// Assumption groups `Auto` sent to fresh solvers instead.
    groups_fresh: AtomicU64,
}

impl Engine {
    /// Builds an engine (spawns the worker threads eagerly).
    ///
    /// With portfolio mode on, every pool task spawns one solver thread
    /// per [`solve::portfolio_variants`] variant, so the pool is shrunk
    /// by that width (rounding up): total solver threads stay ≈ `jobs`
    /// instead of oversubscribing the CPU 3x.
    pub fn new(cfg: EngineCfg) -> Engine {
        let jobs = if cfg.portfolio {
            let width = solve::portfolio_variants(SolverConfig::default()).len();
            (cfg.jobs + width - 1) / width
        } else {
            cfg.jobs
        };
        Engine {
            pool: Pool::new(jobs),
            cache: Cache::new(cfg.disk_cache, cfg.cert),
            portfolio: cfg.portfolio,
            split: cfg.split,
            mode: cfg.mode,
            presolve: cfg.presolve,
            cert: cfg.cert,
            submitted: AtomicU64::new(0),
            trivial: AtomicU64::new(0),
            certs_checked: AtomicU64::new(0),
            certs_rejected: AtomicU64::new(0),
            groups_session: AtomicU64::new(0),
            groups_fresh: AtomicU64::new(0),
        }
    }

    /// Worker thread count.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Whether portfolio mode is on.
    pub fn portfolio(&self) -> bool {
        self.portfolio
    }

    /// Whether incremental discharge sessions are in use (mode is
    /// `Session` or `Auto` *and* not preempted by portfolio mode).
    pub fn incremental(&self) -> bool {
        self.mode != DischargeMode::Fresh && !self.portfolio
    }

    /// The effective discharge mode (portfolio preempts sessions, so it
    /// resolves to `Fresh` regardless of the configured mode).
    pub fn mode(&self) -> DischargeMode {
        if self.portfolio {
            DischargeMode::Fresh
        } else {
            self.mode
        }
    }

    /// (session-discharged, fresh-discharged) assumption-group counts
    /// since construction. Under `Session` mode every group counts as a
    /// session; under `Auto` the split shows what the reuse predictor
    /// actually chose.
    pub fn mode_counts(&self) -> (u64, u64) {
        (
            self.groups_session.load(Ordering::Relaxed),
            self.groups_fresh.load(Ordering::Relaxed),
        )
    }

    /// Whether word-level presolve is on.
    pub fn presolve(&self) -> bool {
        self.presolve
    }

    /// Whether proof certificates are required.
    pub fn cert(&self) -> bool {
        self.cert
    }

    /// Cache (hits, misses) since engine construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The engine's verdict cache (sim scenarios and tests inspect it).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// (submitted, trivially-proved) query counts since construction.
    /// Trivially-proved queries never consult the cache, so the warm-run
    /// invariant is `hits = submitted - trivial` (and `misses = 0`).
    pub fn query_counts(&self) -> (u64, u64) {
        (
            self.submitted.load(Ordering::Relaxed),
            self.trivial.load(Ordering::Relaxed),
        )
    }

    /// (accepted, rejected) certificate counts since construction.
    pub fn cert_counts(&self) -> (u64, u64) {
        (
            self.certs_checked.load(Ordering::Relaxed),
            self.certs_rejected.load(Ordering::Relaxed),
        )
    }

    /// Tallies one raw outcome's certificate fate.
    fn count_cert(&self, cert_hash: u64, cert_error: &Option<String>) {
        if cert_error.is_some() {
            self.certs_rejected.fetch_add(1, Ordering::Relaxed);
        } else if cert_hash != 0 {
            self.certs_checked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Discharges one query (see [`Engine::submit_batch`]).
    pub fn submit(&self, query: Query) -> QueryOutcome {
        self.submit_batch(vec![query])
            .pop()
            .expect("one query in, one outcome out")
    }

    /// Discharges a batch of independent queries, returning outcomes in
    /// submission order. Must be called from the thread that owns the
    /// queries' terms; solving itself happens on the pool workers (and
    /// never mutates the caller's term context).
    ///
    /// With goal splitting on (the default), a query whose goal is a
    /// conjunction is discharged as one sub-query per conjunct — all
    /// sub-queries across the whole batch share the pool, so a single
    /// monolithic goal no longer serializes the batch's critical path.
    /// The recombined outcome is equivalent: proved iff every conjunct
    /// proved; refuted with the first refuted conjunct's countermodel
    /// (which satisfies the shared assumptions, hence refutes the
    /// conjunction). For split queries `wall` is the parallel critical
    /// path (max over conjuncts) and `stats` the sum.
    pub fn submit_batch(&self, queries: Vec<Query>) -> Vec<QueryOutcome> {
        /// Where a sub-query's verdict will come from: its own fresh
        /// pool task, or one goal slot of a shared session task.
        #[derive(Clone, Copy)]
        enum Work {
            Fresh(usize),
            Session { group: usize, goal: usize },
        }
        enum Sub {
            /// Conjunct resolved without solving (trivial, or cached).
            Ready { verdict: CachedVerdict, backmap: BackMap, hit: bool },
            /// Conjunct waiting on solver work.
            Wait { work: Work, backmap: BackMap, key: Vec<u8> },
        }
        enum Pending {
            /// Whole query waiting on solver work.
            Unit { slot: usize, work: Work, backmap: BackMap, key: Vec<u8> },
            /// Split query waiting on its conjuncts.
            Split { slot: usize, whole_key: Vec<u8>, subs: Vec<Sub> },
        }
        /// One incremental session under construction: sub-queries that
        /// share an assumption set (and solver config), accumulated
        /// during the batch walk and scheduled as a single pool task.
        struct Group {
            asms: Vec<SBool>,
            goals: Vec<SBool>,
            cfg: SolverConfig,
        }

        /// Presolve bookkeeping for one slot: what the finalization pass
        /// needs to fix up the outcome (counts onto stats, dropped-cone
        /// side-check and model completion onto counterexamples).
        struct PresolveInfo {
            base: Rc<presolve::BaseSimp>,
            /// Assumptions split off by cone-of-influence reduction
            /// (always empty in session mode — sessions key on the full
            /// base so grouping and cache keys stay consistent).
            dropped: Vec<SBool>,
            cfg: SolverConfig,
            pre: presolve::Counts,
            post: presolve::Counts,
        }

        let debug = std::env::var("SERVAL_ENGINE_DEBUG").is_ok();
        let t_prep = std::time::Instant::now();
        let n = queries.len();
        self.submitted.fetch_add(n as u64, Ordering::Relaxed);
        let mut slots: Vec<Option<QueryOutcome>> = (0..n).map(|_| None).collect();

        // Raw-key warm layer (presolve mode only): the cache is *also*
        // keyed on the pre-presolve normal form, so a warm rerun
        // resolves on one normalization + one lookup and never pays the
        // presolve pipeline again. (Without this, warm runs re-derived
        // every binding and rewrite only to hit on the simplified key —
        // the 2.5× warm-path slowdown in BENCH_presolve/_incremental.)
        // Raw-trivial queries short-circuit here exactly like the
        // presolve-off fast path; queries presolve later folds to
        // trivial are *not* counted trivial, because they did consult
        // the cache (and their raw key is inserted, so they hit warm).
        let mut raw_infos: Vec<Option<(Vec<u8>, BackMap)>> = (0..n).map(|_| None).collect();
        let queries: Vec<Query> = if self.presolve {
            let mut kept: Vec<Query> = Vec::with_capacity(n);
            for (i, q) in queries.into_iter().enumerate() {
                let raw = prepare(&q.assumptions, q.goal);
                if raw.core.trivially_unsat {
                    self.trivial.fetch_add(1, Ordering::Relaxed);
                    slots[i] = Some(QueryOutcome {
                        label: q.label,
                        result: VerifyResult::Proved,
                        stats: None,
                        wall: Duration::ZERO,
                        cache_hit: false,
                        variant: 0,
                        cert: self.cert.then(trivial_cert_hash),
                        error: None,
                    });
                    continue;
                }
                let mut cached = self.cache.lookup(&raw.key);
                if self.cert {
                    if let Some(CachedVerdict::Refuted(pm)) = &cached {
                        if !countermodel_valid(pm, &raw.backmap, &q.assumptions, q.goal) {
                            self.cache.evict(&raw.key);
                            cached = None;
                        }
                    }
                }
                if let Some(cached) = cached {
                    let cert = match &cached {
                        CachedVerdict::Proved { cert } => (*cert != 0).then_some(*cert),
                        CachedVerdict::Refuted(_) => None,
                    };
                    slots[i] = Some(QueryOutcome {
                        label: q.label,
                        result: rehydrate(cached, &raw.backmap),
                        stats: None,
                        wall: Duration::ZERO,
                        cache_hit: true,
                        variant: 0,
                        cert,
                        error: None,
                    });
                    continue;
                }
                raw_infos[i] = Some((raw.key, raw.backmap));
                kept.push(q);
            }
            kept
        } else {
            queries
        };
        // Indices (into `slots`) of the queries that survived the raw
        // layer, in the order `queries` now holds them.
        let live: Vec<usize> = if self.presolve {
            raw_infos
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|_| i))
                .collect()
        } else {
            (0..n).collect()
        };

        // Word-level presolve: simplify each query before normalization,
        // so everything downstream — cache keys, splitting, session
        // grouping, blasting — sees the shrunken form. The base is
        // presolved once per distinct assumption set and shared across
        // the batch (certikos-style batches phrase hundreds of queries
        // over a handful of invariant sets).
        let mut presolve_infos: Vec<Option<PresolveInfo>> = (0..n).map(|_| None).collect();
        let queries: Vec<Query> = if self.presolve {
            type BaseEntry = (Rc<presolve::BaseSimp>, presolve::GoalCache);
            let mut bases: HashMap<Vec<TermId>, BaseEntry> = HashMap::new();
            queries
                .into_iter()
                .enumerate()
                .map(|(k, mut q)| {
                    let i = live[k];
                    let pre = presolve::measure(
                        q.assumptions.iter().map(|a| a.0).chain([q.goal.0]),
                    );
                    let mut key: Vec<TermId> = q.assumptions.iter().map(|a| a.0).collect();
                    key.sort_unstable_by_key(|t| t.0);
                    key.dedup();
                    let entry = bases.entry(key).or_insert_with(|| {
                        (
                            Rc::new(presolve::presolve_base(&q.assumptions)),
                            presolve::GoalCache::default(),
                        )
                    });
                    let (base, cache) = (&entry.0, &mut entry.1);
                    let goal = presolve::simplify_goal_cached(base, q.goal, cache);
                    if debug {
                        let g_pre = presolve::measure([q.goal.0].into_iter());
                        let g_post = presolve::measure([goal.0].into_iter());
                        eprintln!(
                            "[presolve] {:<44} bindings={} goal terms {} -> {} changed={}",
                            q.label,
                            base.bindings.len(),
                            g_pre.terms,
                            g_post.terms,
                            goal.0 != q.goal.0
                        );
                    }
                    let (kept, dropped) = if self.incremental() {
                        // Sessions share one live solver across the whole
                        // base; dropping per-goal disconnected assumptions
                        // would fracture the grouping.
                        (base.roots.clone(), Vec::new())
                    } else {
                        presolve::cone_split(&base.roots, goal)
                    };
                    let post =
                        presolve::measure(kept.iter().map(|a| a.0).chain([goal.0]));
                    presolve_infos[i] = Some(PresolveInfo {
                        base: Rc::clone(base),
                        dropped,
                        cfg: q.cfg,
                        pre,
                        post,
                    });
                    q.assumptions = kept;
                    q.goal = goal;
                    q
                })
                .collect()
        } else {
            queries
        };
        let mut pending: Vec<Pending> = Vec::new();
        let mut tasks: Vec<Box<dyn FnOnce() -> Vec<RawOutcome> + Send + 'static>> = Vec::new();
        let push_task = |tasks: &mut Vec<Box<dyn FnOnce() -> Vec<RawOutcome> + Send + 'static>>,
                             core: form::FormCore,
                             cfg: SolverConfig|
         -> usize {
            let core = Arc::new(core);
            let portfolio = self.portfolio;
            let cert = self.cert;
            tasks.push(Box::new(move || {
                vec![if portfolio {
                    solve_portfolio(&core, cfg, None, cert)
                } else {
                    solve_one(&core, cfg, None, cert)
                }]
            }));
            tasks.len() - 1
        };

        // Sessions group sub-queries by their *exact* assumption set:
        // terms are hash-consed, so within one batch structural equality
        // of assumptions is `TermId` equality, and the sorted dedup'd id
        // vector identifies the set regardless of submission order.
        // (Alpha-equivalent-but-distinct sets stay in separate groups —
        // a missed grouping costs reuse, never correctness.) The solver
        // config is part of the key so a budgeted query is never solved
        // under another query's budget.
        let use_session = self.incremental();
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: HashMap<(Vec<TermId>, String), usize> = HashMap::new();
        let enqueue = |groups: &mut Vec<Group>,
                       group_index: &mut HashMap<(Vec<TermId>, String), usize>,
                       assumptions: &[SBool],
                       goal: SBool,
                       cfg: SolverConfig|
         -> Work {
            let mut ids: Vec<TermId> = Vec::with_capacity(assumptions.len());
            for a in assumptions {
                if !a.is_true() && !ids.contains(&a.0) {
                    ids.push(a.0);
                }
            }
            ids.sort_unstable_by_key(|t| t.0);
            let key = (ids, format!("{cfg:?}"));
            let g = match group_index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    groups.push(Group {
                        asms: key.0.iter().map(|&t| SBool(t)).collect(),
                        goals: Vec::new(),
                        cfg,
                    });
                    group_index.insert(key, g);
                    g
                }
            };
            let goal_idx = groups[g].goals.len();
            groups[g].goals.push(goal);
            Work::Session { group: g, goal: goal_idx }
        };

        for (k, q) in queries.into_iter().enumerate() {
            let i = live[k];
            // In presolve mode every query reaching this loop already
            // missed under its raw key (hits and trivial short-circuits
            // resolved in the pre-pass above); its counted lookup is
            // spent, so everything below probes uncounted.
            let raw_missed = raw_infos[i].is_some();
            let prepared = prepare(&q.assumptions, q.goal);
            if prepared.core.trivially_unsat {
                // Only counted trivial if it never consulted the cache
                // (see [`Engine::query_counts`]): a query that presolve
                // *folded* to trivial did miss under its raw key, and
                // gets that key recorded at finalization so warm reruns
                // hit instead. Even this fast path's certificate is
                // checker-backed: the canonical two-step refutation of a
                // formula containing the empty clause.
                if !raw_missed {
                    self.trivial.fetch_add(1, Ordering::Relaxed);
                }
                slots[i] = Some(QueryOutcome {
                    label: q.label,
                    result: VerifyResult::Proved,
                    stats: None,
                    wall: Duration::ZERO,
                    cache_hit: false,
                    variant: 0,
                    cert: self.cert.then(trivial_cert_hash),
                    error: None,
                });
                continue;
            }
            let mut cached = if raw_missed {
                self.cache.probe(&prepared.key)
            } else {
                self.cache.lookup(&prepared.key)
            };
            if self.cert {
                // A warm `Refuted` hit is a claim: re-evaluate the stored
                // countermodel against the term semantics, and evict the
                // entry (falling through to a fresh solve) if it no
                // longer refutes this query.
                if let Some(CachedVerdict::Refuted(pm)) = &cached {
                    if !countermodel_valid(pm, &prepared.backmap, &q.assumptions, q.goal) {
                        if raw_missed {
                            self.cache.evict_uncounted(&prepared.key);
                        } else {
                            self.cache.evict(&prepared.key);
                        }
                        cached = None;
                    }
                }
            }
            if let Some(cached) = cached {
                let cert = match &cached {
                    CachedVerdict::Proved { cert } => (*cert != 0).then_some(*cert),
                    CachedVerdict::Refuted(_) => None,
                };
                slots[i] = Some(QueryOutcome {
                    label: q.label,
                    result: rehydrate(cached, &prepared.backmap),
                    stats: None,
                    wall: Duration::ZERO,
                    cache_hit: true,
                    variant: 0,
                    cert,
                    error: None,
                });
                continue;
            }
            let conjuncts = if self.split {
                form::split_goal(q.goal, SPLIT_CAP)
            } else {
                vec![q.goal]
            };
            if conjuncts.len() > 1 {
                let mut subs = Vec::with_capacity(conjuncts.len());
                for c in conjuncts {
                    let sp = prepare(&q.assumptions, c);
                    if sp.core.trivially_unsat {
                        subs.push(Sub::Ready {
                            verdict: CachedVerdict::Proved {
                                cert: if self.cert { trivial_cert_hash() } else { 0 },
                            },
                            backmap: sp.backmap,
                            hit: false,
                        });
                        continue;
                    }
                    let mut cached = self.cache.lookup(&sp.key);
                    if self.cert {
                        if let Some(CachedVerdict::Refuted(pm)) = &cached {
                            if !countermodel_valid(pm, &sp.backmap, &q.assumptions, c) {
                                self.cache.evict(&sp.key);
                                cached = None;
                            }
                        }
                    }
                    if let Some(cached) = cached {
                        subs.push(Sub::Ready {
                            verdict: cached,
                            backmap: sp.backmap,
                            hit: true,
                        });
                    } else {
                        let work = if use_session {
                            enqueue(&mut groups, &mut group_index, &q.assumptions, c, q.cfg)
                        } else {
                            Work::Fresh(push_task(&mut tasks, sp.core, q.cfg))
                        };
                        subs.push(Sub::Wait {
                            work,
                            backmap: sp.backmap,
                            key: sp.key,
                        });
                    }
                }
                pending.push(Pending::Split {
                    slot: i,
                    whole_key: prepared.key,
                    subs,
                });
            } else {
                let work = if use_session {
                    enqueue(&mut groups, &mut group_index, &q.assumptions, q.goal, q.cfg)
                } else {
                    Work::Fresh(push_task(&mut tasks, prepared.core, q.cfg))
                };
                pending.push(Pending::Unit {
                    slot: i,
                    work,
                    backmap: prepared.backmap,
                    key: prepared.key,
                });
            }
            slots[i] = Some(QueryOutcome {
                label: q.label,
                result: VerifyResult::Unknown,
                stats: None,
                wall: Duration::ZERO,
                cache_hit: false,
                variant: 0,
                cert: None,
                error: None,
            });
        }

        // Schedule pool work per assumption group. In `Session` mode
        // every group becomes one task: the group's portable core is
        // prepared caller-side (it owns the terms) and the worker
        // rebuilds it once, answering every goal on one live solver. In
        // `Auto` mode the reuse predictor decides per group — a group
        // whose predicted reuse is too thin is discharged as one fresh
        // solver task per goal instead (same verdicts, no session
        // bookkeeping). `group_tasks[g]` holds the single session task
        // or the per-goal fresh tasks; `group_backmaps[g]` the matching
        // backmap(s) for countermodel renumbering.
        let adaptive = self.mode() == DischargeMode::Auto;
        let mut group_tasks: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
        let mut group_backmaps: Vec<Vec<BackMap>> = Vec::with_capacity(groups.len());
        let mut group_sessioned: Vec<bool> = Vec::with_capacity(groups.len());
        for g in &groups {
            let as_session =
                !adaptive || session_score(&g.asms, &g.goals) >= AUTO_SESSION_THRESHOLD;
            if as_session {
                let sp = prepare_session(&g.asms, &g.goals);
                group_backmaps.push(vec![sp.backmap]);
                let core = Arc::new(sp.core);
                let cfg = g.cfg;
                let cert = self.cert;
                tasks.push(Box::new(move || solve_session(&core, cfg, None, cert)));
                group_tasks.push(vec![tasks.len() - 1]);
                self.groups_session.fetch_add(1, Ordering::Relaxed);
            } else {
                let mut ts = Vec::with_capacity(g.goals.len());
                let mut bms = Vec::with_capacity(g.goals.len());
                for &goal in &g.goals {
                    let sp = prepare(&g.asms, goal);
                    bms.push(sp.backmap);
                    ts.push(push_task(&mut tasks, sp.core, g.cfg));
                }
                group_tasks.push(ts);
                group_backmaps.push(bms);
                self.groups_fresh.fetch_add(1, Ordering::Relaxed);
            }
            group_sessioned.push(as_session);
        }

        let prep_wall = t_prep.elapsed();
        let n_tasks = tasks.len();
        let n_groups = groups.len();
        let t_pool = std::time::Instant::now();
        let raw: Vec<Result<Vec<RawOutcome>, String>> = self.pool.run_batch(tasks);
        if debug {
            let cpu: Duration = raw
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .flatten()
                .map(|o| o.stats.wall)
                .sum();
            eprintln!(
                "[engine] batch of {n}: prepare {prep_wall:?}, {n_tasks} tasks ({n_groups} sessions) solved in {:?} (task wall sum {cpu:?})",
                t_pool.elapsed()
            );
        }
        // Maps a sub-query's `Work` onto (pool task, outcome index
        // within the task, group backmap if any — the numbering the
        // countermodel comes back in). A sessioned group is one task
        // answering every goal under the group backmap; a fresh-
        // discharged group is one single-outcome task per goal, each
        // with its own backmap.
        let locate = |work: Work| -> (usize, usize, Option<(usize, usize)>) {
            match work {
                Work::Fresh(t) => (t, 0, None),
                Work::Session { group, goal } => {
                    if group_sessioned[group] {
                        (group_tasks[group][0], goal, Some((group, 0)))
                    } else {
                        (group_tasks[group][goal], 0, Some((group, goal)))
                    }
                }
            }
        };
        for p in pending {
            match p {
                Pending::Unit { slot, work, backmap, key } => {
                    let slot = slots[slot].as_mut().expect("pending slot was initialized");
                    let (task, idx, sgroup) = locate(work);
                    match &raw[task] {
                        Err(msg) => {
                            slot.result = VerifyResult::Unknown;
                            slot.error = Some(msg.clone());
                        }
                        Ok(outs) => {
                            let RawOutcome { verdict, stats, variant, cert_hash, cert_error } =
                                outs[idx].clone();
                            slot.stats = Some(stats);
                            slot.wall = stats.wall;
                            slot.variant = variant;
                            self.count_cert(cert_hash, &cert_error);
                            match verdict {
                                RawVerdict::Proved => {
                                    self.cache
                                        .insert(key, CachedVerdict::Proved { cert: cert_hash });
                                    slot.cert = (cert_hash != 0).then_some(cert_hash);
                                    slot.result = VerifyResult::Proved;
                                }
                                RawVerdict::Refuted(pm) => {
                                    let pm = match sgroup {
                                        Some((g, b)) => remap_portable(
                                            &pm,
                                            &group_backmaps[g][b],
                                            &backmap,
                                        ),
                                        None => pm,
                                    };
                                    slot.result = VerifyResult::Counterexample(Box::new(
                                        portable_to_model(&pm, &backmap),
                                    ));
                                    self.cache.insert(key, CachedVerdict::Refuted(pm));
                                }
                                RawVerdict::Unknown => {
                                    slot.result = VerifyResult::Unknown;
                                    if slot.error.is_none() {
                                        slot.error = cert_error;
                                    }
                                }
                                RawVerdict::Interrupted => {
                                    slot.result = VerifyResult::Interrupted
                                }
                            }
                        }
                    }
                }
                Pending::Split { slot, whole_key, subs } => {
                    let mut agg = QueryStats::default();
                    let mut solved_any = false;
                    let mut wall = Duration::ZERO;
                    let mut all_hit = true;
                    let mut all_proved = true;
                    let mut refuted: Option<Model> = None;
                    let mut any_unknown = false;
                    let mut error: Option<String> = None;
                    let mut sub_certs: Vec<u64> = Vec::new();
                    for sub in subs {
                        match sub {
                            Sub::Ready { verdict, backmap, hit } => {
                                all_hit &= hit;
                                match verdict {
                                    CachedVerdict::Proved { cert } => sub_certs.push(cert),
                                    CachedVerdict::Refuted(pm) => {
                                        all_proved = false;
                                        if refuted.is_none() {
                                            refuted = Some(portable_to_model(&pm, &backmap));
                                        }
                                    }
                                }
                            }
                            Sub::Wait { work, backmap, key } => {
                                all_hit = false;
                                let (task, idx, sgroup) = locate(work);
                                match &raw[task] {
                                    Err(msg) => {
                                        all_proved = false;
                                        any_unknown = true;
                                        if error.is_none() {
                                            error = Some(msg.clone());
                                        }
                                    }
                                    Ok(outs) => {
                                        let RawOutcome {
                                            verdict,
                                            stats,
                                            cert_hash,
                                            cert_error,
                                            ..
                                        } = outs[idx].clone();
                                        solved_any = true;
                                        agg = add_stats(agg, stats);
                                        wall = wall.max(stats.wall);
                                        self.count_cert(cert_hash, &cert_error);
                                        match verdict {
                                            RawVerdict::Proved => {
                                                self.cache.insert(
                                                    key,
                                                    CachedVerdict::Proved { cert: cert_hash },
                                                );
                                                sub_certs.push(cert_hash);
                                            }
                                            RawVerdict::Refuted(pm) => {
                                                let pm = match sgroup {
                                                    Some((g, b)) => remap_portable(
                                                        &pm,
                                                        &group_backmaps[g][b],
                                                        &backmap,
                                                    ),
                                                    None => pm,
                                                };
                                                all_proved = false;
                                                if refuted.is_none() {
                                                    refuted = Some(portable_to_model(
                                                        &pm, &backmap,
                                                    ));
                                                }
                                                self.cache
                                                    .insert(key, CachedVerdict::Refuted(pm));
                                            }
                                            RawVerdict::Unknown => {
                                                all_proved = false;
                                                any_unknown = true;
                                                if error.is_none() {
                                                    error = cert_error;
                                                }
                                            }
                                            RawVerdict::Interrupted => {
                                                all_proved = false;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let out = slots[slot].as_mut().expect("pending slot was initialized");
                    out.stats = solved_any.then_some(agg);
                    out.wall = wall;
                    out.cache_hit = all_hit;
                    out.error = error;
                    out.result = if let Some(model) = refuted {
                        VerifyResult::Counterexample(Box::new(model))
                    } else if all_proved {
                        // The conjunction itself is now a proved key, so
                        // future runs hit on the whole goal directly. Its
                        // certificate is the chained fingerprint over the
                        // per-conjunct certificates — nonzero only when
                        // every conjunct was itself certified.
                        let combined = if self.cert && sub_certs.iter().all(|&h| h != 0) {
                            combine_cert_hashes(&sub_certs)
                        } else {
                            0
                        };
                        self.cache
                            .insert(whole_key, CachedVerdict::Proved { cert: combined });
                        out.cert = (combined != 0).then_some(combined);
                        VerifyResult::Proved
                    } else if any_unknown {
                        VerifyResult::Unknown
                    } else {
                        VerifyResult::Interrupted
                    };
                }
            }
        }
        // Presolve finalization: attach the shrink counts to whatever
        // stats the solve produced, and repair counterexamples. A
        // countermodel of the *reduced* query (solver result or cache
        // hit alike) only refutes the original once (a) the assumptions
        // cone-of-influence dropped are themselves satisfiable — their
        // model merges in over disjoint variables — and (b) the
        // variables presolve eliminated are re-derived from their
        // bindings. If the dropped partition is unsatisfiable the
        // original base is contradictory, so the verdict flips to
        // Proved no matter what the reduced query said.
        for (slot, info) in slots.iter_mut().zip(presolve_infos.iter()) {
            let Some(info) = info else { continue };
            let out = slot.as_mut().expect("every slot resolved");
            if let Some(stats) = &mut out.stats {
                stats.presolve_terms_in = info.pre.terms;
                stats.presolve_terms_out = info.post.terms;
                stats.presolve_vars_in = info.pre.vars;
                stats.presolve_vars_out = info.post.vars;
            }
            if !matches!(out.result, VerifyResult::Counterexample(_)) {
                continue;
            }
            if !info.dropped.is_empty() {
                match serval_smt::check_full(info.cfg, &info.dropped, None).result {
                    CheckResult::Sat(dm) => {
                        if let VerifyResult::Counterexample(m) = &mut out.result {
                            // Disjoint by construction: the partitions
                            // share no variables and no UFs.
                            m.bv_values.extend(dm.bv_values);
                            m.bool_values.extend(dm.bool_values);
                            m.uf_tables.extend(dm.uf_tables);
                        }
                    }
                    CheckResult::Unsat => {
                        out.result = VerifyResult::Proved;
                        continue;
                    }
                    CheckResult::Unknown | CheckResult::Interrupted => {
                        out.result = VerifyResult::Unknown;
                        continue;
                    }
                }
            }
            if let VerifyResult::Counterexample(m) = &mut out.result {
                presolve::complete_model(m, &info.base.bindings);
            }
        }

        // Raw-key write side: only now are the outcomes definitive and
        // their countermodels repaired (dropped-cone merge and binding
        // completion above), so each solved query is recorded under its
        // *pre-presolve* key too — next run's raw-layer lookup then
        // resolves it before ever entering the presolve pipeline, and a
        // stored countermodel already refutes the original query as-is.
        for (i, raw) in raw_infos.iter().enumerate() {
            let Some((raw_key, raw_backmap)) = raw else { continue };
            let out = slots[i].as_ref().expect("every slot resolved");
            match &out.result {
                VerifyResult::Proved => self.cache.insert(
                    raw_key.clone(),
                    CachedVerdict::Proved { cert: out.cert.unwrap_or(0) },
                ),
                VerifyResult::Counterexample(m) => self.cache.insert(
                    raw_key.clone(),
                    CachedVerdict::Refuted(portable_of_caller_model(m, raw_backmap)),
                ),
                VerifyResult::Unknown | VerifyResult::Interrupted => {}
            }
        }

        slots
            .into_iter()
            .map(|s| s.expect("every slot resolved"))
            .collect()
    }
}

/// Component-wise sum of two stats blocks (used to aggregate split
/// sub-queries; `wall` is summed here, the outcome reports critical-path
/// wall separately).
fn add_stats(a: QueryStats, b: QueryStats) -> QueryStats {
    QueryStats {
        conflicts: a.conflicts + b.conflicts,
        decisions: a.decisions + b.decisions,
        propagations: a.propagations + b.propagations,
        restarts: a.restarts + b.restarts,
        learnts: a.learnts + b.learnts,
        clauses: a.clauses + b.clauses,
        vars: a.vars + b.vars,
        reused_clauses: a.reused_clauses + b.reused_clauses,
        reused_vars: a.reused_vars + b.reused_vars,
        reused_learnts: a.reused_learnts + b.reused_learnts,
        // Deepest session position among the aggregated sub-queries: a
        // rough "how incremental was this" indicator, not a sum.
        session_goals: a.session_goals.max(b.session_goals),
        presolve_terms_in: a.presolve_terms_in + b.presolve_terms_in,
        presolve_terms_out: a.presolve_terms_out + b.presolve_terms_out,
        presolve_vars_in: a.presolve_vars_in + b.presolve_vars_in,
        presolve_vars_out: a.presolve_vars_out + b.presolve_vars_out,
        eliminated_vars: a.eliminated_vars + b.eliminated_vars,
        subsumed: a.subsumed + b.subsumed,
        strengthened: a.strengthened + b.strengthened,
        resolvents: a.resolvents + b.resolvents,
        cert_steps: a.cert_steps + b.cert_steps,
        cert_wall: a.cert_wall + b.cert_wall,
        wall: a.wall + b.wall,
    }
}

/// Fingerprint of the canonical two-step refutation `[Input([]),
/// Derived([])]` attached to trivially-unsat fast-path verdicts. The
/// steps are run through the real checker once per process, so even the
/// fast path's certificate is checker-backed (and its hash agrees with
/// the solver layer's own const-false short-circuit).
fn trivial_cert_hash() -> u64 {
    static HASH: OnceLock<u64> = OnceLock::new();
    *HASH.get_or_init(|| {
        let steps = [ProofStep::Input(Vec::new()), ProofStep::Derived(Vec::new())];
        serval_drat::check_refutation(&steps, &[])
            .expect("the canonical trivial refutation always checks");
        serval_drat::hash_steps(&steps)
    })
}

/// Chains per-conjunct certificate fingerprints into one fingerprint for
/// the whole split goal (FNV-1a over the hashes in conjunct order; 0 is
/// reserved for "uncertified", so a zero digest is nudged to 1).
fn combine_cert_hashes(hashes: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in hashes {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Re-evaluates a cached countermodel against the query it claims to
/// refute: every assumption must evaluate true and the goal false under
/// the stored assignment (missing variables default like the solver's
/// don't-cares). A cache entry failing this check is corrupt or stale
/// and must be evicted, never returned.
fn countermodel_valid(
    pm: &PortableModel,
    backmap: &BackMap,
    assumptions: &[SBool],
    goal: SBool,
) -> bool {
    let m = portable_to_model(pm, backmap);
    assumptions.iter().all(|a| m.eval_bool(a.0)) && !m.eval_bool(goal.0)
}

/// Renumbers a portable model from one back map's canonical indices to
/// another's, matching vars and UFs through their caller-side identity
/// (both maps were built on the submitting thread, over the same terms).
///
/// Session countermodels need this: the model a session worker returns
/// is numbered in the session core's first-encounter order (across the
/// base and *every* goal), while the per-sub-query cache key and caller
/// translation use the sub-query's own normal form. Vars of the session
/// not reachable from this sub-query are dropped; extra UF rows (from
/// sibling goals' applications) are kept — they come from one consistent
/// SAT model, so they agree with the sub-query's own applications.
fn remap_portable(pm: &PortableModel, from: &BackMap, to: &BackMap) -> PortableModel {
    let bvs: HashMap<u32, u128> = pm.bvs.iter().copied().collect();
    let bools: HashMap<u32, bool> = pm.bools.iter().copied().collect();
    let from_var: HashMap<TermId, u32> = from
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.term, i as u32))
        .collect();
    let mut out = PortableModel::default();
    for (k, origin) in to.vars.iter().enumerate() {
        if let Some(&fi) = from_var.get(&origin.term) {
            if let Some(&v) = bvs.get(&fi) {
                out.bvs.push((k as u32, v));
            }
            if let Some(&b) = bools.get(&fi) {
                out.bools.push((k as u32, b));
            }
        }
    }
    let from_uf: HashMap<serval_smt::term::UfId, u32> = from
        .ufs
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, i as u32))
        .collect();
    for (k, uf) in to.ufs.iter().enumerate() {
        if let Some(fi) = from_uf.get(uf) {
            if let Some((_, rows)) = pm.ufs.iter().find(|(i, _)| i == fi) {
                out.ufs.push((k as u32, rows.clone()));
            }
        }
    }
    out
}

/// Projects a caller-context model onto a back map's canonical indices —
/// the inverse of [`portable_to_model`], used to record a finalized
/// countermodel under the query's *raw* (pre-presolve) cache key. Every
/// variable presolve eliminated or dropped was re-derived by
/// finalization, so the raw back map covers everything the model needs;
/// model entries the map doesn't reach are don't-cares and stay out. UF
/// rows are sorted so the portable form (and hence the cache bytes) is
/// deterministic.
pub fn portable_of_caller_model(m: &Model, backmap: &BackMap) -> PortableModel {
    let mut pm = PortableModel::default();
    for (k, origin) in backmap.vars.iter().enumerate() {
        if let Some(&v) = m.bv_values.get(&origin.term) {
            pm.bvs.push((k as u32, v));
        }
        if let Some(&b) = m.bool_values.get(&origin.term) {
            pm.bools.push((k as u32, b));
        }
    }
    for (k, uf) in backmap.ufs.iter().enumerate() {
        if let Some(rows) = m.uf_tables.get(uf) {
            let mut rows: Vec<(Vec<u128>, u128)> =
                rows.iter().map(|(a, r)| (a.clone(), *r)).collect();
            rows.sort();
            pm.ufs.push((k as u32, rows));
        }
    }
    pm
}

/// Translates a cached verdict into the caller's term context.
fn rehydrate(cached: CachedVerdict, backmap: &BackMap) -> VerifyResult {
    match cached {
        CachedVerdict::Proved { .. } => VerifyResult::Proved,
        CachedVerdict::Refuted(pm) => {
            VerifyResult::Counterexample(Box::new(portable_to_model(&pm, backmap)))
        }
    }
}

/// Maps a portable model onto the submitting thread's terms.
pub fn portable_to_model(pm: &PortableModel, backmap: &BackMap) -> Model {
    let mut m = Model::default();
    for &(k, v) in &pm.bvs {
        m.set_bv(backmap.vars[k as usize].term, v);
    }
    for &(k, b) in &pm.bools {
        m.set_bool(backmap.vars[k as usize].term, b);
    }
    for (k, rows) in &pm.ufs {
        m.uf_tables.insert(
            backmap.ufs[*k as usize],
            rows.iter().cloned().collect(),
        );
    }
    m
}

static GLOBAL: OnceLock<Mutex<Option<Arc<Engine>>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Option<Arc<Engine>>> {
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// The process-wide engine, created from the environment on first use.
pub fn handle() -> Arc<Engine> {
    let mut slot = global_slot().lock().unwrap();
    if slot.is_none() {
        *slot = Some(Arc::new(Engine::new(EngineCfg::from_env())));
    }
    Arc::clone(slot.as_ref().unwrap())
}

/// Replaces the process-wide engine (benchmarks use this to compare
/// worker counts within one process). Returns the new engine.
pub fn install(cfg: EngineCfg) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(cfg));
    *global_slot().lock().unwrap() = Some(Arc::clone(&engine));
    engine
}

/// The discharge seam: anything that can resolve a batch of queries into
/// submission-order outcomes. [`Engine`] is the in-process
/// implementation; `serval-net`'s `RemoteEngine` forwards the batch to a
/// `servald` server over TCP. Consumers (`serval_core::report`) go
/// through [`discharger`], so whole workloads can be redirected over the
/// network without touching the proof code.
pub trait Discharge: Send + Sync {
    /// Discharges a batch, returning outcomes in submission order. Must
    /// be called from the thread that owns the queries' terms.
    fn submit_batch(&self, queries: Vec<Query>) -> Vec<QueryOutcome>;

    /// Discharges one query.
    fn submit(&self, query: Query) -> QueryOutcome {
        self.submit_batch(vec![query])
            .pop()
            .expect("one query in, one outcome out")
    }

    /// Human-readable description for reports and diagnostics.
    fn describe(&self) -> String {
        "in-process engine".to_string()
    }
}

impl Discharge for Engine {
    fn submit_batch(&self, queries: Vec<Query>) -> Vec<QueryOutcome> {
        Engine::submit_batch(self, queries)
    }

    fn submit(&self, query: Query) -> QueryOutcome {
        Engine::submit(self, query)
    }
}

static DISCHARGER: OnceLock<Mutex<Option<Arc<dyn Discharge>>>> = OnceLock::new();

fn discharger_slot() -> &'static Mutex<Option<Arc<dyn Discharge>>> {
    DISCHARGER.get_or_init(|| Mutex::new(None))
}

/// The process-wide discharger: the installed override if any, otherwise
/// the global in-process engine ([`handle`]).
pub fn discharger() -> Arc<dyn Discharge> {
    if let Some(d) = discharger_slot().lock().unwrap().as_ref() {
        return Arc::clone(d);
    }
    handle()
}

/// Routes all subsequent [`discharger`] calls to `d` (e.g. a remote
/// engine). Returns the previous override, if any.
pub fn install_discharger(d: Arc<dyn Discharge>) -> Option<Arc<dyn Discharge>> {
    discharger_slot().lock().unwrap().replace(d)
}

/// Removes the discharger override; [`discharger`] falls back to the
/// in-process engine.
pub fn clear_discharger() -> Option<Arc<dyn Discharge>> {
    discharger_slot().lock().unwrap().take()
}
