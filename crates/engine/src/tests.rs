//! Engine tests: canonicalization, pool determinism and poisoning,
//! cache behavior, and end-to-end agreement with direct `smt::verify`.

use crate::form::{cache_key, prepare, split_goal, Query};
use crate::pool::Pool;
use crate::{DischargeMode, Engine, EngineCfg};
use serval_check::prelude::*;
use serval_smt::solver::{SolverConfig, VerifyResult};
use serval_smt::{reset_ctx, verify, SBool, BV};

fn local_engine(jobs: usize) -> Engine {
    Engine::new(EngineCfg {
        jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Session,
        presolve: true,
        cert: true,
    })
}

/// Like [`local_engine`] but with incremental sessions off: one fresh
/// solver per sub-query, the pre-session behavior.
fn local_engine_fresh(jobs: usize) -> Engine {
    Engine::new(EngineCfg {
        jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Fresh,
        presolve: true,
        cert: true,
    })
}

/// Like [`local_engine`] but with adaptive discharge: the engine picks
/// session vs fresh per assumption group from the predicted-reuse score.
fn local_engine_auto(jobs: usize) -> Engine {
    Engine::new(EngineCfg {
        jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Auto,
        presolve: true,
        cert: true,
    })
}

fn q(label: &str, assumptions: Vec<SBool>, goal: SBool) -> Query {
    Query {
        label: label.to_string(),
        assumptions,
        goal,
        cfg: SolverConfig::default(),
    }
}

// -----------------------------------------------------------------
// Canonicalization
// -----------------------------------------------------------------

#[test]
fn alpha_renamed_queries_share_a_key() {
    // Same query built twice with different variable creation order and
    // different names must produce the same cache key.
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let k1 = prepare(&[x.ult(y)], (x + y).eq_((y + x) & BV::lit(32, u128::MAX))).key;

    reset_ctx();
    let _decoy = BV::fresh(8, "decoy"); // shifts all ordinals
    let b = BV::fresh(32, "banana");
    let a = BV::fresh(32, "apple");
    let k2 = prepare(&[a.ult(b)], (a + b).eq_((b + a) & BV::lit(32, u128::MAX))).key;
    assert_eq!(k1, k2);
}

#[test]
fn assumption_order_does_not_change_the_key() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let z = BV::fresh(16, "z");
    // Structurally distinct assumptions in both orders.
    let a1 = x.ult(y);
    let a2 = y.ule(z);
    let goal = x.ult(z);
    let k_fwd = prepare(&[a1, a2], goal).key;
    let k_rev = prepare(&[a2, a1], goal).key;
    assert_eq!(k_fwd, k_rev);
}

#[test]
fn duplicate_and_trivial_assumptions_normalize_away() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let goal = (x + y).eq_(y + x);
    let plain = prepare(&[x.ult(y)], goal).key;
    let noisy = prepare(&[x.ult(y), SBool::lit(true), x.ult(y)], goal).key;
    assert_eq!(plain, noisy);
}

#[test]
fn distinct_queries_get_distinct_keys() {
    // A directed corpus of semantically different queries: all keys
    // must be pairwise distinct.
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    // Note: the term builder folds commutative identities like
    // `(x+y) == (y+x)` to `true` at construction, so the corpus sticks
    // to goals that survive as real structure.
    let queries: Vec<(Vec<SBool>, SBool)> = vec![
        (vec![], (x - y).eq_(y - x)),
        (vec![], (x & y).ule(x)),
        (vec![], (x | y).ule(x)),
        (vec![x.ult(y)], (x - y).eq_(y - x)),
        (vec![y.ult(x)], (x - y).eq_(y - x)),
        (vec![], (x + x).eq_(x.shl(BV::lit(32, 1)))),
        (vec![], x.eq_(y)),
        (vec![], x.ule(y)),
    ];
    let keys: Vec<Vec<u8>> = queries
        .iter()
        .map(|(a, g)| prepare(a, *g).key)
        .collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "queries {i} and {j} collided");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random expression shapes, instantiated twice with shuffled
    /// variable creation order, alpha-renamed names, and reversed
    /// assumption order, always produce identical cache keys.
    #[test]
    fn prop_alpha_invariance_of_cache_keys(
        c0 in any::<u8>(),
        c1 in any::<u8>(),
        pick in any::<u8>(),
    ) {
        let build = |swap_vars: bool, tag: &str| -> Vec<u8> {
            reset_ctx();
            let (x, y) = if swap_vars {
                let y = BV::fresh(32, &format!("{tag}_y"));
                let x = BV::fresh(32, &format!("{tag}_x"));
                (x, y)
            } else {
                let x = BV::fresh(32, "x");
                let y = BV::fresh(32, "y");
                (x, y)
            };
            // Each assumption embeds a distinct constant so local keys
            // never tie (symmetric ties may legitimately change keys).
            let mut assumptions = vec![
                x.ult(y + BV::lit(32, 1 + c0 as u128)),
                (y ^ BV::lit(32, 258 + c1 as u128)).ule(x),
            ];
            if swap_vars {
                assumptions.reverse();
            }
            let goal = match pick % 4 {
                0 => (x + y).eq_(y + x),
                1 => (x & y).ule(x | y),
                2 => ((x | y) - (x & y)).eq_(x ^ y),
                _ => (x ^ y).eq_((x | y) & !(x & y)),
            };
            prepare(&assumptions, goal).key
        };
        let k1 = build(false, "a");
        let k2 = build(true, "b");
        prop_assert_eq!(k1, k2);
    }
}

#[test]
fn cache_key_is_the_full_serialization() {
    // Key equality must imply structural equality of the prepared core:
    // re-serializing the core reproduces the key bit for bit.
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let p = prepare(&[x.ult(y)], (x + y).eq_(y + x));
    assert_eq!(p.key, cache_key(&p.core));
}

// -----------------------------------------------------------------
// Thread pool
// -----------------------------------------------------------------

#[test]
fn pool_returns_results_in_submission_order() {
    // Same batch, different worker counts: byte-identical result order.
    let batch = |jobs: usize| -> Vec<Result<u64, String>> {
        let pool = Pool::new(jobs);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..64u64)
            .map(|i| {
                Box::new(move || {
                    // Uneven work so completion order scrambles.
                    let mut acc = i;
                    for _ in 0..(i % 7) * 1000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    acc ^ (acc >> 33)
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        pool.run_batch(tasks)
    };
    let one = batch(1);
    let four = batch(4);
    let eight = batch(8);
    assert_eq!(one, four);
    assert_eq!(one, eight);
}

#[test]
fn poisoned_worker_fails_alone() {
    let pool = Pool::new(3);
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
        .map(|i| {
            Box::new(move || {
                if i == 7 {
                    panic!("query {i} is poisoned");
                }
                i * 10
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let results = pool.run_batch(tasks);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            let msg = r.as_ref().unwrap_err();
            assert!(msg.contains("poisoned"), "got: {msg}");
        } else {
            assert_eq!(*r.as_ref().unwrap(), i * 10);
        }
    }
    // The pool survives and takes new work.
    let again = pool.run_batch(vec![
        Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>
    ]);
    assert_eq!(*again[0].as_ref().unwrap(), 1);
}

// -----------------------------------------------------------------
// Engine end-to-end
// -----------------------------------------------------------------

#[test]
fn engine_agrees_with_direct_verify() {
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let proved_goal = (x + y).eq_(y + x);
    let refuted_goal = (x - y).eq_(y - x);
    assert!(verify(&[], proved_goal).is_proved());
    assert!(!verify(&[], refuted_goal).is_proved());

    let engine = local_engine(2);
    let outcomes = engine.submit_batch(vec![
        q("commutes", vec![], proved_goal),
        q("anticommutes", vec![], refuted_goal),
    ]);
    assert!(matches!(outcomes[0].result, VerifyResult::Proved));
    let VerifyResult::Counterexample(model) = &outcomes[1].result else {
        panic!("expected a counterexample, got {:?}", outcomes[1].result);
    };
    // The rehydrated model must be a real counterexample over the
    // *caller's* terms.
    assert!(!model.eval_bool(refuted_goal.0), "model must refute the goal");
    assert!(outcomes[1].stats.is_some());
    assert!(outcomes[1].stats.unwrap().vars > 0);
}

#[test]
fn engine_verdicts_identical_across_worker_counts() {
    let run = |jobs: usize| -> Vec<bool> {
        reset_ctx();
        let x = BV::fresh(16, "x");
        let y = BV::fresh(16, "y");
        let engine = local_engine(jobs);
        let queries = vec![
            q("p1", vec![], (x + y).eq_(y + x)),
            q("r1", vec![], x.eq_(y)),
            q("p2", vec![x.ult(y)], x.ule(y)),
            q("r2", vec![x.ule(y)], x.ult(y)),
            q("p3", vec![], (x ^ y).eq_((x | y) & !(x & y))),
        ];
        engine
            .submit_batch(queries)
            .into_iter()
            .map(|o| o.result.is_proved())
            .collect()
    };
    let expected = vec![true, false, true, false, true];
    assert_eq!(run(1), expected);
    assert_eq!(run(4), expected);
}

#[test]
fn warm_cache_hits_with_unchanged_verdicts() {
    reset_ctx();
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let engine = local_engine(2);
    let make = || {
        vec![
            q("p", vec![], ((x & y) + (x | y)).eq_(x + y)),
            q("r", vec![], x.ule(y)),
        ]
    };
    let cold = engine.submit_batch(make());
    assert!(cold.iter().all(|o| !o.cache_hit));
    let warm = engine.submit_batch(make());
    assert!(warm.iter().all(|o| o.cache_hit), "second run must hit");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.result.is_proved(), w.result.is_proved());
    }
    let (hits, misses) = engine.cache_stats();
    assert_eq!(hits, 2);
    assert_eq!(misses, 2);
    // The cached counterexample still refutes the caller's goal.
    let VerifyResult::Counterexample(m) = &warm[1].result else {
        panic!("expected counterexample");
    };
    assert!(!m.eval_bool(x.ule(y).0));
}

#[test]
fn disk_cache_survives_engine_restarts() {
    reset_ctx();
    let dir = std::env::temp_dir().join(format!(
        "serval-engine-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let mk_engine = || {
        Engine::new(EngineCfg {
            jobs: 2,
            portfolio: false,
            disk_cache: Some(dir.clone()),
            split: true,
            mode: DischargeMode::Session,
            presolve: true,
            cert: true,
        })
    };
    let first = mk_engine();
    let o = first.submit(q("p", vec![], (x & y).ule(x)));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(!o.cache_hit);
    drop(first);

    let second = mk_engine();
    let o2 = second.submit(q("p", vec![], (x & y).ule(x)));
    assert!(matches!(o2.result, VerifyResult::Proved));
    assert!(o2.cache_hit, "proved key must be preloaded from disk");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unique scratch dir for a disk-cache test.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "serval-engine-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The unique segment file currently holding a record (older segments
/// are truncated back to their bare header by corruption recovery).
fn record_segment(dir: &std::path::Path) -> std::path::PathBuf {
    let mut candidates: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .flatten()
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy().to_string();
            n.starts_with("seg-")
                && n.ends_with(".bin")
                && e.metadata().map(|m| m.len() > 8).unwrap_or(false)
        })
        .map(|e| e.path())
        .collect();
    assert_eq!(candidates.len(), 1, "exactly one segment holds the record");
    candidates.pop().unwrap()
}

#[test]
fn corrupted_disk_cache_is_a_miss_not_a_panic() {
    reset_ctx();
    let dir = scratch_dir("corrupt");
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let mk_engine = || {
        Engine::new(EngineCfg {
            jobs: 1,
            portfolio: false,
            disk_cache: Some(dir.clone()),
            split: true,
            mode: DischargeMode::Session,
            presolve: true,
            cert: true,
        })
    };
    let goal = (x & y).ule(x);
    let o = mk_engine().submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    let path = record_segment(&dir);
    let pristine = std::fs::read(&path).expect("proved key persisted");
    assert!(pristine.len() > 8, "file must hold magic + a record");

    // Truncated record (crash mid-append): load must drop it and the
    // query must re-solve to the same verdict — never panic.
    std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
    let engine = mk_engine();
    let o = engine.submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(!o.cache_hit, "truncated record must be a miss");
    drop(engine); // its re-solve appended the record to a fresh segment

    // Bit-flipped record body: the checksum catches it, same outcome.
    let path = record_segment(&dir);
    let mut flipped = std::fs::read(&path).unwrap();
    let mid = 8 + (flipped.len() - 8) / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let o = mk_engine().submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(!o.cache_hit, "bit-flipped record must be a miss");

    // Garbage header: not our file — deleted and rebuilt from scratch.
    let path = record_segment(&dir);
    std::fs::write(&path, b"not a serval cache file").unwrap();
    let o = mk_engine().submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(!o.cache_hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_cache_lock_fails_alone() {
    // A query that panics while holding the cache's memory-tier lock
    // must not take every later query down with it: the map is intact
    // (at worst missing one insert), so the lock is recovered, not
    // propagated. Before the fix, the `.unwrap()` on the poisoned lock
    // panicked *every* subsequent lookup on *every* worker.
    reset_ctx();
    let engine = local_engine(2);
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let o = engine.submit(q("warm", vec![], (x & y).ule(x)));
    assert!(matches!(o.result, VerifyResult::Proved));

    engine.cache().poison_mem_for_test();

    // Warm hit through the poisoned lock.
    let o = engine.submit(q("warm", vec![], (x & y).ule(x)));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(o.cache_hit, "warm hit must survive a poisoned lock");
    // Fresh solve + insert through the poisoned lock.
    let cold = ((x & y) + (x | y)).eq_(x + y);
    let o = engine.submit(q("cold", vec![], cold));
    assert!(matches!(o.result, VerifyResult::Proved));
    let o = engine.submit(q("cold-again", vec![], cold));
    assert!(o.cache_hit, "insert must land despite the poisoned lock");
}

#[test]
fn uncertified_disk_records_are_ignored_by_certified_engines() {
    reset_ctx();
    let dir = scratch_dir("uncert");
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let mk_engine = |cert: bool| {
        Engine::new(EngineCfg {
            jobs: 1,
            portfolio: false,
            disk_cache: Some(dir.clone()),
            split: true,
            mode: DischargeMode::Session,
            presolve: true,
            cert,
        })
    };
    let goal = ((x & y) + (x | y)).eq_(x + y);
    let o = mk_engine(false).submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(o.cert.is_none(), "uncertified run carries no fingerprint");

    // A certified engine must not launder the unchecked record into a
    // certified verdict: the warm "hit" is dropped on load, the query
    // re-solves, and the outcome now carries a certificate.
    let o = mk_engine(true).submit(q("p", vec![], goal));
    assert!(matches!(o.result, VerifyResult::Proved));
    assert!(!o.cache_hit, "uncertified record must not hit a certified engine");
    assert!(o.cert.is_some(), "re-solve must produce a certificate");

    // And the certified re-append is visible to the next certified run.
    let o = mk_engine(true).submit(q("p", vec![], goal));
    assert!(o.cache_hit);
    assert!(o.cert.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_refuted_entry_is_evicted_and_resolved() {
    use crate::cache::CachedVerdict;
    use crate::form::prepare;
    use crate::solve::PortableModel;

    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    // Presolve off so the key computed here matches the engine's (the
    // engine keys on the presolved form).
    let engine = local_engine_raw(1, true);
    // Provable goal; poison its cache slot with a bogus "countermodel".
    let goal = (x & y).ule(x);
    let prepared = prepare(&[], goal);
    let mut bogus = PortableModel::default();
    for (i, _) in prepared.backmap.vars.iter().enumerate() {
        bogus.bvs.push((i as u32, 7));
    }
    engine
        .cache
        .insert(prepared.key.clone(), CachedVerdict::Refuted(bogus));
    // The hit revalidates the stored model against the term semantics,
    // finds it does not refute the goal, evicts, and re-solves.
    let o = engine.submit(q("p", vec![], goal));
    assert!(
        matches!(o.result, VerifyResult::Proved),
        "poisoned Refuted entry must not surface, got {:?}",
        o.result
    );
    assert!(!o.cache_hit, "the eviction reclassifies the hit as a miss");
    assert!(o.cert.is_some(), "the re-solve is certified");
    // The poisoned entry is gone: the slot now holds the proved verdict.
    let o = engine.submit(q("p", vec![], goal));
    assert!(o.cache_hit);
    assert!(matches!(o.result, VerifyResult::Proved));
}

#[test]
fn genuine_refuted_entries_survive_revalidation() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let engine = local_engine(1);
    let goal = x.ule(y);
    let cold = engine.submit(q("r", vec![], goal));
    assert!(matches!(cold.result, VerifyResult::Counterexample(_)));
    // The genuine countermodel passes revalidation and hits.
    let warm = engine.submit(q("r", vec![], goal));
    assert!(warm.cache_hit, "a valid Refuted entry must still hit");
    let VerifyResult::Counterexample(m) = &warm.result else {
        panic!("expected counterexample, got {:?}", warm.result);
    };
    assert!(!m.eval_bool(goal.0));
}

// -----------------------------------------------------------------
// Proof certificates
// -----------------------------------------------------------------

/// Engine over the full cfg matrix axis used by the cert tests.
fn cert_matrix_engine(incremental: bool, split: bool, presolve: bool, cert: bool) -> Engine {
    Engine::new(EngineCfg {
        jobs: 2,
        portfolio: false,
        disk_cache: None,
        split,
        mode: if incremental { DischargeMode::Session } else { DischargeMode::Fresh },
        presolve,
        cert,
    })
}

#[test]
fn proved_outcomes_carry_certificates() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let engine = local_engine(2);
    // Presolve-resistant identities, so the proofs come from real solves.
    let unit = ((x & y) + (x | y)).eq_(x + y);
    let conj = unit & (x ^ y).eq_((x | y) & !(x & y));
    assert!(split_goal(conj, 512).len() >= 2);
    let out = engine.submit_batch(vec![
        q("unit", vec![], unit),
        q("conj", vec![], conj),
        q("refuted", vec![], x.eq_(y)),
    ]);
    assert!(matches!(out[0].result, VerifyResult::Proved));
    assert!(out[0].cert.is_some(), "unit proof must carry a certificate");
    assert!(matches!(out[1].result, VerifyResult::Proved));
    assert!(out[1].cert.is_some(), "split proof must carry a combined certificate");
    assert!(out[2].cert.is_none(), "refuted outcomes carry none");
    let (checked, rejected) = engine.cert_counts();
    assert!(checked > 0, "certificates must actually have been checked");
    assert_eq!(rejected, 0);
    // Checker work is visible in the stats.
    let s = out[0].stats.expect("solved query has stats");
    assert!(s.cert_steps > 0, "proof log must be non-empty");
}

#[test]
fn cert_on_and_off_verdicts_agree_across_the_matrix() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let asms = vec![x.ult(BV::lit(16, 1000)), y.uge(BV::lit(16, 4))];
    let queries = || {
        vec![
            q("p-unit", asms.clone(), (x & y).ule(x)),
            q("r-unit", asms.clone(), x.ult(y)),
            q(
                "p-conj",
                asms.clone(),
                (x & y).ule(x) & x.ult(BV::lit(16, 1001)) & y.uge(BV::lit(16, 3)),
            ),
            q("r-conj", asms.clone(), (x | y).uge(x) & x.eq_(y)),
            q("p-alone", vec![y.ult(BV::lit(16, 9))], y.ule(BV::lit(16, 8))),
            q("p-trivial", vec![x.ult(BV::lit(16, 0))], x.eq_(y)),
        ]
    };
    for incremental in [false, true] {
        for split in [false, true] {
            for presolve in [false, true] {
                let on = cert_matrix_engine(incremental, split, presolve, true)
                    .submit_batch(queries());
                let off = cert_matrix_engine(incremental, split, presolve, false)
                    .submit_batch(queries());
                for (a, b) in on.iter().zip(&off) {
                    assert_eq!(
                        a.result.is_proved(),
                        b.result.is_proved(),
                        "cert on/off verdict mismatch on {} (incremental={incremental}, \
                         split={split}, presolve={presolve})",
                        a.label
                    );
                    assert!(
                        a.error.is_none(),
                        "certified {} unexpectedly errored: {:?}",
                        a.label,
                        a.error
                    );
                    if a.result.is_proved() {
                        assert!(a.cert.is_some(), "{} lacks a certificate", a.label);
                        assert!(b.cert.is_none(), "{} certified with cert off", b.label);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random query batches across the full discharge-mode matrix
    /// (session/fresh × split/unsplit × presolve on/off): certification
    /// must be invisible in verdicts — `SERVAL_CERT=1` and `=0` agree on
    /// every outcome — and every certified `Proved` must actually carry
    /// a checker-accepted certificate.
    #[test]
    fn prop_cert_on_off_verdicts_agree(
        c0 in any::<u8>(),
        c1 in any::<u8>(),
        picks in prop::collection::vec(any::<u8>(), 1..4),
    ) {
        reset_ctx();
        let x = BV::fresh(16, "x");
        let y = BV::fresh(16, "y");
        let asms = vec![
            x.ult(BV::lit(16, 1 + c0 as u128)),
            y.uge(BV::lit(16, (c1 % 16) as u128)),
        ];
        let menu = |p: u8| -> SBool {
            match p % 6 {
                0 => ((x & y) + (x | y)).eq_(x + y),
                1 => x.ult(y),
                2 => (x ^ y).eq_((x | y) & !(x & y)),
                3 => x.eq_(y),
                4 => (x & y).ule(x) & x.ule(x | y),
                _ => (x + y).uge(x),
            }
        };
        let queries = || -> Vec<Query> {
            picks
                .iter()
                .enumerate()
                .map(|(i, &p)| q(&format!("q{i}"), asms.clone(), menu(p)))
                .collect()
        };
        for incremental in [false, true] {
            for split in [false, true] {
                for presolve in [false, true] {
                    let on = cert_matrix_engine(incremental, split, presolve, true)
                        .submit_batch(queries());
                    let off = cert_matrix_engine(incremental, split, presolve, false)
                        .submit_batch(queries());
                    for (a, b) in on.iter().zip(&off) {
                        prop_assert_eq!(
                            a.result.is_proved(),
                            b.result.is_proved(),
                            "cert on/off mismatch on {} (incremental={}, split={}, presolve={})",
                            &a.label, incremental, split, presolve
                        );
                        prop_assert!(a.error.is_none());
                        if a.result.is_proved() {
                            prop_assert!(a.cert.is_some());
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn portfolio_agrees_with_single_config() {
    reset_ctx();
    let x = BV::fresh(24, "x");
    let y = BV::fresh(24, "y");
    let single = local_engine(2);
    let racing = Engine::new(EngineCfg {
        jobs: 2,
        portfolio: true,
        disk_cache: None,
        split: true,
        mode: DischargeMode::Session,
        presolve: true,
        cert: true,
    });
    let make = || {
        vec![
            q("p", vec![], ((x & y) + (x | y)).eq_(x + y)),
            q("r", vec![], (x * y).eq_(x + y)),
        ]
    };
    let a = single.submit_batch(make());
    let b = racing.submit_batch(make());
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.result.is_proved(), sb.result.is_proved());
    }
    assert!(b[0].variant < 3);
}

#[test]
fn portfolio_external_cancel_interrupts_mid_solve() {
    use crate::solve::{solve_portfolio, RawVerdict};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let z = BV::fresh(16, "z");
    // 16-bit multiplicative distributivity is multiplier equivalence
    // checking: far too hard for the CDCL solver to finish within the
    // cancellation window (empirically >200k conflicts / >40s), so any
    // verdict other than Interrupted means the external cancel never
    // reached the running variants. (Commutativity identities cannot be
    // used here: the term builder folds them to `true` at construction.)
    let prepared = prepare(&[], (x * (y + z)).eq_(x * y + x * z));
    let cancel = Arc::new(AtomicBool::new(false));
    let killer = {
        let cancel = Arc::clone(&cancel);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cancel.store(true, Ordering::Relaxed);
        })
    };
    let out = solve_portfolio(&prepared.core, SolverConfig::default(), Some(cancel), false);
    killer.join().unwrap();
    assert!(
        matches!(out.verdict, RawVerdict::Interrupted),
        "mid-solve cancel must interrupt the portfolio, got {:?}",
        out.verdict
    );
}

#[test]
fn poisoned_query_surfaces_as_error_not_crash() {
    // A query over a dangling TermId panics on the worker during
    // preparation... preparation happens caller-side, so instead poison
    // via the pool path: an engine query cannot easily be made to
    // panic, which is exactly the point — the pool-level test above
    // covers the panic path. Here we just check the error field stays
    // empty on healthy queries.
    reset_ctx();
    let x = BV::fresh(8, "x");
    let engine = local_engine(1);
    let o = engine.submit(q("healthy", vec![], x.eq_(x)));
    assert!(o.error.is_none());
    assert!(matches!(o.result, VerifyResult::Proved));
}

// -----------------------------------------------------------------
// Goal splitting
// -----------------------------------------------------------------

fn local_engine_unsplit(jobs: usize) -> Engine {
    Engine::new(EngineCfg {
        jobs,
        portfolio: false,
        disk_cache: None,
        split: false,
        mode: DischargeMode::Session,
        presolve: true,
        cert: true,
    })
}

#[test]
fn split_goal_flattens_nested_conjunctions() {
    reset_ctx();
    let a = SBool::fresh("a");
    let b = SBool::fresh("b");
    let c = SBool::fresh("c");
    let goal = (a & b) & c;
    assert_eq!(split_goal(goal, 512).len(), 3);
    // A goal that is not a conjunction stays whole.
    assert_eq!(split_goal(a, 512).len(), 1);
    // The cap stops expansion entirely when even the first level would
    // exceed it.
    assert_eq!(split_goal(goal, 1).len(), 1);
}

#[test]
fn split_and_unsplit_verdicts_agree() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let proved = (x & y).ule(x) & (x | y).uge(x);
    let refuted = (x & y).ule(x) & x.ult(y);
    // Guard: the builder must not have folded these to non-conjunctions,
    // or the test would not exercise the split path at all.
    assert!(split_goal(proved, 512).len() >= 2);
    assert!(split_goal(refuted, 512).len() >= 2);
    for engine in [local_engine(2), local_engine_unsplit(2)] {
        let out = engine.submit_batch(vec![
            q("conj-proved", vec![], proved),
            q("conj-refuted", vec![], refuted),
        ]);
        assert!(matches!(out[0].result, VerifyResult::Proved));
        let VerifyResult::Counterexample(m) = &out[1].result else {
            panic!("expected counterexample, got {:?}", out[1].result);
        };
        // The model from the refuted conjunct must refute the *whole*
        // conjunction over the caller's terms.
        assert!(!m.eval_bool(refuted.0), "model must refute the conjunction");
    }
}

// -----------------------------------------------------------------
// Incremental discharge sessions
// -----------------------------------------------------------------

#[test]
fn incremental_and_fresh_engines_agree() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let asms = vec![x.ult(BV::lit(16, 1000)), y.uge(BV::lit(16, 4))];
    let queries = || {
        vec![
            q("p-shared-1", asms.clone(), (x & y).ule(x)),
            q("r-shared", asms.clone(), x.ult(y)),
            q("p-shared-2", asms.clone(), x.ule(x | y)),
            q("p-alone", vec![y.ult(BV::lit(16, 9))], y.ule(BV::lit(16, 8))),
            q(
                "conj-shared",
                asms.clone(),
                (x & y).ule(x) & x.ult(BV::lit(16, 1001)) & y.uge(BV::lit(16, 3)),
            ),
            q("r-conj", asms.clone(), (x | y).uge(x) & x.eq_(y)),
        ]
    };
    let inc = local_engine(2).submit_batch(queries());
    let fresh = local_engine_fresh(2).submit_batch(queries());
    for (a, b) in inc.iter().zip(&fresh) {
        assert_eq!(
            a.result.is_proved(),
            b.result.is_proved(),
            "verdict mismatch on {}",
            a.label
        );
    }
    // Session countermodels must be real counterexamples over the
    // *caller's* terms: they refute the goal while satisfying every
    // shared assumption.
    let VerifyResult::Counterexample(m) = &inc[1].result else {
        panic!("expected counterexample, got {:?}", inc[1].result);
    };
    assert!(!m.eval_bool(x.ult(y).0), "model must refute the goal");
    for a in &asms {
        assert!(m.eval_bool(a.0), "model must satisfy the assumptions");
    }
}

#[test]
fn adaptive_mode_is_deterministic_and_splits_by_reuse() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let z = BV::fresh(16, "z");
    // Rich group: a fat shared base (the assumption cone dominates the
    // group's whole encoding) amortized over three small goals, so the
    // predicted-reuse score `(3 - 1) × base/total` clears the auto
    // threshold and the group is sessioned.
    let rich_asms = vec![
        ((x * y) + (y * z)).ult((x | y | z) * BV::lit(16, 3)),
        ((x ^ y) & (y ^ z)).ule(x + y + z),
        x.ult(BV::lit(16, 500)),
    ];
    // Thin group: a single goal scores 0 and always goes fresh.
    let queries = || {
        vec![
            q("rich-1", rich_asms.clone(), x.ule(x | y)),
            q("rich-2", rich_asms.clone(), (x & y).ule(x)),
            q("rich-3", rich_asms.clone(), x.ult(y)),
            q("thin", vec![], z.ule(z | BV::lit(16, 1))),
        ]
    };
    let auto_a = local_engine_auto(2);
    let auto_b = local_engine_auto(2);
    let out_a = auto_a.submit_batch(queries());
    let out_b = auto_b.submit_batch(queries());
    // Same batch ⇒ same mode choices: the score is a pure function of
    // the batch's terms, independent of scheduling.
    assert_eq!(auto_a.mode_counts(), auto_b.mode_counts());
    let (sessions, fresh) = auto_a.mode_counts();
    assert_eq!(
        (sessions, fresh),
        (1, 1),
        "auto must session the rich group and fresh-solve the thin one"
    );
    // A pure Session engine counts every group as a session; verdicts
    // must nonetheless agree query-for-query with the adaptive runs.
    let session_engine = local_engine(2);
    let out_s = session_engine.submit_batch(queries());
    assert_eq!(session_engine.mode_counts(), (2, 0));
    for ((a, b), s) in out_a.iter().zip(&out_b).zip(&out_s) {
        assert_eq!(
            a.result.is_proved(),
            b.result.is_proved(),
            "auto runs disagree on {}",
            a.label
        );
        assert_eq!(
            a.result.is_proved(),
            s.result.is_proved(),
            "auto and session disagree on {}",
            a.label
        );
    }
    // The rich group's counterexample (x < y is refutable) must still be
    // a real countermodel over the caller's terms.
    let VerifyResult::Counterexample(m) = &out_a[2].result else {
        panic!("expected counterexample, got {:?}", out_a[2].result);
    };
    assert!(!m.eval_bool(x.ult(y).0), "model must refute the goal");
    for a in &rich_asms {
        assert!(m.eval_bool(a.0), "model must satisfy the assumptions");
    }
}

#[test]
fn session_countermodel_translation_handles_index_skew() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let z = BV::fresh(16, "z");
    let asms = vec![x.ult(BV::lit(16, 50))];
    // The first goal drags `y` into the session's canonical numbering
    // before `z`; the second goal's own normal form contains only x and
    // z, so its canonical indices differ from the session's — exactly
    // the skew `remap_portable` has to fix.
    let g1 = (x + y).uge(x); // refuted by wraparound (large y)
    let g2 = x.ult(z); // refuted by z <= x
    let out = local_engine(1).submit_batch(vec![
        q("g1", asms.clone(), g1),
        q("g2", asms.clone(), g2),
    ]);
    let VerifyResult::Counterexample(m) = &out[1].result else {
        panic!("expected counterexample, got {:?}", out[1].result);
    };
    assert!(!m.eval_bool(g2.0), "translated model must refute g2");
    assert!(m.eval_bool(asms[0].0), "translated model must satisfy the base");
    // Both goals shared one session (same assumption set): the second
    // goal must report its position and carry reused encoding.
    let s2 = out[1].stats.expect("solved sub-query has stats");
    assert_eq!(s2.session_goals, 2, "g2 must be the session's second goal");
    assert!(s2.reused_vars > 0, "g2 must reuse the base encoding");
}

#[test]
fn incremental_warm_rerun_hits_cache() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let asms = vec![x.ult(y)];
    let goal = (x & y).ule(x) & x.ule(y);
    assert!(split_goal(goal, 512).len() >= 2);
    let engine = local_engine(2);
    let cold = engine.submit_batch(vec![q("conj", asms.clone(), goal)]);
    assert!(matches!(cold[0].result, VerifyResult::Proved));
    assert!(!cold[0].cache_hit);
    // Each proved sub-query inserted its own key, so the rerun resolves
    // from the cache without building a session at all.
    let warm = engine.submit_batch(vec![q("conj", asms.clone(), goal)]);
    assert!(warm[0].cache_hit, "rerun must hit the cache");
    assert!(matches!(warm[0].result, VerifyResult::Proved));
    let (hits, _) = engine.cache_stats();
    assert!(hits > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batches of queries over random shared assumption sets:
    /// the incremental engine and the fresh-per-query engine must agree
    /// on every verdict, and every incremental countermodel must refute
    /// its goal while satisfying the shared assumptions.
    #[test]
    fn prop_incremental_matches_fresh_engine(
        c0 in any::<u8>(),
        c1 in any::<u8>(),
        picks in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        reset_ctx();
        let x = BV::fresh(16, "x");
        let y = BV::fresh(16, "y");
        // Always-satisfiable assumption set with random constants.
        let asms = vec![
            x.ult(BV::lit(16, 1 + c0 as u128)),
            y.uge(BV::lit(16, (c1 % 16) as u128)),
        ];
        let menu = |p: u8| -> SBool {
            match p % 6 {
                0 => (x & y).ule(x),
                1 => x.ult(y),
                2 => (x | y).uge(y),
                3 => x.eq_(y),
                4 => (x ^ y).eq_((x | y) & !(x & y)),
                _ => (x + y).uge(x),
            }
        };
        let queries = || -> Vec<Query> {
            picks
                .iter()
                .enumerate()
                .map(|(i, &p)| q(&format!("q{i}"), asms.clone(), menu(p)))
                .collect()
        };
        let inc = local_engine(2).submit_batch(queries());
        let fresh = local_engine_fresh(2).submit_batch(queries());
        for ((a, b), &p) in inc.iter().zip(&fresh).zip(&picks) {
            prop_assert_eq!(a.result.is_proved(), b.result.is_proved());
            if let VerifyResult::Counterexample(m) = &a.result {
                prop_assert!(!m.eval_bool(menu(p).0));
                for asm in &asms {
                    prop_assert!(m.eval_bool(asm.0));
                }
            }
        }
    }
}

#[test]
fn split_conjunction_caches_whole_goal() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let goal = (x & y).ule(x) & (x | y).uge(x);
    let engine = local_engine(2);
    let cold = engine.submit_batch(vec![q("conj", vec![], goal)]);
    assert!(matches!(cold[0].result, VerifyResult::Proved));
    assert!(!cold[0].cache_hit);
    // All conjuncts proved → the whole-goal key is inserted, so a rerun
    // is a single cache hit rather than a re-split.
    let warm = engine.submit_batch(vec![q("conj", vec![], goal)]);
    assert!(warm[0].cache_hit, "whole conjunction must hit on rerun");
    assert!(matches!(warm[0].result, VerifyResult::Proved));
}

// -----------------------------------------------------------------
// Word-level presolve
// -----------------------------------------------------------------

/// Engine with presolve disabled, in either discharge mode.
fn local_engine_raw(jobs: usize, incremental: bool) -> Engine {
    Engine::new(EngineCfg {
        jobs,
        portfolio: false,
        disk_cache: None,
        split: true,
        mode: if incremental { DischargeMode::Session } else { DischargeMode::Fresh },
        presolve: false,
        cert: true,
    })
}

#[test]
fn presolve_terminates_on_substitution_cycles() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let one = BV::lit(16, 1);
    // `x = y + 1` and `y = x + 1` form a substitution cycle; chasing it
    // naively never terminates. The set is contradictory mod 2^16
    // (subtracting gives 1 = -1), so any goal proves vacuously.
    let asms = vec![x.eq_(y + one), y.eq_(x + one)];
    let out = local_engine(1).submit_batch(vec![q("cycle", asms, x.ult(y))]);
    assert!(matches!(out[0].result, VerifyResult::Proved));

    // A benign cycle: `x = y` and `y = x`. The goal restates one of the
    // assumptions, so it must prove — and presolve must not loop while
    // orienting the equalities.
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let asms = vec![x.eq_(y), y.eq_(x)];
    let out = local_engine(1).submit_batch(vec![q("benign", asms, x.eq_(y))]);
    assert!(matches!(out[0].result, VerifyResult::Proved));
}

#[test]
fn coi_keeps_uf_linked_assumptions() {
    reset_ctx();
    // The goal needs the assumption through a *function application*,
    // not a shared variable: cone-of-influence reduction must treat two
    // applications of the same UF as connected.
    let f = serval_smt::with_ctx(|c| c.declare_uf("f", vec![8], 8));
    let f0 = BV(serval_smt::build::uf_apply(f, &[BV::lit(8, 0).0]));
    let asms = vec![f0.eq_(BV::lit(8, 5))];
    let goal = f0.ult(BV::lit(8, 6));
    // Fresh mode exercises cone_split (sessions keep every root).
    let out = local_engine_fresh(1).submit_batch(vec![q("uf", asms, goal)]);
    assert!(
        matches!(out[0].result, VerifyResult::Proved),
        "f(0) = 5 must stay in the cone of f(0) < 6, got {:?}",
        out[0].result
    );
}

#[test]
fn dropped_contradictory_partition_flips_refuted() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let w = BV::fresh(16, "w");
    // `w = w + 1` is unsatisfiable but shares no variables with the
    // goal, so cone-of-influence reduction drops it. The raw query is
    // vacuously proved; the reduced query alone would refute. The
    // engine's dropped-partition side-solve must restore the verdict.
    let asms = vec![x.ult(BV::lit(16, 10)), w.eq_(w + BV::lit(16, 1))];
    let goal = x.ult(BV::lit(16, 5));
    let out = local_engine_fresh(1).submit_batch(vec![q("vacuous", asms.clone(), goal)]);
    assert!(
        matches!(out[0].result, VerifyResult::Proved),
        "contradictory dropped partition must flip Refuted to Proved, got {:?}",
        out[0].result
    );
    // Sanity: without the contradiction the same goal really refutes.
    let out = local_engine_fresh(1).submit_batch(vec![q(
        "refutes",
        vec![asms[0]],
        goal,
    )]);
    assert!(matches!(out[0].result, VerifyResult::Counterexample(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Presolve must be invisible in verdicts: for random batches over
    /// random assumption sets, the presolving engine and the raw engine
    /// agree on every outcome in both discharge modes, and every
    /// countermodel from the presolving engine evaluates correctly over
    /// the *original* (unsimplified) terms.
    #[test]
    fn prop_presolve_matches_raw(
        c0 in any::<u8>(),
        c1 in any::<u8>(),
        picks in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        reset_ctx();
        let x = BV::fresh(16, "x");
        let y = BV::fresh(16, "y");
        let z = BV::fresh(16, "z");
        let asms = vec![
            x.ult(BV::lit(16, 1 + c0 as u128)),
            y.eq_(x + BV::lit(16, (c1 % 16) as u128)),
        ];
        let menu = |p: u8| -> SBool {
            match p % 6 {
                0 => (x & y).ule(x),
                1 => x.ult(y),
                2 => y.uge(x),
                3 => x.eq_(z),
                4 => (x ^ y).eq_((x | y) & !(x & y)),
                _ => z.ult(BV::lit(16, 3)),
            }
        };
        let queries = || -> Vec<Query> {
            picks
                .iter()
                .enumerate()
                .map(|(i, &p)| q(&format!("q{i}"), asms.clone(), menu(p)))
                .collect()
        };
        for incremental in [false, true] {
            let on = if incremental {
                local_engine(2).submit_batch(queries())
            } else {
                local_engine_fresh(2).submit_batch(queries())
            };
            let raw = local_engine_raw(2, incremental).submit_batch(queries());
            for ((a, b), &p) in on.iter().zip(&raw).zip(&picks) {
                prop_assert_eq!(
                    a.result.is_proved(),
                    b.result.is_proved(),
                    "incremental={} goal {}",
                    incremental,
                    p % 6
                );
                if let VerifyResult::Counterexample(m) = &a.result {
                    prop_assert!(!m.eval_bool(menu(p).0));
                    for asm in &asms {
                        prop_assert!(m.eval_bool(asm.0));
                    }
                }
            }
        }
    }
}
