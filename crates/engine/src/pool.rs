//! A from-scratch work-stealing thread pool (std-only).
//!
//! Jobs are pushed round-robin onto per-worker deques; an idle worker
//! first drains its own deque LIFO (cache-friendly), then the shared
//! injector, then steals FIFO from its siblings, so an imbalanced batch
//! still keeps every core busy. A `Mutex<usize>`/`Condvar` pair counts
//! unclaimed jobs and parks idle workers without busy-waiting.
//!
//! Lock ordering: the `ready` counter lock is always acquired *before*
//! any deque lock, by both [`Pool::submit`] and the worker-side claim
//! path. That makes the counter an exact count of queued jobs at every
//! point where it is observed — a claimer can never pop a job whose
//! increment has not landed yet (which would underflow the counter),
//! and a submitter can never publish a job a parked worker misses.
//!
//! [`Pool::run_batch`] is the engine's workhorse: it submits a batch,
//! catches panics per job (a poisoned query fails alone, the pool keeps
//! draining), and returns results **in submission order** regardless of
//! completion order or worker count — the basis of the engine's
//! determinism guarantee.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Count of queued-but-unclaimed jobs; guards the condvar.
    ready: Mutex<usize>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Round-robin submission cursor.
    cursor: AtomicUsize,
}

/// The pool. Dropping it shuts the workers down (pending jobs are still
/// drained first — see `Drop`).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Pool {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            ready: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
        });
        let workers = (0..jobs)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serval-engine-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn engine worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job.
    pub fn submit(&self, job: Job) {
        let n = self.shared.locals.len();
        let slot = self.shared.cursor.fetch_add(1, Ordering::Relaxed) % n;
        // Push and increment under the ready lock (ready → deque order,
        // matching `grab`) so no claimer can pop the job before the
        // counter accounts for it.
        let mut ready = self.shared.ready.lock().unwrap();
        self.shared.locals[slot].lock().unwrap().push_back(job);
        *ready += 1;
        drop(ready);
        self.shared.cv.notify_one();
    }

    /// Runs a batch of tasks and returns their results in submission
    /// order. A panicking task yields `Err(panic message)` for its slot
    /// only; the rest of the batch completes normally.
    pub fn run_batch<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<Result<T, String>> {
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(task)).map_err(panic_message);
                let _ = tx.send((i, r));
            }));
        }
        drop(tx);
        let mut out: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rx.recv().expect("engine worker dropped a batch result");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every batch slot reports exactly once"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(job) = grab(shared, me) {
            job();
            continue;
        }
        let mut ready = shared.ready.lock().unwrap();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                // Drain anything still queued before exiting so a
                // shutdown never strands submitted work.
                drop(ready);
                while let Some(job) = grab(shared, me) {
                    job();
                }
                return;
            }
            if *ready > 0 {
                break;
            }
            let (guard, _timeout) = shared
                .cv
                .wait_timeout(ready, Duration::from_millis(50))
                .unwrap();
            ready = guard;
        }
    }
}

/// Claims one job: own deque LIFO, then injector, then steal FIFO.
///
/// Holds the ready lock across the whole claim (ready → deque order,
/// matching `submit`): while we hold it no push or rival pop can land,
/// so a nonzero counter guarantees the scan finds a job, and the
/// decrement pairs exactly with the pop that earned it.
fn grab(shared: &Shared, me: usize) -> Option<Job> {
    let mut ready = shared.ready.lock().unwrap();
    if *ready == 0 {
        return None;
    }
    let job = shared.locals[me]
        .lock()
        .unwrap()
        .pop_back()
        .or_else(|| shared.injector.lock().unwrap().pop_front())
        .or_else(|| {
            shared
                .locals
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != me)
                .find_map(|(_, other)| other.lock().unwrap().pop_front())
        });
    debug_assert!(job.is_some(), "ready counter out of sync with deques");
    if job.is_some() {
        *ready -= 1;
    }
    job
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "query panicked".to_string()
    }
}
