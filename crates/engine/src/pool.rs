//! A from-scratch work-stealing thread pool (std-only), with a pluggable
//! executor seam for deterministic simulation.
//!
//! Jobs are pushed round-robin onto per-worker deques; an idle worker
//! first drains its own deque LIFO (cache-friendly), then the shared
//! injector, then steals FIFO from its siblings, so an imbalanced batch
//! still keeps every core busy. A `Mutex<usize>`/`Condvar` pair counts
//! unclaimed jobs and parks idle workers without busy-waiting.
//!
//! Lock ordering: the `ready` counter lock is always acquired *before*
//! any deque lock, by both [`Pool::submit`] and the worker-side claim
//! path. That makes the counter an exact count of queued jobs at every
//! point where it is observed — a claimer can never pop a job whose
//! increment has not landed yet (which would underflow the counter),
//! and a submitter can never publish a job a parked worker misses.
//!
//! ## The executor seam
//!
//! The queue discipline above ([`Shared`]: submit, grab, steal, the
//! ready counter) is one body of code with **two drivers**:
//!
//! - **Threads** (production): `jobs` OS workers loop over
//!   [`grab`]/park, racing each other for real.
//! - **Sim** (active when a [`serval_check::sim`] context is installed
//!   at construction): no workers race. A single scheduler loop draws
//!   *which virtual worker steps next* from the sim's seeded decision
//!   stream, claims through the very same [`grab`] path (so the
//!   lock-order and counter invariants are exercised, not bypassed),
//!   and executes the claimed job to completion on one dedicated runner
//!   thread — dedicated so the job's `reset_ctx()` cannot destroy the
//!   submitting thread's term context. Every step is appended to the
//!   sim trace: same seed ⇒ same claim order ⇒ same trace.
//!
//! Buggify points ([`serval_check::sim::buggify`]) sit on the shared
//! paths — submit-to-injector and steal-first claim reordering — so a
//! hostile sim run visits queue states a healthy schedule never would.
//!
//! [`Pool::run_batch`] is the engine's workhorse: it submits a batch,
//! catches panics per job (a poisoned query fails alone, the pool keeps
//! draining), and returns results **in submission order** regardless of
//! completion order or worker count — the basis of the engine's
//! determinism guarantee.

use serval_check::sim;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Count of queued-but-unclaimed jobs; guards the condvar.
    ready: Mutex<usize>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Round-robin submission cursor.
    cursor: AtomicUsize,
}

/// How the shared queue discipline is driven: racing OS threads, or the
/// sim's single-threaded seeded scheduler.
enum Exec {
    Threads(Vec<JoinHandle<()>>),
    Sim(SimExec),
}

/// The simulated executor: a runner thread that executes one chosen job
/// at a time, and a worker count for the scheduler to draw from.
struct SimExec {
    workers: usize,
    /// Jobs chosen by the scheduler go down this channel...
    run_tx: Mutex<Option<mpsc::Sender<Job>>>,
    /// ...and completion comes back here before the next step is chosen,
    /// so job execution is strictly serialized.
    done_rx: Mutex<mpsc::Receiver<()>>,
    runner: Mutex<Option<JoinHandle<()>>>,
}

/// The pool. Dropping it shuts the workers down (pending jobs are still
/// drained first — see `Drop`).
pub struct Pool {
    shared: Arc<Shared>,
    exec: Exec,
}

impl Pool {
    /// Spawns a pool with `jobs` workers (clamped to at least 1). If a
    /// simulation context is active, no workers are spawned: the pool
    /// becomes a deterministic single-threaded executor over the same
    /// queue discipline, scheduled by the sim's seed.
    pub fn new(jobs: usize) -> Pool {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            ready: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
        });
        if sim::active() {
            let (run_tx, run_rx) = mpsc::channel::<Job>();
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let runner = std::thread::Builder::new()
                .name("serval-sim-runner".to_string())
                .spawn(move || {
                    for job in run_rx {
                        job();
                        if done_tx.send(()).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn sim runner");
            return Pool {
                shared,
                exec: Exec::Sim(SimExec {
                    workers: jobs,
                    run_tx: Mutex::new(Some(run_tx)),
                    done_rx: Mutex::new(done_rx),
                    runner: Mutex::new(Some(runner)),
                }),
            };
        }
        let workers = (0..jobs)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serval-engine-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn engine worker")
            })
            .collect();
        Pool { shared, exec: Exec::Threads(workers) }
    }

    /// Number of (possibly virtual) worker slots.
    pub fn jobs(&self) -> usize {
        match &self.exec {
            Exec::Threads(w) => w.len(),
            Exec::Sim(s) => s.workers,
        }
    }

    /// Whether this pool is the simulated executor.
    pub fn simulated(&self) -> bool {
        matches!(self.exec, Exec::Sim(_))
    }

    /// Enqueues one job. Under simulation the job is only queued; it
    /// runs when the scheduler drives the queue (see [`Pool::drain_sim`]
    /// and [`Pool::run_batch`]).
    pub fn submit(&self, job: Job) {
        let n = self.shared.locals.len();
        let slot = self.shared.cursor.fetch_add(1, Ordering::Relaxed) % n;
        // Rare-branch injection: a submitter that cannot reach its local
        // deque (imagine contention backoff) publishes to the shared
        // injector instead — legal under the claim order, and it forces
        // the injector path to carry real traffic in hostile sims.
        let to_injector = sim::buggify("pool-submit-injector");
        // Push and increment under the ready lock (ready → deque order,
        // matching `grab`) so no claimer can pop the job before the
        // counter accounts for it.
        let mut ready = self.shared.ready.lock().unwrap();
        if to_injector {
            self.shared.injector.lock().unwrap().push_back(job);
        } else {
            self.shared.locals[slot].lock().unwrap().push_back(job);
        }
        *ready += 1;
        drop(ready);
        self.shared.cv.notify_one();
    }

    /// Runs a batch of tasks and returns their results in submission
    /// order. A panicking task yields `Err(panic message)` for its slot
    /// only; the rest of the batch completes normally.
    pub fn run_batch<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<Result<T, String>> {
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(task)).map_err(panic_message);
                let _ = tx.send((i, r));
            }));
        }
        drop(tx);
        if let Exec::Sim(s) = &self.exec {
            // The scheduler IS this call: drive the queue until every
            // submitted job (ours and any stragglers) has executed.
            drive_sim(&self.shared, s);
        }
        let mut out: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rx.recv().expect("engine worker dropped a batch result");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every batch slot reports exactly once"))
            .collect()
    }

    /// Executes everything currently queued (simulated pools only; a
    /// no-op for threaded pools, whose workers drain on their own).
    pub fn drain_sim(&self) {
        if let Exec::Sim(s) = &self.exec {
            drive_sim(&self.shared, s);
        }
    }
}

/// The sim scheduler: while jobs are queued, draw a virtual worker from
/// the decision stream, claim through the shared [`grab`] path, and run
/// the job to completion on the runner thread. Strict alternation
/// (choose → run → wait) keeps every draw — scheduling, buggify, IO
/// fault — in a seed-determined total order.
fn drive_sim(shared: &Shared, s: &SimExec) {
    loop {
        if *shared.ready.lock().unwrap() == 0 {
            return;
        }
        let me = sim::choose(shared.locals.len());
        let Some((job, source)) = grab(shared, me) else {
            return;
        };
        sim::trace_step(me, source);
        let tx = s.run_tx.lock().unwrap();
        let tx = tx.as_ref().expect("sim runner alive while pool alive");
        tx.send(job).expect("sim runner accepts jobs");
        s.done_rx
            .lock()
            .unwrap()
            .recv()
            .expect("sim runner reports completion");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &mut self.exec {
            Exec::Threads(workers) => {
                self.shared.cv.notify_all();
                for w in workers.drain(..) {
                    let _ = w.join();
                }
            }
            Exec::Sim(s) => {
                // Parity with the threaded drop: drain queued jobs
                // first, then retire the runner.
                drive_sim(&self.shared, s);
                drop(s.run_tx.lock().unwrap().take());
                if let Some(h) = s.runner.lock().unwrap().take() {
                    let _ = h.join();
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some((job, _source)) = grab(shared, me) {
            job();
            continue;
        }
        let mut ready = shared.ready.lock().unwrap();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                // Drain anything still queued before exiting so a
                // shutdown never strands submitted work.
                drop(ready);
                while let Some((job, _)) = grab(shared, me) {
                    job();
                }
                return;
            }
            if *ready > 0 {
                break;
            }
            let (guard, _timeout) = shared
                .cv
                .wait_timeout(ready, Duration::from_millis(50))
                .unwrap();
            ready = guard;
        }
    }
}

/// Claims one job: own deque LIFO, then injector, then steal FIFO.
/// Returns where the job came from, for the sim trace.
///
/// Holds the ready lock across the whole claim (ready → deque order,
/// matching `submit`): while we hold it no push or rival pop can land,
/// so a nonzero counter guarantees the scan finds a job, and the
/// decrement pairs exactly with the pop that earned it.
fn grab(shared: &Shared, me: usize) -> Option<(Job, &'static str)> {
    let mut ready = shared.ready.lock().unwrap();
    if *ready == 0 {
        return None;
    }
    // Rare-branch injection: a claimer that loses its own deque's lock
    // race (in a real pool, a sibling mid-steal) scans in steal-first
    // order. Same set of deques, different order — the counter
    // invariant must hold either way.
    let steal_first = sim::buggify("pool-claim-steal-first");
    let own = |src: &mut Option<&'static str>| {
        let j = shared.locals[me].lock().unwrap().pop_back();
        if j.is_some() {
            *src = Some("own");
        }
        j
    };
    let injector = |src: &mut Option<&'static str>| {
        let j = shared.injector.lock().unwrap().pop_front();
        if j.is_some() {
            *src = Some("injector");
        }
        j
    };
    let steal = |src: &mut Option<&'static str>| {
        let j = shared
            .locals
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != me)
            .find_map(|(_, other)| other.lock().unwrap().pop_front());
        if j.is_some() {
            *src = Some("steal");
        }
        j
    };
    let mut source = None;
    let job = if steal_first {
        injector(&mut source)
            .or_else(|| steal(&mut source))
            .or_else(|| own(&mut source))
    } else {
        own(&mut source)
            .or_else(|| injector(&mut source))
            .or_else(|| steal(&mut source))
    };
    debug_assert!(job.is_some(), "ready counter out of sync with deques");
    if job.is_some() {
        *ready -= 1;
    }
    job.map(|j| (j, source.expect("claimed job has a source")))
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "query panicked".to_string()
    }
}
