//! Query normal form: the portable, alpha-invariant serialization of a
//! verification query.
//!
//! Terms live in a *thread-local* hash-consed context (`smt::term`), so a
//! `TermId` means nothing on another thread. To discharge queries on pool
//! workers the engine re-serializes the term DAG reachable from the
//! query's assertion roots into a self-contained [`FormCore`]: nodes in
//! deterministic postorder, symbolic constants renumbered by first
//! encounter, uninterpreted functions likewise. The byte serialization of
//! that core is the **cache key** — two queries that differ only in
//! variable creation order, variable names, or assumption order produce
//! identical keys, while any structural difference changes the bytes.
//!
//! Soundness: the key *is* the full serialization, so key equality
//! implies the queries are alpha-equivalent (same proof obligation). The
//! converse does not quite hold — assumption roots are ordered by a
//! per-root local key, and two distinct roots with identical local keys
//! keep their submission order, so symmetric queries may occasionally
//! miss the cache. A miss is only a wasted solve, never a wrong verdict.

use serval_smt::bv::SBool;
use serval_smt::solver::SolverConfig;
use serval_smt::term::{with_ctx, Ctx, Op, Sort, Term, TermId, UfId};
use std::collections::HashMap;

/// A verification query: prove `goal` under `assumptions`.
///
/// Build it on the thread that owns the terms, then hand it to
/// [`crate::Engine::submit_batch`].
pub struct Query {
    /// Human-readable label (becomes the theorem name in reports).
    pub label: String,
    /// Assumptions (path conditions, invariants, ...).
    pub assumptions: Vec<SBool>,
    /// The goal to prove.
    pub goal: SBool,
    /// Solver configuration (budget + search parameters).
    pub cfg: SolverConfig,
}

/// One node of the portable term DAG. `children` index into
/// [`FormCore::nodes`]; `Op::Var`/`Op::UfApply` payloads are *canonical*
/// indices, not thread-local ordinals.
#[derive(Clone, Debug, PartialEq)]
pub struct FormNode {
    /// The operator (with canonicalized payload for vars and UFs).
    pub op: Op,
    /// Children as indices into the node array (always smaller than the
    /// node's own index: the array is in postorder).
    pub children: Vec<u32>,
    /// The node's sort.
    pub sort: Sort,
}

/// The portable normal form of a query: everything a worker thread needs
/// to rebuild and solve it in a fresh term context.
#[derive(Clone, Debug)]
pub struct FormCore {
    /// Term DAG in deterministic postorder.
    pub nodes: Vec<FormNode>,
    /// Assertion roots (assumptions plus negated goal), deduplicated and
    /// canonically ordered, as indices into `nodes`.
    pub roots: Vec<u32>,
    /// Sort of each canonical symbolic constant.
    pub var_sorts: Vec<Sort>,
    /// Signature (argument widths, result width) of each canonical UF.
    pub uf_sigs: Vec<(Vec<u32>, u32)>,
    /// True when some root is the constant `false`: the query is proved
    /// without solving (mirrors the `check` fast path).
    pub trivially_unsat: bool,
}

/// Where a canonical symbolic constant came from in the submitting
/// thread, so counterexample models can be translated back.
#[derive(Clone, Debug)]
pub struct VarOrigin {
    /// The original term id (valid only on the submitting thread).
    pub term: TermId,
    /// Sort of the constant.
    pub sort: Sort,
}

/// Caller-side translation table from canonical indices back to the
/// submitting thread's term context.
#[derive(Clone, Debug, Default)]
pub struct BackMap {
    /// Canonical var index → original constant.
    pub vars: Vec<VarOrigin>,
    /// Canonical UF index → original UF id.
    pub ufs: Vec<UfId>,
}

/// A query reduced to its normal form plus the caller-side back map.
pub struct Prepared {
    /// The portable core (shared with workers).
    pub core: FormCore,
    /// Canonical-index → caller-term translation.
    pub backmap: BackMap,
    /// Cache key: the byte serialization of `core`.
    pub key: Vec<u8>,
}

/// Postorder-normalization state shared by [`prepare`] (one root set) and
/// [`prepare_session`] (base roots plus a stream of negated-goal roots):
/// one global numbering across every root fed in, with vars and UFs
/// renumbered by first encounter.
#[derive(Default)]
struct Normalizer {
    node_of: HashMap<TermId, u32>,
    nodes: Vec<FormNode>,
    var_of: HashMap<u32, u32>,
    uf_of: HashMap<u32, u32>,
    backmap: BackMap,
    var_sorts: Vec<Sort>,
    uf_sigs: Vec<(Vec<u32>, u32)>,
}

impl Normalizer {
    /// Serializes the DAG under `root` (skipping already-numbered nodes)
    /// and returns the root's node index.
    fn add_root(&mut self, root: TermId) -> u32 {
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if self.node_of.contains_key(&t) {
                stack.pop();
                continue;
            }
            let (op, children, sort) = fetch(t);
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|c| !self.node_of.contains_key(c))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let op = match op {
                Op::Var(ord) => {
                    let k = match self.var_of.get(&ord) {
                        Some(&k) => k,
                        None => {
                            let k = self.var_sorts.len() as u32;
                            self.backmap.vars.push(VarOrigin { term: t, sort });
                            self.var_sorts.push(sort);
                            self.var_of.insert(ord, k);
                            k
                        }
                    };
                    Op::Var(k)
                }
                Op::UfApply(uf) => {
                    let k = match self.uf_of.get(&uf.0) {
                        Some(&k) => k,
                        None => {
                            let k = self.uf_sigs.len() as u32;
                            let (args, result) =
                                with_ctx(|c| (c.uf_sig(uf).args.clone(), c.uf_sig(uf).result));
                            self.backmap.ufs.push(uf);
                            self.uf_sigs.push((args, result));
                            self.uf_of.insert(uf.0, k);
                            k
                        }
                    };
                    Op::UfApply(UfId(k))
                }
                other => other,
            };
            let children: Vec<u32> = children.iter().map(|c| self.node_of[c]).collect();
            self.node_of.insert(t, self.nodes.len() as u32);
            self.nodes.push(FormNode { op, children, sort });
            stack.pop();
        }
        self.node_of[&root]
    }
}

/// Deduplicates the non-trivial roots in `roots` and orders them by their
/// per-root alpha-invariant key, so submission order cannot influence the
/// normal form.
fn canonical_roots(roots: impl Iterator<Item = SBool>) -> Vec<TermId> {
    let mut uniq: Vec<TermId> = Vec::new();
    for a in roots {
        // Constant-true roots constrain nothing; drop them so queries
        // differing only in vacuous assumptions normalize identically.
        if !a.is_true() && !uniq.contains(&a.0) {
            uniq.push(a.0);
        }
    }
    let mut keyed: Vec<(Vec<u8>, TermId)> =
        uniq.into_iter().map(|r| (local_key(r), r)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Extracts the normal form of `assumptions ∧ ¬goal`.
///
/// Must run on the thread that owns the terms.
pub fn prepare(assumptions: &[SBool], goal: SBool) -> Prepared {
    let negated_goal = !goal;
    let all = || assumptions.iter().copied().chain([negated_goal]);
    let trivially_unsat = all().any(|a| a.is_false());
    let mut nz = Normalizer::default();
    let root_ids: Vec<u32> = canonical_roots(all())
        .into_iter()
        .map(|r| nz.add_root(r))
        .collect();
    let core = FormCore {
        nodes: nz.nodes,
        roots: root_ids,
        var_sorts: nz.var_sorts,
        uf_sigs: nz.uf_sigs,
        trivially_unsat,
    };
    let key = cache_key(&core);
    Prepared { core, backmap: nz.backmap, key }
}

/// The portable normal form of an incremental discharge session: the
/// shared assumption set (as canonically ordered base roots) plus one
/// *negated-goal* root per goal, all sharing a single node array so the
/// worker materializes every term exactly once.
#[derive(Clone, Debug)]
pub struct SessionCore {
    /// Term DAG in deterministic postorder (base roots first).
    pub nodes: Vec<FormNode>,
    /// Shared assumption roots, deduplicated and canonically ordered.
    pub base_roots: Vec<u32>,
    /// One entry per goal, in submission order: the node index of the
    /// goal's *negation* (what the session solver asserts behind the
    /// goal's activation literal).
    pub goal_roots: Vec<u32>,
    /// Sort of each canonical symbolic constant.
    pub var_sorts: Vec<Sort>,
    /// Signature (argument widths, result width) of each canonical UF.
    pub uf_sigs: Vec<(Vec<u32>, u32)>,
}

/// A session reduced to its portable core plus the caller-side back map.
///
/// There is deliberately no cache key here: sessions are never cached as
/// a unit — the engine consults the two-tier cache per sub-query (using
/// each sub-query's own [`Prepared::key`]) before deciding what reaches
/// a session at all.
pub struct SessionPrepared {
    /// The portable core (shared with the worker).
    pub core: SessionCore,
    /// Canonical-index → caller-term translation, covering every var and
    /// UF reachable from the base *or any* goal.
    pub backmap: BackMap,
}

/// Extracts the portable form of a session: `assumptions` shared by all
/// of `goals` (each goal is negated here, on the caller thread, so the
/// worker can assert it directly).
///
/// Must run on the thread that owns the terms.
pub fn prepare_session(assumptions: &[SBool], goals: &[SBool]) -> SessionPrepared {
    let mut nz = Normalizer::default();
    let base_roots: Vec<u32> = canonical_roots(assumptions.iter().copied())
        .into_iter()
        .map(|r| nz.add_root(r))
        .collect();
    let goal_roots: Vec<u32> = goals.iter().map(|&g| nz.add_root((!g).0)).collect();
    SessionPrepared {
        core: SessionCore {
            nodes: nz.nodes,
            base_roots,
            goal_roots,
            var_sorts: nz.var_sorts,
            uf_sigs: nz.uf_sigs,
        },
        backmap: nz.backmap,
    }
}

/// Rebuilds a [`FormCore`] inside the *current* thread's term context.
pub struct Rebuilt {
    /// The assertion roots, ready for `smt::check_full`.
    pub roots: Vec<SBool>,
    /// Canonical var index → term in this thread's context.
    pub var_terms: Vec<TermId>,
    /// Canonical UF index → UF id in this thread's context.
    pub uf_ids: Vec<UfId>,
}

/// Interns a portable node array into `c`, declaring canonical UFs and
/// vars along the way. Returns (node index → term, var terms, UF ids).
fn materialize(
    c: &mut Ctx,
    nodes: &[FormNode],
    var_sorts: &[Sort],
    uf_sigs: &[(Vec<u32>, u32)],
) -> (Vec<TermId>, Vec<TermId>, Vec<UfId>) {
    let uf_ids: Vec<UfId> = uf_sigs
        .iter()
        .enumerate()
        .map(|(i, (args, result))| c.declare_uf(&format!("uf{i}"), args.clone(), *result))
        .collect();
    let mut var_terms: Vec<TermId> = vec![TermId(0); var_sorts.len()];
    let mut ids: Vec<TermId> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let children: Vec<TermId> = node.children.iter().map(|&i| ids[i as usize]).collect();
        let id = match node.op {
            // Each canonical var appears as exactly one node, so this
            // assigns every `var_terms` slot exactly once.
            Op::Var(k) => {
                let t = c.fresh_var(node.sort, &format!("q{k}"));
                var_terms[k as usize] = t;
                t
            }
            Op::UfApply(UfId(k)) => c.intern(Term {
                op: Op::UfApply(uf_ids[k as usize]),
                children,
                sort: node.sort,
            }),
            ref op => c.intern(Term {
                op: op.clone(),
                children,
                sort: node.sort,
            }),
        };
        ids.push(id);
    }
    (ids, var_terms, uf_ids)
}

/// Materializes the portable form as real terms on the current thread.
pub fn rebuild(core: &FormCore) -> Rebuilt {
    with_ctx(|c| {
        let (ids, var_terms, uf_ids) =
            materialize(c, &core.nodes, &core.var_sorts, &core.uf_sigs);
        Rebuilt {
            roots: core.roots.iter().map(|&r| SBool(ids[r as usize])).collect(),
            var_terms,
            uf_ids,
        }
    })
}

/// A [`SessionCore`] rebuilt inside the current thread's term context.
pub struct SessionRebuilt {
    /// The shared assumptions, ready for [`serval_smt::Session::assume`].
    pub base: Vec<SBool>,
    /// The *negated* goals, in submission order, ready for
    /// [`serval_smt::Session::solve_negated`].
    pub neg_goals: Vec<SBool>,
    /// Canonical var index → term in this thread's context.
    pub var_terms: Vec<TermId>,
    /// Canonical UF index → UF id in this thread's context.
    pub uf_ids: Vec<UfId>,
}

/// Materializes a session core as real terms on the current thread.
pub fn rebuild_session(core: &SessionCore) -> SessionRebuilt {
    with_ctx(|c| {
        let (ids, var_terms, uf_ids) =
            materialize(c, &core.nodes, &core.var_sorts, &core.uf_sigs);
        SessionRebuilt {
            base: core.base_roots.iter().map(|&r| SBool(ids[r as usize])).collect(),
            neg_goals: core
                .goal_roots
                .iter()
                .map(|&r| SBool(ids[r as usize]))
                .collect(),
            var_terms,
            uf_ids,
        }
    })
}

/// Per-root alpha-invariant key, used only to order assertion roots.
fn local_key(root: TermId) -> Vec<u8> {
    let mut local: HashMap<TermId, u32> = HashMap::new();
    let mut var_of: HashMap<u32, u32> = HashMap::new();
    let mut uf_of: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(&t) = stack.last() {
        if local.contains_key(&t) {
            stack.pop();
            continue;
        }
        let (op, children, sort) = fetch(t);
        let pending: Vec<TermId> = children
            .iter()
            .copied()
            .filter(|c| !local.contains_key(c))
            .collect();
        if !pending.is_empty() {
            stack.extend(pending);
            continue;
        }
        let op = match op {
            Op::Var(ord) => {
                let n = var_of.len() as u32;
                Op::Var(*var_of.entry(ord).or_insert(n))
            }
            Op::UfApply(uf) => {
                let n = uf_of.len() as u32;
                Op::UfApply(UfId(*uf_of.entry(uf.0).or_insert(n)))
            }
            other => other,
        };
        let ids: Vec<u32> = children.iter().map(|c| local[c]).collect();
        encode_node(&op, &ids, sort, &mut out);
        local.insert(t, local.len() as u32);
        stack.pop();
    }
    out
}

/// The cache key: a versioned, deterministic byte serialization of the
/// whole core. The solver configuration is deliberately *not* part of
/// the key — only definitive verdicts (proved / refuted) are cached, and
/// those are independent of search parameters.
pub fn cache_key(core: &FormCore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"SQ1\0");
    push_u32(&mut out, core.nodes.len() as u32);
    for n in &core.nodes {
        encode_node(&n.op, &n.children, n.sort, &mut out);
    }
    push_u32(&mut out, core.roots.len() as u32);
    for &r in &core.roots {
        push_u32(&mut out, r);
    }
    push_u32(&mut out, core.var_sorts.len() as u32);
    for &s in &core.var_sorts {
        encode_sort(s, &mut out);
    }
    push_u32(&mut out, core.uf_sigs.len() as u32);
    for (args, result) in &core.uf_sigs {
        push_u32(&mut out, args.len() as u32);
        for &a in args {
            push_u32(&mut out, a);
        }
        push_u32(&mut out, *result);
    }
    out.push(core.trivially_unsat as u8);
    out
}

/// Flattens the top-level `And` structure of `goal` into its conjuncts,
/// in left-to-right order; returns `[goal]` when the goal is not a
/// conjunction. Splitting is the engine-side counterpart of the paper's
/// split-cases: proving every conjunct under the same assumptions proves
/// the conjunction, and a countermodel of any conjunct (which satisfies
/// the assumptions) refutes it, so the engine can discharge conjuncts as
/// independent parallel queries and recombine the verdicts.
///
/// `cap` bounds the number of conjuncts: once reached, remaining
/// subtrees are kept whole instead of being descended into.
///
/// Must run on the thread that owns the terms.
pub fn split_goal(goal: SBool, cap: usize) -> Vec<SBool> {
    let mut out: Vec<SBool> = Vec::new();
    let mut stack = vec![goal.0];
    while let Some(t) = stack.pop() {
        let (op, children, _) = fetch(t);
        if matches!(op, Op::And) && out.len() + stack.len() + children.len() <= cap {
            // Reversed push keeps the conjuncts in left-to-right order.
            for &ch in children.iter().rev() {
                stack.push(ch);
            }
        } else {
            out.push(SBool(t));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Wire form: the network-portable serialization of a query.
//
// The cache form above merges `assumptions ∧ ¬goal` into one root set,
// which is exactly what a solver wants but loses the assumption/goal
// distinction a *server* needs: the receiving engine re-runs the full
// presolve/split/session pipeline, and those stages treat the goal
// specially. The wire core therefore keeps assumption roots and the
// (un-negated) goal root separate, and `wire_bytes`/`wire_from_bytes`
// give it a versioned, *validated* byte encoding — the decoder must
// survive arbitrary adversarial bytes, because it sits behind a TCP
// socket, so every structural invariant the builders establish
// (arities, sorts, widths, postorder child indices, var/UF consistency)
// is re-checked before a single term is interned.
// ---------------------------------------------------------------------------

/// The network-portable form of a query: assumption roots plus the
/// un-negated goal root over one shared postorder node array. The byte
/// encoding ([`wire_bytes`]) is alpha-invariant for the same reason the
/// cache key is, so servers can key routing and hot-query detection on
/// the raw frame bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct WireCore {
    /// Term DAG in deterministic postorder.
    pub nodes: Vec<FormNode>,
    /// Assumption roots (deduplicated, canonically ordered).
    pub asm_roots: Vec<u32>,
    /// The goal root (NOT negated — the server's engine negates it).
    pub goal_root: u32,
    /// Sort of each canonical symbolic constant.
    pub var_sorts: Vec<Sort>,
    /// Signature (argument widths, result width) of each canonical UF.
    pub uf_sigs: Vec<(Vec<u32>, u32)>,
}

/// A query reduced to wire form plus the client-side back map.
pub struct WirePrepared {
    /// The portable core.
    pub core: WireCore,
    /// Canonical-index → caller-term translation (for countermodels).
    pub backmap: BackMap,
}

/// Extracts the wire form of `(assumptions, goal)`.
///
/// Must run on the thread that owns the terms.
pub fn prepare_wire(assumptions: &[SBool], goal: SBool) -> WirePrepared {
    let mut nz = Normalizer::default();
    let asm_roots: Vec<u32> = canonical_roots(assumptions.iter().copied())
        .into_iter()
        .map(|r| nz.add_root(r))
        .collect();
    let goal_root = nz.add_root(goal.0);
    WirePrepared {
        core: WireCore {
            nodes: nz.nodes,
            asm_roots,
            goal_root,
            var_sorts: nz.var_sorts,
            uf_sigs: nz.uf_sigs,
        },
        backmap: nz.backmap,
    }
}

/// A [`WireCore`] rebuilt inside the current thread's term context.
pub struct WireRebuilt {
    /// The assumptions, as real terms.
    pub assumptions: Vec<SBool>,
    /// The goal, as a real term.
    pub goal: SBool,
    /// Canonical-index → this-thread translation, so a server can
    /// project solver models back onto the *wire* numbering before
    /// shipping them to the client.
    pub backmap: BackMap,
}

/// Materializes a wire core as real terms on the current thread.
pub fn rebuild_wire(core: &WireCore) -> WireRebuilt {
    with_ctx(|c| {
        let (ids, var_terms, uf_ids) =
            materialize(c, &core.nodes, &core.var_sorts, &core.uf_sigs);
        let backmap = BackMap {
            vars: var_terms
                .iter()
                .zip(&core.var_sorts)
                .map(|(&term, &sort)| VarOrigin { term, sort })
                .collect(),
            ufs: uf_ids,
        };
        WireRebuilt {
            assumptions: core.asm_roots.iter().map(|&r| SBool(ids[r as usize])).collect(),
            goal: SBool(ids[core.goal_root as usize]),
            backmap,
        }
    })
}

/// Wire encoding version tag. Bump when the node encoding changes.
const WIRE_MAGIC: &[u8; 4] = b"SW1\0";

/// Serializes a wire core. Layout (all integers little-endian):
/// magic, var sorts, UF signatures, nodes, assumption roots, goal root —
/// declarations before nodes so [`wire_from_bytes`] validates in one
/// pass.
pub fn wire_bytes(core: &WireCore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(WIRE_MAGIC);
    push_u32(&mut out, core.var_sorts.len() as u32);
    for &s in &core.var_sorts {
        encode_sort(s, &mut out);
    }
    push_u32(&mut out, core.uf_sigs.len() as u32);
    for (args, result) in &core.uf_sigs {
        push_u32(&mut out, args.len() as u32);
        for &a in args {
            push_u32(&mut out, a);
        }
        push_u32(&mut out, *result);
    }
    push_u32(&mut out, core.nodes.len() as u32);
    for n in &core.nodes {
        encode_node(&n.op, &n.children, n.sort, &mut out);
    }
    push_u32(&mut out, core.asm_roots.len() as u32);
    for &r in &core.asm_roots {
        push_u32(&mut out, r);
    }
    push_u32(&mut out, core.goal_root);
    out
}

/// Little-endian cursor over untrusted bytes. Every read is
/// bounds-checked; element counts are validated against the remaining
/// byte budget before any allocation, so a hostile length field cannot
/// force an oversized reservation.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Result<u8, &'static str> {
        let v = *self.b.get(self.at).ok_or("truncated")?;
        self.at += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, &'static str> {
        let s = self.b.get(self.at..self.at + 4).ok_or("truncated")?;
        self.at += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, &'static str> {
        let s = self.b.get(self.at..self.at + 16).ok_or("truncated")?;
        self.at += 16;
        Ok(u128::from_le_bytes(s.try_into().unwrap()))
    }
    /// Reads a count whose elements occupy at least `min_elem` bytes
    /// each, rejecting counts the remaining buffer cannot possibly hold.
    fn count(&mut self, min_elem: usize) -> Result<usize, &'static str> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.b.len() - self.at {
            return Err("count overruns buffer");
        }
        Ok(n)
    }
    fn sort(&mut self) -> Result<Sort, &'static str> {
        match self.u8()? {
            0 => Ok(Sort::Bool),
            1 => {
                let w = self.u32()?;
                if !(1..=128).contains(&w) {
                    return Err("bitvector width out of range");
                }
                Ok(Sort::BitVec(w))
            }
            _ => Err("unknown sort tag"),
        }
    }
}

fn bv_width(s: Sort) -> Result<u32, &'static str> {
    match s {
        Sort::BitVec(w) => Ok(w),
        Sort::Bool => Err("expected bitvector sort"),
    }
}

/// Checks one decoded node against the invariants the term builders
/// establish: arity, child sorts, and result sort per operator.
fn check_node(
    op: &Op,
    children: &[u32],
    sort: Sort,
    sorts: &[Sort],
    var_sorts: &[Sort],
    uf_sigs: &[(Vec<u32>, u32)],
) -> Result<(), &'static str> {
    let child = |i: usize| -> Sort { sorts[children[i] as usize] };
    let arity = |n: usize| -> Result<(), &'static str> {
        if children.len() == n {
            Ok(())
        } else {
            Err("operator arity mismatch")
        }
    };
    match op {
        Op::BoolConst(_) => {
            arity(0)?;
            if sort != Sort::Bool {
                return Err("bool constant must have Bool sort");
            }
        }
        Op::BvConst(v) => {
            arity(0)?;
            let w = bv_width(sort)?;
            if w < 128 && *v >> w != 0 {
                return Err("bitvector constant exceeds its width");
            }
        }
        Op::Var(k) => {
            arity(0)?;
            let vs = var_sorts.get(*k as usize).ok_or("var index out of range")?;
            if *vs != sort {
                return Err("var sort mismatch");
            }
        }
        Op::Not => {
            arity(1)?;
            if sort != Sort::Bool || child(0) != Sort::Bool {
                return Err("Not must be Bool over Bool");
            }
        }
        Op::And | Op::Or => {
            if children.len() < 2 {
                return Err("And/Or needs at least two children");
            }
            if sort != Sort::Bool || (0..children.len()).any(|i| child(i) != Sort::Bool) {
                return Err("And/Or must be Bool over Bools");
            }
        }
        Op::Xor | Op::Iff => {
            arity(2)?;
            if sort != Sort::Bool || child(0) != Sort::Bool || child(1) != Sort::Bool {
                return Err("Xor/Iff must be Bool over Bools");
            }
        }
        Op::IteBool => {
            arity(3)?;
            if sort != Sort::Bool
                || child(0) != Sort::Bool
                || child(1) != Sort::Bool
                || child(2) != Sort::Bool
            {
                return Err("IteBool must be Bool over Bools");
            }
        }
        Op::Eq | Op::Ult | Op::Ule | Op::Slt | Op::Sle => {
            arity(2)?;
            let w0 = bv_width(child(0))?;
            let w1 = bv_width(child(1))?;
            if sort != Sort::Bool || w0 != w1 {
                return Err("predicate needs same-width bitvector children");
            }
        }
        Op::BvNot | Op::BvNeg => {
            arity(1)?;
            if bv_width(sort)? != bv_width(child(0))? {
                return Err("unary bitvector op width mismatch");
            }
        }
        Op::BvAnd
        | Op::BvOr
        | Op::BvXor
        | Op::BvAdd
        | Op::BvSub
        | Op::BvMul
        | Op::BvUdiv
        | Op::BvUrem
        | Op::BvShl
        | Op::BvLshr
        | Op::BvAshr => {
            arity(2)?;
            let w = bv_width(sort)?;
            if bv_width(child(0))? != w || bv_width(child(1))? != w {
                return Err("binary bitvector op width mismatch");
            }
        }
        Op::Concat => {
            arity(2)?;
            let w = bv_width(child(0))?
                .checked_add(bv_width(child(1))?)
                .ok_or("concat width overflow")?;
            if w > 128 || bv_width(sort)? != w {
                return Err("concat width mismatch");
            }
        }
        Op::Extract(hi, lo) => {
            arity(1)?;
            let w = bv_width(child(0))?;
            if lo > hi || *hi >= w || bv_width(sort)? != hi - lo + 1 {
                return Err("extract range invalid");
            }
        }
        Op::ZeroExt | Op::SignExt => {
            arity(1)?;
            if bv_width(sort)? < bv_width(child(0))? {
                return Err("extension narrows its operand");
            }
        }
        Op::IteBv => {
            arity(3)?;
            let w = bv_width(sort)?;
            if child(0) != Sort::Bool || bv_width(child(1))? != w || bv_width(child(2))? != w {
                return Err("IteBv must be Bool-guarded same-width bitvectors");
            }
        }
        Op::UfApply(UfId(k)) => {
            let (args, result) =
                uf_sigs.get(*k as usize).ok_or("UF index out of range")?;
            if children.len() != args.len() {
                return Err("UF arity mismatch");
            }
            for (i, &aw) in args.iter().enumerate() {
                if bv_width(child(i))? != aw {
                    return Err("UF argument width mismatch");
                }
            }
            if bv_width(sort)? != *result {
                return Err("UF result width mismatch");
            }
        }
    }
    Ok(())
}

/// Decodes and fully validates a wire core from untrusted bytes.
///
/// Success means the core satisfies every invariant `materialize`
/// assumes: postorder child indices, in-range var/UF references with
/// consistent sorts, builder-legal arities and widths, Bool roots. On
/// any violation the *whole* core is rejected — no partial decode.
pub fn wire_from_bytes(bytes: &[u8]) -> Result<WireCore, &'static str> {
    if bytes.len() < 4 || &bytes[..4] != WIRE_MAGIC {
        return Err("bad wire magic");
    }
    let mut rd = Rd { b: bytes, at: 4 };
    let n_vars = rd.count(1)?;
    let mut var_sorts = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        var_sorts.push(rd.sort()?);
    }
    let n_ufs = rd.count(8)?;
    let mut uf_sigs = Vec::with_capacity(n_ufs);
    for _ in 0..n_ufs {
        let n_args = rd.count(4)?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            let w = rd.u32()?;
            if !(1..=128).contains(&w) {
                return Err("UF argument width out of range");
            }
            args.push(w);
        }
        let result = rd.u32()?;
        if !(1..=128).contains(&result) {
            return Err("UF result width out of range");
        }
        uf_sigs.push((args, result));
    }
    let n_nodes = rd.count(6)?;
    let mut nodes: Vec<FormNode> = Vec::with_capacity(n_nodes);
    let mut sorts: Vec<Sort> = Vec::with_capacity(n_nodes);
    for idx in 0..n_nodes {
        let op = match rd.u8()? {
            0 => match rd.u8()? {
                0 => Op::BoolConst(false),
                1 => Op::BoolConst(true),
                _ => return Err("bool constant payload invalid"),
            },
            1 => Op::BvConst(rd.u128()?),
            2 => Op::Var(rd.u32()?),
            3 => Op::Not,
            4 => Op::And,
            5 => Op::Or,
            6 => Op::Xor,
            7 => Op::Iff,
            8 => Op::IteBool,
            9 => Op::Eq,
            10 => Op::Ult,
            11 => Op::Ule,
            12 => Op::Slt,
            13 => Op::Sle,
            14 => Op::BvNot,
            15 => Op::BvNeg,
            16 => Op::BvAnd,
            17 => Op::BvOr,
            18 => Op::BvXor,
            19 => Op::BvAdd,
            20 => Op::BvSub,
            21 => Op::BvMul,
            22 => Op::BvUdiv,
            23 => Op::BvUrem,
            24 => Op::BvShl,
            25 => Op::BvLshr,
            26 => Op::BvAshr,
            27 => Op::Concat,
            28 => {
                let hi = rd.u32()?;
                let lo = rd.u32()?;
                Op::Extract(hi, lo)
            }
            29 => Op::ZeroExt,
            30 => Op::SignExt,
            31 => Op::IteBv,
            32 => Op::UfApply(UfId(rd.u32()?)),
            _ => return Err("unknown operator tag"),
        };
        let sort = rd.sort()?;
        let n_children = rd.count(4)?;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            let c = rd.u32()?;
            if c as usize >= idx {
                return Err("child index breaks postorder");
            }
            children.push(c);
        }
        check_node(&op, &children, sort, &sorts, &var_sorts, &uf_sigs)?;
        sorts.push(sort);
        nodes.push(FormNode { op, children, sort });
    }
    let n_asm = rd.count(4)?;
    let mut asm_roots = Vec::with_capacity(n_asm);
    for _ in 0..n_asm {
        let r = rd.u32()?;
        if sorts.get(r as usize) != Some(&Sort::Bool) {
            return Err("assumption root must be an in-range Bool node");
        }
        asm_roots.push(r);
    }
    let goal_root = rd.u32()?;
    if sorts.get(goal_root as usize) != Some(&Sort::Bool) {
        return Err("goal root must be an in-range Bool node");
    }
    if rd.at != bytes.len() {
        return Err("trailing garbage after wire core");
    }
    Ok(WireCore { nodes, asm_roots, goal_root, var_sorts, uf_sigs })
}

fn fetch(t: TermId) -> (Op, Vec<TermId>, Sort) {
    with_ctx(|c| {
        let n = c.term(t);
        (n.op.clone(), n.children.clone(), n.sort)
    })
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Stable operator tags. Appending new operators is fine; renumbering
/// existing ones invalidates on-disk caches (bump the `SQ` version).
fn encode_node(op: &Op, children: &[u32], sort: Sort, out: &mut Vec<u8>) {
    match op {
        Op::BoolConst(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Op::BvConst(v) => {
            out.push(1);
            push_u128(out, *v);
        }
        Op::Var(k) => {
            out.push(2);
            push_u32(out, *k);
        }
        Op::Not => out.push(3),
        Op::And => out.push(4),
        Op::Or => out.push(5),
        Op::Xor => out.push(6),
        Op::Iff => out.push(7),
        Op::IteBool => out.push(8),
        Op::Eq => out.push(9),
        Op::Ult => out.push(10),
        Op::Ule => out.push(11),
        Op::Slt => out.push(12),
        Op::Sle => out.push(13),
        Op::BvNot => out.push(14),
        Op::BvNeg => out.push(15),
        Op::BvAnd => out.push(16),
        Op::BvOr => out.push(17),
        Op::BvXor => out.push(18),
        Op::BvAdd => out.push(19),
        Op::BvSub => out.push(20),
        Op::BvMul => out.push(21),
        Op::BvUdiv => out.push(22),
        Op::BvUrem => out.push(23),
        Op::BvShl => out.push(24),
        Op::BvLshr => out.push(25),
        Op::BvAshr => out.push(26),
        Op::Concat => out.push(27),
        Op::Extract(hi, lo) => {
            out.push(28);
            push_u32(out, *hi);
            push_u32(out, *lo);
        }
        Op::ZeroExt => out.push(29),
        Op::SignExt => out.push(30),
        Op::IteBv => out.push(31),
        Op::UfApply(UfId(k)) => {
            out.push(32);
            push_u32(out, *k);
        }
    }
    encode_sort(sort, out);
    push_u32(out, children.len() as u32);
    for &c in children {
        push_u32(out, c);
    }
}

fn encode_sort(s: Sort, out: &mut Vec<u8>) {
    match s {
        Sort::Bool => out.push(0),
        Sort::BitVec(w) => {
            out.push(1);
            push_u32(out, w);
        }
    }
}
