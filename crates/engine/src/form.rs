//! Query normal form: the portable, alpha-invariant serialization of a
//! verification query.
//!
//! Terms live in a *thread-local* hash-consed context (`smt::term`), so a
//! `TermId` means nothing on another thread. To discharge queries on pool
//! workers the engine re-serializes the term DAG reachable from the
//! query's assertion roots into a self-contained [`FormCore`]: nodes in
//! deterministic postorder, symbolic constants renumbered by first
//! encounter, uninterpreted functions likewise. The byte serialization of
//! that core is the **cache key** — two queries that differ only in
//! variable creation order, variable names, or assumption order produce
//! identical keys, while any structural difference changes the bytes.
//!
//! Soundness: the key *is* the full serialization, so key equality
//! implies the queries are alpha-equivalent (same proof obligation). The
//! converse does not quite hold — assumption roots are ordered by a
//! per-root local key, and two distinct roots with identical local keys
//! keep their submission order, so symmetric queries may occasionally
//! miss the cache. A miss is only a wasted solve, never a wrong verdict.

use serval_smt::bv::SBool;
use serval_smt::solver::SolverConfig;
use serval_smt::term::{with_ctx, Ctx, Op, Sort, Term, TermId, UfId};
use std::collections::HashMap;

/// A verification query: prove `goal` under `assumptions`.
///
/// Build it on the thread that owns the terms, then hand it to
/// [`crate::Engine::submit_batch`].
pub struct Query {
    /// Human-readable label (becomes the theorem name in reports).
    pub label: String,
    /// Assumptions (path conditions, invariants, ...).
    pub assumptions: Vec<SBool>,
    /// The goal to prove.
    pub goal: SBool,
    /// Solver configuration (budget + search parameters).
    pub cfg: SolverConfig,
}

/// One node of the portable term DAG. `children` index into
/// [`FormCore::nodes`]; `Op::Var`/`Op::UfApply` payloads are *canonical*
/// indices, not thread-local ordinals.
#[derive(Clone, Debug)]
pub struct FormNode {
    /// The operator (with canonicalized payload for vars and UFs).
    pub op: Op,
    /// Children as indices into the node array (always smaller than the
    /// node's own index: the array is in postorder).
    pub children: Vec<u32>,
    /// The node's sort.
    pub sort: Sort,
}

/// The portable normal form of a query: everything a worker thread needs
/// to rebuild and solve it in a fresh term context.
#[derive(Clone, Debug)]
pub struct FormCore {
    /// Term DAG in deterministic postorder.
    pub nodes: Vec<FormNode>,
    /// Assertion roots (assumptions plus negated goal), deduplicated and
    /// canonically ordered, as indices into `nodes`.
    pub roots: Vec<u32>,
    /// Sort of each canonical symbolic constant.
    pub var_sorts: Vec<Sort>,
    /// Signature (argument widths, result width) of each canonical UF.
    pub uf_sigs: Vec<(Vec<u32>, u32)>,
    /// True when some root is the constant `false`: the query is proved
    /// without solving (mirrors the `check` fast path).
    pub trivially_unsat: bool,
}

/// Where a canonical symbolic constant came from in the submitting
/// thread, so counterexample models can be translated back.
#[derive(Clone, Debug)]
pub struct VarOrigin {
    /// The original term id (valid only on the submitting thread).
    pub term: TermId,
    /// Sort of the constant.
    pub sort: Sort,
}

/// Caller-side translation table from canonical indices back to the
/// submitting thread's term context.
#[derive(Clone, Debug, Default)]
pub struct BackMap {
    /// Canonical var index → original constant.
    pub vars: Vec<VarOrigin>,
    /// Canonical UF index → original UF id.
    pub ufs: Vec<UfId>,
}

/// A query reduced to its normal form plus the caller-side back map.
pub struct Prepared {
    /// The portable core (shared with workers).
    pub core: FormCore,
    /// Canonical-index → caller-term translation.
    pub backmap: BackMap,
    /// Cache key: the byte serialization of `core`.
    pub key: Vec<u8>,
}

/// Postorder-normalization state shared by [`prepare`] (one root set) and
/// [`prepare_session`] (base roots plus a stream of negated-goal roots):
/// one global numbering across every root fed in, with vars and UFs
/// renumbered by first encounter.
#[derive(Default)]
struct Normalizer {
    node_of: HashMap<TermId, u32>,
    nodes: Vec<FormNode>,
    var_of: HashMap<u32, u32>,
    uf_of: HashMap<u32, u32>,
    backmap: BackMap,
    var_sorts: Vec<Sort>,
    uf_sigs: Vec<(Vec<u32>, u32)>,
}

impl Normalizer {
    /// Serializes the DAG under `root` (skipping already-numbered nodes)
    /// and returns the root's node index.
    fn add_root(&mut self, root: TermId) -> u32 {
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if self.node_of.contains_key(&t) {
                stack.pop();
                continue;
            }
            let (op, children, sort) = fetch(t);
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|c| !self.node_of.contains_key(c))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let op = match op {
                Op::Var(ord) => {
                    let k = match self.var_of.get(&ord) {
                        Some(&k) => k,
                        None => {
                            let k = self.var_sorts.len() as u32;
                            self.backmap.vars.push(VarOrigin { term: t, sort });
                            self.var_sorts.push(sort);
                            self.var_of.insert(ord, k);
                            k
                        }
                    };
                    Op::Var(k)
                }
                Op::UfApply(uf) => {
                    let k = match self.uf_of.get(&uf.0) {
                        Some(&k) => k,
                        None => {
                            let k = self.uf_sigs.len() as u32;
                            let (args, result) =
                                with_ctx(|c| (c.uf_sig(uf).args.clone(), c.uf_sig(uf).result));
                            self.backmap.ufs.push(uf);
                            self.uf_sigs.push((args, result));
                            self.uf_of.insert(uf.0, k);
                            k
                        }
                    };
                    Op::UfApply(UfId(k))
                }
                other => other,
            };
            let children: Vec<u32> = children.iter().map(|c| self.node_of[c]).collect();
            self.node_of.insert(t, self.nodes.len() as u32);
            self.nodes.push(FormNode { op, children, sort });
            stack.pop();
        }
        self.node_of[&root]
    }
}

/// Deduplicates the non-trivial roots in `roots` and orders them by their
/// per-root alpha-invariant key, so submission order cannot influence the
/// normal form.
fn canonical_roots(roots: impl Iterator<Item = SBool>) -> Vec<TermId> {
    let mut uniq: Vec<TermId> = Vec::new();
    for a in roots {
        // Constant-true roots constrain nothing; drop them so queries
        // differing only in vacuous assumptions normalize identically.
        if !a.is_true() && !uniq.contains(&a.0) {
            uniq.push(a.0);
        }
    }
    let mut keyed: Vec<(Vec<u8>, TermId)> =
        uniq.into_iter().map(|r| (local_key(r), r)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// Extracts the normal form of `assumptions ∧ ¬goal`.
///
/// Must run on the thread that owns the terms.
pub fn prepare(assumptions: &[SBool], goal: SBool) -> Prepared {
    let negated_goal = !goal;
    let all = || assumptions.iter().copied().chain([negated_goal]);
    let trivially_unsat = all().any(|a| a.is_false());
    let mut nz = Normalizer::default();
    let root_ids: Vec<u32> = canonical_roots(all())
        .into_iter()
        .map(|r| nz.add_root(r))
        .collect();
    let core = FormCore {
        nodes: nz.nodes,
        roots: root_ids,
        var_sorts: nz.var_sorts,
        uf_sigs: nz.uf_sigs,
        trivially_unsat,
    };
    let key = cache_key(&core);
    Prepared { core, backmap: nz.backmap, key }
}

/// The portable normal form of an incremental discharge session: the
/// shared assumption set (as canonically ordered base roots) plus one
/// *negated-goal* root per goal, all sharing a single node array so the
/// worker materializes every term exactly once.
#[derive(Clone, Debug)]
pub struct SessionCore {
    /// Term DAG in deterministic postorder (base roots first).
    pub nodes: Vec<FormNode>,
    /// Shared assumption roots, deduplicated and canonically ordered.
    pub base_roots: Vec<u32>,
    /// One entry per goal, in submission order: the node index of the
    /// goal's *negation* (what the session solver asserts behind the
    /// goal's activation literal).
    pub goal_roots: Vec<u32>,
    /// Sort of each canonical symbolic constant.
    pub var_sorts: Vec<Sort>,
    /// Signature (argument widths, result width) of each canonical UF.
    pub uf_sigs: Vec<(Vec<u32>, u32)>,
}

/// A session reduced to its portable core plus the caller-side back map.
///
/// There is deliberately no cache key here: sessions are never cached as
/// a unit — the engine consults the two-tier cache per sub-query (using
/// each sub-query's own [`Prepared::key`]) before deciding what reaches
/// a session at all.
pub struct SessionPrepared {
    /// The portable core (shared with the worker).
    pub core: SessionCore,
    /// Canonical-index → caller-term translation, covering every var and
    /// UF reachable from the base *or any* goal.
    pub backmap: BackMap,
}

/// Extracts the portable form of a session: `assumptions` shared by all
/// of `goals` (each goal is negated here, on the caller thread, so the
/// worker can assert it directly).
///
/// Must run on the thread that owns the terms.
pub fn prepare_session(assumptions: &[SBool], goals: &[SBool]) -> SessionPrepared {
    let mut nz = Normalizer::default();
    let base_roots: Vec<u32> = canonical_roots(assumptions.iter().copied())
        .into_iter()
        .map(|r| nz.add_root(r))
        .collect();
    let goal_roots: Vec<u32> = goals.iter().map(|&g| nz.add_root((!g).0)).collect();
    SessionPrepared {
        core: SessionCore {
            nodes: nz.nodes,
            base_roots,
            goal_roots,
            var_sorts: nz.var_sorts,
            uf_sigs: nz.uf_sigs,
        },
        backmap: nz.backmap,
    }
}

/// Rebuilds a [`FormCore`] inside the *current* thread's term context.
pub struct Rebuilt {
    /// The assertion roots, ready for `smt::check_full`.
    pub roots: Vec<SBool>,
    /// Canonical var index → term in this thread's context.
    pub var_terms: Vec<TermId>,
    /// Canonical UF index → UF id in this thread's context.
    pub uf_ids: Vec<UfId>,
}

/// Interns a portable node array into `c`, declaring canonical UFs and
/// vars along the way. Returns (node index → term, var terms, UF ids).
fn materialize(
    c: &mut Ctx,
    nodes: &[FormNode],
    var_sorts: &[Sort],
    uf_sigs: &[(Vec<u32>, u32)],
) -> (Vec<TermId>, Vec<TermId>, Vec<UfId>) {
    let uf_ids: Vec<UfId> = uf_sigs
        .iter()
        .enumerate()
        .map(|(i, (args, result))| c.declare_uf(&format!("uf{i}"), args.clone(), *result))
        .collect();
    let mut var_terms: Vec<TermId> = vec![TermId(0); var_sorts.len()];
    let mut ids: Vec<TermId> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let children: Vec<TermId> = node.children.iter().map(|&i| ids[i as usize]).collect();
        let id = match node.op {
            // Each canonical var appears as exactly one node, so this
            // assigns every `var_terms` slot exactly once.
            Op::Var(k) => {
                let t = c.fresh_var(node.sort, &format!("q{k}"));
                var_terms[k as usize] = t;
                t
            }
            Op::UfApply(UfId(k)) => c.intern(Term {
                op: Op::UfApply(uf_ids[k as usize]),
                children,
                sort: node.sort,
            }),
            ref op => c.intern(Term {
                op: op.clone(),
                children,
                sort: node.sort,
            }),
        };
        ids.push(id);
    }
    (ids, var_terms, uf_ids)
}

/// Materializes the portable form as real terms on the current thread.
pub fn rebuild(core: &FormCore) -> Rebuilt {
    with_ctx(|c| {
        let (ids, var_terms, uf_ids) =
            materialize(c, &core.nodes, &core.var_sorts, &core.uf_sigs);
        Rebuilt {
            roots: core.roots.iter().map(|&r| SBool(ids[r as usize])).collect(),
            var_terms,
            uf_ids,
        }
    })
}

/// A [`SessionCore`] rebuilt inside the current thread's term context.
pub struct SessionRebuilt {
    /// The shared assumptions, ready for [`serval_smt::Session::assume`].
    pub base: Vec<SBool>,
    /// The *negated* goals, in submission order, ready for
    /// [`serval_smt::Session::solve_negated`].
    pub neg_goals: Vec<SBool>,
    /// Canonical var index → term in this thread's context.
    pub var_terms: Vec<TermId>,
    /// Canonical UF index → UF id in this thread's context.
    pub uf_ids: Vec<UfId>,
}

/// Materializes a session core as real terms on the current thread.
pub fn rebuild_session(core: &SessionCore) -> SessionRebuilt {
    with_ctx(|c| {
        let (ids, var_terms, uf_ids) =
            materialize(c, &core.nodes, &core.var_sorts, &core.uf_sigs);
        SessionRebuilt {
            base: core.base_roots.iter().map(|&r| SBool(ids[r as usize])).collect(),
            neg_goals: core
                .goal_roots
                .iter()
                .map(|&r| SBool(ids[r as usize]))
                .collect(),
            var_terms,
            uf_ids,
        }
    })
}

/// Per-root alpha-invariant key, used only to order assertion roots.
fn local_key(root: TermId) -> Vec<u8> {
    let mut local: HashMap<TermId, u32> = HashMap::new();
    let mut var_of: HashMap<u32, u32> = HashMap::new();
    let mut uf_of: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(&t) = stack.last() {
        if local.contains_key(&t) {
            stack.pop();
            continue;
        }
        let (op, children, sort) = fetch(t);
        let pending: Vec<TermId> = children
            .iter()
            .copied()
            .filter(|c| !local.contains_key(c))
            .collect();
        if !pending.is_empty() {
            stack.extend(pending);
            continue;
        }
        let op = match op {
            Op::Var(ord) => {
                let n = var_of.len() as u32;
                Op::Var(*var_of.entry(ord).or_insert(n))
            }
            Op::UfApply(uf) => {
                let n = uf_of.len() as u32;
                Op::UfApply(UfId(*uf_of.entry(uf.0).or_insert(n)))
            }
            other => other,
        };
        let ids: Vec<u32> = children.iter().map(|c| local[c]).collect();
        encode_node(&op, &ids, sort, &mut out);
        local.insert(t, local.len() as u32);
        stack.pop();
    }
    out
}

/// The cache key: a versioned, deterministic byte serialization of the
/// whole core. The solver configuration is deliberately *not* part of
/// the key — only definitive verdicts (proved / refuted) are cached, and
/// those are independent of search parameters.
pub fn cache_key(core: &FormCore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"SQ1\0");
    push_u32(&mut out, core.nodes.len() as u32);
    for n in &core.nodes {
        encode_node(&n.op, &n.children, n.sort, &mut out);
    }
    push_u32(&mut out, core.roots.len() as u32);
    for &r in &core.roots {
        push_u32(&mut out, r);
    }
    push_u32(&mut out, core.var_sorts.len() as u32);
    for &s in &core.var_sorts {
        encode_sort(s, &mut out);
    }
    push_u32(&mut out, core.uf_sigs.len() as u32);
    for (args, result) in &core.uf_sigs {
        push_u32(&mut out, args.len() as u32);
        for &a in args {
            push_u32(&mut out, a);
        }
        push_u32(&mut out, *result);
    }
    out.push(core.trivially_unsat as u8);
    out
}

/// Flattens the top-level `And` structure of `goal` into its conjuncts,
/// in left-to-right order; returns `[goal]` when the goal is not a
/// conjunction. Splitting is the engine-side counterpart of the paper's
/// split-cases: proving every conjunct under the same assumptions proves
/// the conjunction, and a countermodel of any conjunct (which satisfies
/// the assumptions) refutes it, so the engine can discharge conjuncts as
/// independent parallel queries and recombine the verdicts.
///
/// `cap` bounds the number of conjuncts: once reached, remaining
/// subtrees are kept whole instead of being descended into.
///
/// Must run on the thread that owns the terms.
pub fn split_goal(goal: SBool, cap: usize) -> Vec<SBool> {
    let mut out: Vec<SBool> = Vec::new();
    let mut stack = vec![goal.0];
    while let Some(t) = stack.pop() {
        let (op, children, _) = fetch(t);
        if matches!(op, Op::And) && out.len() + stack.len() + children.len() <= cap {
            // Reversed push keeps the conjuncts in left-to-right order.
            for &ch in children.iter().rev() {
                stack.push(ch);
            }
        } else {
            out.push(SBool(t));
        }
    }
    out
}

fn fetch(t: TermId) -> (Op, Vec<TermId>, Sort) {
    with_ctx(|c| {
        let n = c.term(t);
        (n.op.clone(), n.children.clone(), n.sort)
    })
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Stable operator tags. Appending new operators is fine; renumbering
/// existing ones invalidates on-disk caches (bump the `SQ` version).
fn encode_node(op: &Op, children: &[u32], sort: Sort, out: &mut Vec<u8>) {
    match op {
        Op::BoolConst(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Op::BvConst(v) => {
            out.push(1);
            push_u128(out, *v);
        }
        Op::Var(k) => {
            out.push(2);
            push_u32(out, *k);
        }
        Op::Not => out.push(3),
        Op::And => out.push(4),
        Op::Or => out.push(5),
        Op::Xor => out.push(6),
        Op::Iff => out.push(7),
        Op::IteBool => out.push(8),
        Op::Eq => out.push(9),
        Op::Ult => out.push(10),
        Op::Ule => out.push(11),
        Op::Slt => out.push(12),
        Op::Sle => out.push(13),
        Op::BvNot => out.push(14),
        Op::BvNeg => out.push(15),
        Op::BvAnd => out.push(16),
        Op::BvOr => out.push(17),
        Op::BvXor => out.push(18),
        Op::BvAdd => out.push(19),
        Op::BvSub => out.push(20),
        Op::BvMul => out.push(21),
        Op::BvUdiv => out.push(22),
        Op::BvUrem => out.push(23),
        Op::BvShl => out.push(24),
        Op::BvLshr => out.push(25),
        Op::BvAshr => out.push(26),
        Op::Concat => out.push(27),
        Op::Extract(hi, lo) => {
            out.push(28);
            push_u32(out, *hi);
            push_u32(out, *lo);
        }
        Op::ZeroExt => out.push(29),
        Op::SignExt => out.push(30),
        Op::IteBv => out.push(31),
        Op::UfApply(UfId(k)) => {
            out.push(32);
            push_u32(out, *k);
        }
    }
    encode_sort(sort, out);
    push_u32(out, children.len() as u32);
    for &c in children {
        push_u32(out, c);
    }
}

fn encode_sort(s: Sort, out: &mut Vec<u8>) {
    match s {
        Sort::Bool => out.push(0),
        Sort::BitVec(w) => {
            out.push(1);
            push_u32(out, w);
        }
    }
}
