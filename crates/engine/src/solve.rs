//! Worker-side solving: rebuild the portable form in the worker's own
//! term context, discharge it, and translate any model into a portable
//! shape. Portfolio mode races several solver configurations for one
//! query and cancels the losers through the CDCL interrupt flag.

use crate::form::{rebuild, rebuild_session, FormCore, SessionCore};
use serval_smt::model::Model;
use serval_smt::session::Session;
use serval_smt::solver::{check_full, CheckResult, QueryStats, SolverConfig};
use serval_smt::term::{reset_ctx, Sort, TermId, UfId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A model expressed over canonical var/UF indices — valid on any
/// thread, for any query with the same normal form.
#[derive(Clone, Debug, Default)]
pub struct PortableModel {
    /// Canonical var index → bitvector value.
    pub bvs: Vec<(u32, u128)>,
    /// Canonical var index → boolean value.
    pub bools: Vec<(u32, bool)>,
    /// Canonical UF index → (argument tuple → result) graph.
    pub ufs: Vec<(u32, Vec<(Vec<u128>, u128)>)>,
}

/// Verdict of a worker-side solve, before caller-side translation.
#[derive(Clone, Debug)]
pub enum RawVerdict {
    /// Assertions unsatisfiable: the query's goal is proved.
    Proved,
    /// Assertions satisfiable: the goal is refuted by this model.
    Refuted(PortableModel),
    /// Budget exhausted.
    Unknown,
    /// Cancelled (only surfaces when every portfolio member was).
    Interrupted,
}

/// Worker-side solve result.
#[derive(Clone, Debug)]
pub struct RawOutcome {
    /// The verdict.
    pub verdict: RawVerdict,
    /// Solver statistics of the winning solve.
    pub stats: QueryStats,
    /// Which portfolio variant produced the verdict (0 = base config).
    pub variant: usize,
}

/// Solves `core` under one configuration in a fresh term context.
///
/// Must run on a thread whose term context is disposable (a pool worker
/// or a portfolio thread): the context is reset first.
pub fn solve_one(
    core: &FormCore,
    cfg: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> RawOutcome {
    reset_ctx();
    let rq = rebuild(core);
    let out = check_full(cfg, &rq.roots, cancel);
    let verdict = match out.result {
        CheckResult::Unsat => RawVerdict::Proved,
        CheckResult::Unknown => RawVerdict::Unknown,
        CheckResult::Interrupted => RawVerdict::Interrupted,
        CheckResult::Sat(model) => RawVerdict::Refuted(portable_of_model(
            &model,
            &core.var_sorts,
            &rq.var_terms,
            &rq.uf_ids,
        )),
    };
    RawOutcome {
        verdict,
        stats: out.stats,
        variant: 0,
    }
}

/// Projects a worker-side [`Model`] onto canonical var/UF indices so it
/// survives the trip back to the submitting thread.
fn portable_of_model(
    model: &Model,
    var_sorts: &[Sort],
    var_terms: &[TermId],
    uf_ids: &[UfId],
) -> PortableModel {
    let mut pm = PortableModel::default();
    for (k, &t) in var_terms.iter().enumerate() {
        match var_sorts[k] {
            Sort::Bool => {
                if let Some(&b) = model.bool_values.get(&t) {
                    pm.bools.push((k as u32, b));
                }
            }
            Sort::BitVec(_) => {
                if let Some(&v) = model.bv_values.get(&t) {
                    pm.bvs.push((k as u32, v));
                }
            }
        }
    }
    for (k, uf) in uf_ids.iter().enumerate() {
        if let Some(table) = model.uf_tables.get(uf) {
            let mut rows: Vec<(Vec<u128>, u128)> =
                table.iter().map(|(a, &r)| (a.clone(), r)).collect();
            rows.sort();
            pm.ufs.push((k as u32, rows));
        }
    }
    pm
}

/// Discharges a whole session core on one live solver: the shared
/// assumptions are asserted (and blasted) once, then every goal is
/// answered in submission order with per-goal activation literals (see
/// [`serval_smt::Session`]). Returns one outcome per goal, in order.
///
/// If a goal is interrupted, the remaining goals are reported
/// [`RawVerdict::Interrupted`] without solving: the cancel flag is
/// sticky, so re-asking the dead solver would only burn time.
///
/// Must run on a thread whose term context is disposable (a pool
/// worker): the context is reset first.
pub fn solve_session(
    core: &SessionCore,
    cfg: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> Vec<RawOutcome> {
    reset_ctx();
    let rq = rebuild_session(core);
    let mut session = Session::new(cfg, cancel);
    // The engine presolves queries caller-side, before forming session
    // cores; presolving the rebuilt core again would be wasted work.
    session.set_presolve(false);
    for &a in &rq.base {
        session.assume(a);
    }
    // Announcing the goal stream up front lets the session *retire*
    // terms after their last use — purging dead goals' gate clauses
    // keeps long sessions' watch lists near the live-cone size.
    session.plan_goals(&rq.neg_goals);
    let mut out = Vec::with_capacity(rq.neg_goals.len());
    let mut dead = false;
    for &ng in &rq.neg_goals {
        if dead {
            out.push(RawOutcome {
                verdict: RawVerdict::Interrupted,
                stats: QueryStats::default(),
                variant: 0,
            });
            continue;
        }
        let so = session.solve_negated(ng);
        let verdict = match so.result {
            CheckResult::Unsat => RawVerdict::Proved,
            CheckResult::Unknown => RawVerdict::Unknown,
            CheckResult::Interrupted => {
                dead = true;
                RawVerdict::Interrupted
            }
            CheckResult::Sat(model) => RawVerdict::Refuted(portable_of_model(
                &model,
                &core.var_sorts,
                &rq.var_terms,
                &rq.uf_ids,
            )),
        };
        out.push(RawOutcome {
            verdict,
            stats: so.stats,
            variant: 0,
        });
    }
    out
}

/// The portfolio: the base configuration plus two variants with
/// different restart cadence, activity decay, and branching phase, so
/// queries that stall one search strategy still finish quickly.
pub fn portfolio_variants(base: SolverConfig) -> Vec<SolverConfig> {
    let aggressive_restarts = SolverConfig {
        restart_base: 32,
        var_decay: 0.90,
        ..base
    };
    let positive_phase = SolverConfig {
        default_phase: true,
        var_decay: 0.99,
        ..base
    };
    vec![base, aggressive_restarts, positive_phase]
}

/// Races the portfolio over one query. The first *definitive* finisher
/// (proved/refuted) wins and cancels the rest; an `Unknown` (budget
/// exhausted) is kept as a fallback but does not cancel anyone, so a
/// slower variant can still deliver a proof.
///
/// An external `cancel` is relayed into the race flag for the whole
/// duration of the solve (not just sampled at the start), so a cancel
/// arriving mid-solve interrupts every running variant within a few
/// milliseconds.
///
/// Determinism note: when more than one variant reaches a definitive
/// verdict, which one wins is a timing race. The *verdict kind*
/// (proved vs. refuted) is identical across variants, but for refuted
/// queries the reported counterexample model — and the `variant` stat —
/// can differ run to run. `SERVAL_PORTFOLIO` therefore preserves
/// verdict determinism, not model determinism; see DESIGN.md.
pub fn solve_portfolio(
    core: &FormCore,
    base: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> RawOutcome {
    let variants = portfolio_variants(base);
    let done = Arc::new(AtomicBool::new(false));
    let live = AtomicUsize::new(variants.len());
    let winner: Mutex<Option<RawOutcome>> = Mutex::new(None);
    let fallback: Mutex<Option<RawOutcome>> = Mutex::new(None);
    std::thread::scope(|s| {
        // Relay: copy the parent's cancellation into the shared race
        // flag until the race is over (a winner set `done`, or every
        // variant finished). The solvers poll `done` at restart
        // boundaries, so an external cancel mid-solve stops the whole
        // portfolio, as the public contract promises.
        if let Some(parent) = cancel.clone() {
            let done = Arc::clone(&done);
            let live = &live;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) && live.load(Ordering::Relaxed) > 0 {
                    if parent.load(Ordering::Relaxed) {
                        done.store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        for (vi, vcfg) in variants.iter().enumerate() {
            let done = Arc::clone(&done);
            let live = &live;
            let winner = &winner;
            let fallback = &fallback;
            let core = &core;
            let vcfg = *vcfg;
            s.spawn(move || {
                let mut out = solve_one(core, vcfg, Some(Arc::clone(&done)));
                out.variant = vi;
                match out.verdict {
                    RawVerdict::Proved | RawVerdict::Refuted(_) => {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some(out);
                            done.store(true, Ordering::Release);
                        }
                    }
                    RawVerdict::Unknown => {
                        let mut f = fallback.lock().unwrap();
                        if f.is_none() {
                            *f = Some(out);
                        }
                    }
                    RawVerdict::Interrupted => {}
                }
                live.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    winner
        .into_inner()
        .unwrap()
        .or_else(|| fallback.into_inner().unwrap())
        .unwrap_or(RawOutcome {
            verdict: RawVerdict::Interrupted,
            stats: QueryStats::default(),
            variant: 0,
        })
}
