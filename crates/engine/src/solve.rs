//! Worker-side solving: rebuild the portable form in the worker's own
//! term context, discharge it, and translate any model into a portable
//! shape. Portfolio mode races several solver configurations for one
//! query and cancels the losers through the CDCL interrupt flag.

use crate::form::{rebuild, FormCore};
use serval_smt::solver::{check_full, CheckResult, QueryStats, SolverConfig};
use serval_smt::term::{reset_ctx, Sort};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A model expressed over canonical var/UF indices — valid on any
/// thread, for any query with the same normal form.
#[derive(Clone, Debug, Default)]
pub struct PortableModel {
    /// Canonical var index → bitvector value.
    pub bvs: Vec<(u32, u128)>,
    /// Canonical var index → boolean value.
    pub bools: Vec<(u32, bool)>,
    /// Canonical UF index → (argument tuple → result) graph.
    pub ufs: Vec<(u32, Vec<(Vec<u128>, u128)>)>,
}

/// Verdict of a worker-side solve, before caller-side translation.
#[derive(Clone, Debug)]
pub enum RawVerdict {
    /// Assertions unsatisfiable: the query's goal is proved.
    Proved,
    /// Assertions satisfiable: the goal is refuted by this model.
    Refuted(PortableModel),
    /// Budget exhausted.
    Unknown,
    /// Cancelled (only surfaces when every portfolio member was).
    Interrupted,
}

/// Worker-side solve result.
#[derive(Clone, Debug)]
pub struct RawOutcome {
    /// The verdict.
    pub verdict: RawVerdict,
    /// Solver statistics of the winning solve.
    pub stats: QueryStats,
    /// Which portfolio variant produced the verdict (0 = base config).
    pub variant: usize,
}

/// Solves `core` under one configuration in a fresh term context.
///
/// Must run on a thread whose term context is disposable (a pool worker
/// or a portfolio thread): the context is reset first.
pub fn solve_one(
    core: &FormCore,
    cfg: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> RawOutcome {
    reset_ctx();
    let rq = rebuild(core);
    let out = check_full(cfg, &rq.roots, cancel);
    let verdict = match out.result {
        CheckResult::Unsat => RawVerdict::Proved,
        CheckResult::Unknown => RawVerdict::Unknown,
        CheckResult::Interrupted => RawVerdict::Interrupted,
        CheckResult::Sat(model) => {
            let mut pm = PortableModel::default();
            for (k, &t) in rq.var_terms.iter().enumerate() {
                match core.var_sorts[k] {
                    Sort::Bool => {
                        if let Some(&b) = model.bool_values.get(&t) {
                            pm.bools.push((k as u32, b));
                        }
                    }
                    Sort::BitVec(_) => {
                        if let Some(&v) = model.bv_values.get(&t) {
                            pm.bvs.push((k as u32, v));
                        }
                    }
                }
            }
            for (k, uf) in rq.uf_ids.iter().enumerate() {
                if let Some(table) = model.uf_tables.get(uf) {
                    let mut rows: Vec<(Vec<u128>, u128)> =
                        table.iter().map(|(a, &r)| (a.clone(), r)).collect();
                    rows.sort();
                    pm.ufs.push((k as u32, rows));
                }
            }
            RawVerdict::Refuted(pm)
        }
    };
    RawOutcome {
        verdict,
        stats: out.stats,
        variant: 0,
    }
}

/// The portfolio: the base configuration plus two variants with
/// different restart cadence, activity decay, and branching phase, so
/// queries that stall one search strategy still finish quickly.
pub fn portfolio_variants(base: SolverConfig) -> Vec<SolverConfig> {
    let aggressive_restarts = SolverConfig {
        restart_base: 32,
        var_decay: 0.90,
        ..base
    };
    let positive_phase = SolverConfig {
        default_phase: true,
        var_decay: 0.99,
        ..base
    };
    vec![base, aggressive_restarts, positive_phase]
}

/// Races the portfolio over one query. The first *definitive* finisher
/// (proved/refuted) wins and cancels the rest; an `Unknown` (budget
/// exhausted) is kept as a fallback but does not cancel anyone, so a
/// slower variant can still deliver a proof.
pub fn solve_portfolio(
    core: &FormCore,
    base: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> RawOutcome {
    let variants = portfolio_variants(base);
    let done = Arc::new(AtomicBool::new(false));
    let winner: Mutex<Option<RawOutcome>> = Mutex::new(None);
    let fallback: Mutex<Option<RawOutcome>> = Mutex::new(None);
    std::thread::scope(|s| {
        for (vi, vcfg) in variants.iter().enumerate() {
            let done = Arc::clone(&done);
            let parent_cancel = cancel.clone();
            let winner = &winner;
            let fallback = &fallback;
            let core = &core;
            let vcfg = *vcfg;
            s.spawn(move || {
                // Chain the parent's cancellation into the race flag so
                // an external cancel stops the whole portfolio.
                let flag = match parent_cancel {
                    Some(parent) => {
                        let chained = Arc::clone(&done);
                        // Cheap chain: poll the parent by copying its
                        // state into the shared flag before solving;
                        // long solves additionally poll `done`.
                        if parent.load(Ordering::Relaxed) {
                            chained.store(true, Ordering::Relaxed);
                        }
                        chained
                    }
                    None => Arc::clone(&done),
                };
                let mut out = solve_one(core, vcfg, Some(flag));
                out.variant = vi;
                match out.verdict {
                    RawVerdict::Proved | RawVerdict::Refuted(_) => {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some(out);
                            done.store(true, Ordering::Release);
                        }
                    }
                    RawVerdict::Unknown => {
                        let mut f = fallback.lock().unwrap();
                        if f.is_none() {
                            *f = Some(out);
                        }
                    }
                    RawVerdict::Interrupted => {}
                }
            });
        }
    });
    winner
        .into_inner()
        .unwrap()
        .or_else(|| fallback.into_inner().unwrap())
        .unwrap_or(RawOutcome {
            verdict: RawVerdict::Interrupted,
            stats: QueryStats::default(),
            variant: 0,
        })
}
