//! Worker-side solving: rebuild the portable form in the worker's own
//! term context, discharge it, and translate any model into a portable
//! shape. Portfolio mode races several solver configurations for one
//! query and cancels the losers through the CDCL interrupt flag.

use crate::form::{rebuild, rebuild_session, FormCore, SessionCore};
use serval_check::sim;
use serval_smt::model::Model;
use serval_smt::session::Session;
use serval_smt::solver::{check_full, check_full_proof, CheckResult, QueryStats, SolverConfig};
use serval_smt::term::{reset_ctx, Sort, TermId, UfId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A model expressed over canonical var/UF indices — valid on any
/// thread, for any query with the same normal form.
#[derive(Clone, Debug, Default)]
pub struct PortableModel {
    /// Canonical var index → bitvector value.
    pub bvs: Vec<(u32, u128)>,
    /// Canonical var index → boolean value.
    pub bools: Vec<(u32, bool)>,
    /// Canonical UF index → (argument tuple → result) graph.
    pub ufs: Vec<(u32, Vec<(Vec<u128>, u128)>)>,
}

/// Verdict of a worker-side solve, before caller-side translation.
#[derive(Clone, Debug)]
pub enum RawVerdict {
    /// Assertions unsatisfiable: the query's goal is proved.
    Proved,
    /// Assertions satisfiable: the goal is refuted by this model.
    Refuted(PortableModel),
    /// Budget exhausted.
    Unknown,
    /// Cancelled (only surfaces when every portfolio member was).
    Interrupted,
}

/// Worker-side solve result.
#[derive(Clone, Debug)]
pub struct RawOutcome {
    /// The verdict.
    pub verdict: RawVerdict,
    /// Solver statistics of the winning solve.
    pub stats: QueryStats,
    /// Which portfolio variant produced the verdict (0 = base config).
    pub variant: usize,
    /// Fingerprint of the checker-accepted proof certificate backing a
    /// `Proved` verdict (0 = uncertified).
    pub cert_hash: u64,
    /// Why certificate checking demoted a solver `Unsat` to `Unknown`,
    /// if it did.
    pub cert_error: Option<String>,
}

/// Solves `core` under one configuration in a fresh term context.
///
/// With `cert` on, the solver logs a DRAT-style proof and an `Unsat`
/// answer is upgraded to `Proved` only after the independent checker
/// (`serval-drat`) accepts the certificate; a rejected certificate
/// demotes the verdict to `Unknown` and reports why in `cert_error`.
///
/// Must run on a thread whose term context is disposable (a pool worker
/// or a portfolio thread): the context is reset first.
pub fn solve_one(
    core: &FormCore,
    cfg: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
    cert: bool,
) -> RawOutcome {
    reset_ctx();
    let rq = rebuild(core);
    let mut out = if cert {
        check_full_proof(cfg, &rq.roots, cancel)
    } else {
        check_full(cfg, &rq.roots, cancel)
    };
    // Buggify: hand the checker a truncated proof (as a flaky solver or
    // a torn proof log would). The only acceptable outcome is a rejected
    // certificate demoting the verdict to `Unknown` — never a `Proved`
    // without a checked proof, and never a panic.
    if matches!(out.result, CheckResult::Unsat) && sim::buggify("cert-corrupt-proof") {
        if let Some(proof) = &mut out.proof {
            proof.pop();
        }
    }
    let mut stats = out.stats;
    let mut cert_hash = 0u64;
    let mut cert_error: Option<String> = None;
    if let (CheckResult::Unsat, Some(proof)) = (&out.result, &out.proof) {
        let t0 = Instant::now();
        match serval_drat::check_refutation(proof, &[]) {
            Ok(()) => cert_hash = serval_drat::hash_steps(proof),
            Err(e) => cert_error = Some(e.to_string()),
        }
        stats.cert_steps = proof.len() as u64;
        stats.cert_wall = t0.elapsed();
    }
    let verdict = match out.result {
        CheckResult::Unsat if cert_error.is_some() => RawVerdict::Unknown,
        CheckResult::Unsat => RawVerdict::Proved,
        CheckResult::Unknown => RawVerdict::Unknown,
        CheckResult::Interrupted => RawVerdict::Interrupted,
        CheckResult::Sat(model) => RawVerdict::Refuted(portable_of_model(
            &model,
            &core.var_sorts,
            &rq.var_terms,
            &rq.uf_ids,
        )),
    };
    RawOutcome { verdict, stats, variant: 0, cert_hash, cert_error }
}

/// Projects a worker-side [`Model`] onto canonical var/UF indices so it
/// survives the trip back to the submitting thread.
fn portable_of_model(
    model: &Model,
    var_sorts: &[Sort],
    var_terms: &[TermId],
    uf_ids: &[UfId],
) -> PortableModel {
    let mut pm = PortableModel::default();
    for (k, &t) in var_terms.iter().enumerate() {
        match var_sorts[k] {
            Sort::Bool => {
                if let Some(&b) = model.bool_values.get(&t) {
                    pm.bools.push((k as u32, b));
                }
            }
            Sort::BitVec(_) => {
                if let Some(&v) = model.bv_values.get(&t) {
                    pm.bvs.push((k as u32, v));
                }
            }
        }
    }
    for (k, uf) in uf_ids.iter().enumerate() {
        if let Some(table) = model.uf_tables.get(uf) {
            let mut rows: Vec<(Vec<u128>, u128)> =
                table.iter().map(|(a, &r)| (a.clone(), r)).collect();
            rows.sort();
            pm.ufs.push((k as u32, rows));
        }
    }
    pm
}

/// Discharges a whole session core on one live solver: the shared
/// assumptions are asserted (and blasted) once, then every goal is
/// answered in submission order with per-goal activation literals (see
/// [`serval_smt::Session`]). Returns one outcome per goal, in order.
///
/// If a goal is interrupted, the remaining goals are reported
/// [`RawVerdict::Interrupted`] without solving: the cancel flag is
/// sticky, so re-asking the dead solver would only burn time.
///
/// With `cert` on, one live `serval-drat` checker consumes each goal's
/// proof-log delta in order: the checker's clause database mirrors the
/// session solver's (modulo clauses it keeps longer), so a goal's
/// `Unsat` is upgraded to `Proved` only if its delta checks out *and*
/// concludes in a clause over the goal's negated activation literal.
/// A single rejected step poisons certification for every later goal
/// (the databases have diverged) — their `Unsat` answers demote to
/// `Unknown` with the sticky error. Each goal's `cert_hash` chains over
/// all deltas so far, fingerprinting the whole prefix its proof rests on.
///
/// Must run on a thread whose term context is disposable (a pool
/// worker): the context is reset first.
pub fn solve_session(
    core: &SessionCore,
    cfg: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
    cert: bool,
) -> Vec<RawOutcome> {
    reset_ctx();
    let rq = rebuild_session(core);
    let mut session = Session::new(cfg, cancel);
    // The engine presolves queries caller-side, before forming session
    // cores; presolving the rebuilt core again would be wasted work.
    session.set_presolve(false);
    session.set_proof_logging(cert);
    for &a in &rq.base {
        session.assume(a);
    }
    // Announcing the goal stream up front lets the session *retire*
    // terms after their last use — purging dead goals' gate clauses
    // keeps long sessions' watch lists near the live-cone size.
    session.plan_goals(&rq.neg_goals);
    let mut checker = serval_drat::Checker::new();
    let mut checker_err: Option<String> = None;
    let mut running_hash = serval_drat::hash_steps(&[]);
    let mut out = Vec::with_capacity(rq.neg_goals.len());
    let mut dead = false;
    for &ng in &rq.neg_goals {
        if dead {
            out.push(RawOutcome {
                verdict: RawVerdict::Interrupted,
                stats: QueryStats::default(),
                variant: 0,
                cert_hash: 0,
                cert_error: None,
            });
            continue;
        }
        let so = session.solve_negated(ng);
        let mut stats = so.stats;
        let mut cert_hash = 0u64;
        let mut cert_error: Option<String> = None;
        if let Some(proof) = &so.proof {
            let t0 = Instant::now();
            if checker_err.is_none() {
                for st in &proof.steps {
                    if let Err(e) = checker.apply(st) {
                        checker_err = Some(e.to_string());
                        break;
                    }
                }
            }
            // Every goal drains the conclusion, so a goal that derives
            // nothing cannot inherit its predecessor's.
            let conclusion = checker.take_conclusion();
            running_hash = serval_drat::hash_steps_seeded(running_hash, &proof.steps);
            if matches!(so.result, CheckResult::Unsat) {
                match (&checker_err, proof.act) {
                    (Some(e), _) => cert_error = Some(e.clone()),
                    // Constant-false goal: no derived conclusion needed.
                    (None, None) => cert_hash = running_hash,
                    (None, Some(act)) => match conclusion {
                        Some(conc) if serval_drat::conclusion_covers(&conc, &[act]) => {
                            cert_hash = running_hash;
                        }
                        _ => {
                            cert_error =
                                Some("session goal concluded no clause over !act".to_string());
                        }
                    },
                }
            }
            stats.cert_steps = proof.steps.len() as u64;
            stats.cert_wall = t0.elapsed();
        }
        let verdict = match so.result {
            CheckResult::Unsat if cert_error.is_some() => RawVerdict::Unknown,
            CheckResult::Unsat => RawVerdict::Proved,
            CheckResult::Unknown => RawVerdict::Unknown,
            CheckResult::Interrupted => {
                dead = true;
                RawVerdict::Interrupted
            }
            CheckResult::Sat(model) => RawVerdict::Refuted(portable_of_model(
                &model,
                &core.var_sorts,
                &rq.var_terms,
                &rq.uf_ids,
            )),
        };
        out.push(RawOutcome { verdict, stats, variant: 0, cert_hash, cert_error });
    }
    out
}

/// The portfolio: the base configuration (Luby restarts) plus two
/// variants diversifying the restart series, rephasing policy, activity
/// decay, and branching phase, so queries that stall one search strategy
/// still finish quickly.
pub fn portfolio_variants(base: SolverConfig) -> Vec<SolverConfig> {
    let geometric_inverting = SolverConfig {
        restart_geometric: true,
        rephase: serval_smt::Rephase::Invert,
        restart_base: 32,
        var_decay: 0.90,
        ..base
    };
    let positive_resetting = SolverConfig {
        default_phase: true,
        rephase: serval_smt::Rephase::Reset,
        var_decay: 0.99,
        ..base
    };
    vec![base, geometric_inverting, positive_resetting]
}

/// Races the portfolio over one query. The first *definitive* finisher
/// (proved/refuted) wins and cancels the rest; an `Unknown` (budget
/// exhausted) is kept as a fallback but does not cancel anyone, so a
/// slower variant can still deliver a proof.
///
/// An external `cancel` is relayed into the race flag for the whole
/// duration of the solve (not just sampled at the start), so a cancel
/// arriving mid-solve interrupts every running variant within a few
/// milliseconds.
///
/// Determinism note: when more than one variant reaches a definitive
/// verdict, which one wins is a timing race. The *verdict kind*
/// (proved vs. refuted) is identical across variants, but for refuted
/// queries the reported counterexample model — and the `variant` stat —
/// can differ run to run. `SERVAL_PORTFOLIO` therefore preserves
/// verdict determinism, not model determinism; see DESIGN.md.
pub fn solve_portfolio(
    core: &FormCore,
    base: SolverConfig,
    cancel: Option<Arc<AtomicBool>>,
    cert: bool,
) -> RawOutcome {
    let variants = portfolio_variants(base);
    if sim::active() {
        return solve_portfolio_sim(core, &variants, cert);
    }
    let done = Arc::new(AtomicBool::new(false));
    let live = AtomicUsize::new(variants.len());
    let winner: Mutex<Option<RawOutcome>> = Mutex::new(None);
    let fallback: Mutex<Option<RawOutcome>> = Mutex::new(None);
    std::thread::scope(|s| {
        // Relay: copy the parent's cancellation into the shared race
        // flag until the race is over (a winner set `done`, or every
        // variant finished). The solvers poll `done` at restart
        // boundaries, so an external cancel mid-solve stops the whole
        // portfolio, as the public contract promises.
        if let Some(parent) = cancel.clone() {
            let done = Arc::clone(&done);
            let live = &live;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) && live.load(Ordering::Relaxed) > 0 {
                    if parent.load(Ordering::Relaxed) {
                        done.store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        for (vi, vcfg) in variants.iter().enumerate() {
            let done = Arc::clone(&done);
            let live = &live;
            let winner = &winner;
            let fallback = &fallback;
            let core = &core;
            let vcfg = *vcfg;
            s.spawn(move || {
                // Certificate checking runs inside solve_one, so a
                // variant only wins the race with a *checked* proof.
                let mut out = solve_one(core, vcfg, Some(Arc::clone(&done)), cert);
                out.variant = vi;
                match out.verdict {
                    RawVerdict::Proved | RawVerdict::Refuted(_) => {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some(out);
                            done.store(true, Ordering::Release);
                        }
                    }
                    RawVerdict::Unknown => {
                        let mut f = fallback.lock().unwrap();
                        if f.is_none() {
                            *f = Some(out);
                        }
                    }
                    RawVerdict::Interrupted => {}
                }
                live.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    winner
        .into_inner()
        .unwrap()
        .or_else(|| fallback.into_inner().unwrap())
        .unwrap_or(RawOutcome {
            verdict: RawVerdict::Interrupted,
            stats: QueryStats::default(),
            variant: 0,
            cert_hash: 0,
            cert_error: None,
        })
}

/// The portfolio under simulation: no racing threads (the sim owns all
/// scheduling), so the variants run *sequentially* in a seed-chosen
/// order and the first definitive verdict wins. The contract is the
/// same as the threaded race's — the verdict *kind* is
/// variant-independent — but here the winning variant, its model, and
/// the schedule trace are pure functions of the seed. Buggify can
/// "cancel" a definitive finisher just before it claims the win,
/// exercising the fallback path the real race only hits under
/// contention.
fn solve_portfolio_sim(core: &FormCore, variants: &[SolverConfig], cert: bool) -> RawOutcome {
    let mut order: Vec<usize> = (0..variants.len()).collect();
    // Seeded Fisher–Yates: the visit order is part of the schedule.
    for i in (1..order.len()).rev() {
        order.swap(i, sim::choose(i + 1));
    }
    let mut fallback: Option<RawOutcome> = None;
    for &vi in &order {
        sim::mark(format!("portfolio-variant-{vi}"));
        let mut out = solve_one(core, variants[vi], None, cert);
        out.variant = vi;
        match out.verdict {
            RawVerdict::Proved | RawVerdict::Refuted(_) => {
                if sim::buggify("portfolio-drop-winner") {
                    // The simulated race lost this finisher (cancelled
                    // before it took the winner lock); another variant
                    // has to carry the query, or it degrades to the
                    // fallback — never to a wrong verdict.
                    continue;
                }
                return out;
            }
            RawVerdict::Unknown => {
                if fallback.is_none() {
                    fallback = Some(out);
                }
            }
            RawVerdict::Interrupted => {}
        }
    }
    fallback.unwrap_or(RawOutcome {
        verdict: RawVerdict::Interrupted,
        stats: QueryStats::default(),
        variant: 0,
        cert_hash: 0,
        cert_error: None,
    })
}
