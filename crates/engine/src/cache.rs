//! The query cache: an in-memory tier keyed on the query normal form,
//! plus an optional on-disk tier so repeated fig11/ablation runs skip
//! already-proven obligations.
//!
//! Only definitive verdicts are cached: `Proved` (with the fingerprint
//! of its checker-accepted proof certificate), and `Refuted` with its
//! portable counterexample. `Unknown`/`Interrupted` depend on budgets
//! and cancellation, so they are never cached. The disk tier stores
//! proved keys only, in a checksummed length-prefixed binary format
//! under `target/serval-cache/` (env-gated via `SERVAL_CACHE`).
//!
//! ## Crash and concurrency discipline (disk tier)
//!
//! Each cache instance appends to its **own segment file**
//! (`seg-<pid>-<n>.bin`), created invisibly as a temp file and
//! published with an atomic rename once its header and first record are
//! down. Loading reads every segment (plus the legacy `proved.bin`).
//! Consequences:
//!
//! - Two engine *processes* sharing `SERVAL_CACHE` never write the same
//!   file, so concurrent appends cannot interleave inside each other's
//!   records — the failure the old single shared append-log had, where
//!   one process's torn write silently discarded the other's good tail.
//! - A crash before the rename leaves only an invisible `tmp-` file,
//!   which loaders ignore (and sweep up when stale).
//! - A crash mid-append tears only the crashing process's own tail;
//!   checksum verification truncates that segment back to its last good
//!   record on the next load, and nobody else's records are touched.
//!
//! A warm hit is treated as a *claim*, not a fact: every disk record
//! carries a checksum verified on load — a truncated or bit-flipped
//! record (crash mid-append, disk rot) evicts that record and the tail
//! behind it, turning corruption into a re-solve instead of a panic or
//! a silently wrong verdict. When the engine runs certified
//! (`SERVAL_CERT`), records whose stored certificate fingerprint is 0
//! (written by an uncertified run) are dropped on load for the same
//! reason: a hit must never launder an unchecked verdict into a
//! certified one. Callers evict entries that fail their own semantic
//! revalidation (e.g. a cached countermodel that no longer evaluates
//! false on the goal) via [`Cache::evict`].
//!
//! ## Lock poisoning
//!
//! The memory tier is a plain map behind a mutex, and every access
//! recovers from poisoning (`PoisonError::into_inner`): a thread that
//! panics while holding the lock leaves the map in a state that is at
//! worst *missing* an insert — a cache miss, never a wrong verdict — so
//! propagating the poison would convert one failed query into a panic
//! on every later query on every worker, violating the pool's "a
//! poisoned query fails alone" contract.

use crate::solve::PortableModel;
use serval_check::sim;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A cached definitive verdict.
#[derive(Clone, Debug)]
pub enum CachedVerdict {
    /// The query was proved (assertions unsatisfiable).
    Proved {
        /// Fingerprint of the checker-accepted certificate backing the
        /// verdict (`serval_drat::hash_steps`); 0 = proved uncertified.
        cert: u64,
    },
    /// The query was refuted; the model is over canonical var indices,
    /// so it applies to any query with the same normal form.
    Refuted(PortableModel),
}

const MAGIC: &[u8; 8] = b"SRVCACH2";

/// Distinguishes segment files created by several cache instances in
/// one process (benchmarks install engines repeatedly).
static SEG_NONCE: AtomicU64 = AtomicU64::new(0);

/// This instance's private on-disk segment.
struct Segment {
    /// The published segment path (`seg-<pid>-<n>.bin`); `None` until
    /// the first append succeeds in renaming it into visibility.
    path: Option<PathBuf>,
    dir: PathBuf,
}

/// The two-tier cache.
pub struct Cache {
    mem: Mutex<HashMap<Vec<u8>, CachedVerdict>>,
    disk: Option<Mutex<Segment>>,
    /// Drop proved records without a certificate fingerprint on load.
    require_cert: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cache {
    /// Creates a cache; with `Some(dir)`, proved keys persist to
    /// per-process segment files under `dir` and every segment (plus
    /// the legacy `proved.bin`) is preloaded here. With `require_cert`,
    /// disk records lacking a certificate fingerprint are ignored.
    pub fn new(disk_dir: Option<PathBuf>, require_cert: bool) -> Cache {
        let mut mem = HashMap::new();
        let disk = disk_dir.map(|dir| {
            // Later records win: a key re-proven (e.g. after an evict)
            // overwrites its earlier duplicate here.
            for (key, cert) in load_dir(&dir) {
                if require_cert && cert == 0 {
                    continue;
                }
                mem.insert(key, CachedVerdict::Proved { cert });
            }
            Mutex::new(Segment { path: None, dir })
        });
        Cache {
            mem: Mutex::new(mem),
            disk,
            require_cert,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The memory-tier lock, poison-recovered (see the module docs: the
    /// map is valid after any panic, at worst missing one insert).
    fn mem_lock(&self) -> MutexGuard<'_, HashMap<Vec<u8>, CachedVerdict>> {
        self.mem.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&self, key: &[u8]) -> Option<CachedVerdict> {
        let found = self.mem_lock().get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks `key` up *without* counting a hit or a miss. This is the
    /// secondary post-presolve probe: the counted lookup for the query
    /// already happened (and missed) under its raw pre-presolve key, but
    /// alpha-distinct raw queries can simplify to the same form, so the
    /// simplified key is still worth an uncounted peek before solving.
    pub fn probe(&self, key: &[u8]) -> Option<CachedVerdict> {
        self.mem_lock().get(key).cloned()
    }

    /// Removes `key` without touching the hit/miss counters — the evict
    /// partner of [`Cache::probe`], whose lookup was never counted.
    pub fn evict_uncounted(&self, key: &[u8]) {
        self.mem_lock().remove(key);
    }

    /// Removes `key` after its cached verdict failed revalidation,
    /// reclassifying the hit its lookup just counted as a miss (the
    /// caller falls through to a fresh solve). The disk tier is
    /// append-only; the re-solve's insert appends a superseding record,
    /// and load's later-record-wins rule retires the bad one.
    pub fn evict(&self, key: &[u8]) {
        if self.mem_lock().remove(key).is_some() {
            self.hits.fetch_sub(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a definitive verdict; proved keys also go to disk when
    /// the disk tier is enabled.
    pub fn insert(&self, key: Vec<u8>, verdict: CachedVerdict) {
        let cert = match &verdict {
            CachedVerdict::Proved { cert } => Some(*cert),
            CachedVerdict::Refuted(_) => None,
        };
        let fresh = self.mem_lock().insert(key.clone(), verdict).is_none();
        if let (true, Some(cert)) = (fresh, cert) {
            if let Some(seg) = &self.disk {
                let mut seg = seg.lock().unwrap_or_else(|e| e.into_inner());
                append_proved(&mut seg, &key, cert);
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Whether proved entries must carry a certificate fingerprint.
    pub fn requires_cert(&self) -> bool {
        self.require_cert
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.mem_lock().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Poisons the memory-tier mutex the way a panicking lock holder
    /// would. Regression tests (and sim scenarios) use this to verify
    /// that one poisoned query cannot take the cache down with it.
    #[doc(hidden)]
    pub fn poison_mem_for_test(&self) {
        std::thread::scope(|s| {
            let _ = s
                .spawn(|| {
                    let _guard = self.mem.lock().unwrap();
                    panic!("poison the cache lock (test)");
                })
                .join();
        });
    }
}

/// FNV-1a-64 over a record's payload, the per-record integrity check.
fn checksum(len_le: [u8; 4], key: &[u8], cert_le: [u8; 8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&len_le);
    eat(key);
    eat(&cert_le);
    h
}

/// Loads every proved-key file under `dir`: the legacy shared
/// `proved.bin` first, then each `seg-*.bin` in filename order (a
/// deterministic merge; proved records never conflict on meaning, so
/// any order is sound — filename order makes reloads reproducible).
/// Stale `tmp-*` files (a crash before the publishing rename) are
/// deleted: their writer died before claiming them visible.
fn load_dir(dir: &Path) -> Vec<(Vec<u8>, u64)> {
    let mut entries = Vec::new();
    load_file(&dir.join("proved.bin"), &mut entries);
    let mut segs: Vec<PathBuf> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("seg-") && name.ends_with(".bin") {
                segs.push(e.path());
            } else if name.starts_with("tmp-") {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
    segs.sort();
    for seg in &segs {
        load_file(seg, &mut entries);
    }
    entries
}

/// Loads one proved-key file, appending `(key, cert_fingerprint)` pairs.
///
/// A wrong or missing header means the file is not ours (or hopelessly
/// damaged): it is deleted outright. A record that fails its framing or
/// checksum is corruption mid-file: the file is truncated back to the
/// last good record, evicting the bad tail, and loading stops — the
/// affected queries simply re-solve and re-append. Only this one file
/// is affected either way; other processes' segments stay intact.
fn load_file(path: &Path, entries: &mut Vec<(Vec<u8>, u64)>) {
    let Ok(bytes) = std::fs::read(path) else {
        return;
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        if !bytes.is_empty() {
            let _ = std::fs::remove_file(path);
        }
        return;
    }
    let mut at = MAGIC.len();
    let mut last_good = at;
    loop {
        if at == bytes.len() {
            return; // clean end
        }
        let ok = (|| {
            let len_le: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
            let len = u32::from_le_bytes(len_le) as usize;
            let key = bytes.get(at + 4..at + 4 + len)?;
            let cert_le: [u8; 8] = bytes.get(at + 4 + len..at + 12 + len)?.try_into().ok()?;
            let sum_le: [u8; 8] = bytes.get(at + 12 + len..at + 20 + len)?.try_into().ok()?;
            if u64::from_le_bytes(sum_le) != checksum(len_le, key, cert_le) {
                return None;
            }
            entries.push((key.to_vec(), u64::from_le_bytes(cert_le)));
            Some(at + 20 + len)
        })();
        match ok {
            Some(next) => {
                at = next;
                last_good = next;
            }
            None => {
                // Corrupt record: evict it (and the unreachable tail).
                // Under buggify the truncation itself may "fail" (a
                // full disk, a read-only remount) — that must only
                // defer the cleanup to the next load, never change
                // what this load returns.
                if !sim::buggify("cache-load-skip-truncate") {
                    let _ = std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .and_then(|f| f.set_len(last_good as u64));
                }
                return;
            }
        }
    }
}

/// Builds the on-disk byte form of one proved record.
fn encode_record(key: &[u8], cert: u64) -> Vec<u8> {
    let len_le = (key.len() as u32).to_le_bytes();
    let cert_le = cert.to_le_bytes();
    let sum_le = checksum(len_le, key, cert_le).to_le_bytes();
    let mut record = Vec::with_capacity(key.len() + 20);
    record.extend_from_slice(&len_le);
    record.extend_from_slice(key);
    record.extend_from_slice(&cert_le);
    record.extend_from_slice(&sum_le);
    record
}

/// Appends one proved record to this instance's private segment,
/// creating and *publishing* the segment on first use: the header and
/// first record are written to an invisible `tmp-` file, which an
/// atomic rename then promotes to `seg-<pid>-<n>.bin`. Loaders never
/// see a segment without a complete header, and a crash at any point
/// loses at most this process's own unpublished or torn tail. I/O
/// failures only lose persistence, never correctness, so they are
/// silently ignored.
fn append_proved(seg: &mut Segment, key: &[u8], cert: u64) {
    let record = encode_record(key, cert);
    if let Some(path) = &seg.path {
        // Steady state: one single-writer append per record. Torn tails
        // (crash mid-write) are truncated away by the next load.
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(path) {
            let _ = sim::io::write_all(&mut f, &record);
        }
        return;
    }
    let _ = std::fs::create_dir_all(&seg.dir);
    let pid = std::process::id();
    let nonce = SEG_NONCE.fetch_add(1, Ordering::Relaxed);
    let tmp = seg.dir.join(format!("tmp-{pid}-{nonce}"));
    let published = seg.dir.join(format!("seg-{pid}-{nonce}.bin"));
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&tmp)
    else {
        return;
    };
    let mut first = Vec::with_capacity(MAGIC.len() + record.len());
    first.extend_from_slice(MAGIC);
    first.extend_from_slice(&record);
    if sim::io::write_all(&mut f, &first).is_err() {
        return;
    }
    drop(f);
    if sim::io::rename(&tmp, &published).is_ok() {
        // If the rename was *lost* (simulated crash), later appends
        // will fail to open the path and quietly lose persistence —
        // the correct semantics for a process whose publish died.
        seg.path = Some(published);
    }
}
