//! The query cache: an in-memory tier keyed on the query normal form,
//! plus an optional on-disk tier so repeated fig11/ablation runs skip
//! already-proven obligations.
//!
//! Only definitive verdicts are cached: `Proved` (with the fingerprint
//! of its checker-accepted proof certificate), and `Refuted` with its
//! portable counterexample. `Unknown`/`Interrupted` depend on budgets
//! and cancellation, so they are never cached. The disk tier stores
//! proved keys only, in a checksummed length-prefixed binary format
//! under `target/serval-cache/` (env-gated via `SERVAL_CACHE`).
//!
//! A warm hit is treated as a *claim*, not a fact: every disk record
//! carries a checksum verified on load — a truncated or bit-flipped
//! record (crash mid-append, disk rot) evicts that record and the tail
//! behind it, turning corruption into a re-solve instead of a panic or
//! a silently wrong verdict. When the engine runs certified
//! (`SERVAL_CERT`), records whose stored certificate fingerprint is 0
//! (written by an uncertified run) are dropped on load for the same
//! reason: a hit must never launder an unchecked verdict into a
//! certified one. Callers evict entries that fail their own semantic
//! revalidation (e.g. a cached countermodel that no longer evaluates
//! false on the goal) via [`Cache::evict`].

use crate::solve::PortableModel;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached definitive verdict.
#[derive(Clone, Debug)]
pub enum CachedVerdict {
    /// The query was proved (assertions unsatisfiable).
    Proved {
        /// Fingerprint of the checker-accepted certificate backing the
        /// verdict (`serval_drat::hash_steps`); 0 = proved uncertified.
        cert: u64,
    },
    /// The query was refuted; the model is over canonical var indices,
    /// so it applies to any query with the same normal form.
    Refuted(PortableModel),
}

const MAGIC: &[u8; 8] = b"SRVCACH2";

/// The two-tier cache.
pub struct Cache {
    mem: Mutex<HashMap<Vec<u8>, CachedVerdict>>,
    disk: Option<PathBuf>,
    /// Drop proved records without a certificate fingerprint on load.
    require_cert: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cache {
    /// Creates a cache; with `Some(dir)`, proved keys persist to
    /// `dir/proved.bin` and are preloaded here. With `require_cert`,
    /// disk records lacking a certificate fingerprint are ignored.
    pub fn new(disk_dir: Option<PathBuf>, require_cert: bool) -> Cache {
        let mut mem = HashMap::new();
        let disk = disk_dir.map(|d| d.join("proved.bin"));
        if let Some(path) = &disk {
            // Later records win: a key re-proven (e.g. after an evict)
            // overwrites its earlier duplicate here.
            for (key, cert) in load_proved(path) {
                if require_cert && cert == 0 {
                    continue;
                }
                mem.insert(key, CachedVerdict::Proved { cert });
            }
        }
        Cache {
            mem: Mutex::new(mem),
            disk,
            require_cert,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&self, key: &[u8]) -> Option<CachedVerdict> {
        let found = self.mem.lock().unwrap().get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Removes `key` after its cached verdict failed revalidation,
    /// reclassifying the hit its lookup just counted as a miss (the
    /// caller falls through to a fresh solve). The disk tier is
    /// append-only; the re-solve's insert appends a superseding record,
    /// and load's later-record-wins rule retires the bad one.
    pub fn evict(&self, key: &[u8]) {
        if self.mem.lock().unwrap().remove(key).is_some() {
            self.hits.fetch_sub(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a definitive verdict; proved keys also go to disk when
    /// the disk tier is enabled.
    pub fn insert(&self, key: Vec<u8>, verdict: CachedVerdict) {
        let cert = match &verdict {
            CachedVerdict::Proved { cert } => Some(*cert),
            CachedVerdict::Refuted(_) => None,
        };
        let fresh = self
            .mem
            .lock()
            .unwrap()
            .insert(key.clone(), verdict)
            .is_none();
        if let (true, Some(cert)) = (fresh, cert) {
            if let Some(path) = &self.disk {
                append_proved(path, &key, cert);
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Whether proved entries must carry a certificate fingerprint.
    pub fn requires_cert(&self) -> bool {
        self.require_cert
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a-64 over a record's payload, the per-record integrity check.
fn checksum(len_le: [u8; 4], key: &[u8], cert_le: [u8; 8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&len_le);
    eat(key);
    eat(&cert_le);
    h
}

/// Loads the proved-key file: `(key, cert_fingerprint)` pairs.
///
/// A wrong or missing header means the file is not ours (or hopelessly
/// damaged): it is deleted outright. A record that fails its framing or
/// checksum is corruption mid-file: the file is truncated back to the
/// last good record, evicting the bad tail, and loading stops — the
/// affected queries simply re-solve and re-append.
fn load_proved(path: &Path) -> Vec<(Vec<u8>, u64)> {
    let Ok(bytes) = std::fs::read(path) else {
        return Vec::new();
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        if !bytes.is_empty() {
            let _ = std::fs::remove_file(path);
        }
        return Vec::new();
    }
    let mut entries = Vec::new();
    let mut at = MAGIC.len();
    let mut last_good = at;
    loop {
        if at == bytes.len() {
            return entries; // clean end
        }
        let ok = (|| {
            let len_le: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
            let len = u32::from_le_bytes(len_le) as usize;
            let key = bytes.get(at + 4..at + 4 + len)?;
            let cert_le: [u8; 8] = bytes.get(at + 4 + len..at + 12 + len)?.try_into().ok()?;
            let sum_le: [u8; 8] = bytes.get(at + 12 + len..at + 20 + len)?.try_into().ok()?;
            if u64::from_le_bytes(sum_le) != checksum(len_le, key, cert_le) {
                return None;
            }
            entries.push((key.to_vec(), u64::from_le_bytes(cert_le)));
            Some(at + 20 + len)
        })();
        match ok {
            Some(next) => {
                at = next;
                last_good = next;
            }
            None => {
                // Corrupt record: evict it (and the unreachable tail).
                let _ = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(last_good as u64));
                return entries;
            }
        }
    }
}

/// Appends one proved record, creating the file (with magic) on first
/// use. I/O failures only lose persistence, never correctness, so they
/// are silently ignored.
///
/// `create_new` decides atomically who writes the magic header: exactly
/// one opener wins file creation (and prepends MAGIC to its record);
/// everyone else sees `AlreadyExists` and appends a plain record. Each
/// record goes out as a single `O_APPEND` write, so concurrent
/// processes sharing `SERVAL_CACHE` cannot interleave inside a record.
fn append_proved(path: &Path, key: &[u8], cert: u64) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut record = Vec::with_capacity(key.len() + 28);
    let mut f = match std::fs::OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(path)
    {
        Ok(f) => {
            record.extend_from_slice(MAGIC);
            f
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            match std::fs::OpenOptions::new().append(true).open(path) {
                Ok(f) => f,
                Err(_) => return,
            }
        }
        Err(_) => return,
    };
    let len_le = (key.len() as u32).to_le_bytes();
    let cert_le = cert.to_le_bytes();
    let sum_le = checksum(len_le, key, cert_le).to_le_bytes();
    record.extend_from_slice(&len_le);
    record.extend_from_slice(key);
    record.extend_from_slice(&cert_le);
    record.extend_from_slice(&sum_le);
    let _ = f.write_all(&record);
}
