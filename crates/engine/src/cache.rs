//! The query cache: an in-memory tier keyed on the query normal form,
//! plus an optional on-disk tier so repeated fig11/ablation runs skip
//! already-proven obligations.
//!
//! Only definitive verdicts are cached: `Proved`, and `Refuted` with its
//! portable counterexample. `Unknown`/`Interrupted` depend on budgets
//! and cancellation, so they are never cached. The disk tier stores
//! proved keys only, in a length-prefixed binary format under
//! `target/serval-cache/` (env-gated via `SERVAL_CACHE`); a truncated
//! tail (e.g. after a crash mid-append) is tolerated on load.

use crate::solve::PortableModel;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached definitive verdict.
#[derive(Clone, Debug)]
pub enum CachedVerdict {
    /// The query was proved (assertions unsatisfiable).
    Proved,
    /// The query was refuted; the model is over canonical var indices,
    /// so it applies to any query with the same normal form.
    Refuted(PortableModel),
}

const MAGIC: &[u8; 8] = b"SRVCACH1";

/// The two-tier cache.
pub struct Cache {
    mem: Mutex<HashMap<Vec<u8>, CachedVerdict>>,
    disk: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cache {
    /// Creates a cache; with `Some(dir)`, proved keys persist to
    /// `dir/proved.bin` and are preloaded here.
    pub fn new(disk_dir: Option<PathBuf>) -> Cache {
        let mut mem = HashMap::new();
        let disk = disk_dir.map(|d| d.join("proved.bin"));
        if let Some(path) = &disk {
            for key in load_proved(path) {
                mem.insert(key, CachedVerdict::Proved);
            }
        }
        Cache {
            mem: Mutex::new(mem),
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&self, key: &[u8]) -> Option<CachedVerdict> {
        let found = self.mem.lock().unwrap().get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a definitive verdict; proved keys also go to disk when
    /// the disk tier is enabled.
    pub fn insert(&self, key: Vec<u8>, verdict: CachedVerdict) {
        let fresh = self
            .mem
            .lock()
            .unwrap()
            .insert(key.clone(), verdict.clone())
            .is_none();
        if fresh && matches!(verdict, CachedVerdict::Proved) {
            if let Some(path) = &self.disk {
                append_proved(path, &key);
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Loads the proved-key file, stopping at the first malformed record.
fn load_proved(path: &Path) -> Vec<Vec<u8>> {
    let Ok(bytes) = std::fs::read(path) else {
        return Vec::new();
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Vec::new();
    }
    let mut keys = Vec::new();
    let mut at = MAGIC.len();
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        if at + len > bytes.len() {
            break; // truncated tail: keep what we have
        }
        keys.push(bytes[at..at + len].to_vec());
        at += len;
    }
    keys
}

/// Appends one proved key, creating the file (with magic) on first use.
/// I/O failures only lose persistence, never correctness, so they are
/// silently ignored.
///
/// `create_new` decides atomically who writes the magic header: exactly
/// one opener wins file creation (and prepends MAGIC to its record);
/// everyone else sees `AlreadyExists` and appends a plain record. Each
/// record goes out as a single `O_APPEND` write, so concurrent
/// processes sharing `SERVAL_CACHE` cannot interleave inside a record.
fn append_proved(path: &Path, key: &[u8]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut record = Vec::with_capacity(key.len() + 12);
    let mut f = match std::fs::OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(path)
    {
        Ok(f) => {
            record.extend_from_slice(MAGIC);
            f
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            match std::fs::OpenOptions::new().append(true).open(path) {
                Ok(f) => f,
                Err(_) => return,
            }
        }
        Err(_) => return,
    };
    record.extend_from_slice(&(key.len() as u32).to_le_bytes());
    record.extend_from_slice(key);
    let _ = f.write_all(&record);
}
