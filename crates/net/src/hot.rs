//! Hot-query detection and the replicated hot tier.
//!
//! Shard routing pins each normal form to one shard, which is what makes
//! cache partitioning work — but it also means a query every client
//! submits (a common invariant lemma, a shared precondition) funnels its
//! whole load through one shard. The hot tier is the escape valve: a
//! repeat-key counter tracks how often each normal form is *submitted*,
//! and once a form crosses the threshold its definitive verdict is
//! promoted into a tier shared by (replicated across) all shards, where
//! any of them — and the dispatch path itself, before routing — can
//! answer it without touching the home shard.
//!
//! Only definitive, already-earned verdicts are promoted (`Proved` keeps
//! its certificate fingerprint, `Refuted` its countermodel), so the tier
//! can never invent an answer — at worst the `net-hot-skip` buggify
//! point suppresses a promotion and the home shard keeps answering from
//! its own cache. Both maps are size-capped; at the cap, new keys simply
//! stop being counted/promoted (degraded detection, never unsoundness).

use crate::fnv64;
use crate::wire::WireVerdict;
use serval_check::sim;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on tracked repeat counters.
const MAX_COUNTS: usize = 1 << 20;
/// Cap on promoted entries.
const MAX_ENTRIES: usize = 1 << 16;

/// A promoted verdict.
#[derive(Clone, Debug)]
pub struct HotEntry {
    /// The definitive verdict (`Proved` or `Refuted` only).
    pub verdict: WireVerdict,
    /// Certificate fingerprint for proved entries (0 = uncertified).
    pub cert: u64,
}

/// The replicated hot tier. One instance is shared by every shard.
pub struct HotTier {
    threshold: u32,
    /// Normal-form hash → submission count. Keyed on the 64-bit hash
    /// (not the bytes) to keep the counter map cheap; a hash collision
    /// can only *promote early*, and promotion stores the full bytes, so
    /// collisions never produce a wrong answer.
    counts: Mutex<HashMap<u64, u32>>,
    /// Full normal-form bytes → promoted verdict.
    entries: Mutex<HashMap<Vec<u8>, HotEntry>>,
    hits: AtomicU64,
}

impl HotTier {
    /// A tier promoting after `threshold` submissions; 0 disables it.
    pub fn new(threshold: u32) -> HotTier {
        HotTier {
            threshold,
            counts: Mutex::new(HashMap::new()),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
        }
    }

    /// Records one submission of `core_bytes`; returns true when the
    /// form has crossed the promotion threshold.
    pub fn note(&self, core_bytes: &[u8]) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut counts = self.counts.lock().unwrap_or_else(|p| p.into_inner());
        let h = fnv64(core_bytes);
        if let Some(c) = counts.get_mut(&h) {
            *c = c.saturating_add(1);
            return *c >= self.threshold;
        }
        if counts.len() < MAX_COUNTS {
            counts.insert(h, 1);
            return 1 >= self.threshold;
        }
        false
    }

    /// Looks up a promoted verdict (counts as a hot hit on success).
    pub fn get(&self, core_bytes: &[u8]) -> Option<HotEntry> {
        if self.threshold == 0 {
            return None;
        }
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let hit = entries.get(core_bytes).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Promotes a definitive verdict for a form that [`HotTier::note`]
    /// reported hot. Non-definitive verdicts and the `net-hot-skip`
    /// buggify point (degraded detection is soundness-preserving) are
    /// ignored.
    pub fn promote(&self, core_bytes: &[u8], verdict: &WireVerdict, cert: u64) {
        if self.threshold == 0
            || matches!(verdict, WireVerdict::Unknown | WireVerdict::Interrupted)
            || sim::buggify("net-hot-skip")
        {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if entries.len() >= MAX_ENTRIES && !entries.contains_key(core_bytes) {
            return;
        }
        entries
            .entry(core_bytes.to_vec())
            .or_insert_with(|| HotEntry { verdict: verdict.clone(), cert });
    }

    /// Hot hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Promoted entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether nothing has been promoted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
