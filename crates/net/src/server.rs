//! servald's TCP front end: accept loop, per-connection reader/writer
//! pair, long-lived shard threads, and per-client backpressure.
//!
//! Threading model (all std, no async runtime):
//!
//! - One accept thread. Each connection gets a *reader* thread (owns the
//!   socket's read half, decodes frames, validates and routes batches)
//!   and a *writer* thread (owns the write half, assembles replies in
//!   frame order).
//! - One long-lived thread per shard, consuming [`ShardJob`]s from an
//!   unbounded channel and answering over the job's own reply channel.
//!   Shards never touch client sockets, so a client that stops reading
//!   can only stall its *own* writer — other clients' batches keep
//!   flowing through the shards untouched.
//! - Backpressure: a connection may have at most `max_inflight`
//!   unanswered `Batch` frames (a closable counting gate between reader
//!   and writer). Past that the reader simply stops reading, and TCP's
//!   own flow control pushes back on the client.
//!
//! Replies preserve frame order per connection, and within a batch the
//! outcomes are reassembled into submission order by slot index —
//! whichever order the shards finish in ([`collect_batch`]).

use crate::service::{NetCfg, RoutedQuery, ServerCore};
use crate::wire::{self, Msg, WireOutcome, WireVerdict, SHARD_HOT};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One routed bucket headed for a shard thread, with the reply channel
/// the connection writer is collecting from.
struct ShardJob {
    batch: Vec<RoutedQuery>,
    reply: Sender<(usize, WireOutcome)>,
}

/// What the reader hands the writer, in frame order.
enum Reply {
    /// Write this message now.
    Now(Msg),
    /// Write this message, then close the connection.
    CloseAfter(Msg),
    /// A dispatched batch: collect the shard results, then write the
    /// `BatchReply` (and release one in-flight slot).
    Batch {
        id: u64,
        slots: Vec<Option<WireOutcome>>,
        rx: Receiver<(usize, WireOutcome)>,
    },
}

/// A closable counting gate: the per-connection in-flight frame bound.
struct Gate {
    max: usize,
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate { max: max.max(1), state: Mutex::new((0, false)), cv: Condvar::new() }
    }

    /// Blocks until a slot frees up; false once the gate is closed.
    fn acquire(&self) -> bool {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if g.1 {
                return false;
            }
            if g.0 < self.max {
                g.0 += 1;
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn release(&self) {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        g.0 = g.0.saturating_sub(1);
        drop(g);
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        g.1 = true;
        drop(g);
        self.cv.notify_all();
    }
}

/// Reassembles a batch into submission order: slots already answered
/// (hot-tier hits) stay put, shard results land by slot index in
/// whatever order the shards finish. Slots still empty when every shard
/// sender is gone (shutdown, shard death) become error outcomes — the
/// client always gets exactly one outcome per query.
fn collect_batch(
    mut slots: Vec<Option<WireOutcome>>,
    rx: &Receiver<(usize, WireOutcome)>,
) -> Vec<WireOutcome> {
    let mut missing = slots.iter().filter(|s| s.is_none()).count();
    while missing > 0 {
        match rx.recv() {
            Ok((slot, outcome)) => {
                if slots[slot].is_none() {
                    missing -= 1;
                }
                slots[slot] = Some(outcome);
            }
            Err(_) => break,
        }
    }
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or(WireOutcome {
                verdict: WireVerdict::Unknown,
                cert: 0,
                cache_hit: false,
                shard: SHARD_HOT,
                wall_micros: 0,
                stats: None,
                error: Some("server shutting down".to_string()),
            })
        })
        .collect()
}

/// The listening server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting, closes live connections, and drains the shards.
pub struct Server {
    core: Arc<ServerCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shard_txs: Mutex<Option<Vec<Sender<ShardJob>>>>,
    shard_threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and shard threads.
    pub fn bind(addr: &str, cfg: NetCfg) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(ServerCore::new(cfg));

        let mut shard_txs = Vec::new();
        let mut shard_threads = Vec::new();
        for shard in core.shards() {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let shard = Arc::clone(shard);
            shard_txs.push(tx);
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("servald-shard-{}", shard.index))
                    .spawn(move || {
                        for job in rx {
                            for item in shard.discharge(job.batch) {
                                let _ = job.reply.send(item);
                            }
                        }
                    })
                    .expect("spawn shard thread"),
            );
        }

        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let txs = shard_txs.clone();
            std::thread::Builder::new()
                .name("servald-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let watch = match stream.try_clone() {
                            Ok(w) => w,
                            Err(_) => continue,
                        };
                        let core = Arc::clone(&core);
                        let txs = txs.clone();
                        let handle = std::thread::Builder::new()
                            .name("servald-conn".to_string())
                            .spawn(move || connection(stream, core, txs))
                            .expect("spawn connection thread");
                        conns.lock().unwrap_or_else(|p| p.into_inner()).push((watch, handle));
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            core,
            addr: local,
            stop,
            accept: Some(accept),
            shard_txs: Mutex::new(Some(shard_txs)),
            shard_threads,
            conns,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service core (stats, shards).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    fn stop_inner(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Force live connections down, then join their threads.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for (stream, _) in &conns {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, handle) in conns {
            let _ = handle.join();
        }
        // Closing the job channels lets the shard threads drain and exit.
        self.shard_txs.lock().unwrap_or_else(|p| p.into_inner()).take();
        for handle in self.shard_threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stops the server and waits for every thread to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One connection's reader: handshake, then frames until EOF/error.
fn connection(stream: TcpStream, core: Arc<ServerCore>, shard_txs: Vec<Sender<ShardJob>>) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let max_frame = core.cfg().max_frame;
    let gate = Arc::new(Gate::new(core.cfg().max_inflight));

    // Writer thread: drains replies in frame order.
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let writer = {
        let core = Arc::clone(&core);
        let gate = Arc::clone(&gate);
        let mut write_half = stream;
        std::thread::Builder::new()
            .name("servald-conn-writer".to_string())
            .spawn(move || {
                for reply in reply_rx {
                    let (payload, close) = match reply {
                        Reply::Now(msg) => (wire::encode_msg(&msg), false),
                        Reply::CloseAfter(msg) => (wire::encode_msg(&msg), true),
                        Reply::Batch { id, slots, rx } => {
                            let results = collect_batch(slots, &rx);
                            gate.release();
                            let reply =
                                Msg::BatchReply { id, results, stats: core.stats() };
                            (wire::encode_msg(&reply), false)
                        }
                    };
                    if wire::write_frame(&mut write_half, &payload).is_err() || close {
                        break;
                    }
                }
                // Unblock a reader stuck on the gate or on a read.
                gate.close();
                let _ = write_half.flush();
                let _ = write_half.shutdown(Shutdown::Both);
            })
            .expect("spawn connection writer")
    };

    let mut greeted = false;
    loop {
        let payload = match wire::read_frame(&mut read_half, max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean EOF
            Err(wire::WireError::Io(_)) => break,
            Err(e) => {
                // Truncated / oversize / garbage framing: report and drop
                // the connection. Only this client is affected.
                core.note_protocol_error();
                let _ = reply_tx.send(Reply::CloseAfter(Msg::Error { msg: e.to_string() }));
                break;
            }
        };
        let msg = match wire::decode_msg(&payload) {
            Ok(m) => m,
            Err(e) => {
                core.note_protocol_error();
                let _ = reply_tx.send(Reply::CloseAfter(Msg::Error { msg: e.to_string() }));
                break;
            }
        };
        core.note_frame();
        match msg {
            Msg::Hello { version } if version == wire::PROTO_VERSION => {
                greeted = true;
                if reply_tx.send(Reply::Now(core.hello_ack())).is_err() {
                    break;
                }
            }
            Msg::Hello { version } => {
                core.note_protocol_error();
                let _ = reply_tx.send(Reply::CloseAfter(Msg::Error {
                    msg: format!("unsupported protocol version {version}"),
                }));
                break;
            }
            _ if !greeted => {
                core.note_protocol_error();
                let _ = reply_tx.send(Reply::CloseAfter(Msg::Error {
                    msg: "first frame must be Hello".to_string(),
                }));
                break;
            }
            Msg::Ping { token } => {
                if reply_tx.send(Reply::Now(Msg::Pong { token })).is_err() {
                    break;
                }
            }
            Msg::StatsReq => {
                let msg = Msg::StatsReply { stats: core.stats() };
                if reply_tx.send(Reply::Now(msg)).is_err() {
                    break;
                }
            }
            Msg::Batch { id, queries } => {
                // Validate before burning an in-flight slot: garbage is a
                // protocol error, not a queued job.
                if let Err(why) = core.check_batch(&queries) {
                    core.note_protocol_error();
                    let _ = reply_tx.send(Reply::CloseAfter(Msg::Error { msg: why }));
                    break;
                }
                if !gate.acquire() {
                    break; // writer is gone
                }
                let (mut slots, buckets) = core.place(queries);
                let (tx, rx) = mpsc::channel::<(usize, WireOutcome)>();
                for (home, batch) in buckets.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    if let Err(mpsc::SendError(job)) =
                        shard_txs[home].send(ShardJob { batch, reply: tx.clone() })
                    {
                        // Shard thread is gone (shutdown): answer the
                        // bucket with error outcomes instead of dropping
                        // the queries on the floor.
                        for rq in job.batch {
                            slots[rq.slot] = Some(WireOutcome {
                                verdict: WireVerdict::Unknown,
                                cert: 0,
                                cache_hit: false,
                                shard: home as u32,
                                wall_micros: 0,
                                stats: None,
                                error: Some("shard unavailable".to_string()),
                            });
                        }
                    }
                }
                drop(tx);
                if reply_tx.send(Reply::Batch { id, slots, rx }).is_err() {
                    break;
                }
            }
            Msg::HelloAck { .. }
            | Msg::BatchReply { .. }
            | Msg::Pong { .. }
            | Msg::StatsReply { .. }
            | Msg::Error { .. } => {
                core.note_protocol_error();
                let _ = reply_tx.send(Reply::CloseAfter(Msg::Error {
                    msg: "unexpected message direction".to_string(),
                }));
                break;
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    let _ = read_half.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod reassembly_tests {
    use super::*;

    fn out(shard: u32) -> WireOutcome {
        WireOutcome {
            verdict: WireVerdict::Proved,
            cert: shard as u64 + 1,
            cache_hit: false,
            shard,
            wall_micros: 0,
            stats: None,
            error: None,
        }
    }

    /// The cross-shard ordering pin: shard results arriving in *any*
    /// completion order land in exact submission order, interleaved with
    /// pre-answered hot slots.
    #[test]
    fn collect_batch_restores_submission_order() {
        let (tx, rx) = mpsc::channel();
        // Slot 2 was answered from the hot tier before dispatch.
        let slots = vec![None, None, Some(out(SHARD_HOT)), None, None];
        // Shards finish out of order: 4, 0, 3, 1.
        for slot in [4usize, 0, 3, 1] {
            tx.send((slot, out(slot as u32))).unwrap();
        }
        drop(tx);
        let results = collect_batch(slots, &rx);
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r.shard, SHARD_HOT);
            } else {
                assert_eq!(r.shard, i as u32, "slot {i} out of order");
            }
        }
    }

    /// Lost shard senders (shutdown mid-batch) degrade to error
    /// outcomes, never to a short or misaligned reply.
    #[test]
    fn collect_batch_fills_lost_slots_with_errors() {
        let (tx, rx) = mpsc::channel();
        tx.send((1usize, out(1))).unwrap();
        drop(tx);
        let results = collect_batch(vec![None, None, None], &rx);
        assert_eq!(results.len(), 3);
        assert!(results[0].error.is_some());
        assert_eq!(results[1].shard, 1);
        assert!(results[2].error.is_some());
    }
}
