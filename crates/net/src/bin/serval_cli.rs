//! serval-cli — client for a running `servald`.
//!
//! ```text
//! serval-cli ping              round-trip liveness probe
//! serval-cli stats             print the server's shard/hot-tier stats
//! serval-cli probe             discharge two hand-built queries remotely
//! serval-cli certikos [oN]     run the certikos refinement proof with all
//!                              obligations discharged over the wire
//! serval-cli parity [oN]       certikos remotely, then locally, and
//!                              compare verdicts — exits nonzero on any
//!                              mismatch or if fewer than 2 shards did work
//! ```
//!
//! The server address comes from `SERVAL_ADDR` or `--addr HOST:PORT`.
//! `parity` is the ci.sh loopback gate: it proves that routing a whole
//! workload through the sharded server changes nothing about the
//! verdicts.

use serval_core::report::{ProofReport, Verdict};
use serval_core::OptCfg;
use serval_ir::OptLevel;
use serval_monitors::certikos;
use serval_net::wire::ServerStats;
use serval_net::{Client, RemoteEngine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use std::sync::Arc;

fn main() {
    let mut addr =
        std::env::var("SERVAL_ADDR").unwrap_or_else(|_| "127.0.0.1:7557".to_string());
    let mut command: Option<String> = None;
    let mut level = OptLevel::O1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("serval-cli: --addr needs a value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: serval-cli [--addr HOST:PORT] ping|stats|probe|certikos|parity [o0|o1|o2]"
                );
                return;
            }
            "o0" | "O0" => level = OptLevel::O0,
            "o1" | "O1" => level = OptLevel::O1,
            "o2" | "O2" => level = OptLevel::O2,
            cmd if command.is_none() => command = Some(cmd.to_string()),
            other => {
                eprintln!("serval-cli: unexpected argument {other}");
                std::process::exit(2);
            }
        }
    }

    let code = match command.as_deref() {
        Some("ping") => ping(&addr),
        Some("stats") => stats(&addr),
        Some("probe") => probe(&addr),
        Some("certikos") => certikos_remote(&addr, level),
        Some("parity") => parity(&addr, level),
        _ => {
            eprintln!("serval-cli: expected one of ping|stats|probe|certikos|parity");
            2
        }
    };
    std::process::exit(code);
}

fn connect(addr: &str) -> Client {
    match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serval-cli: cannot reach servald at {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn ping(addr: &str) -> i32 {
    let mut client = connect(addr);
    match client.ping() {
        Ok(rtt) => {
            let info = client.info;
            println!(
                "pong from {addr} in {rtt:?} ({} shards x {} workers)",
                info.shards, info.shard_jobs
            );
            0
        }
        Err(e) => {
            eprintln!("serval-cli: ping failed: {e}");
            1
        }
    }
}

fn stats(addr: &str) -> i32 {
    let mut client = connect(addr);
    match client.server_stats() {
        Ok(stats) => {
            print_stats(&stats);
            0
        }
        Err(e) => {
            eprintln!("serval-cli: stats failed: {e}");
            1
        }
    }
}

fn print_stats(stats: &ServerStats) {
    println!("  shard    queued    solved      hits  cert-checked  sessions  fresh-groups");
    for row in &stats.shards {
        println!(
            "  {:>5} {:>9} {:>9} {:>9} {:>13} {:>9} {:>13}",
            row.shard,
            row.queued,
            row.solved,
            row.hits,
            row.cert_checked,
            row.mode_session,
            row.mode_fresh
        );
    }
    println!(
        "  hot tier: {} entries, {} hits | {} frames, {} protocol errors",
        stats.hot_entries, stats.hot_hits, stats.frames, stats.protocol_errors
    );
}

/// Two hand-built obligations: a bitvector tautology (proved, with a
/// certificate fingerprint when the server certifies) and a refutable
/// claim (countermodel mapped back onto our terms).
fn probe(addr: &str) -> i32 {
    let mut client = connect(addr);
    reset_ctx();
    let x = BV::fresh(32, "x");
    let m = BV::fresh(32, "m");
    let queries = vec![
        serval_engine::Query {
            label: "probe/and-le".to_string(),
            assumptions: vec![],
            goal: (x & m).ule(x),
            cfg: SolverConfig::default(),
        },
        serval_engine::Query {
            label: "probe/x-lt-10".to_string(),
            assumptions: vec![x.uge(BV::lit(32, 3))],
            goal: x.ult(BV::lit(32, 10)),
            cfg: SolverConfig::default(),
        },
    ];
    let outcomes = match client.submit_batch(queries) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serval-cli: probe batch failed: {e}");
            return 1;
        }
    };
    for out in &outcomes {
        let verdict = match &out.result {
            serval_smt::solver::VerifyResult::Proved => "proved".to_string(),
            serval_smt::solver::VerifyResult::Counterexample(m) => {
                format!("refuted (x = {:#x})", m.eval_bv(x.0))
            }
            serval_smt::solver::VerifyResult::Unknown => "unknown".to_string(),
            serval_smt::solver::VerifyResult::Interrupted => "interrupted".to_string(),
        };
        let cert = match out.cert {
            Some(c) => format!("cert {c:#018x}"),
            None => "uncertified".to_string(),
        };
        println!("  {:<16} {verdict:<28} {cert}  [{:?}]", out.label, out.wall);
    }
    if let Some(stats) = &client.last_stats {
        print_stats(stats);
    }
    0
}

fn run_certikos(level: OptLevel) -> ProofReport {
    certikos::proofs::prove_refinement(level, OptCfg::default(), SolverConfig::default())
}

fn certikos_remote(addr: &str, level: OptLevel) -> i32 {
    let remote = match RemoteEngine::connect(addr) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("serval-cli: cannot reach servald at {addr}: {e}");
            return 1;
        }
    };
    serval_engine::install_discharger(Arc::clone(&remote) as Arc<dyn serval_engine::Discharge>);
    let report = run_certikos(level);
    serval_engine::clear_discharger();
    print!("{}", report.render());
    let (sent, received) = remote.bytes();
    println!("  wire: {sent} bytes sent, {received} bytes received");
    if let Some(stats) = remote.last_stats() {
        print_stats(&stats);
    }
    i32::from(!report.all_proved())
}

/// One-word verdict kind; countermodels differ across runs legitimately
/// (any satisfying assignment is valid), so parity compares kinds.
fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Proved => "proved",
        Verdict::Counterexample(..) => "refuted",
        Verdict::Unknown => "unknown",
        Verdict::Interrupted => "interrupted",
    }
}

fn parity(addr: &str, level: OptLevel) -> i32 {
    let remote = match RemoteEngine::connect(addr) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("serval-cli: cannot reach servald at {addr}: {e}");
            return 1;
        }
    };
    println!("parity: certikos -{level:?} via remote servald at {addr}");
    serval_engine::install_discharger(Arc::clone(&remote) as Arc<dyn serval_engine::Discharge>);
    let remote_report = run_certikos(level);
    serval_engine::clear_discharger();
    let stats = remote.last_stats();

    println!("parity: certikos -{level:?} in-process");
    let local_report = run_certikos(level);

    let mut code = 0;
    if remote_report.theorems.len() != local_report.theorems.len() {
        eprintln!(
            "parity: theorem count differs (remote {}, local {})",
            remote_report.theorems.len(),
            local_report.theorems.len()
        );
        code = 1;
    }
    let mut mismatches = 0usize;
    for (r, l) in remote_report.theorems.iter().zip(&local_report.theorems) {
        let (rk, lk) = (verdict_kind(&r.verdict), verdict_kind(&l.verdict));
        if r.name != l.name || rk != lk {
            eprintln!("parity: MISMATCH {:<40} remote={rk} ({}) local={lk} ({})", r.name, r.name, l.name);
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("parity: {mismatches} verdict mismatches");
        code = 1;
    }

    let exercised = match &stats {
        Some(s) => {
            print_stats(s);
            s.shards.iter().filter(|row| row.queued > 0).count()
        }
        None => 0,
    };
    if exercised < 2 {
        eprintln!("parity: only {exercised} shard(s) exercised — need at least 2");
        code = 1;
    }
    println!(
        "parity: {} theorems, verdicts identical: {}, shards exercised: {exercised}",
        local_report.theorems.len(),
        code == 0 && mismatches == 0
    );
    code
}
