//! servald — the serval verification server.
//!
//! Binds `SERVAL_ADDR` (default `127.0.0.1:7557`; use port 0 for an
//! ephemeral port), builds `SERVAL_SHARDS` worker shards over the
//! engine's `SERVAL_JOBS` worker budget, and serves proof-discharge
//! batches until killed.
//!
//! Flags (each overrides the corresponding environment knob):
//!
//! ```text
//! servald [--addr HOST:PORT] [--addr-file PATH] [--shards N]
//!         [--jobs N] [--max-inflight N] [--hot-threshold N]
//! ```
//!
//! `--addr-file` writes the *bound* address (ephemeral port resolved) to
//! a file once the listener is up — scripts start servald on port 0 and
//! read the real address from there (see `ci.sh`).

use serval_net::service::NetCfg;
use serval_net::Server;
use std::io::Write;

fn main() {
    let mut cfg = NetCfg::from_env();
    let mut addr_file: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("servald: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--addr-file" => addr_file = Some(value("--addr-file").into()),
            "--shards" => cfg.shards = parse(&value("--shards"), "--shards").max(1),
            "--jobs" => cfg.engine.jobs = parse(&value("--jobs"), "--jobs").max(1),
            "--max-inflight" => {
                cfg.max_inflight = parse(&value("--max-inflight"), "--max-inflight").max(1)
            }
            "--hot-threshold" => {
                cfg.hot_threshold = parse(&value("--hot-threshold"), "--hot-threshold") as u32
            }
            "--help" | "-h" => {
                println!(
                    "usage: servald [--addr HOST:PORT] [--addr-file PATH] [--shards N] \
                     [--jobs N] [--max-inflight N] [--hot-threshold N]"
                );
                return;
            }
            other => {
                eprintln!("servald: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let addr = cfg.addr.clone();
    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("servald: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let core = server.core();
    println!(
        "servald listening on {} ({} shards x {} workers, max_inflight={}, hot_threshold={})",
        server.local_addr(),
        core.shards().len(),
        core.shard_jobs(),
        core.cfg().max_inflight,
        core.cfg().hot_threshold,
    );
    if let Some(path) = addr_file {
        // Write-then-rename so readers polling the path never observe a
        // half-written address.
        let tmp = path.with_extension("tmp");
        let write = std::fs::File::create(&tmp)
            .and_then(|mut f| writeln!(f, "{}", server.local_addr()))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("servald: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    loop {
        std::thread::park();
    }
}

fn parse(v: &str, flag: &str) -> usize {
    v.trim().parse().unwrap_or_else(|_| {
        eprintln!("servald: {flag} expects an integer, got {v:?}");
        std::process::exit(2);
    })
}
