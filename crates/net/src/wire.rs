//! The servald wire protocol: length-prefixed frames of versioned binary
//! messages.
//!
//! Framing: every message is `[u32 LE payload length][payload]`. The
//! length is bounded by the receiver's `max_frame` — an oversize prefix
//! is a protocol error *before* any allocation, so a hostile client
//! cannot request a 4 GiB buffer with five bytes. Payloads start with a
//! one-byte message tag; queries travel as
//! [`serval_engine::form::wire_bytes`] cores, which the server re-decodes
//! through the fully validating [`serval_engine::form::wire_from_bytes`].
//!
//! Everything here is written against *untrusted* input: every read is
//! bounds-checked, every count is validated against the remaining byte
//! budget before allocation, and a decode error poisons only the one
//! connection that sent it. The property suite in `tests.rs` feeds this
//! module truncations, garbage, and bit flips.

use serval_engine::solve::PortableModel;
use serval_smt::solver::{QueryStats, SolverConfig};
use serval_smt::Rephase;
use std::io::{Read, Write};
use std::time::Duration;

/// Protocol version, exchanged in `Hello`/`HelloAck`. Bump on any
/// incompatible change to the message or core encodings.
///
/// v2: `SolverConfig` gained restart/rephase/inprocess/polarity fields
/// and `QueryStats` gained the four inprocessing counters.
///
/// v3: `SolverConfig` gained `session_bve` and `lrat`; `ShardStatsRow`
/// gained the discharge-mode counters.
pub const PROTO_VERSION: u32 = 3;

/// Default bound on a single frame's payload. Large enough for a whole
/// certikos refinement batch chunk, small enough that a hostile length
/// prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame or a payload field overran the frame.
    Truncated,
    /// The length prefix exceeds the receiver's frame bound.
    Oversize {
        /// The advertised payload length.
        len: u64,
        /// The receiver's bound.
        max: u64,
    },
    /// Structurally invalid bytes (bad tag, bad count, bad query core).
    Garbage(&'static str),
    /// Peer speaks a different protocol version.
    BadVersion(u32),
    /// The underlying socket failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds bound {max}")
            }
            WireError::Garbage(why) => write!(f, "malformed message: {why}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

// --------------------------------------------------------------------------
// Messages
// --------------------------------------------------------------------------

/// One query on the wire: a label, solver parameters, and the validated
/// byte serialization of its [`serval_engine::form::WireCore`].
#[derive(Clone, Debug)]
pub struct WireQuery {
    /// Theorem label, echoed back in reports.
    pub label: String,
    /// Solver configuration (budget + search parameters).
    pub cfg: SolverConfig,
    /// `form::wire_bytes` of the query core. The server keys routing and
    /// hot-query detection on these bytes (they are alpha-invariant),
    /// and decodes them through `form::wire_from_bytes` before solving.
    pub core_bytes: Vec<u8>,
}

/// A verdict on the wire. Countermodels are phrased over the *wire
/// core's* canonical variable numbering, so the client can map them back
/// onto its own terms with its `BackMap`.
#[derive(Clone, Debug)]
pub enum WireVerdict {
    /// Goal proved (certificate fingerprint in [`WireOutcome::cert`]).
    Proved,
    /// Goal refuted by this countermodel.
    Refuted(PortableModel),
    /// Budget exhausted or certificate rejected (see `error`).
    Unknown,
    /// Solve cancelled.
    Interrupted,
}

/// Sentinel shard id for verdicts served from the replicated hot tier
/// (no single shard did the work).
pub const SHARD_HOT: u32 = u32::MAX;

/// One query's outcome on the wire.
#[derive(Clone, Debug)]
pub struct WireOutcome {
    /// The verdict.
    pub verdict: WireVerdict,
    /// Certificate fingerprint backing a proved verdict (0 = none).
    pub cert: u64,
    /// Whether the verdict came from a cache (shard verdict cache or the
    /// hot tier).
    pub cache_hit: bool,
    /// Which shard answered ([`SHARD_HOT`] for hot-tier hits).
    pub shard: u32,
    /// Server-side wall time for this query, in microseconds.
    pub wall_micros: u64,
    /// Solver statistics (absent for cache hits and trivial queries).
    pub stats: Option<QueryStats>,
    /// Worker panic / certificate rejection / malformed-query message.
    pub error: Option<String>,
}

/// Per-shard counters, surfaced in every batch reply so clients see how
/// work spread across the shards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsRow {
    /// Shard index.
    pub shard: u32,
    /// Queries routed to this shard (excludes hot-tier hits).
    pub queued: u64,
    /// Queries the shard resolved by solving (cache misses).
    pub solved: u64,
    /// Queries the shard answered from its verdict-cache partition.
    pub hits: u64,
    /// Proof certificates checked by this shard's engine.
    pub cert_checked: u64,
    /// Assumption groups this shard's engine discharged as live
    /// sessions vs fresh solvers (the discharge-mode split; see
    /// `serval_engine::DischargeMode`).
    pub mode_session: u64,
    /// See [`ShardStatsRow::mode_session`].
    pub mode_fresh: u64,
}

/// Server-wide stats snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// One row per shard.
    pub shards: Vec<ShardStatsRow>,
    /// Queries answered by the replicated hot tier.
    pub hot_hits: u64,
    /// Entries currently promoted to the hot tier.
    pub hot_entries: u64,
    /// Frames accepted across all connections.
    pub frames: u64,
    /// Protocol errors across all connections.
    pub protocol_errors: u64,
}

/// The protocol's message set.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → server greeting; must be the first frame.
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u32,
    },
    /// Server → client greeting reply, advertising its shape.
    HelloAck {
        /// The server's [`PROTO_VERSION`].
        version: u32,
        /// Worker shard count.
        shards: u32,
        /// Pool workers per shard.
        shard_jobs: u32,
        /// Per-connection in-flight frame bound (clients must not have
        /// more than this many unanswered `Batch` frames).
        max_inflight: u32,
        /// Hot-tier promotion threshold (0 = disabled).
        hot_threshold: u32,
    },
    /// A batch of queries. Replies arrive in frame order per connection;
    /// `id` is echoed so clients can cross-check.
    Batch {
        /// Client-chosen frame id, echoed in the reply.
        id: u64,
        /// The queries, in submission order.
        queries: Vec<WireQuery>,
    },
    /// Submission-order outcomes for a `Batch`.
    BatchReply {
        /// The `Batch` frame's id.
        id: u64,
        /// One outcome per query, in submission order.
        results: Vec<WireOutcome>,
        /// Stats snapshot taken when the reply was assembled.
        stats: ServerStats,
    },
    /// Liveness probe.
    Ping {
        /// Echoed in the `Pong`.
        token: u64,
    },
    /// `Ping` reply.
    Pong {
        /// The `Ping`'s token.
        token: u64,
    },
    /// Stats request.
    StatsReq,
    /// Stats reply.
    StatsReply {
        /// Current server stats.
        stats: ServerStats,
    },
    /// Fatal protocol error; the sender closes the connection after it.
    Error {
        /// Human-readable reason.
        msg: String,
    },
}

const T_HELLO: u8 = 0x01;
const T_BATCH: u8 = 0x02;
const T_PING: u8 = 0x03;
const T_STATS: u8 = 0x04;
const T_HELLO_ACK: u8 = 0x81;
const T_BATCH_REPLY: u8 = 0x82;
const T_PONG: u8 = 0x83;
const T_STATS_REPLY: u8 = 0x84;
const T_ERROR: u8 = 0x7f;

/// Bound on label / error-string lengths (anything longer is hostile).
const MAX_STRING: usize = 1 << 16;

// --------------------------------------------------------------------------
// Framing
// --------------------------------------------------------------------------

/// Writes one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF *between* frames; an EOF
/// mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 { Ok(None) } else { Err(WireError::Truncated) };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(WireError::Oversize { len: len as u64, max: max_frame as u64 });
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(Some(payload))
}

/// Incremental frame reassembly for byte streams that arrive in chunks
/// (the sim scenario feeds connections a few bytes at a time to explore
/// torn-frame interleavings).
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// A reader enforcing `max_frame` on every length prefix.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), max_frame }
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if one is buffered. An oversize
    /// length prefix fails immediately — no amount of further input can
    /// make it valid.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(WireError::Oversize { len: len as u64, max: self.max_frame as u64 });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

// --------------------------------------------------------------------------
// Primitive encoding
// --------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    push_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_bytes(out, s.as_bytes());
}

/// Bounds-checked little-endian cursor over an untrusted payload.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, at: 0 }
    }
    fn remaining(&self) -> usize {
        self.b.len() - self.at
    }
    fn done(&self) -> Result<(), WireError> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(WireError::Garbage("trailing bytes after message"))
        }
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.b.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(v)
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Garbage("boolean field not 0/1")),
        }
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.b.get(self.at..self.at + 4).ok_or(WireError::Truncated)?;
        self.at += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.b.get(self.at..self.at + 8).ok_or(WireError::Truncated)?;
        self.at += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, WireError> {
        let s = self.b.get(self.at..self.at + 16).ok_or(WireError::Truncated)?;
        self.at += 16;
        Ok(u128::from_le_bytes(s.try_into().unwrap()))
    }
    /// Reads a count whose elements need at least `min_elem` bytes each.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.remaining() {
            return Err(WireError::Garbage("count overruns frame"));
        }
        Ok(n)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.count(1)?;
        let s = self.b.get(self.at..self.at + n).ok_or(WireError::Truncated)?;
        self.at += n;
        Ok(s.to_vec())
    }
    fn string(&mut self) -> Result<String, WireError> {
        let raw = self.bytes()?;
        if raw.len() > MAX_STRING {
            return Err(WireError::Garbage("string field too long"));
        }
        String::from_utf8(raw).map_err(|_| WireError::Garbage("string field not UTF-8"))
    }
}

// --------------------------------------------------------------------------
// Field-group codecs
// --------------------------------------------------------------------------

fn push_cfg(out: &mut Vec<u8>, cfg: &SolverConfig) {
    match cfg.conflict_budget {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            push_u64(out, b);
        }
    }
    push_u64(out, cfg.restart_base);
    push_u64(out, cfg.var_decay.to_bits());
    out.push(cfg.default_phase as u8);
    out.push(cfg.restart_geometric as u8);
    out.push(match cfg.rephase {
        Rephase::Off => 0,
        Rephase::Invert => 1,
        Rephase::Reset => 2,
    });
    out.push(cfg.inprocess as u8);
    out.push(cfg.polarity as u8);
    out.push(cfg.session_bve as u8);
    out.push(cfg.lrat as u8);
}

fn read_cfg(rd: &mut Rd) -> Result<SolverConfig, WireError> {
    let conflict_budget = match rd.u8()? {
        0 => None,
        1 => Some(rd.u64()?),
        _ => return Err(WireError::Garbage("bad conflict-budget tag")),
    };
    let restart_base = rd.u64()?;
    let var_decay = f64::from_bits(rd.u64()?);
    if !(0.0..=1.0).contains(&var_decay) {
        return Err(WireError::Garbage("var_decay out of range"));
    }
    let default_phase = rd.bool()?;
    let restart_geometric = rd.bool()?;
    let rephase = match rd.u8()? {
        0 => Rephase::Off,
        1 => Rephase::Invert,
        2 => Rephase::Reset,
        _ => return Err(WireError::Garbage("bad rephase tag")),
    };
    let inprocess = rd.bool()?;
    let polarity = rd.bool()?;
    let session_bve = rd.bool()?;
    let lrat = rd.bool()?;
    Ok(SolverConfig {
        conflict_budget,
        restart_base,
        var_decay,
        default_phase,
        restart_geometric,
        rephase,
        inprocess,
        polarity,
        session_bve,
        lrat,
    })
}

fn push_stats(out: &mut Vec<u8>, s: &QueryStats) {
    for v in [
        s.conflicts,
        s.decisions,
        s.propagations,
        s.restarts,
        s.learnts,
        s.clauses as u64,
        s.vars as u64,
        s.reused_clauses as u64,
        s.reused_vars as u64,
        s.reused_learnts,
        s.session_goals,
        s.presolve_terms_in as u64,
        s.presolve_terms_out as u64,
        s.presolve_vars_in as u64,
        s.presolve_vars_out as u64,
        s.eliminated_vars,
        s.subsumed,
        s.strengthened,
        s.resolvents,
        s.cert_steps,
        s.cert_wall.as_micros() as u64,
        s.wall.as_micros() as u64,
    ] {
        push_u64(out, v);
    }
}

fn read_stats(rd: &mut Rd) -> Result<QueryStats, WireError> {
    let mut v = [0u64; 22];
    for slot in &mut v {
        *slot = rd.u64()?;
    }
    Ok(QueryStats {
        conflicts: v[0],
        decisions: v[1],
        propagations: v[2],
        restarts: v[3],
        learnts: v[4],
        clauses: v[5] as usize,
        vars: v[6] as usize,
        reused_clauses: v[7] as usize,
        reused_vars: v[8] as usize,
        reused_learnts: v[9],
        session_goals: v[10],
        presolve_terms_in: v[11] as usize,
        presolve_terms_out: v[12] as usize,
        presolve_vars_in: v[13] as usize,
        presolve_vars_out: v[14] as usize,
        eliminated_vars: v[15],
        subsumed: v[16],
        strengthened: v[17],
        resolvents: v[18],
        cert_steps: v[19],
        cert_wall: Duration::from_micros(v[20]),
        wall: Duration::from_micros(v[21]),
    })
}

fn push_model(out: &mut Vec<u8>, pm: &PortableModel) {
    push_u32(out, pm.bvs.len() as u32);
    for &(k, v) in &pm.bvs {
        push_u32(out, k);
        push_u128(out, v);
    }
    push_u32(out, pm.bools.len() as u32);
    for &(k, b) in &pm.bools {
        push_u32(out, k);
        out.push(b as u8);
    }
    push_u32(out, pm.ufs.len() as u32);
    for (k, rows) in &pm.ufs {
        push_u32(out, *k);
        push_u32(out, rows.len() as u32);
        for (args, result) in rows {
            push_u32(out, args.len() as u32);
            for &a in args {
                push_u128(out, a);
            }
            push_u128(out, *result);
        }
    }
}

fn read_model(rd: &mut Rd) -> Result<PortableModel, WireError> {
    let mut pm = PortableModel::default();
    let n_bvs = rd.count(20)?;
    for _ in 0..n_bvs {
        let k = rd.u32()?;
        let v = rd.u128()?;
        pm.bvs.push((k, v));
    }
    let n_bools = rd.count(5)?;
    for _ in 0..n_bools {
        let k = rd.u32()?;
        let b = rd.bool()?;
        pm.bools.push((k, b));
    }
    let n_ufs = rd.count(8)?;
    for _ in 0..n_ufs {
        let k = rd.u32()?;
        let n_rows = rd.count(20)?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let n_args = rd.count(16)?;
            let mut args = Vec::with_capacity(n_args);
            for _ in 0..n_args {
                args.push(rd.u128()?);
            }
            let result = rd.u128()?;
            rows.push((args, result));
        }
        pm.ufs.push((k, rows));
    }
    Ok(pm)
}

fn push_outcome(out: &mut Vec<u8>, o: &WireOutcome) {
    match &o.verdict {
        WireVerdict::Proved => out.push(0),
        WireVerdict::Refuted(pm) => {
            out.push(1);
            push_model(out, pm);
        }
        WireVerdict::Unknown => out.push(2),
        WireVerdict::Interrupted => out.push(3),
    }
    push_u64(out, o.cert);
    out.push(o.cache_hit as u8);
    push_u32(out, o.shard);
    push_u64(out, o.wall_micros);
    match &o.stats {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            push_stats(out, s);
        }
    }
    match &o.error {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            push_str(out, e);
        }
    }
}

fn read_outcome(rd: &mut Rd) -> Result<WireOutcome, WireError> {
    let verdict = match rd.u8()? {
        0 => WireVerdict::Proved,
        1 => WireVerdict::Refuted(read_model(rd)?),
        2 => WireVerdict::Unknown,
        3 => WireVerdict::Interrupted,
        _ => return Err(WireError::Garbage("bad verdict tag")),
    };
    let cert = rd.u64()?;
    let cache_hit = rd.bool()?;
    let shard = rd.u32()?;
    let wall_micros = rd.u64()?;
    let stats = match rd.u8()? {
        0 => None,
        1 => Some(read_stats(rd)?),
        _ => return Err(WireError::Garbage("bad stats tag")),
    };
    let error = match rd.u8()? {
        0 => None,
        1 => Some(rd.string()?),
        _ => return Err(WireError::Garbage("bad error tag")),
    };
    Ok(WireOutcome { verdict, cert, cache_hit, shard, wall_micros, stats, error })
}

fn push_server_stats(out: &mut Vec<u8>, s: &ServerStats) {
    push_u32(out, s.shards.len() as u32);
    for row in &s.shards {
        push_u32(out, row.shard);
        push_u64(out, row.queued);
        push_u64(out, row.solved);
        push_u64(out, row.hits);
        push_u64(out, row.cert_checked);
        push_u64(out, row.mode_session);
        push_u64(out, row.mode_fresh);
    }
    push_u64(out, s.hot_hits);
    push_u64(out, s.hot_entries);
    push_u64(out, s.frames);
    push_u64(out, s.protocol_errors);
}

fn read_server_stats(rd: &mut Rd) -> Result<ServerStats, WireError> {
    let n = rd.count(52)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(ShardStatsRow {
            shard: rd.u32()?,
            queued: rd.u64()?,
            solved: rd.u64()?,
            hits: rd.u64()?,
            cert_checked: rd.u64()?,
            mode_session: rd.u64()?,
            mode_fresh: rd.u64()?,
        });
    }
    Ok(ServerStats {
        shards,
        hot_hits: rd.u64()?,
        hot_entries: rd.u64()?,
        frames: rd.u64()?,
        protocol_errors: rd.u64()?,
    })
}

// --------------------------------------------------------------------------
// Message codec
// --------------------------------------------------------------------------

/// Serializes a message into a frame payload (no length prefix).
pub fn encode_msg(m: &Msg) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        Msg::Hello { version } => {
            out.push(T_HELLO);
            push_u32(&mut out, *version);
        }
        Msg::HelloAck { version, shards, shard_jobs, max_inflight, hot_threshold } => {
            out.push(T_HELLO_ACK);
            push_u32(&mut out, *version);
            push_u32(&mut out, *shards);
            push_u32(&mut out, *shard_jobs);
            push_u32(&mut out, *max_inflight);
            push_u32(&mut out, *hot_threshold);
        }
        Msg::Batch { id, queries } => {
            out.push(T_BATCH);
            push_u64(&mut out, *id);
            push_u32(&mut out, queries.len() as u32);
            for q in queries {
                push_str(&mut out, &q.label);
                push_cfg(&mut out, &q.cfg);
                push_bytes(&mut out, &q.core_bytes);
            }
        }
        Msg::BatchReply { id, results, stats } => {
            out.push(T_BATCH_REPLY);
            push_u64(&mut out, *id);
            push_u32(&mut out, results.len() as u32);
            for r in results {
                push_outcome(&mut out, r);
            }
            push_server_stats(&mut out, stats);
        }
        Msg::Ping { token } => {
            out.push(T_PING);
            push_u64(&mut out, *token);
        }
        Msg::Pong { token } => {
            out.push(T_PONG);
            push_u64(&mut out, *token);
        }
        Msg::StatsReq => out.push(T_STATS),
        Msg::StatsReply { stats } => {
            out.push(T_STATS_REPLY);
            push_server_stats(&mut out, stats);
        }
        Msg::Error { msg } => {
            out.push(T_ERROR);
            push_str(&mut out, msg);
        }
    }
    out
}

/// Deserializes a frame payload. Every structural violation is reported
/// as an error — never a panic — because payloads come off a socket.
pub fn decode_msg(payload: &[u8]) -> Result<Msg, WireError> {
    let mut rd = Rd::new(payload);
    let msg = match rd.u8()? {
        T_HELLO => Msg::Hello { version: rd.u32()? },
        T_HELLO_ACK => Msg::HelloAck {
            version: rd.u32()?,
            shards: rd.u32()?,
            shard_jobs: rd.u32()?,
            max_inflight: rd.u32()?,
            hot_threshold: rd.u32()?,
        },
        T_BATCH => {
            let id = rd.u64()?;
            let n = rd.count(13)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                let label = rd.string()?;
                let cfg = read_cfg(&mut rd)?;
                let core_bytes = rd.bytes()?;
                queries.push(WireQuery { label, cfg, core_bytes });
            }
            Msg::Batch { id, queries }
        }
        T_BATCH_REPLY => {
            let id = rd.u64()?;
            let n = rd.count(16)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(read_outcome(&mut rd)?);
            }
            let stats = read_server_stats(&mut rd)?;
            Msg::BatchReply { id, results, stats }
        }
        T_PING => Msg::Ping { token: rd.u64()? },
        T_PONG => Msg::Pong { token: rd.u64()? },
        T_STATS => Msg::StatsReq,
        T_STATS_REPLY => Msg::StatsReply { stats: read_server_stats(&mut rd)? },
        T_ERROR => Msg::Error { msg: rd.string()? },
        _ => return Err(WireError::Garbage("unknown message tag")),
    };
    rd.done()?;
    Ok(msg)
}
