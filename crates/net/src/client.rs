//! The serval client: serialize obligations, stream them to `servald`,
//! reassemble submission-order verdicts.
//!
//! [`Client`] is a blocking, single-connection client. Batches are cut
//! into bounded chunks (`SERVAL_NET_CHUNK` queries per frame) and
//! pipelined up to the server's advertised in-flight window: the client
//! keeps at most `max_inflight` unanswered frames, interleaving sends
//! and receives so neither side's socket buffers can deadlock the
//! exchange. Replies arrive in frame order; within each reply, outcomes
//! are already in submission order, and countermodels are mapped back
//! onto the caller's terms through the `BackMap` kept from
//! serialization.
//!
//! [`RemoteEngine`] wraps a client in the [`Discharge`] seam, so
//! `serval_engine::install_discharger(Arc::new(remote))` redirects every
//! existing workload — the certikos refinement proof, the JIT checker
//! sweep — through the server without touching proof code.

use crate::wire::{self, Msg, ServerStats, WireOutcome, WireQuery, WireVerdict};
use serval_engine::form::{self, BackMap};
use serval_engine::{Discharge, Query, QueryOutcome};
use serval_smt::solver::VerifyResult;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Wire(wire::WireError),
    /// The peer sent a well-formed but protocol-violating message.
    Protocol(String),
    /// The server reported a fatal error frame.
    Server(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Protocol(why) => write!(f, "protocol: {why}"),
            NetError::Server(why) => write!(f, "server: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<wire::WireError> for NetError {
    fn from(e: wire::WireError) -> Self {
        NetError::Wire(e)
    }
}

/// The server's advertised shape, from its `HelloAck`.
#[derive(Clone, Copy, Debug)]
pub struct ServerInfo {
    /// Worker shard count.
    pub shards: u32,
    /// Pool workers per shard.
    pub shard_jobs: u32,
    /// Per-connection in-flight frame bound.
    pub max_inflight: u32,
    /// Hot-tier promotion threshold.
    pub hot_threshold: u32,
}

/// Default queries per `Batch` frame (`SERVAL_NET_CHUNK`).
const DEFAULT_CHUNK: usize = 64;

/// A blocking servald connection.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    chunk: usize,
    next_id: u64,
    /// The server's shape.
    pub info: ServerInfo,
    /// Stats snapshot from the most recent reply.
    pub last_stats: Option<ServerStats>,
    /// Payload bytes sent / received (frames included).
    pub bytes_sent: u64,
    /// See `bytes_sent`.
    pub bytes_received: u64,
}

impl Client {
    /// Connects and completes the `Hello`/`HelloAck` handshake.
    pub fn connect(addr: &str) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let chunk = std::env::var("SERVAL_NET_CHUNK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c >= 1)
            .unwrap_or(DEFAULT_CHUNK);
        let mut client = Client {
            stream,
            max_frame: wire::DEFAULT_MAX_FRAME,
            chunk,
            next_id: 1,
            info: ServerInfo { shards: 0, shard_jobs: 0, max_inflight: 1, hot_threshold: 0 },
            last_stats: None,
            bytes_sent: 0,
            bytes_received: 0,
        };
        client.send(&Msg::Hello { version: wire::PROTO_VERSION })?;
        match client.recv()? {
            Msg::HelloAck { version, shards, shard_jobs, max_inflight, hot_threshold } => {
                if version != wire::PROTO_VERSION {
                    return Err(NetError::Wire(wire::WireError::BadVersion(version)));
                }
                client.info = ServerInfo { shards, shard_jobs, max_inflight, hot_threshold };
                Ok(client)
            }
            Msg::Error { msg } => Err(NetError::Server(msg)),
            _ => Err(NetError::Protocol("expected HelloAck".to_string())),
        }
    }

    fn send(&mut self, msg: &Msg) -> Result<(), NetError> {
        let payload = wire::encode_msg(msg);
        self.bytes_sent += 4 + payload.len() as u64;
        wire::write_frame(&mut self.stream, &payload)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg, NetError> {
        let payload = wire::read_frame(&mut self.stream, self.max_frame)?
            .ok_or(NetError::Protocol("server closed the connection".to_string()))?;
        self.bytes_received += 4 + payload.len() as u64;
        Ok(wire::decode_msg(&payload)?)
    }

    /// Round-trip liveness probe; returns the wall time.
    pub fn ping(&mut self) -> Result<Duration, NetError> {
        let token = 0x5e4a1 ^ self.next_id;
        self.next_id += 1;
        let t0 = Instant::now();
        self.send(&Msg::Ping { token })?;
        match self.recv()? {
            Msg::Pong { token: t } if t == token => Ok(t0.elapsed()),
            Msg::Error { msg } => Err(NetError::Server(msg)),
            _ => Err(NetError::Protocol("expected matching Pong".to_string())),
        }
    }

    /// Fetches the server's stats snapshot.
    pub fn server_stats(&mut self) -> Result<ServerStats, NetError> {
        self.send(&Msg::StatsReq)?;
        match self.recv()? {
            Msg::StatsReply { stats } => {
                self.last_stats = Some(stats.clone());
                Ok(stats)
            }
            Msg::Error { msg } => Err(NetError::Server(msg)),
            _ => Err(NetError::Protocol("expected StatsReply".to_string())),
        }
    }

    fn recv_batch_reply(&mut self, id: u64) -> Result<Vec<WireOutcome>, NetError> {
        match self.recv()? {
            Msg::BatchReply { id: rid, results, stats } => {
                if rid != id {
                    return Err(NetError::Protocol(format!(
                        "reply id {rid} does not match frame id {id}"
                    )));
                }
                self.last_stats = Some(stats);
                Ok(results)
            }
            Msg::Error { msg } => Err(NetError::Server(msg)),
            _ => Err(NetError::Protocol("expected BatchReply".to_string())),
        }
    }

    /// Discharges a batch remotely, returning outcomes in submission
    /// order. Must be called from the thread that owns the queries'
    /// terms (serialization and countermodel mapping both need them).
    pub fn submit_batch(&mut self, queries: Vec<Query>) -> Result<Vec<QueryOutcome>, NetError> {
        let total = queries.len();
        let mut labels = Vec::with_capacity(total);
        let mut backmaps = Vec::with_capacity(total);
        let mut wire_queries = Vec::with_capacity(total);
        for q in queries {
            let wp = form::prepare_wire(&q.assumptions, q.goal);
            wire_queries.push(WireQuery {
                label: q.label.clone(),
                cfg: q.cfg,
                core_bytes: form::wire_bytes(&wp.core),
            });
            labels.push(q.label);
            backmaps.push(wp.backmap);
        }

        // Cut into bounded frames and pipeline them, keeping at most the
        // server's advertised window unanswered. Interleaving sends and
        // receives matters: if we wrote every frame before reading any
        // reply, a batch bigger than the combined socket buffers would
        // deadlock against the server's own backpressure.
        let mut chunks: Vec<Vec<WireQuery>> = Vec::new();
        let mut current = Vec::new();
        for q in wire_queries {
            current.push(q);
            if current.len() >= self.chunk {
                chunks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        let window = (self.info.max_inflight as usize).max(1);
        let mut pending: Vec<(u64, usize)> = Vec::with_capacity(chunks.len());
        let mut results: Vec<WireOutcome> = Vec::with_capacity(total);
        let mut sent = 0;
        let mut received = 0;
        while received < chunks.len() {
            if sent < chunks.len() && sent - received < window {
                let id = self.next_id;
                self.next_id += 1;
                let batch = std::mem::take(&mut chunks[sent]);
                pending.push((id, batch.len()));
                self.send(&Msg::Batch { id, queries: batch })?;
                sent += 1;
            } else {
                let (id, expected) = pending[received];
                let reply = self.recv_batch_reply(id)?;
                if reply.len() != expected {
                    return Err(NetError::Protocol(format!(
                        "reply has {} outcomes for {expected} queries",
                        reply.len()
                    )));
                }
                results.extend(reply);
                received += 1;
            }
        }

        Ok(labels
            .into_iter()
            .zip(results)
            .zip(&backmaps)
            .map(|((label, out), backmap)| outcome_of_wire(label, out, backmap))
            .collect())
    }
}

/// Translates one wire outcome back into the caller's term context
/// (shared by [`Client`] and the sim scenario's in-memory client).
pub fn outcome_of_wire(label: String, out: WireOutcome, backmap: &BackMap) -> QueryOutcome {
    let result = match out.verdict {
        WireVerdict::Proved => VerifyResult::Proved,
        WireVerdict::Refuted(pm) => VerifyResult::Counterexample(Box::new(
            serval_engine::portable_to_model(&pm, backmap),
        )),
        WireVerdict::Unknown => VerifyResult::Unknown,
        WireVerdict::Interrupted => VerifyResult::Interrupted,
    };
    QueryOutcome {
        label,
        result,
        stats: out.stats,
        wall: Duration::from_micros(out.wall_micros),
        cache_hit: out.cache_hit,
        variant: 0,
        cert: (out.cert != 0).then_some(out.cert),
        error: out.error,
    }
}

/// A [`Discharge`] implementation that forwards batches to a remote
/// servald. Install it with `serval_engine::install_discharger` and
/// every `serval_core::report::discharge*` call in the process goes over
/// the wire.
///
/// Network failures degrade to `Unknown` outcomes carrying the error —
/// a dead server can fail a proof run, never wedge or crash it.
pub struct RemoteEngine {
    client: Mutex<Client>,
}

impl RemoteEngine {
    /// Wraps an established connection.
    pub fn new(client: Client) -> RemoteEngine {
        RemoteEngine { client: Mutex::new(client) }
    }

    /// Connects to `addr` and wraps the client.
    pub fn connect(addr: &str) -> Result<RemoteEngine, NetError> {
        Ok(RemoteEngine::new(Client::connect(addr)?))
    }

    /// Stats snapshot from the most recent reply.
    pub fn last_stats(&self) -> Option<ServerStats> {
        self.client.lock().unwrap_or_else(|p| p.into_inner()).last_stats.clone()
    }

    /// (bytes sent, bytes received) so far.
    pub fn bytes(&self) -> (u64, u64) {
        let c = self.client.lock().unwrap_or_else(|p| p.into_inner());
        (c.bytes_sent, c.bytes_received)
    }

    /// The server's advertised shape.
    pub fn info(&self) -> ServerInfo {
        self.client.lock().unwrap_or_else(|p| p.into_inner()).info
    }
}

impl Discharge for RemoteEngine {
    fn submit_batch(&self, queries: Vec<Query>) -> Vec<QueryOutcome> {
        let labels: Vec<String> = queries.iter().map(|q| q.label.clone()).collect();
        let mut client = self.client.lock().unwrap_or_else(|p| p.into_inner());
        match client.submit_batch(queries) {
            Ok(outcomes) => outcomes,
            Err(e) => labels
                .into_iter()
                .map(|label| QueryOutcome {
                    label,
                    result: VerifyResult::Unknown,
                    stats: None,
                    wall: Duration::ZERO,
                    cache_hit: false,
                    variant: 0,
                    cert: None,
                    error: Some(format!("net: {e}")),
                })
                .collect(),
        }
    }

    fn describe(&self) -> String {
        let c = self.client.lock().unwrap_or_else(|p| p.into_inner());
        match c.stream.peer_addr() {
            Ok(addr) => format!("remote servald at {addr}"),
            Err(_) => "remote servald".to_string(),
        }
    }
}
