//! Wire-protocol robustness properties and TCP loopback integration
//! tests.
//!
//! The property half attacks the codec the way a hostile or broken peer
//! would: truncated frames, oversize length prefixes, garbage bytes, and
//! single-bit corruption must all come back as `Err`, never as a panic,
//! a wedge, or an unbounded allocation. The loopback half runs a real
//! `Server` on an ephemeral port and checks the end-to-end contracts:
//! verdict parity with known ground truth, exact submission-order
//! reassembly across shards, hot-tier promotion, and that one
//! misbehaving connection never takes the server down for others.

use crate::client::Client;
use crate::service::NetCfg;
use crate::wire::{
    self, decode_msg, encode_msg, FrameReader, Msg, WireError, WireQuery, WireVerdict,
    SHARD_HOT,
};
use crate::Server;
use serval_check::prelude::*;
use serval_engine::form;
use serval_engine::Query;
use serval_smt::solver::{SolverConfig, VerifyResult};
use serval_smt::{reset_ctx, SBool, BV};

// ----------------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------------

/// Deterministically builds one of each message shape from fuzz picks.
fn sample_msg(picks: &[u8]) -> Msg {
    let byte = |i: usize| picks.get(i).copied().unwrap_or(0);
    let word = |i: usize| u64::from_le_bytes([byte(i), byte(i + 1), byte(i + 2), 0, 0, 0, 0, 0]);
    match byte(0) % 6 {
        0 => Msg::Hello { version: wire::PROTO_VERSION },
        1 => Msg::HelloAck {
            version: wire::PROTO_VERSION,
            shards: u32::from(byte(1)) + 1,
            shard_jobs: u32::from(byte(2)) + 1,
            max_inflight: u32::from(byte(3)) + 1,
            hot_threshold: u32::from(byte(4)),
        },
        2 => Msg::Batch { id: word(1), queries: sample_queries(&picks[1..]) },
        3 => Msg::Ping { token: word(1) },
        4 => Msg::StatsReq,
        _ => Msg::Error { msg: format!("synthetic error {}", word(1)) },
    }
}

/// Real wire queries (the cores go through `prepare_wire`, so they are
/// exactly what a genuine client would send).
fn sample_queries(picks: &[u8]) -> Vec<WireQuery> {
    reset_ctx();
    let n = (picks.first().copied().unwrap_or(0) % 3) as usize + 1;
    (0..n)
        .map(|i| {
            let (assumptions, goal) =
                sample_obligation(&picks[i.min(picks.len().saturating_sub(1))..]);
            let wp = form::prepare_wire(&assumptions, goal);
            WireQuery {
                label: format!("fuzz/{i}"),
                cfg: SolverConfig::default(),
                core_bytes: form::wire_bytes(&wp.core),
            }
        })
        .collect()
}

/// A small random obligation over two 32-bit variables. Shapes cover
/// all the wire-interesting node kinds: vars, constants, the boolean
/// connectives, comparisons, extracts, and extensions.
fn sample_obligation(picks: &[u8]) -> (Vec<SBool>, SBool) {
    let byte = |i: usize| picks.get(i).copied().unwrap_or(0);
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let k = BV::lit(32, u128::from(byte(1)));
    let mut acc = x;
    for step in 0..(byte(0) % 4) {
        acc = match byte(usize::from(step) + 2) % 6 {
            0 => acc + y,
            1 => acc & k,
            2 => acc | y,
            3 => acc ^ k,
            4 => acc.extract(15, 0).zext(32),
            _ => acc.extract(7, 0).sext(32),
        };
    }
    let goal = match byte(6) % 3 {
        0 => (acc & k).ule(acc),
        1 => acc.ult(k),
        _ => acc.eq_(y).implies(y.eq_(acc)),
    };
    let assumptions = if byte(7) % 2 == 0 { vec![x.ule(y)] } else { vec![] };
    (assumptions, goal)
}

/// A test server config: single-worker shards, no disk cache, so tests
/// stay fast and hermetic.
fn test_cfg(shards: usize, hot_threshold: u32) -> NetCfg {
    let mut cfg = NetCfg::default();
    cfg.shards = shards;
    cfg.hot_threshold = hot_threshold;
    cfg.engine.jobs = 1;
    cfg.engine.disk_cache = None;
    cfg
}

fn query(label: &str, assumptions: Vec<SBool>, goal: SBool) -> Query {
    Query { label: label.to_string(), assumptions, goal, cfg: SolverConfig::default() }
}

// ----------------------------------------------------------------------------
// Codec properties
// ----------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message survives encode → decode → encode byte-identically.
    #[test]
    fn prop_msg_reencode_fixpoint(picks in prop::collection::vec(any::<u8>(), 1..24)) {
        let payload = encode_msg(&sample_msg(&picks));
        let decoded = decode_msg(&payload).expect("own encoding must decode");
        prop_assert_eq!(encode_msg(&decoded), payload);
    }

    /// Any strict prefix of a valid payload is rejected — truncation can
    /// never produce a different valid message, and never panics.
    #[test]
    fn prop_truncated_payload_rejected(
        picks in prop::collection::vec(any::<u8>(), 1..24),
        cut in any::<u16>(),
    ) {
        let payload = encode_msg(&sample_msg(&picks));
        let cut = usize::from(cut) % payload.len();
        prop_assert!(decode_msg(&payload[..cut]).is_err());
    }

    /// Arbitrary garbage decodes to `Err`, never a panic — through both
    /// the message codec and the term-core deserializer.
    #[test]
    fn prop_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = decode_msg(&bytes);
        let _ = form::wire_from_bytes(&bytes);
    }

    /// A single flipped bit in a valid payload either still decodes (it
    /// hit a value field) or errors — and whatever decodes re-encodes
    /// without panicking.
    #[test]
    fn prop_bit_flip_never_panics(
        picks in prop::collection::vec(any::<u8>(), 1..24),
        at in any::<u16>(),
        bit in any::<u8>(),
    ) {
        let mut payload = encode_msg(&sample_msg(&picks));
        let at = usize::from(at) % payload.len();
        payload[at] ^= 1 << (bit % 8);
        if let Ok(m) = decode_msg(&payload) {
            let _ = encode_msg(&m);
        }
    }

    /// Frames split at arbitrary byte boundaries reassemble exactly, in
    /// order, through `FrameReader`.
    #[test]
    fn prop_frame_reader_reassembles(
        picks in prop::collection::vec(any::<u8>(), 1..24),
        chunks in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let payloads: Vec<Vec<u8>> = (0..3)
            .map(|i| encode_msg(&sample_msg(&picks[i.min(picks.len() - 1)..])))
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            wire::write_frame(&mut stream, p).unwrap();
        }
        let mut reader = FrameReader::new(wire::DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        let mut at = 0;
        let mut pick = 0;
        while at < stream.len() {
            let step = usize::from(chunks[pick % chunks.len()]) % 7 + 1;
            pick += 1;
            let end = (at + step).min(stream.len());
            reader.push(&stream[at..end]);
            at = end;
            while let Some(frame) = reader.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, payloads);
    }

    /// `prepare_wire` → `wire_bytes` → `wire_from_bytes` is lossless,
    /// and rebuilding the core into a fresh term context then preparing
    /// again reproduces the same bytes (the wire form is a fixpoint).
    #[test]
    fn prop_core_roundtrip_fixpoint(picks in prop::collection::vec(any::<u8>(), 1..16)) {
        reset_ctx();
        let (assumptions, goal) = sample_obligation(&picks);
        let wp = form::prepare_wire(&assumptions, goal);
        let bytes = form::wire_bytes(&wp.core);
        let core = form::wire_from_bytes(&bytes).expect("own core bytes must decode");
        prop_assert_eq!(&core, &wp.core);

        reset_ctx();
        let rebuilt = form::rebuild_wire(&core);
        let wp2 = form::prepare_wire(&rebuilt.assumptions, rebuilt.goal);
        prop_assert_eq!(form::wire_bytes(&wp2.core), bytes);
    }

    /// Truncated core bytes are always rejected.
    #[test]
    fn prop_core_truncation_rejected(
        picks in prop::collection::vec(any::<u8>(), 1..16),
        cut in any::<u16>(),
    ) {
        reset_ctx();
        let (assumptions, goal) = sample_obligation(&picks);
        let bytes = form::wire_bytes(&form::prepare_wire(&assumptions, goal).core);
        let cut = usize::from(cut) % bytes.len();
        prop_assert!(form::wire_from_bytes(&bytes[..cut]).is_err());
    }

    /// A flipped bit in core bytes either errors or yields a core that
    /// still validates — in which case rebuilding it must not panic.
    #[test]
    fn prop_core_bit_flip_never_panics(
        picks in prop::collection::vec(any::<u8>(), 1..16),
        at in any::<u16>(),
        bit in any::<u8>(),
    ) {
        reset_ctx();
        let (assumptions, goal) = sample_obligation(&picks);
        let mut bytes = form::wire_bytes(&form::prepare_wire(&assumptions, goal).core);
        let at = usize::from(at) % bytes.len();
        bytes[at] ^= 1 << (bit % 8);
        if let Ok(core) = form::wire_from_bytes(&bytes) {
            reset_ctx();
            let _ = form::rebuild_wire(&core);
        }
    }
}

// ----------------------------------------------------------------------------
// Framing edge cases
// ----------------------------------------------------------------------------

/// An oversize length prefix is rejected before any allocation, both in
/// the blocking reader and the incremental one.
#[test]
fn oversize_prefix_rejected_without_allocation() {
    let mut frame = (u32::MAX).to_le_bytes().to_vec();
    frame.extend_from_slice(b"xx");
    let err = wire::read_frame(&mut frame.as_slice(), 1 << 20).unwrap_err();
    assert_eq!(err, WireError::Oversize { len: u64::from(u32::MAX), max: 1 << 20 });

    let mut reader = FrameReader::new(1 << 20);
    reader.push(&frame);
    assert!(reader.next_frame().is_err());
}

/// EOF cleanly between frames is `Ok(None)`; EOF inside a frame is
/// `Truncated`.
#[test]
fn eof_position_distinguishes_clean_close_from_truncation() {
    assert_eq!(wire::read_frame(&mut [].as_slice(), 1 << 20).unwrap(), None);

    let mut stream = Vec::new();
    wire::write_frame(&mut stream, b"hello").unwrap();
    stream.truncate(stream.len() - 2);
    assert_eq!(
        wire::read_frame(&mut stream.as_slice(), 1 << 20).unwrap_err(),
        WireError::Truncated
    );
}

// ----------------------------------------------------------------------------
// TCP loopback integration
// ----------------------------------------------------------------------------

/// Verdicts through the server match ground truth, and countermodels,
/// mapped back onto the caller's terms, genuinely refute the goal.
#[test]
fn loopback_verdicts_match_ground_truth() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 0)).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    reset_ctx();
    let x = BV::fresh(32, "x");
    let m = BV::fresh(32, "m");
    let tauto = (x & m).ule(x);
    let refutable = x.ult(BV::lit(32, 10));
    let asm = x.uge(BV::lit(32, 3));
    let queries = vec![
        query("t/tauto", vec![], tauto),
        query("t/refutable", vec![asm], refutable),
    ];
    let outcomes = client.submit_batch(queries).unwrap();

    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].label, "t/tauto");
    assert!(matches!(outcomes[0].result, VerifyResult::Proved), "{:?}", outcomes[0].result);
    match &outcomes[1].result {
        VerifyResult::Counterexample(model) => {
            assert!(model.eval_bool(asm.0), "countermodel must satisfy the assumption");
            assert!(!model.eval_bool(refutable.0), "countermodel must falsify the goal");
        }
        other => panic!("expected a countermodel, got {other:?}"),
    }
    server.shutdown();
}

/// 24 queries across 4 shards: every outcome lands at its submission
/// slot even though shards answer independently, and the forced
/// countermodels prove slot `i` really holds query `i`'s answer.
#[test]
fn loopback_submission_order_across_shards() {
    let server = Server::bind("127.0.0.1:0", test_cfg(4, 0)).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    reset_ctx();
    let x = BV::fresh(32, "x");
    // Each query pins x = i and claims false, so its only countermodel
    // has x = i: a misplaced outcome is immediately visible.
    let queries: Vec<Query> = (0..24u128)
        .map(|i| {
            query(&format!("order/{i}"), vec![x.eq_(BV::lit(32, i))], SBool::lit(false))
        })
        .collect();
    let outcomes = client.submit_batch(queries).unwrap();

    assert_eq!(outcomes.len(), 24);
    for (i, out) in outcomes.iter().enumerate() {
        assert_eq!(out.label, format!("order/{i}"));
        match &out.result {
            VerifyResult::Counterexample(model) => {
                assert_eq!(model.eval_bv(x.0), i as u128, "slot {i} holds another query's model");
            }
            other => panic!("order/{i}: expected countermodel, got {other:?}"),
        }
    }
    let stats = client.last_stats.clone().expect("reply carries stats");
    let exercised = stats.shards.iter().filter(|row| row.queued > 0).count();
    assert!(exercised >= 2, "expected at least 2 shards exercised, got {exercised}");
    server.shutdown();
}

/// A repeated query crosses the hot threshold and later submissions are
/// served by the replicated hot tier with the same verdict.
#[test]
fn loopback_hot_tier_serves_repeats() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 2)).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    for round in 0..3 {
        reset_ctx();
        let x = BV::fresh(32, "x");
        let m = BV::fresh(32, "m");
        let outcomes =
            client.submit_batch(vec![query("hot/tauto", vec![], (x & m).ule(x))]).unwrap();
        assert!(matches!(outcomes[0].result, VerifyResult::Proved), "round {round}");
    }
    let stats = client.server_stats().unwrap();
    assert!(stats.hot_entries >= 1, "threshold 2 crossed, nothing promoted: {stats:?}");
    assert!(stats.hot_hits >= 1, "third submission should hit the hot tier: {stats:?}");
    server.shutdown();
}

/// A garbage frame earns an `Error` reply and a close — and the server
/// keeps serving other clients afterwards.
#[test]
fn loopback_garbage_frame_gets_error_then_close() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 0)).unwrap();
    let addr = server.local_addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut raw, b"\xde\xad\xbe\xef not a message").unwrap();
    let reply = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(decode_msg(&reply), Ok(Msg::Error { .. })));
    assert_eq!(wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap(), None);

    let mut client = Client::connect(&addr).unwrap();
    assert!(client.ping().is_ok(), "server must survive a hostile connection");
    let stats = client.server_stats().unwrap();
    assert!(stats.protocol_errors >= 1);
    server.shutdown();
}

/// A client that sends a batch and vanishes mid-exchange neither wedges
/// the server nor corrupts another client's concurrent work.
#[test]
fn loopback_mid_batch_disconnect_leaves_server_healthy() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 0)).unwrap();
    let addr = server.local_addr().to_string();

    {
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        wire::write_frame(&mut raw, &encode_msg(&Msg::Hello { version: wire::PROTO_VERSION }))
            .unwrap();
        let _ = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap();
        reset_ctx();
        let x = BV::fresh(32, "x");
        let wp = form::prepare_wire(&[], x.eq_(x));
        let batch = Msg::Batch {
            id: 7,
            queries: vec![WireQuery {
                label: "doomed".to_string(),
                cfg: SolverConfig::default(),
                core_bytes: form::wire_bytes(&wp.core),
            }],
        };
        wire::write_frame(&mut raw, &encode_msg(&batch)).unwrap();
        // Drop without reading the reply: the write side sees a reset.
    }

    let mut client = Client::connect(&addr).unwrap();
    reset_ctx();
    let x = BV::fresh(32, "x");
    let outcomes = client.submit_batch(vec![query("survivor", vec![], x.eq_(x))]).unwrap();
    assert!(matches!(outcomes[0].result, VerifyResult::Proved));
    server.shutdown();
}

/// The first frame must be a versioned `Hello`; anything else (or a
/// version mismatch) is answered with `Error` and a close.
#[test]
fn loopback_handshake_is_mandatory() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 0)).unwrap();
    let addr = server.local_addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut raw, &encode_msg(&Msg::Ping { token: 1 })).unwrap();
    let reply = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(decode_msg(&reply), Ok(Msg::Error { .. })));

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut raw, &encode_msg(&Msg::Hello { version: 999 })).unwrap();
    let reply = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(decode_msg(&reply), Ok(Msg::Error { .. })));
    server.shutdown();
}

/// A malformed core inside an otherwise well-formed batch is rejected at
/// admission (`Error` + close), before any shard sees it.
#[test]
fn loopback_malformed_core_rejected_at_admission() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 0)).unwrap();
    let addr = server.local_addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    wire::write_frame(&mut raw, &encode_msg(&Msg::Hello { version: wire::PROTO_VERSION }))
        .unwrap();
    let _ = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap();
    let batch = Msg::Batch {
        id: 1,
        queries: vec![WireQuery {
            label: "bogus".to_string(),
            cfg: SolverConfig::default(),
            core_bytes: b"SW1\0garbage".to_vec(),
        }],
    };
    wire::write_frame(&mut raw, &encode_msg(&batch)).unwrap();
    let reply = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap().unwrap();
    match decode_msg(&reply) {
        Ok(Msg::Error { msg }) => assert!(msg.contains("bogus"), "error should name the query: {msg}"),
        other => panic!("expected Error frame, got {other:?}"),
    }
    server.shutdown();
}

/// Hot-tier hits report the `SHARD_HOT` sentinel so clients can tell
/// replicated answers from shard answers.
#[test]
fn loopback_hot_hits_report_sentinel_shard() {
    let server = Server::bind("127.0.0.1:0", test_cfg(2, 1)).unwrap();
    let core = server.core();

    reset_ctx();
    let x = BV::fresh(32, "x");
    let wp = form::prepare_wire(&[], x.eq_(x));
    let wq = || WireQuery {
        label: "hot".to_string(),
        cfg: SolverConfig::default(),
        core_bytes: form::wire_bytes(&wp.core),
    };
    // Threshold 1: the first discharge promotes, the second must be a
    // hot-tier hit.
    let first = core.discharge(vec![wq()]);
    assert!(matches!(first[0].verdict, WireVerdict::Proved));
    let second = core.discharge(vec![wq()]);
    assert!(matches!(second[0].verdict, WireVerdict::Proved));
    assert_eq!(second[0].shard, SHARD_HOT);
    assert!(second[0].cache_hit);
    server.shutdown();
}
