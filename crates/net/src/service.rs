//! The transport-free server core: shards, routing, hot tier, stats.
//!
//! [`ServerCore`] is everything `servald` does *except* sockets: it
//! owns N [`Shard`]s (each a private [`serval_engine::Engine`] with its
//! own slice of the worker budget and its own verdict-cache partition),
//! routes each query to its home shard by FNV-64 of the alpha-invariant
//! normal-form bytes, answers repeat queries from the replicated hot
//! tier, and assembles submission-order outcomes. The TCP front end
//! ([`crate::server`]) layers connections and backpressure on top; the
//! deterministic simulator (`crates/sim`'s `net_batch` scenario) drives
//! this core directly through [`ServerCore::handle_payload`] with the
//! real codec, so the protocol logic is exercised under seeded hostile
//! schedules without real sockets.
//!
//! Shard discharge runs on a scratch thread per shard
//! (`std::thread::scope`), never on the caller's thread: rebuilding a
//! wire core calls `reset_ctx()`, and the dispatching thread (a
//! connection reader, or a sim scenario holding its own terms) must keep
//! its term context intact.

use crate::hot::HotTier;
use crate::wire::{
    self, Msg, ServerStats, ShardStatsRow, WireOutcome, WireQuery, WireVerdict, SHARD_HOT,
};
use crate::fnv64;
use serval_check::sim;
use serval_engine::form;
use serval_engine::{Engine, EngineCfg, Query};
use serval_smt::solver::VerifyResult;
use serval_smt::term::reset_ctx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct NetCfg {
    /// Listen / connect address (`SERVAL_ADDR`).
    pub addr: String,
    /// Worker shard count (`SERVAL_SHARDS`, clamped to at least 1).
    pub shards: usize,
    /// Per-connection in-flight frame bound (`SERVAL_MAX_INFLIGHT`).
    pub max_inflight: usize,
    /// Hot-tier promotion threshold (`SERVAL_HOT_THRESHOLD`, 0 = off).
    pub hot_threshold: u32,
    /// Frame payload bound (`SERVAL_MAX_FRAME`).
    pub max_frame: usize,
    /// Engine template for the shards. `engine.jobs` is the *total*
    /// worker budget, divided evenly across shards; a per-shard disk
    /// cache partition is derived from `engine.disk_cache`.
    pub engine: EngineCfg,
}

impl Default for NetCfg {
    fn default() -> Self {
        NetCfg {
            addr: "127.0.0.1:7557".to_string(),
            shards: 2,
            max_inflight: 4,
            hot_threshold: 3,
            max_frame: wire::DEFAULT_MAX_FRAME,
            engine: EngineCfg::default(),
        }
    }
}

impl NetCfg {
    /// Reads `SERVAL_ADDR`, `SERVAL_SHARDS`, `SERVAL_MAX_INFLIGHT`,
    /// `SERVAL_HOT_THRESHOLD`, `SERVAL_MAX_FRAME`, and the engine knobs
    /// ([`EngineCfg::from_env`]).
    pub fn from_env() -> NetCfg {
        let d = NetCfg::default();
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
        };
        NetCfg {
            addr: std::env::var("SERVAL_ADDR").unwrap_or(d.addr),
            shards: parse("SERVAL_SHARDS").map_or(d.shards, |v| (v as usize).max(1)),
            max_inflight: parse("SERVAL_MAX_INFLIGHT")
                .map_or(d.max_inflight, |v| (v as usize).max(1)),
            hot_threshold: parse("SERVAL_HOT_THRESHOLD").map_or(d.hot_threshold, |v| v as u32),
            max_frame: parse("SERVAL_MAX_FRAME").map_or(d.max_frame, |v| (v as usize).max(1024)),
            engine: EngineCfg::from_env(),
        }
    }
}

/// A query routed to a shard, tagged with its slot in the batch.
pub struct RoutedQuery {
    /// Index into the submitting batch.
    pub slot: usize,
    /// The query.
    pub query: WireQuery,
    /// Whether the repeat counter crossed the hot threshold at
    /// submission (the shard promotes the verdict after solving).
    pub hot: bool,
}

#[derive(Default)]
struct ShardCounters {
    queued: AtomicU64,
    solved: AtomicU64,
    hits: AtomicU64,
}

/// One worker shard: a private engine plus its counters.
pub struct Shard {
    /// Shard index (also the routing bucket).
    pub index: usize,
    engine: Arc<Engine>,
    counters: ShardCounters,
    hot: Arc<HotTier>,
}

impl Shard {
    /// This shard's engine (benchmarks inspect cache counters).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Current stats row.
    pub fn stats_row(&self) -> ShardStatsRow {
        let (mode_session, mode_fresh) = self.engine.mode_counts();
        ShardStatsRow {
            shard: self.index as u32,
            queued: self.counters.queued.load(Ordering::Relaxed),
            solved: self.counters.solved.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            cert_checked: self.engine.cert_counts().0,
            mode_session,
            mode_fresh,
        }
    }

    /// Discharges a routed batch, returning `(slot, outcome)` pairs.
    ///
    /// Must run on a thread whose term context is disposable (the wire
    /// cores are rebuilt into a fresh context here). Panics anywhere in
    /// the pipeline are caught and reported as error outcomes — a
    /// hostile or buggy batch must never take the server down.
    pub fn discharge(&self, batch: Vec<RoutedQuery>) -> Vec<(usize, WireOutcome)> {
        let slots: Vec<usize> = batch.iter().map(|rq| rq.slot).collect();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.discharge_inner(batch)
        })) {
            Ok(out) => out,
            Err(panic) => {
                let why = panic_message(&panic);
                slots
                    .into_iter()
                    .map(|slot| (slot, self.error_outcome(format!("shard panicked: {why}"))))
                    .collect()
            }
        }
    }

    fn discharge_inner(&self, batch: Vec<RoutedQuery>) -> Vec<(usize, WireOutcome)> {
        reset_ctx();
        self.counters.queued.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut ready: Vec<(usize, WireOutcome)> = Vec::with_capacity(batch.len());
        let mut queries: Vec<Query> = Vec::new();
        let mut pending: Vec<(usize, form::BackMap, Vec<u8>, bool)> = Vec::new();
        for rq in batch {
            match form::wire_from_bytes(&rq.query.core_bytes) {
                Err(why) => {
                    // The front end validates cores before dispatch, so
                    // this is a second line of defense, not a code path
                    // clients can rely on.
                    ready.push((rq.slot, self.error_outcome(format!("malformed core: {why}"))));
                }
                Ok(core) => {
                    let wr = form::rebuild_wire(&core);
                    queries.push(Query {
                        label: rq.query.label,
                        assumptions: wr.assumptions,
                        goal: wr.goal,
                        cfg: rq.query.cfg,
                    });
                    pending.push((rq.slot, wr.backmap, rq.query.core_bytes, rq.hot));
                }
            }
        }
        let outcomes = self.engine.submit_batch(queries);
        for (outcome, (slot, backmap, core_bytes, hot)) in outcomes.into_iter().zip(pending) {
            if outcome.cache_hit {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.solved.fetch_add(1, Ordering::Relaxed);
            }
            let verdict = match outcome.result {
                VerifyResult::Proved => WireVerdict::Proved,
                VerifyResult::Counterexample(m) => WireVerdict::Refuted(
                    serval_engine::portable_of_caller_model(&m, &backmap),
                ),
                VerifyResult::Unknown => WireVerdict::Unknown,
                VerifyResult::Interrupted => WireVerdict::Interrupted,
            };
            let cert = outcome.cert.unwrap_or(0);
            if hot {
                self.hot.promote(&core_bytes, &verdict, cert);
            }
            ready.push((
                slot,
                WireOutcome {
                    verdict,
                    cert,
                    cache_hit: outcome.cache_hit,
                    shard: self.index as u32,
                    wall_micros: outcome.wall.as_micros() as u64,
                    stats: outcome.stats,
                    error: outcome.error,
                },
            ));
        }
        ready
    }

    fn error_outcome(&self, why: String) -> WireOutcome {
        WireOutcome {
            verdict: WireVerdict::Unknown,
            cert: 0,
            cache_hit: false,
            shard: self.index as u32,
            wall_micros: 0,
            stats: None,
            error: Some(why),
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// The sharded discharge service (everything but the sockets).
pub struct ServerCore {
    cfg: NetCfg,
    shards: Vec<Arc<Shard>>,
    hot: Arc<HotTier>,
    shard_jobs: usize,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerCore {
    /// Builds the shards: `cfg.engine.jobs` total workers divided evenly
    /// (ceiling) across `cfg.shards` engines, each with its own disk
    /// cache partition under `cfg.engine.disk_cache` (when set).
    pub fn new(cfg: NetCfg) -> ServerCore {
        let n = cfg.shards.max(1);
        let shard_jobs = cfg.engine.jobs.div_ceil(n).max(1);
        let hot = Arc::new(HotTier::new(cfg.hot_threshold));
        let shards = (0..n)
            .map(|index| {
                let mut ecfg = cfg.engine.clone();
                ecfg.jobs = shard_jobs;
                ecfg.disk_cache = cfg
                    .engine
                    .disk_cache
                    .as_ref()
                    .map(|p| p.join(format!("shard-{index}")));
                Arc::new(Shard {
                    index,
                    engine: Arc::new(Engine::new(ecfg)),
                    counters: ShardCounters::default(),
                    hot: Arc::clone(&hot),
                })
            })
            .collect();
        ServerCore { cfg, shards, hot, shard_jobs, frames: AtomicU64::new(0), protocol_errors: AtomicU64::new(0) }
    }

    /// The configuration the core was built with.
    pub fn cfg(&self) -> &NetCfg {
        &self.cfg
    }

    /// The shards.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Workers per shard.
    pub fn shard_jobs(&self) -> usize {
        self.shard_jobs
    }

    /// A query's home shard: FNV-64 of its normal-form bytes mod the
    /// shard count. The `net-route-rehash` buggify point sends a query
    /// to a random shard instead — any shard can solve any query (its
    /// cache partition just misses), so misrouting degrades locality,
    /// never correctness.
    pub fn route(&self, core_bytes: &[u8]) -> usize {
        if sim::buggify("net-route-rehash") {
            return sim::choose(self.shards.len());
        }
        (fnv64(core_bytes) % self.shards.len() as u64) as usize
    }

    /// Validates every query core in a batch (front ends call this
    /// before dispatch so garbage becomes a protocol error, not a
    /// queued job).
    pub fn check_batch(&self, queries: &[WireQuery]) -> Result<(), String> {
        for (i, q) in queries.iter().enumerate() {
            form::wire_from_bytes(&q.core_bytes)
                .map_err(|why| format!("query {i} ({}): {why}", q.label))?;
        }
        Ok(())
    }

    /// Routes a batch: hot-tier hits are answered in place, the rest
    /// bucketed by home shard.
    pub fn place(
        &self,
        queries: Vec<WireQuery>,
    ) -> (Vec<Option<WireOutcome>>, Vec<Vec<RoutedQuery>>) {
        let mut slots: Vec<Option<WireOutcome>> = (0..queries.len()).map(|_| None).collect();
        let mut buckets: Vec<Vec<RoutedQuery>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (slot, query) in queries.into_iter().enumerate() {
            let hot = self.hot.note(&query.core_bytes);
            if let Some(entry) = self.hot.get(&query.core_bytes) {
                slots[slot] = Some(WireOutcome {
                    verdict: entry.verdict,
                    cert: entry.cert,
                    cache_hit: true,
                    shard: SHARD_HOT,
                    wall_micros: 0,
                    stats: None,
                    error: None,
                });
                continue;
            }
            let home = self.route(&query.core_bytes);
            buckets[home].push(RoutedQuery { slot, query, hot });
        }
        (slots, buckets)
    }

    /// Discharges a batch synchronously: shards run one after another,
    /// each on a scratch thread (the caller's term context survives).
    /// The TCP server uses long-lived shard threads instead; this path
    /// serves the simulator (deterministic by construction), tests, and
    /// `handle_payload`.
    pub fn discharge(&self, queries: Vec<WireQuery>) -> Vec<WireOutcome> {
        let (mut slots, buckets) = self.place(queries);
        for (home, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard = &self.shards[home];
            let results = std::thread::scope(|scope| {
                scope
                    .spawn(move || shard.discharge(bucket))
                    .join()
                    .unwrap_or_default()
            });
            for (slot, outcome) in results {
                slots[slot] = Some(outcome);
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or(WireOutcome {
                    verdict: WireVerdict::Unknown,
                    cert: 0,
                    cache_hit: false,
                    shard: SHARD_HOT,
                    wall_micros: 0,
                    stats: None,
                    error: Some("shard dropped the query".to_string()),
                })
            })
            .collect()
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            shards: self.shards.iter().map(|s| s.stats_row()).collect(),
            hot_hits: self.hot.hits(),
            hot_entries: self.hot.len() as u64,
            frames: self.frames.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Counts one accepted frame (front ends call this per frame).
    pub fn note_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one protocol error.
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Handles one decoded frame payload end to end and returns the
    /// reply payload plus whether the connection must close. This is the
    /// whole request state machine minus sockets and threading — the sim
    /// scenario's in-memory connections and the loopback tests share it.
    pub fn handle_payload(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        let msg = match wire::decode_msg(payload) {
            Ok(m) => m,
            Err(e) => {
                self.note_protocol_error();
                return (wire::encode_msg(&Msg::Error { msg: e.to_string() }), true);
            }
        };
        self.note_frame();
        match msg {
            Msg::Hello { version } if version == wire::PROTO_VERSION => {
                (wire::encode_msg(&self.hello_ack()), false)
            }
            Msg::Hello { version } => {
                self.note_protocol_error();
                (
                    wire::encode_msg(&Msg::Error {
                        msg: format!("unsupported protocol version {version}"),
                    }),
                    true,
                )
            }
            Msg::Batch { id, queries } => {
                if let Err(why) = self.check_batch(&queries) {
                    self.note_protocol_error();
                    return (wire::encode_msg(&Msg::Error { msg: why }), true);
                }
                let results = self.discharge(queries);
                (
                    wire::encode_msg(&Msg::BatchReply { id, results, stats: self.stats() }),
                    false,
                )
            }
            Msg::Ping { token } => (wire::encode_msg(&Msg::Pong { token }), false),
            Msg::StatsReq => {
                (wire::encode_msg(&Msg::StatsReply { stats: self.stats() }), false)
            }
            _ => {
                self.note_protocol_error();
                (
                    wire::encode_msg(&Msg::Error {
                        msg: "unexpected message direction".to_string(),
                    }),
                    true,
                )
            }
        }
    }

    /// The server's `HelloAck`.
    pub fn hello_ack(&self) -> Msg {
        Msg::HelloAck {
            version: wire::PROTO_VERSION,
            shards: self.shards.len() as u32,
            shard_jobs: self.shard_jobs as u32,
            max_inflight: self.cfg.max_inflight as u32,
            hot_threshold: self.cfg.hot_threshold,
        }
    }
}
