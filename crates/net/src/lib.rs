//! serval-net: verification as a service.
//!
//! The engine crate made proof discharge a *data-plane* problem — a
//! query is a portable byte string (alpha-invariant normal form), a
//! verdict is a cacheable, certificate-fingerprinted record. This crate
//! puts a wire on that seam: `servald` is a from-scratch TCP server
//! (std-only, no async runtime) that receives length-prefixed batches of
//! normalized queries, routes each query by normal-form hash across N
//! worker shards (each shard owns an [`serval_engine::Engine`] with its
//! own slice of the worker pool and its own verdict-cache partition),
//! and streams back submission-order verdicts with certificate
//! fingerprints and countermodels on the wire. `serval-cli` is the
//! matching client; [`client::RemoteEngine`] implements
//! [`serval_engine::Discharge`], so any existing workload (the certikos
//! refinement proof, the JIT checker sweep) runs against a remote server
//! by installing it — no proof code changes.
//!
//! Layering, bottom up:
//!
//! - [`wire`] — frame format and message codec over untrusted bytes.
//! - [`hot`] — repeat-key detection + the all-shard replicated hot tier.
//! - [`service`] — [`service::ServerCore`]: routing, shards, stats; no
//!   sockets, so the deterministic simulator can drive it directly.
//! - [`server`] — the threaded TCP front end (accept loop, per-client
//!   reader/writer pair, bounded in-flight frames).
//! - [`client`] — blocking client + the [`serval_engine::Discharge`]
//!   adapter.
//!
//! Environment knobs (read by [`service::NetCfg::from_env`]):
//!
//! | Variable              | Meaning                                         |
//! |-----------------------|-------------------------------------------------|
//! | `SERVAL_ADDR`         | servald listen / client connect address (default `127.0.0.1:7557`) |
//! | `SERVAL_SHARDS`       | worker shard count (default 2)                  |
//! | `SERVAL_MAX_INFLIGHT` | per-connection in-flight frame bound (default 4)|
//! | `SERVAL_HOT_THRESHOLD`| submissions before a query is promoted to the replicated hot tier (default 3; 0 disables) |

pub mod client;
pub mod hot;
pub mod server;
pub mod service;
pub mod wire;

#[cfg(test)]
mod tests;

pub use client::{Client, NetError, RemoteEngine};
pub use server::Server;
pub use service::{NetCfg, ServerCore};
pub use wire::{ServerStats, ShardStatsRow};

/// FNV-1a over `bytes`: the routing hash. Stable across processes and
/// platforms so a query's home shard is a pure function of its normal
/// form.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
