//! JIT checker tests: the fixed JITs verify; each seeded historical bug
//! is found with a counterexample; differential testing against concrete
//! execution cross-checks the checker itself.

use crate::checker::{check_rv64, sweep_rv64, sweep_x86};
use crate::rv64::{Rv64Jit, RvBug};
use crate::x86jit::{X86Bug, X86Jit};
use serval_bpf::{AluOp, Insn as Bpf, Src};
use serval_smt::solver::SolverConfig;

fn cfg() -> SolverConfig {
    SolverConfig::default()
}

#[test]
fn fixed_rv64_jit_verifies_all_alu() {
    let jit = Rv64Jit::fixed();
    let rows = sweep_rv64(&jit, cfg());
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(row.ok, "{} {}: {:?}", row.target, row.insn, row.cex);
    }
}

#[test]
fn fixed_x86_jit_verifies_supported_alu() {
    let jit = X86Jit::fixed();
    let rows = sweep_x86(&jit, cfg());
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(row.ok, "{} {}: {:?}", row.target, row.insn, row.cex);
    }
}

#[test]
fn each_rv64_bug_is_found() {
    for bug in RvBug::ALL {
        let mut jit = Rv64Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_rv64(&jit, cfg());
        let found = rows.iter().any(|r| !r.ok);
        assert!(found, "seeded bug {bug:?} not detected");
        // The failure comes with a concrete counterexample.
        let failing = rows.iter().find(|r| !r.ok).unwrap();
        assert!(failing.cex.is_some(), "{bug:?} missing counterexample");
    }
}

#[test]
fn each_x86_bug_is_found() {
    for bug in X86Bug::ALL {
        let mut jit = X86Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_x86(&jit, cfg());
        let found = rows.iter().any(|r| !r.ok);
        assert!(found, "seeded bug {bug:?} not detected");
    }
}

#[test]
fn bug_counts_match_paper() {
    // Paper §7: 15 bugs total — 9 RISC-V, 6 x86-32.
    assert_eq!(RvBug::ALL.len(), 9);
    assert_eq!(X86Bug::ALL.len(), 6);
    // All-buggy JITs: the checker flags failing rows on each target.
    let rv_fail = sweep_rv64(&Rv64Jit::buggy(), cfg())
        .iter()
        .filter(|r| !r.ok)
        .count();
    let x86_fail = sweep_x86(&X86Jit::buggy(), cfg())
        .iter()
        .filter(|r| !r.ok)
        .count();
    assert!(rv_fail >= 9, "expected >= 9 failing rv64 rows, got {rv_fail}");
    assert!(x86_fail >= 6, "expected >= 6 failing x86 rows, got {x86_fail}");
}

#[test]
fn div_by_zero_sequence_is_correct() {
    // The checked-division emission must match BPF's x/0 = 0, x%0 = x.
    let jit = Rv64Jit::fixed();
    for op in [AluOp::Div, AluOp::Mod] {
        for is32 in [false, true] {
            let insn = if is32 {
                Bpf::Alu32 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
            } else {
                Bpf::Alu64 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
            };
            let row = check_rv64(&jit, insn, cfg()).unwrap();
            assert!(row.ok, "{op:?} is32={is32}: {:?}", row.cex);
        }
    }
}

#[test]
fn buggy_shift32_counterexample_is_concrete() {
    // ALU32 lsh with the 64-bit-shift bug: find and validate a concrete
    // counterexample by running both sides concretely.
    let mut jit = Rv64Jit::fixed();
    jit.bugs.insert(RvBug::Shift32Lsh);
    let insn = Bpf::Alu32 { op: AluOp::Lsh, src: Src::X, dst: 1, srcr: 2, imm: 0 };
    let row = check_rv64(&jit, insn, cfg()).unwrap();
    assert!(!row.ok);
    assert!(row.cex.as_deref().unwrap_or("").contains("counterexample"));
}

/// Differential testing: for random concrete inputs, the JIT-emitted code
/// and the BPF interpreter agree on the fixed JIT (a sanity check on the
/// checker's modelling, not a proof).
#[test]
fn differential_concrete_rv64() {
    use serval_core::{Mem, MemCfg};
    use serval_riscv::{Interp as RvInterp, Machine};
    use serval_smt::{reset_ctx, BV};
    use serval_sym::SymCtx;

    let jit = Rv64Jit::fixed();
    let mut seed = 0x12345678u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for op in [AluOp::Add, AluOp::Lsh, AluOp::Rsh, AluOp::Arsh, AluOp::Div] {
        for is32 in [false, true] {
            let insn = if is32 {
                Bpf::Alu32 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
            } else {
                Bpf::Alu64 { op, src: Src::X, dst: 1, srcr: 2, imm: 0 }
            };
            for _ in 0..4 {
                reset_ctx();
                let (a, b) = (rng(), rng() % 100);
                let mut ctx = SymCtx::new();
                // BPF side.
                let mut s = serval_bpf::BpfState::fresh("b");
                s.regs[1] = BV::lit(64, a as u128);
                s.regs[2] = BV::lit(64, b as u128);
                serval_bpf::BpfInterp::new(vec![]).step_insn(&mut ctx, &mut s, insn);
                let expect = s.reg(1).as_const().unwrap();
                // Machine side.
                let mut words: Vec<u32> = jit
                    .emit(insn)
                    .unwrap()
                    .iter()
                    .map(|&i| serval_riscv::encode(i))
                    .collect();
                words.push(serval_riscv::encode(serval_riscv::Insn::Mret));
                let interp = RvInterp::from_words(0, &words, 64).unwrap();
                let mut m = Machine::reset_at(0, Mem::new(MemCfg::default()));
                m.set_reg(crate::rv64::reg_map(1), BV::lit(64, a as u128));
                m.set_reg(crate::rv64::reg_map(2), BV::lit(64, b as u128));
                let o = interp.run(&mut ctx, &mut m);
                assert!(o.ok());
                let got = m.reg(crate::rv64::reg_map(1)).as_const().unwrap();
                assert_eq!(got, expect, "{op:?} is32={is32} a={a:#x} b={b:#x}");
            }
        }
    }
}
