//! A BPF→RV64 JIT modelled on the Linux kernel's `bpf_jit_comp64.c`,
//! emitting one RISC-V sequence per BPF instruction.
//!
//! The nine [`RvBug`] variants reproduce the bug classes found via
//! verification in §7 (all in zero-extension and 32-bit shift handling)
//! so the checker can demonstrate finding them; an empty bug set is the
//! fixed JIT, which verifies.

use serval_bpf::{AluOp, Insn as Bpf, Src};
use serval_riscv::insn::{IAluOp, IAluWOp, Insn as Rv, RAluOp, RAluWOp};
use serval_riscv::reg;
use std::collections::BTreeSet;

/// The nine §7 RISC-V JIT bugs, as reintroducible switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RvBug {
    /// ALU32 add: result not zero-extended (addw sign-extends).
    ZextAdd32,
    /// ALU32 sub: result not zero-extended.
    ZextSub32,
    /// ALU32 and: operands' high bits leak into the result.
    ZextAnd32,
    /// ALU32 or: high bits leak.
    ZextOr32,
    /// ALU32 xor: high bits leak.
    ZextXor32,
    /// ALU32 mov: source high bits copied instead of cleared.
    ZextMov32,
    /// ALU32 lsh: emitted the 64-bit shift instead of sllw.
    Shift32Lsh,
    /// ALU32 rsh: emitted the 64-bit shift instead of srlw.
    Shift32Rsh,
    /// ALU32 arsh: emitted the 64-bit shift instead of sraw.
    Shift32Arsh,
}

impl RvBug {
    /// All nine bugs.
    pub const ALL: [RvBug; 9] = [
        RvBug::ZextAdd32,
        RvBug::ZextSub32,
        RvBug::ZextAnd32,
        RvBug::ZextOr32,
        RvBug::ZextXor32,
        RvBug::ZextMov32,
        RvBug::Shift32Lsh,
        RvBug::Shift32Rsh,
        RvBug::Shift32Arsh,
    ];
}

/// The JIT: maps BPF registers to RISC-V registers and emits per-BPF-
/// instruction sequences.
#[derive(Clone, Debug, Default)]
pub struct Rv64Jit {
    /// Bugs to reintroduce; empty = the fixed JIT.
    pub bugs: BTreeSet<RvBug>,
}

/// BPF register → RISC-V register (modelled on the kernel's map).
pub fn reg_map(r: u8) -> u8 {
    match r {
        0..=7 => reg::A0 + r, // a0..a7
        8 => reg::S2,
        9 => reg::S3,
        10 => reg::S4,
        _ => panic!("bad bpf register {r}"),
    }
}

/// Temporaries used by emitted sequences.
const TMP1: u8 = reg::T0;
const TMP2: u8 = reg::T1;

impl Rv64Jit {
    /// A correct (fixed) JIT.
    pub fn fixed() -> Rv64Jit {
        Rv64Jit::default()
    }

    /// A JIT with all nine historical bugs present.
    pub fn buggy() -> Rv64Jit {
        Rv64Jit {
            bugs: RvBug::ALL.into_iter().collect(),
        }
    }

    fn has(&self, b: RvBug) -> bool {
        self.bugs.contains(&b)
    }

    /// Emits the RISC-V sequence for one BPF ALU instruction. Returns
    /// `None` for instructions outside the checker's scope.
    pub fn emit(&self, insn: Bpf) -> Option<Vec<Rv>> {
        let mut out = Vec::new();
        match insn {
            Bpf::Alu64 { op, src, dst, srcr, imm } => {
                let rd = reg_map(dst);
                let rs = self.operand(&mut out, src, srcr, imm);
                self.emit_alu64(&mut out, op, rd, rs)?;
            }
            Bpf::Alu32 { op, src, dst, srcr, imm } => {
                let rd = reg_map(dst);
                let rs = self.operand(&mut out, src, srcr, imm);
                self.emit_alu32(&mut out, op, rd, rs)?;
            }
            _ => return None,
        }
        Some(out)
    }

    /// Materializes the source operand into a register (the immediate goes
    /// through `emit_imm`, like the kernel).
    fn operand(&self, out: &mut Vec<Rv>, src: Src, srcr: u8, imm: i32) -> u8 {
        match src {
            Src::X => reg_map(srcr),
            Src::K => {
                emit_imm(out, TMP1, imm as i64);
                TMP1
            }
        }
    }

    fn emit_alu64(&self, out: &mut Vec<Rv>, op: AluOp, rd: u8, rs: u8) -> Option<()> {
        let r = |op| Rv::Op { op, rd, rs1: rd, rs2: rs };
        match op {
            AluOp::Add => out.push(r(RAluOp::Add)),
            AluOp::Sub => out.push(r(RAluOp::Sub)),
            AluOp::Mul => out.push(r(RAluOp::Mul)),
            AluOp::Or => out.push(r(RAluOp::Or)),
            AluOp::And => out.push(r(RAluOp::And)),
            AluOp::Xor => out.push(r(RAluOp::Xor)),
            AluOp::Mov => out.push(Rv::OpImm { op: IAluOp::Addi, rd, rs1: rs, imm: 0 }),
            AluOp::Neg => out.push(Rv::Op { op: RAluOp::Sub, rd, rs1: reg::ZERO, rs2: rd }),
            AluOp::Lsh => {
                // BPF masks shift amounts to the width; RISC-V sll does
                // the same masking in hardware.
                out.push(r(RAluOp::Sll))
            }
            AluOp::Rsh => out.push(r(RAluOp::Srl)),
            AluOp::Arsh => out.push(r(RAluOp::Sra)),
            AluOp::Div => {
                // BPF semantics: division by zero yields 0. Emit the
                // checked sequence:
                //   beq rs, x0, +8 ; divu rd, rd, rs ; j +8 ; li rd, 0
                out.push(Rv::Branch {
                    op: serval_riscv::insn::BrOp::Beq,
                    rs1: rs,
                    rs2: reg::ZERO,
                    off: 12,
                });
                out.push(Rv::Op { op: RAluOp::Divu, rd, rs1: rd, rs2: rs });
                out.push(Rv::Jal { rd: reg::ZERO, off: 8 });
                out.push(Rv::OpImm { op: IAluOp::Addi, rd, rs1: reg::ZERO, imm: 0 });
            }
            AluOp::Mod => {
                // x % 0 = x: the remu result is unused on the zero path.
                out.push(Rv::Branch {
                    op: serval_riscv::insn::BrOp::Beq,
                    rs1: rs,
                    rs2: reg::ZERO,
                    off: 8,
                });
                out.push(Rv::Op { op: RAluOp::Remu, rd, rs1: rd, rs2: rs });
            }
        }
        Some(())
    }

    fn emit_alu32(&self, out: &mut Vec<Rv>, op: AluOp, rd: u8, rs: u8) -> Option<()> {
        let rw = |op| Rv::OpW { op, rd, rs1: rd, rs2: rs };
        let r64 = |op| Rv::Op { op, rd, rs1: rd, rs2: rs };
        let mut need_zext = true;
        match op {
            AluOp::Add => {
                out.push(rw(RAluWOp::Addw));
                if self.has(RvBug::ZextAdd32) {
                    need_zext = false;
                }
            }
            AluOp::Sub => {
                out.push(rw(RAluWOp::Subw));
                if self.has(RvBug::ZextSub32) {
                    need_zext = false;
                }
            }
            AluOp::Mul => out.push(rw(RAluWOp::Mulw)),
            AluOp::Or => {
                out.push(r64(RAluOp::Or));
                if self.has(RvBug::ZextOr32) {
                    need_zext = false;
                }
            }
            AluOp::And => {
                out.push(r64(RAluOp::And));
                if self.has(RvBug::ZextAnd32) {
                    need_zext = false;
                }
            }
            AluOp::Xor => {
                out.push(r64(RAluOp::Xor));
                if self.has(RvBug::ZextXor32) {
                    need_zext = false;
                }
            }
            AluOp::Mov => {
                out.push(Rv::OpImm { op: IAluOp::Addi, rd, rs1: rs, imm: 0 });
                if self.has(RvBug::ZextMov32) {
                    need_zext = false;
                }
            }
            AluOp::Neg => {
                out.push(Rv::OpW { op: RAluWOp::Subw, rd, rs1: reg::ZERO, rs2: rd });
            }
            AluOp::Lsh => {
                if self.has(RvBug::Shift32Lsh) {
                    // The historical bug: 64-bit shift, no 32-bit wrap.
                    out.push(r64(RAluOp::Sll));
                    need_zext = false;
                } else {
                    out.push(rw(RAluWOp::Sllw));
                }
            }
            AluOp::Rsh => {
                if self.has(RvBug::Shift32Rsh) {
                    out.push(r64(RAluOp::Srl));
                    need_zext = false;
                } else {
                    out.push(rw(RAluWOp::Srlw));
                }
            }
            AluOp::Arsh => {
                if self.has(RvBug::Shift32Arsh) {
                    out.push(r64(RAluOp::Sra));
                    need_zext = false;
                } else {
                    out.push(rw(RAluWOp::Sraw));
                }
            }
            AluOp::Div => {
                // The 32-bit zero test must look at the low word only.
                out.push(Rv::OpImmW { op: IAluWOp::Addiw, rd: TMP2, rs1: rs, imm: 0 });
                out.push(Rv::Branch {
                    op: serval_riscv::insn::BrOp::Beq,
                    rs1: TMP2,
                    rs2: reg::ZERO,
                    off: 12,
                });
                out.push(Rv::OpW { op: RAluWOp::Divuw, rd, rs1: rd, rs2: rs });
                out.push(Rv::Jal { rd: reg::ZERO, off: 8 });
                out.push(Rv::OpImm { op: IAluOp::Addi, rd, rs1: reg::ZERO, imm: 0 });
            }
            AluOp::Mod => {
                out.push(Rv::OpImmW { op: IAluWOp::Addiw, rd: TMP2, rs1: rs, imm: 0 });
                out.push(Rv::Branch {
                    op: serval_riscv::insn::BrOp::Beq,
                    rs1: TMP2,
                    rs2: reg::ZERO,
                    off: 8,
                });
                out.push(Rv::OpW { op: RAluWOp::Remuw, rd, rs1: rd, rs2: rs });
            }
        }
        if need_zext {
            zext32(out, rd);
        }
        Some(())
    }
}

/// Zero-extends the low 32 bits of `rd` (slli 32; srli 32), the fix for
/// the `Zext*` bug class.
fn zext32(out: &mut Vec<Rv>, rd: u8) {
    out.push(Rv::OpImm { op: IAluOp::Slli, rd, rs1: rd, imm: 32 });
    out.push(Rv::OpImm { op: IAluOp::Srli, rd, rs1: rd, imm: 32 });
}

/// Loads a sign-extended 32-bit immediate (the kernel's `emit_imm`,
/// restricted to the i32 immediates BPF instructions carry).
fn emit_imm(out: &mut Vec<Rv>, rd: u8, v: i64) {
    if (-2048..2048).contains(&v) {
        out.push(Rv::OpImm { op: IAluOp::Addi, rd, rs1: reg::ZERO, imm: v as i32 });
        return;
    }
    let low = (v << 52 >> 52) as i32;
    let high = ((v - low as i64) >> 12) as i32;
    out.push(Rv::Lui { rd, imm20: high & 0xfffff });
    if low != 0 {
        out.push(Rv::OpImmW { op: IAluWOp::Addiw, rd, rs1: rd, imm: low });
    }
}

/// Exposes temporaries for the checker's clobber set.
pub fn temp_regs() -> [u8; 2] {
    [TMP1, TMP2]
}
