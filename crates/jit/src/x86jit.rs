//! A BPF→x86-32 JIT modelled on the kernel's `bpf_jit_comp32.c`: 64-bit
//! BPF values live in 32-bit register pairs, and 64-bit shifts use
//! `shld`/`shrd` with an explicit fix-up for counts of 32 or more.
//!
//! The six [`X86Bug`] variants reproduce the §7 x86-32 bug class — the
//! ALU64 {LSH, RSH, ARSH} × {K, X} shifts mishandling counts ≥ 32 — so the
//! checker can demonstrate finding them.

use serval_bpf::{AluOp, Insn as Bpf, Src};
use serval_x86::{Alu, Cc, Insn as X86, Reg, ShiftOp};
use std::collections::BTreeSet;

/// The six §7 x86-32 JIT bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum X86Bug {
    /// ALU64 lsh by immediate: counts >= 32 use the small-count path.
    LshK,
    /// ALU64 rsh by immediate.
    RshK,
    /// ALU64 arsh by immediate.
    ArshK,
    /// ALU64 lsh by register: missing the >= 32 fix-up.
    LshX,
    /// ALU64 rsh by register.
    RshX,
    /// ALU64 arsh by register.
    ArshX,
}

impl X86Bug {
    /// All six bugs.
    pub const ALL: [X86Bug; 6] = [
        X86Bug::LshK,
        X86Bug::RshK,
        X86Bug::ArshK,
        X86Bug::LshX,
        X86Bug::RshX,
        X86Bug::ArshX,
    ];
}

/// BPF register → (low, high) x86 register pair. The checker maps BPF
/// r0-r2; the kernel keeps further registers on the stack, which the
/// register-only model omits (see DESIGN.md).
pub fn pair_map(r: u8) -> (Reg, Reg) {
    match r {
        0 => (Reg::Eax, Reg::Edx),
        1 => (Reg::Ebx, Reg::Ebp),
        2 => (Reg::Esi, Reg::Edi),
        _ => panic!("bpf register r{r} is not register-allocated on x86-32"),
    }
}

/// The BPF→x86-32 JIT.
#[derive(Clone, Debug, Default)]
pub struct X86Jit {
    /// Bugs to reintroduce; empty = the fixed JIT.
    pub bugs: BTreeSet<X86Bug>,
}

impl X86Jit {
    /// A correct (fixed) JIT.
    pub fn fixed() -> X86Jit {
        X86Jit::default()
    }

    /// A JIT with all six historical bugs present.
    pub fn buggy() -> X86Jit {
        X86Jit {
            bugs: X86Bug::ALL.into_iter().collect(),
        }
    }

    fn has(&self, b: X86Bug) -> bool {
        self.bugs.contains(&b)
    }

    /// Emits the x86 sequence for one BPF instruction; `None` when the
    /// instruction is outside the register-only subset (mul/div/mod go
    /// through helper calls in the kernel).
    pub fn emit(&self, insn: Bpf) -> Option<Vec<X86>> {
        let mut out = Vec::new();
        match insn {
            Bpf::Alu64 { op, src, dst, srcr, imm } => {
                if dst > 2 || (src == Src::X && srcr > 2) {
                    return None;
                }
                self.emit_alu64(&mut out, op, src, dst, srcr, imm)?;
            }
            Bpf::Alu32 { op, src, dst, srcr, imm } => {
                if dst > 2 || (src == Src::X && srcr > 2) {
                    return None;
                }
                self.emit_alu32(&mut out, op, src, dst, srcr, imm)?;
            }
            _ => return None,
        }
        Some(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_alu64(
        &self,
        out: &mut Vec<X86>,
        op: AluOp,
        src: Src,
        dst: u8,
        srcr: u8,
        imm: i32,
    ) -> Option<()> {
        let (dl, dh) = pair_map(dst);
        let hi_imm = (imm >> 31) as u32; // sign extension of the immediate
        match op {
            AluOp::Add | AluOp::Sub => {
                let (lo_op, hi_op) = if op == AluOp::Add {
                    (Alu::Add, Alu::Adc)
                } else {
                    (Alu::Sub, Alu::Sbb)
                };
                match src {
                    Src::X => {
                        let (sl, sh) = pair_map(srcr);
                        out.push(X86::AluRR { op: lo_op, dst: dl, src: sl });
                        out.push(X86::AluRR { op: hi_op, dst: dh, src: sh });
                    }
                    Src::K => {
                        out.push(X86::AluRI { op: lo_op, dst: dl, imm: imm as u32 });
                        out.push(X86::AluRI { op: hi_op, dst: dh, imm: hi_imm });
                    }
                }
            }
            AluOp::And | AluOp::Or | AluOp::Xor => {
                let a = match op {
                    AluOp::And => Alu::And,
                    AluOp::Or => Alu::Or,
                    _ => Alu::Xor,
                };
                match src {
                    Src::X => {
                        let (sl, sh) = pair_map(srcr);
                        out.push(X86::AluRR { op: a, dst: dl, src: sl });
                        out.push(X86::AluRR { op: a, dst: dh, src: sh });
                    }
                    Src::K => {
                        out.push(X86::AluRI { op: a, dst: dl, imm: imm as u32 });
                        out.push(X86::AluRI { op: a, dst: dh, imm: hi_imm });
                    }
                }
            }
            AluOp::Mov => match src {
                Src::X => {
                    let (sl, sh) = pair_map(srcr);
                    out.push(X86::MovRR { dst: dl, src: sl });
                    out.push(X86::MovRR { dst: dh, src: sh });
                }
                Src::K => {
                    out.push(X86::MovRI { dst: dl, imm: imm as u32 });
                    out.push(X86::MovRI { dst: dh, imm: hi_imm });
                }
            },
            AluOp::Neg => {
                // -x = ~x + 1 across the pair.
                out.push(X86::Not { dst: dl });
                out.push(X86::Not { dst: dh });
                out.push(X86::AluRI { op: Alu::Add, dst: dl, imm: 1 });
                out.push(X86::AluRI { op: Alu::Adc, dst: dh, imm: 0 });
            }
            AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => match src {
                Src::K => self.shift64_k(out, op, dl, dh, imm as u32 & 63),
                Src::X => {
                    let (sl, _sh) = pair_map(srcr);
                    self.shift64_x(out, op, dl, dh, sl);
                }
            },
            // Multiplication and division go through helper calls in the
            // kernel's 32-bit JIT; out of the register-only scope.
            AluOp::Mul | AluOp::Div | AluOp::Mod => return None,
        }
        Some(())
    }

    /// 64-bit shift by a constant (pre-masked to 0..=63).
    fn shift64_k(&self, out: &mut Vec<X86>, op: AluOp, dl: Reg, dh: Reg, k: u32) {
        let bug = match op {
            AluOp::Lsh => self.has(X86Bug::LshK),
            AluOp::Rsh => self.has(X86Bug::RshK),
            _ => self.has(X86Bug::ArshK),
        };
        if k == 0 {
            return;
        }
        let small = k < 32 || bug; // the bug: always take the small path
        let k8 = if small { (k & 31) as u8 } else { (k - 32) as u8 };
        match op {
            AluOp::Lsh => {
                if small {
                    out.push(X86::ShldRI { dst: dh, src: dl, imm: k8 });
                    out.push(X86::ShiftRI { op: ShiftOp::Shl, dst: dl, imm: k8 });
                } else {
                    out.push(X86::MovRR { dst: dh, src: dl });
                    out.push(X86::ShiftRI { op: ShiftOp::Shl, dst: dh, imm: k8 });
                    out.push(X86::MovRI { dst: dl, imm: 0 });
                }
            }
            AluOp::Rsh => {
                if small {
                    out.push(X86::ShrdRI { dst: dl, src: dh, imm: k8 });
                    out.push(X86::ShiftRI { op: ShiftOp::Shr, dst: dh, imm: k8 });
                } else {
                    out.push(X86::MovRR { dst: dl, src: dh });
                    out.push(X86::ShiftRI { op: ShiftOp::Shr, dst: dl, imm: k8 });
                    out.push(X86::MovRI { dst: dh, imm: 0 });
                }
            }
            _ => {
                if small {
                    out.push(X86::ShrdRI { dst: dl, src: dh, imm: k8 });
                    out.push(X86::ShiftRI { op: ShiftOp::Sar, dst: dh, imm: k8 });
                } else {
                    out.push(X86::MovRR { dst: dl, src: dh });
                    out.push(X86::ShiftRI { op: ShiftOp::Sar, dst: dl, imm: k8 });
                    out.push(X86::ShiftRI { op: ShiftOp::Sar, dst: dh, imm: 31 });
                }
            }
        }
    }

    /// 64-bit shift by a register (the count register is `ecx`).
    fn shift64_x(&self, out: &mut Vec<X86>, op: AluOp, dl: Reg, dh: Reg, sl: Reg) {
        let bug = match op {
            AluOp::Lsh => self.has(X86Bug::LshX),
            AluOp::Rsh => self.has(X86Bug::RshX),
            _ => self.has(X86Bug::ArshX),
        };
        out.push(X86::MovRR { dst: Reg::Ecx, src: sl });
        out.push(X86::AluRI { op: Alu::And, dst: Reg::Ecx, imm: 63 });
        match op {
            AluOp::Lsh => {
                out.push(X86::ShldRCl { dst: dh, src: dl });
                out.push(X86::ShiftRCl { op: ShiftOp::Shl, dst: dl });
            }
            AluOp::Rsh => {
                out.push(X86::ShrdRCl { dst: dl, src: dh });
                out.push(X86::ShiftRCl { op: ShiftOp::Shr, dst: dh });
            }
            _ => {
                out.push(X86::ShrdRCl { dst: dl, src: dh });
                out.push(X86::ShiftRCl { op: ShiftOp::Sar, dst: dh });
            }
        }
        if bug {
            // The historical bug: no fix-up for counts >= 32.
            return;
        }
        // if (count >= 32) { fix up the pair }
        out.push(X86::AluRI { op: Alu::Cmp, dst: Reg::Ecx, imm: 32 });
        out.push(X86::Jcc { cc: Cc::B, target: 2 });
        match op {
            AluOp::Lsh => {
                out.push(X86::MovRR { dst: dh, src: dl });
                out.push(X86::MovRI { dst: dl, imm: 0 });
            }
            AluOp::Rsh => {
                out.push(X86::MovRR { dst: dl, src: dh });
                out.push(X86::MovRI { dst: dh, imm: 0 });
            }
            _ => {
                out.push(X86::MovRR { dst: dl, src: dh });
                out.push(X86::ShiftRI { op: ShiftOp::Sar, dst: dh, imm: 31 });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_alu32(
        &self,
        out: &mut Vec<X86>,
        op: AluOp,
        src: Src,
        dst: u8,
        srcr: u8,
        imm: i32,
    ) -> Option<()> {
        let (dl, dh) = pair_map(dst);
        let lo = |out: &mut Vec<X86>, a: Alu| match src {
            Src::X => out.push(X86::AluRR { op: a, dst: dl, src: pair_map(srcr).0 }),
            Src::K => out.push(X86::AluRI { op: a, dst: dl, imm: imm as u32 }),
        };
        match op {
            AluOp::Add => lo(out, Alu::Add),
            AluOp::Sub => lo(out, Alu::Sub),
            AluOp::And => lo(out, Alu::And),
            AluOp::Or => lo(out, Alu::Or),
            AluOp::Xor => lo(out, Alu::Xor),
            AluOp::Mov => match src {
                Src::X => out.push(X86::MovRR { dst: dl, src: pair_map(srcr).0 }),
                Src::K => out.push(X86::MovRI { dst: dl, imm: imm as u32 }),
            },
            AluOp::Neg => out.push(X86::Neg { dst: dl }),
            AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => {
                let sh = match op {
                    AluOp::Lsh => ShiftOp::Shl,
                    AluOp::Rsh => ShiftOp::Shr,
                    _ => ShiftOp::Sar,
                };
                match src {
                    Src::K => out.push(X86::ShiftRI { op: sh, dst: dl, imm: (imm as u32 & 31) as u8 }),
                    Src::X => {
                        out.push(X86::MovRR { dst: Reg::Ecx, src: pair_map(srcr).0 });
                        out.push(X86::AluRI { op: Alu::And, dst: Reg::Ecx, imm: 31 });
                        out.push(X86::ShiftRCl { op: sh, dst: dl });
                    }
                }
            }
            AluOp::Mul | AluOp::Div | AluOp::Mod => return None,
        }
        // 32-bit results clear the high half.
        out.push(X86::MovRI { dst: dh, imm: 0 });
        Some(())
    }
}
