//! BPF JIT compilers and the Serval JIT-correctness checker (paper §7).
//!
//! The paper combines the BPF verifier with the RISC-V and x86-32
//! verifiers to check the Linux kernel's BPF JITs one instruction at a
//! time, finding 15 bugs (9 RISC-V, 6 x86-32), all in the handling of
//! zero extensions and bit shifts. This crate reproduces that experiment:
//!
//! - [`rv64`]: a BPF→RV64 JIT modelled on the kernel's, with the nine
//!   historical bug classes reintroducible via [`rv64::RvBug`];
//! - [`x86jit`]: a BPF→x86-32 JIT using register pairs for 64-bit values,
//!   with the six shift-handling bugs reintroducible via
//!   [`x86jit::X86Bug`];
//! - [`checker`]: the per-instruction equivalence checker — starting from
//!   a BPF state and a corresponding machine state, executing one BPF
//!   instruction must be equivalent to executing the JIT's output.

pub mod checker;
pub mod rv64;
pub mod x86jit;

pub use checker::{check_rv64, check_x86, sweep_rv64, sweep_x86, CheckRow};
pub use rv64::{Rv64Jit, RvBug};
pub use x86jit::{X86Bug, X86Jit};

#[cfg(test)]
mod tests;
