//! The JIT-correctness checker (paper §7).
//!
//! The property: starting from a BPF state and an equivalent machine
//! state, the result of executing a single BPF instruction on the BPF
//! state is equivalent to the machine state after executing the JIT's
//! output for that instruction. Violations are reported as bugs with
//! counterexamples, which the paper turned into kernel patches and
//! regression tests.

use crate::rv64::{reg_map, Rv64Jit};
use crate::x86jit::{pair_map, X86Jit};
use serval_bpf::{AluOp, BpfInterp, BpfState, Insn as Bpf, Src};
use serval_core::{Mem, MemCfg};
use serval_riscv::{Interp as RvInterp, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, SBool, VerifyResult};
use serval_sym::SymCtx;
use std::time::Instant;

/// One checker verdict.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Target ISA ("rv64" or "x86-32").
    pub target: &'static str,
    /// Description of the BPF instruction checked.
    pub insn: String,
    /// Whether the translation was verified equivalent.
    pub ok: bool,
    /// Counterexample description when not ok.
    pub cex: Option<String>,
    /// Wall time of the check.
    pub millis: u128,
}

/// Checks one BPF instruction against the RISC-V JIT. Returns `None` when
/// the JIT does not cover the instruction. Resets the thread's term
/// context.
pub fn check_rv64(jit: &Rv64Jit, insn: Bpf, cfg: SolverConfig) -> Option<CheckRow> {
    let seq = jit.emit(insn)?;
    reset_ctx();
    let start = Instant::now();
    let mut ctx = SymCtx::new();
    // Full fidelity: the emitted instructions go through machine-code
    // encoding and validated decoding (paper §3.4).
    let mut words: Vec<u32> = seq.iter().map(|&i| serval_riscv::encode(i)).collect();
    words.push(serval_riscv::encode(serval_riscv::Insn::Mret));
    let interp = match RvInterp::from_words(0, &words, 256) {
        Ok(i) => i,
        Err(e) => {
            return Some(CheckRow {
                target: "rv64",
                insn: format!("{insn:?}"),
                ok: false,
                cex: Some(format!("emitted invalid machine code: {e}")),
                millis: start.elapsed().as_millis(),
            })
        }
    };
    let b0 = BpfState::fresh("bpf");
    let mut b = b0.clone();
    let mut m = Machine::fresh_at(0, Mem::new(MemCfg::default()), "rv");
    for r in 0..=10u8 {
        m.set_reg(reg_map(r), b.reg(r));
    }
    let bpf = BpfInterp::new(vec![]);
    bpf.step_insn(&mut ctx, &mut b, insn);
    let o = interp.run(&mut ctx, &mut m);
    if !o.ok() {
        return Some(CheckRow {
            target: "rv64",
            insn: format!("{insn:?}"),
            ok: false,
            cex: Some(format!("machine run did not complete: {o:?}")),
            millis: start.elapsed().as_millis(),
        });
    }
    // Equivalence goal over every BPF register.
    let mut goal = SBool::lit(true);
    for r in 0..=10u8 {
        goal = goal & m.reg(reg_map(r)).eq_(b.reg(r));
    }
    finish("rv64", insn, &b0, &ctx, cfg, goal, start)
}

/// Checks one BPF instruction against the x86-32 JIT.
pub fn check_x86(jit: &X86Jit, insn: Bpf, cfg: SolverConfig) -> Option<CheckRow> {
    let seq = jit.emit(insn)?;
    reset_ctx();
    let start = Instant::now();
    let mut ctx = SymCtx::new();
    // Fidelity: round-trip through machine bytes.
    for &i in &seq {
        let bytes = serval_x86::encode(i);
        if serval_x86::decode_validated(&bytes).is_err() {
            return Some(CheckRow {
                target: "x86-32",
                insn: format!("{insn:?}"),
                ok: false,
                cex: Some("emitted invalid machine code".into()),
                millis: start.elapsed().as_millis(),
            });
        }
    }
    let interp = serval_x86::X86Interp::new(seq);
    let b0 = BpfState::fresh("bpf");
    let mut b = b0.clone();
    let mut m = serval_x86::X86State::fresh("x86");
    for r in 0..=2u8 {
        let (lo, hi) = pair_map(r);
        m.set_reg(lo, b.reg(r).trunc(32));
        m.set_reg(hi, b.reg(r).extract(63, 32));
    }
    let bpf = BpfInterp::new(vec![]);
    bpf.step_insn(&mut ctx, &mut b, insn);
    if !interp.run(&mut ctx, &mut m) {
        return Some(CheckRow {
            target: "x86-32",
            insn: format!("{insn:?}"),
            ok: false,
            cex: Some("machine run diverged".into()),
            millis: start.elapsed().as_millis(),
        });
    }
    let mut goal = SBool::lit(true);
    for r in 0..=2u8 {
        let (lo, hi) = pair_map(r);
        goal = goal & m.reg(hi).concat(m.reg(lo)).eq_(b.reg(r));
    }
    finish("x86-32", insn, &b0, &ctx, cfg, goal, start)
}

fn finish(
    target: &'static str,
    insn: Bpf,
    b0: &BpfState,
    ctx: &SymCtx,
    cfg: SolverConfig,
    mut goal: SBool,
    start: Instant,
) -> Option<CheckRow> {
    // Collected UB obligations must also hold (e.g. no jumps out of the
    // emitted sequence).
    for ob in ctx.obligations() {
        goal = goal & ob.condition;
    }
    let (ok, cex) = match serval_smt::solver::verify_with(cfg, ctx.assumptions(), goal) {
        VerifyResult::Proved => (true, None),
        VerifyResult::Unknown => (false, Some("solver budget exhausted".into())),
        VerifyResult::Counterexample(model) => {
            let mut desc = String::from("counterexample:");
            for r in 0..=10u8 {
                let v = model.eval_bv(b0.reg(r).0) as u64;
                if v != 0 {
                    desc.push_str(&format!(" r{r}={v:#x}"));
                }
            }
            (false, Some(desc))
        }
    };
    Some(CheckRow {
        target,
        insn: format!("{insn:?}"),
        ok,
        cex,
        millis: start.elapsed().as_millis(),
    })
}

/// Immediates exercised for `K`-form instructions (shift corner cases
/// included: 0, 32 boundary, and large counts).
pub const K_VALUES: [i32; 7] = [0, 1, 31, 32, 33, 63, -1];

/// Sweeps the RISC-V JIT across every ALU instruction in both widths and
/// both source forms (paper §7's per-instruction checking).
pub fn sweep_rv64(jit: &Rv64Jit, cfg: SolverConfig) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    for &op in &AluOp::ALL {
        for is32 in [false, true] {
            // Register form.
            let insn = mk_insn(op, is32, Src::X, 0);
            if let Some(row) = check_rv64(jit, insn, cfg) {
                rows.push(row);
            }
            // Immediate forms across the corner-case constants; report the
            // first failing immediate.
            let mut k_row: Option<CheckRow> = None;
            for &k in &K_VALUES {
                let insn = mk_insn(op, is32, Src::K, k);
                if let Some(row) = check_rv64(jit, insn, cfg) {
                    let failed = !row.ok;
                    if k_row.is_none() || failed {
                        k_row = Some(row);
                    }
                    if failed {
                        break;
                    }
                }
            }
            rows.extend(k_row);
        }
    }
    rows
}

/// Sweeps the x86-32 JIT (register-only subset).
pub fn sweep_x86(jit: &X86Jit, cfg: SolverConfig) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    for &op in &AluOp::ALL {
        for is32 in [false, true] {
            let insn = mk_insn(op, is32, Src::X, 0);
            if let Some(row) = check_x86(jit, insn, cfg) {
                rows.push(row);
            }
            let mut k_row: Option<CheckRow> = None;
            for &k in &K_VALUES {
                let insn = mk_insn(op, is32, Src::K, k);
                if let Some(row) = check_x86(jit, insn, cfg) {
                    let failed = !row.ok;
                    if k_row.is_none() || failed {
                        k_row = Some(row);
                    }
                    if failed {
                        break;
                    }
                }
            }
            rows.extend(k_row);
        }
    }
    rows
}

fn mk_insn(op: AluOp, is32: bool, src: Src, imm: i32) -> Bpf {
    let (dst, srcr) = (1, 2);
    if is32 {
        Bpf::Alu32 { op, src, dst, srcr, imm }
    } else {
        Bpf::Alu64 { op, src, dst, srcr, imm }
    }
}
