//! The JIT-correctness checker (paper §7).
//!
//! The property: starting from a BPF state and an equivalent machine
//! state, the result of executing a single BPF instruction on the BPF
//! state is equivalent to the machine state after executing the JIT's
//! output for that instruction. Violations are reported as bugs with
//! counterexamples, which the paper turned into kernel patches and
//! regression tests.

use crate::rv64::{reg_map, Rv64Jit};
use crate::x86jit::{pair_map, X86Jit};
use serval_bpf::{AluOp, BpfInterp, BpfState, Insn as Bpf, Src};
use serval_core::{Mem, MemCfg};
use serval_engine::{Query, QueryOutcome};
use serval_riscv::{Interp as RvInterp, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, SBool, VerifyResult};
use serval_sym::SymCtx;
use std::time::Instant;

/// One checker verdict.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Target ISA ("rv64" or "x86-32").
    pub target: &'static str,
    /// Description of the BPF instruction checked.
    pub insn: String,
    /// Whether the translation was verified equivalent.
    pub ok: bool,
    /// Counterexample description when not ok.
    pub cex: Option<String>,
    /// End-to-end wall time of the check: symbolic evaluation (query
    /// construction) plus solving. The solve component is zero for
    /// cache hits, so warm-cache rows show only the preparation time.
    pub millis: u128,
}

/// A check that built its equivalence query but has not solved it yet.
/// The query's terms live in the building thread's term context, which
/// must stay intact (no `reset_ctx`) until the verdict comes back.
enum PreparedCheck {
    /// The check failed before solving (encode/decode/run error).
    Done(CheckRow),
    /// A solver query, ready for the engine.
    Pending {
        target: &'static str,
        insn: String,
        b0: BpfState,
        assumptions: Vec<SBool>,
        goal: SBool,
    },
}

/// Builds the RISC-V equivalence query for one BPF instruction without
/// solving it. Returns `None` when the JIT does not cover the
/// instruction. Does not reset the term context, so many checks can be
/// prepared back-to-back and discharged as one batch.
fn prepare_rv64(jit: &Rv64Jit, insn: Bpf) -> Option<PreparedCheck> {
    let seq = jit.emit(insn)?;
    let mut ctx = SymCtx::new();
    // Full fidelity: the emitted instructions go through machine-code
    // encoding and validated decoding (paper §3.4).
    let mut words: Vec<u32> = seq.iter().map(|&i| serval_riscv::encode(i)).collect();
    words.push(serval_riscv::encode(serval_riscv::Insn::Mret));
    let interp = match RvInterp::from_words(0, &words, 256) {
        Ok(i) => i,
        Err(e) => {
            return Some(PreparedCheck::Done(CheckRow {
                target: "rv64",
                insn: format!("{insn:?}"),
                ok: false,
                cex: Some(format!("emitted invalid machine code: {e}")),
                millis: 0,
            }))
        }
    };
    let b0 = BpfState::fresh("bpf");
    let mut b = b0.clone();
    let mut m = Machine::fresh_at(0, Mem::new(MemCfg::default()), "rv");
    for r in 0..=10u8 {
        m.set_reg(reg_map(r), b.reg(r));
    }
    let bpf = BpfInterp::new(vec![]);
    bpf.step_insn(&mut ctx, &mut b, insn);
    let o = interp.run(&mut ctx, &mut m);
    if !o.ok() {
        return Some(PreparedCheck::Done(CheckRow {
            target: "rv64",
            insn: format!("{insn:?}"),
            ok: false,
            cex: Some(format!("machine run did not complete: {o:?}")),
            millis: 0,
        }));
    }
    // Equivalence goal over every BPF register.
    let mut goal = SBool::lit(true);
    for r in 0..=10u8 {
        goal = goal & m.reg(reg_map(r)).eq_(b.reg(r));
    }
    Some(seal("rv64", insn, b0, ctx, goal))
}

/// Builds the x86-32 equivalence query for one BPF instruction.
fn prepare_x86(jit: &X86Jit, insn: Bpf) -> Option<PreparedCheck> {
    let seq = jit.emit(insn)?;
    let mut ctx = SymCtx::new();
    // Fidelity: round-trip through machine bytes.
    for &i in &seq {
        let bytes = serval_x86::encode(i);
        if serval_x86::decode_validated(&bytes).is_err() {
            return Some(PreparedCheck::Done(CheckRow {
                target: "x86-32",
                insn: format!("{insn:?}"),
                ok: false,
                cex: Some("emitted invalid machine code".into()),
                millis: 0,
            }));
        }
    }
    let interp = serval_x86::X86Interp::new(seq);
    let b0 = BpfState::fresh("bpf");
    let mut b = b0.clone();
    let mut m = serval_x86::X86State::fresh("x86");
    for r in 0..=2u8 {
        let (lo, hi) = pair_map(r);
        m.set_reg(lo, b.reg(r).trunc(32));
        m.set_reg(hi, b.reg(r).extract(63, 32));
    }
    let bpf = BpfInterp::new(vec![]);
    bpf.step_insn(&mut ctx, &mut b, insn);
    if !interp.run(&mut ctx, &mut m) {
        return Some(PreparedCheck::Done(CheckRow {
            target: "x86-32",
            insn: format!("{insn:?}"),
            ok: false,
            cex: Some("machine run diverged".into()),
            millis: 0,
        }));
    }
    let mut goal = SBool::lit(true);
    for r in 0..=2u8 {
        let (lo, hi) = pair_map(r);
        goal = goal & m.reg(hi).concat(m.reg(lo)).eq_(b.reg(r));
    }
    Some(seal("x86-32", insn, b0, ctx, goal))
}

/// Folds the collected UB obligations into the goal (e.g. no jumps out
/// of the emitted sequence) and packages the pending query.
fn seal(
    target: &'static str,
    insn: Bpf,
    b0: BpfState,
    ctx: SymCtx,
    mut goal: SBool,
) -> PreparedCheck {
    for ob in ctx.obligations() {
        goal = goal & ob.condition;
    }
    PreparedCheck::Pending {
        target,
        insn: format!("{insn:?}"),
        b0,
        assumptions: ctx.assumptions().to_vec(),
        goal,
    }
}

/// Turns an engine verdict into a checker row. The counterexample model
/// comes back translated into this thread's term context, so it can be
/// evaluated against the original BPF state.
fn row_from_outcome(
    target: &'static str,
    insn: String,
    b0: &BpfState,
    outcome: QueryOutcome,
) -> CheckRow {
    let (ok, cex) = match outcome.result {
        VerifyResult::Proved => (true, None),
        VerifyResult::Unknown => match outcome.error {
            Some(e) => (false, Some(format!("worker failed: {e}"))),
            None => (false, Some("solver budget exhausted".into())),
        },
        VerifyResult::Interrupted => (false, Some("solve was cancelled".into())),
        VerifyResult::Counterexample(model) => {
            let mut desc = String::from("counterexample:");
            for r in 0..=10u8 {
                let v = model.eval_bv(b0.reg(r).0) as u64;
                if v != 0 {
                    desc.push_str(&format!(" r{r}={v:#x}"));
                }
            }
            (false, Some(desc))
        }
    };
    CheckRow {
        target,
        insn,
        ok,
        cex,
        millis: outcome.wall.as_millis(),
    }
}

/// Discharges a list of prepared checks as one engine batch, preserving
/// order.
fn discharge_prepared(prepared: Vec<PreparedCheck>, cfg: SolverConfig) -> Vec<CheckRow> {
    let mut queries = Vec::new();
    // (row slot, pending metadata) — pending rows are filled after the batch.
    let mut rows: Vec<Option<CheckRow>> = Vec::with_capacity(prepared.len());
    let mut pending: Vec<(usize, &'static str, String, BpfState)> = Vec::new();
    for p in prepared {
        match p {
            PreparedCheck::Done(row) => rows.push(Some(row)),
            PreparedCheck::Pending {
                target,
                insn,
                b0,
                assumptions,
                goal,
            } => {
                queries.push(Query {
                    label: format!("{target}: {insn}"),
                    assumptions,
                    goal,
                    cfg,
                });
                pending.push((rows.len(), target, insn, b0));
                rows.push(None);
            }
        }
    }
    let outcomes = serval_engine::discharger().submit_batch(queries);
    for ((slot, target, insn, b0), outcome) in pending.into_iter().zip(outcomes) {
        rows[slot] = Some(row_from_outcome(target, insn, &b0, outcome));
    }
    rows.into_iter().map(|r| r.expect("row resolved")).collect()
}

/// Checks one BPF instruction against the RISC-V JIT. Returns `None` when
/// the JIT does not cover the instruction. Resets the thread's term
/// context.
pub fn check_rv64(jit: &Rv64Jit, insn: Bpf, cfg: SolverConfig) -> Option<CheckRow> {
    reset_ctx();
    let t = Instant::now();
    let prepared = prepare_rv64(jit, insn)?;
    let prep = t.elapsed().as_millis();
    let mut row = discharge_prepared(vec![prepared], cfg).pop()?;
    row.millis += prep;
    Some(row)
}

/// Checks one BPF instruction against the x86-32 JIT.
pub fn check_x86(jit: &X86Jit, insn: Bpf, cfg: SolverConfig) -> Option<CheckRow> {
    reset_ctx();
    let t = Instant::now();
    let prepared = prepare_x86(jit, insn)?;
    let prep = t.elapsed().as_millis();
    let mut row = discharge_prepared(vec![prepared], cfg).pop()?;
    row.millis += prep;
    Some(row)
}

/// Immediates exercised for `K`-form instructions (shift corner cases
/// included: 0, 32 boundary, and large counts).
pub const K_VALUES: [i32; 7] = [0, 1, 31, 32, 33, 63, -1];

/// The sweep plan: each entry yields at most one report row.
enum Plan {
    /// A register-form check (one prepared index).
    One(usize),
    /// The immediate-form group across [`K_VALUES`]; the reported row is
    /// the first failing immediate, or the first immediate if all pass.
    KGroup(Vec<usize>),
}

/// Builds the full sweep (every ALU op, both widths, both source forms)
/// with `prepare`, discharges it as a single engine batch, and selects
/// the report rows.
fn sweep_with(
    mut prepare: impl FnMut(Bpf) -> Option<PreparedCheck>,
    cfg: SolverConfig,
) -> Vec<CheckRow> {
    // One term context for the whole sweep: every prepared query's terms
    // must stay alive until its verdict (and counterexample) comes back.
    reset_ctx();
    let mut prepared = Vec::new();
    // Per-check symbolic-evaluation wall time, folded into each row's
    // `millis` after solving so rows report end-to-end check time.
    let mut prep_ms: Vec<u128> = Vec::new();
    let mut plan = Vec::new();
    for &op in &AluOp::ALL {
        for is32 in [false, true] {
            // Register form.
            let t = Instant::now();
            if let Some(p) = prepare(mk_insn(op, is32, Src::X, 0)) {
                prepared.push(p);
                prep_ms.push(t.elapsed().as_millis());
                plan.push(Plan::One(prepared.len() - 1));
            }
            // Immediate forms across the corner-case constants.
            let mut group = Vec::new();
            for &k in &K_VALUES {
                let t = Instant::now();
                if let Some(p) = prepare(mk_insn(op, is32, Src::K, k)) {
                    prepared.push(p);
                    prep_ms.push(t.elapsed().as_millis());
                    group.push(prepared.len() - 1);
                }
            }
            if !group.is_empty() {
                plan.push(Plan::KGroup(group));
            }
        }
    }
    let mut solved: Vec<Option<CheckRow>> = discharge_prepared(prepared, cfg)
        .into_iter()
        .zip(prep_ms)
        .map(|(mut row, prep)| {
            row.millis += prep;
            Some(row)
        })
        .collect();
    let mut rows = Vec::new();
    for entry in plan {
        match entry {
            Plan::One(i) => rows.extend(solved[i].take()),
            Plan::KGroup(group) => {
                let failing = group
                    .iter()
                    .find(|&&i| !solved[i].as_ref().expect("unclaimed").ok);
                let pick = *failing.unwrap_or(&group[0]);
                rows.extend(solved[pick].take());
            }
        }
    }
    rows
}

/// Sweeps the RISC-V JIT across every ALU instruction in both widths and
/// both source forms (paper §7's per-instruction checking). All queries
/// are discharged as one concurrent engine batch.
pub fn sweep_rv64(jit: &Rv64Jit, cfg: SolverConfig) -> Vec<CheckRow> {
    sweep_with(|insn| prepare_rv64(jit, insn), cfg)
}

/// Sweeps the x86-32 JIT (register-only subset).
pub fn sweep_x86(jit: &X86Jit, cfg: SolverConfig) -> Vec<CheckRow> {
    sweep_with(|insn| prepare_x86(jit, insn), cfg)
}

fn mk_insn(op: AluOp, is32: bool, src: Src, imm: i32) -> Bpf {
    let (dst, srcr) = (1, 2);
    if is32 {
        Bpf::Alu32 { op, src, dst, srcr, imm }
    } else {
        Bpf::Alu64 { op, src, dst, srcr, imm }
    }
}
