//! The LLVM-subset IR verifier and the untrusted IR→RV64 compiler.
//!
//! The paper's LLVM verifier (§5) implements the same LLVM subset as
//! Hyperkernel: integer arithmetic, comparisons, branches, memory access
//! through typed pointers, and direct calls — enough for trap handlers
//! written in C, with UBSan-style undefined-behaviour checks. This crate
//! provides:
//!
//! - [`ir`]: the IR itself (SSA-ish registers, basic blocks, terminators);
//! - [`interp`]: the lifted IR interpreter/verifier, sharing the
//!   `serval-core` memory model, with `bug_on` checks for oversized
//!   shifts, division by zero, and out-of-bounds access (the §7 Keystone
//!   bug classes);
//! - [`compile`]: an *untrusted* compiler to RV64 at three optimization
//!   levels, playing gcc's role in the monitors' build (paper §6.4
//!   measures verification time against `-O0/-O1/-O2` binaries). Nothing
//!   in the proofs trusts this compiler: the RISC-V verifier consumes its
//!   output like any other binary.
//!
//! The paper's two-step strategy (§6.4) is reproduced by the monitors:
//! first verify the IR against the specification with [`interp`], then
//! verify the compiled binary with the RISC-V verifier.

pub mod compile;
pub mod interp;
pub mod ir;

pub use compile::{compile, OptLevel};
pub use interp::IrInterp;
pub use ir::{BinOp, Block, Func, Module, Pred, Stmt, Term, Val};

#[cfg(test)]
mod tests;
