//! The lifted IR interpreter/verifier.
//!
//! Evaluates a function on symbolic arguments over the shared typed
//! memory model, collecting UBSan-style `bug_on` obligations (oversized
//! shifts, division by zero, and — via the memory model — out-of-bounds
//! and misaligned accesses). These are the checks that found the two
//! Keystone undefined-behaviour bugs in §7.

use crate::ir::{BinOp, Func, Module, Pred, Stmt, Term, Val};
use serval_core::{BugOn, Mem};
use serval_smt::BV;
use serval_sym::SymCtx;

/// The IR verifier for a module.
pub struct IrInterp<'m> {
    /// The module under evaluation.
    pub module: &'m Module,
    /// Maximum block transfers per path (loops must be bounded; paper
    /// §3.1).
    pub fuel: usize,
}

/// Per-path evaluation environment.
#[derive(Clone)]
struct Env {
    regs: Vec<BV>,
    args: Vec<BV>,
}

impl<'m> IrInterp<'m> {
    /// A verifier for `module`.
    pub fn new(module: &'m Module) -> IrInterp<'m> {
        IrInterp {
            module,
            fuel: 512,
        }
    }

    /// Evaluates `func(args)` over `mem`, returning the result value.
    /// UB obligations accumulate in `ctx`.
    pub fn call(&self, ctx: &mut SymCtx, mem: &mut Mem, func: &str, args: &[BV]) -> BV {
        let f = self.module.func(func);
        assert_eq!(args.len(), f.params, "arity mismatch calling {func}");
        let env = Env {
            regs: vec![BV::lit(64, 0); f.regs as usize],
            args: args.to_vec(),
        };
        self.exec_block(ctx, mem, f, env, f.blocks[0].label, self.fuel)
    }

    fn value(&self, env: &Env, v: Val) -> BV {
        match v {
            Val::Reg(r) => env.regs[r as usize],
            Val::Const(c) => BV::lit(64, c as u64 as u128),
            Val::Global(name) => BV::lit(64, self.module.global(name) as u128),
            Val::Param(i) => env.args[i],
        }
    }

    fn exec_block(
        &self,
        ctx: &mut SymCtx,
        mem: &mut Mem,
        f: &Func,
        mut env: Env,
        label: &str,
        fuel: usize,
    ) -> BV {
        if fuel == 0 {
            // Unbounded loop: outside the finite fragment (paper §3.5).
            ctx.bug_on(
                serval_smt::SBool::lit(true),
                &format!("evaluation fuel exhausted in {}", f.name),
            );
            return BV::lit(64, 0);
        }
        let block = f.block(label).clone();
        for stmt in &block.stmts {
            self.exec_stmt(ctx, mem, f, &mut env, stmt);
        }
        match &block.term {
            Term::Ret(v) => self.value(&env, *v),
            Term::Br(next) => self.exec_block(ctx, mem, f, env, next, fuel - 1),
            Term::CondBr(c, then_l, else_l) => {
                let cond = self.value(&env, *c).ne_(BV::lit(64, 0));
                let env2 = env.clone();
                ctx.branch(
                    cond,
                    mem,
                    |ctx, mem| self.exec_block(ctx, mem, f, env, then_l, fuel - 1),
                    |ctx, mem| self.exec_block(ctx, mem, f, env2, else_l, fuel - 1),
                )
            }
        }
    }

    fn exec_stmt(&self, ctx: &mut SymCtx, mem: &mut Mem, f: &Func, env: &mut Env, stmt: &Stmt) {
        match stmt {
            Stmt::Bin { dst, op, a, b } => {
                let x = self.value(env, *a);
                let y = self.value(env, *b);
                env.regs[*dst as usize] = self.bin(ctx, f, *op, x, y);
            }
            Stmt::Icmp { dst, pred, a, b } => {
                let x = self.value(env, *a);
                let y = self.value(env, *b);
                let c = match pred {
                    Pred::Eq => x.eq_(y),
                    Pred::Ne => x.ne_(y),
                    Pred::Ult => x.ult(y),
                    Pred::Ule => x.ule(y),
                    Pred::Ugt => x.ugt(y),
                    Pred::Uge => x.uge(y),
                    Pred::Slt => x.slt(y),
                    Pred::Sle => x.sle(y),
                    Pred::Sgt => x.sgt(y),
                    Pred::Sge => x.sge(y),
                };
                env.regs[*dst as usize] = c.select(BV::lit(64, 1), BV::lit(64, 0));
            }
            Stmt::Select { dst, c, a, b } => {
                let cond = self.value(env, *c).ne_(BV::lit(64, 0));
                let x = self.value(env, *a);
                let y = self.value(env, *b);
                env.regs[*dst as usize] = cond.select(x, y);
            }
            Stmt::Load { dst, addr, bytes } => {
                let a = self.value(env, *addr);
                let v = mem.load(ctx, a, *bytes);
                env.regs[*dst as usize] = v.zext(64);
            }
            Stmt::Store { addr, val, bytes } => {
                let a = self.value(env, *addr);
                let v = self.value(env, *val).trunc(*bytes * 8);
                mem.store(ctx, a, v, *bytes);
            }
            Stmt::Call { dst, func, args } => {
                let argv: Vec<BV> = args.iter().map(|&a| self.value(env, a)).collect();
                let r = self.call(ctx, mem, func, &argv);
                env.regs[*dst as usize] = r;
            }
        }
    }

    /// Binary operation with UBSan-style checks (paper §3.3: the LLVM
    /// verifier reuses Clang UndefinedBehaviorSanitizer checks).
    fn bin(&self, ctx: &mut SymCtx, f: &Func, op: BinOp, a: BV, b: BV) -> BV {
        let sixty_four = BV::lit(64, 64);
        match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::UDiv => {
                ctx.bug_on(b.is_zero(), &format!("division by zero in {}", f.name));
                a.udiv(b)
            }
            BinOp::URem => {
                ctx.bug_on(b.is_zero(), &format!("remainder by zero in {}", f.name));
                a.urem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                ctx.bug_on(
                    b.uge(sixty_four),
                    &format!("oversized shift in {}", f.name),
                );
                a.shl(b)
            }
            BinOp::LShr => {
                ctx.bug_on(
                    b.uge(sixty_four),
                    &format!("oversized shift in {}", f.name),
                );
                a.lshr(b)
            }
            BinOp::AShr => {
                ctx.bug_on(
                    b.uge(sixty_four),
                    &format!("oversized shift in {}", f.name),
                );
                a.ashr(b)
            }
        }
    }
}
