//! The IR: functions of basic blocks over 64-bit virtual registers.
//!
//! All values are 64-bit integers (pointers included), matching both the
//! RV64 target and the monitors' C-style implementations. Sub-word memory
//! accesses specify a byte width.

/// A value operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Val {
    /// A virtual register.
    Reg(u32),
    /// A 64-bit constant.
    Const(i64),
    /// The address of a named global (resolved by interpreter/compiler).
    Global(&'static str),
    /// The `i`-th function parameter.
    Param(usize),
}

/// Binary operators. The `checked` wrappers in [`Stmt::Bin`] control
/// UBSan-style checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division; division by zero is UB (checked).
    UDiv,
    /// Unsigned remainder; zero divisor is UB (checked).
    URem,
    And,
    Or,
    Xor,
    /// Shift left; amounts >= 64 are UB (checked).
    Shl,
    /// Logical shift right; amounts >= 64 are UB (checked).
    LShr,
    /// Arithmetic shift right; amounts >= 64 are UB (checked).
    AShr,
}

/// Comparison predicates (icmp).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

/// A non-terminator instruction.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `dst = a op b`.
    Bin {
        dst: u32,
        op: BinOp,
        a: Val,
        b: Val,
    },
    /// `dst = (a pred b) ? 1 : 0`.
    Icmp {
        dst: u32,
        pred: Pred,
        a: Val,
        b: Val,
    },
    /// `dst = c != 0 ? a : b`.
    Select {
        dst: u32,
        c: Val,
        a: Val,
        b: Val,
    },
    /// `dst = *(addr)` of `bytes` bytes, zero-extended.
    Load {
        dst: u32,
        addr: Val,
        bytes: u32,
    },
    /// `*(addr) = val` of `bytes` bytes.
    Store {
        addr: Val,
        val: Val,
        bytes: u32,
    },
    /// `dst = f(args...)` — a direct call.
    Call {
        dst: u32,
        func: &'static str,
        args: Vec<Val>,
    },
}

/// A block terminator.
#[derive(Clone, Debug)]
pub enum Term {
    /// Unconditional branch.
    Br(&'static str),
    /// Branch on `c != 0`.
    CondBr(Val, &'static str, &'static str),
    /// Return a value.
    Ret(Val),
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Label.
    pub label: &'static str,
    /// Straight-line body.
    pub stmts: Vec<Stmt>,
    /// Terminator.
    pub term: Term,
}

/// A function.
#[derive(Clone, Debug)]
pub struct Func {
    /// Name (call target and diagnostics).
    pub name: &'static str,
    /// Number of parameters.
    pub params: usize,
    /// Number of virtual registers used (registers are dense `0..regs`).
    pub regs: u32,
    /// Blocks; entry is the first.
    pub blocks: Vec<Block>,
}

impl Func {
    /// The block labelled `label`.
    pub fn block(&self, label: &str) -> &Block {
        self.blocks
            .iter()
            .find(|b| b.label == label)
            .unwrap_or_else(|| panic!("no block {label} in {}", self.name))
    }
}

/// A module: functions plus the addresses of named globals.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Functions; call targets are resolved by name.
    pub funcs: Vec<Func>,
    /// Global name → physical address (mirrors the symbol table the paper
    /// extracts with objdump).
    pub globals: Vec<(&'static str, u64)>,
}

impl Module {
    /// The function named `name`.
    pub fn func(&self, name: &str) -> &Func {
        self.funcs
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no function {name}"))
    }

    /// The address of global `name`.
    pub fn global(&self, name: &str) -> u64 {
        self.globals
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no global {name}"))
            .1
    }
}

/// A tiny builder DSL for writing functions by hand.
pub struct FuncBuilder {
    name: &'static str,
    params: usize,
    next_reg: u32,
    blocks: Vec<Block>,
    cur: Option<(&'static str, Vec<Stmt>)>,
}

impl FuncBuilder {
    /// Starts a function with `params` parameters.
    pub fn new(name: &'static str, params: usize) -> FuncBuilder {
        FuncBuilder {
            name,
            params,
            next_reg: 0,
            blocks: Vec::new(),
            cur: None,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Opens a block.
    pub fn block(&mut self, label: &'static str) -> &mut Self {
        assert!(self.cur.is_none(), "previous block not terminated");
        self.cur = Some((label, Vec::new()));
        self
    }

    /// Appends a statement to the open block.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.cur.as_mut().expect("no open block").1.push(s);
        self
    }

    /// `dst = a op b` with a fresh destination.
    pub fn bin(&mut self, op: BinOp, a: Val, b: Val) -> Val {
        let dst = self.reg();
        self.stmt(Stmt::Bin { dst, op, a, b });
        Val::Reg(dst)
    }

    /// `dst = icmp pred a, b`.
    pub fn icmp(&mut self, pred: Pred, a: Val, b: Val) -> Val {
        let dst = self.reg();
        self.stmt(Stmt::Icmp { dst, pred, a, b });
        Val::Reg(dst)
    }

    /// `dst = select c, a, b`.
    pub fn select(&mut self, c: Val, a: Val, b: Val) -> Val {
        let dst = self.reg();
        self.stmt(Stmt::Select { dst, c, a, b });
        Val::Reg(dst)
    }

    /// `dst = load bytes, addr`.
    pub fn load(&mut self, addr: Val, bytes: u32) -> Val {
        let dst = self.reg();
        self.stmt(Stmt::Load { dst, addr, bytes });
        Val::Reg(dst)
    }

    /// `store bytes, val -> addr`.
    pub fn store(&mut self, addr: Val, val: Val, bytes: u32) -> &mut Self {
        self.stmt(Stmt::Store { addr, val, bytes })
    }

    /// `dst = call f(args)`.
    pub fn call(&mut self, func: &'static str, args: Vec<Val>) -> Val {
        let dst = self.reg();
        self.stmt(Stmt::Call { dst, func, args });
        Val::Reg(dst)
    }

    /// Closes the open block with a terminator.
    pub fn term(&mut self, t: Term) -> &mut Self {
        let (label, stmts) = self.cur.take().expect("no open block");
        self.blocks.push(Block {
            label,
            stmts,
            term: t,
        });
        self
    }

    /// Finishes the function.
    pub fn build(self) -> Func {
        assert!(self.cur.is_none(), "unterminated block");
        Func {
            name: self.name,
            params: self.params,
            regs: self.next_reg,
            blocks: self.blocks,
        }
    }
}
