//! IR verifier and compiler tests, including symbolic differential
//! validation: for each optimization level, the compiled RV64 binary is
//! proven to compute the same result as the IR interpreter on *symbolic*
//! arguments — a miniature translation validation.

use crate::compile::{compile, OptLevel};
use crate::ir::{BinOp, FuncBuilder, Module, Pred, Stmt, Term, Val};
use crate::interp::IrInterp;
use serval_core::{Layout, Mem, MemCfg, PathElem};
use serval_riscv::{reg, Asm, Interp as RvInterp, Machine};
use serval_smt::{reset_ctx, verify, BV};
use serval_sym::SymCtx;

const STACK_TOP: u64 = 0x8010_0000;
const COUNTER: u64 = 0x8020_0000;

/// max(a, b) with a branch.
fn max_func() -> crate::ir::Func {
    let mut b = FuncBuilder::new("max", 2);
    b.block("entry");
    let c = b.icmp(Pred::Uge, Val::Param(0), Val::Param(1));
    b.term(Term::CondBr(c, "a", "b"));
    b.block("a").term(Term::Ret(Val::Param(0)));
    b.block("b").term(Term::Ret(Val::Param(1)));
    b.build()
}

/// Increments a global counter by a parameter, returns the new value.
fn bump_func() -> crate::ir::Func {
    let mut b = FuncBuilder::new("bump", 1);
    b.block("entry");
    let old = b.load(Val::Global("counter"), 8);
    let new = b.bin(BinOp::Add, old, Val::Param(0));
    b.store(Val::Global("counter"), new, 8);
    b.term(Term::Ret(new));
    b.build()
}

/// Calls bump twice: tests the call path.
fn double_bump_func() -> crate::ir::Func {
    let mut b = FuncBuilder::new("double_bump", 1);
    b.block("entry");
    let _ = b.call("bump", vec![Val::Param(0)]);
    let r = b.call("bump", vec![Val::Param(0)]);
    b.term(Term::Ret(r));
    b.build()
}

/// A bounded loop: sum 0..n for constant n (compiled as a real loop).
fn sum_func() -> crate::ir::Func {
    let mut b = FuncBuilder::new("sum8", 0);
    let acc = b.reg();
    let i = b.reg();
    b.block("entry");
    b.stmt(Stmt::Bin { dst: acc, op: BinOp::Add, a: Val::Const(0), b: Val::Const(0) });
    b.stmt(Stmt::Bin { dst: i, op: BinOp::Add, a: Val::Const(0), b: Val::Const(0) });
    b.term(Term::Br("loop"));
    b.block("loop");
    b.stmt(Stmt::Bin { dst: acc, op: BinOp::Add, a: Val::Reg(acc), b: Val::Reg(i) });
    b.stmt(Stmt::Bin { dst: i, op: BinOp::Add, a: Val::Reg(i), b: Val::Const(1) });
    let c = b.icmp(Pred::Ult, Val::Reg(i), Val::Const(8));
    b.term(Term::CondBr(c, "loop", "done"));
    b.block("done").term(Term::Ret(Val::Reg(acc)));
    b.build()
}

fn test_module() -> Module {
    Module {
        funcs: vec![max_func(), bump_func(), double_bump_func(), sum_func()],
        globals: vec![("counter", COUNTER)],
    }
}

fn fresh_mem() -> Mem {
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "counter",
        COUNTER,
        Layout::Struct(vec![("value".into(), Layout::Cell(8))]).instantiate_fresh("counter"),
    );
    mem.add_region(
        "stack",
        STACK_TOP - 4096,
        Layout::Array(512, Box::new(Layout::Cell(8))).instantiate_fresh("stack"),
    );
    mem
}

#[test]
fn interp_max() {
    reset_ctx();
    let module = test_module();
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    let interp = IrInterp::new(&module);
    let (a, b) = (BV::fresh(64, "a"), BV::fresh(64, "b"));
    let r = interp.call(&mut ctx, &mut mem, "max", &[a, b]);
    let expect = a.uge(b).select(a, b);
    assert!(verify(&[], r.eq_(expect)).is_proved());
}

#[test]
fn interp_global_and_calls() {
    reset_ctx();
    let module = test_module();
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    let init = mem.read_path("counter", &[PathElem::Field("value")]);
    let interp = IrInterp::new(&module);
    let x = BV::fresh(64, "x");
    let r = interp.call(&mut ctx, &mut mem, "double_bump", &[x]);
    assert!(verify(&[], r.eq_(init + x + x)).is_proved());
}

#[test]
fn interp_bounded_loop() {
    reset_ctx();
    let module = test_module();
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    let interp = IrInterp::new(&module);
    let r = interp.call(&mut ctx, &mut mem, "sum8", &[]);
    assert_eq!(r.as_const(), Some((0..8).sum::<u128>()));
}

#[test]
fn ub_oversized_shift_flagged() {
    reset_ctx();
    // r = 1 << p with unconstrained p: UBSan-style check must fail.
    let mut b = FuncBuilder::new("shifty", 1);
    b.block("entry");
    let r = b.bin(BinOp::Shl, Val::Const(1), Val::Param(0));
    b.term(Term::Ret(r));
    let module = Module {
        funcs: vec![b.build()],
        globals: vec![],
    };
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    let interp = IrInterp::new(&module);
    let p = BV::fresh(64, "p");
    interp.call(&mut ctx, &mut mem, "shifty", &[p]);
    let failed = ctx
        .take_obligations()
        .into_iter()
        .any(|ob| !verify(&[], ob.condition).is_proved());
    assert!(failed, "oversized shift must be flagged");
}

#[test]
fn ub_division_by_zero_flagged() {
    reset_ctx();
    let mut b = FuncBuilder::new("divy", 2);
    b.block("entry");
    let r = b.bin(BinOp::UDiv, Val::Param(0), Val::Param(1));
    b.term(Term::Ret(r));
    let module = Module {
        funcs: vec![b.build()],
        globals: vec![],
    };
    let mut ctx = SymCtx::new();
    let mut mem = fresh_mem();
    let interp = IrInterp::new(&module);
    let args = [BV::fresh(64, "a"), BV::fresh(64, "b")];
    interp.call(&mut ctx, &mut mem, "divy", &args);
    let failed = ctx
        .take_obligations()
        .into_iter()
        .any(|ob| !verify(&[], ob.condition).is_proved());
    assert!(failed, "division by zero must be flagged");
}

/// Runs a compiled function on the RISC-V verifier with symbolic args.
fn run_compiled(
    ctx: &mut SymCtx,
    module: &Module,
    level: OptLevel,
    func: &str,
    args: &[BV],
    mem: Mem,
) -> (BV, Machine) {
    let tag = format!("{func} at {level:?}");
    let mut asm = Asm::new();
    // Entry stub: set up the stack, call the function, then mret.
    asm.la(reg::SP, "stack_top");
    asm.define_symbol("stack_top", STACK_TOP);
    asm.call(func);
    asm.i(serval_riscv::Insn::Mret);
    compile(module, level, &mut asm);
    let base = 0x8000_0000;
    let words = asm.assemble(base);
    let interp = RvInterp::from_words(base, &words, 4096).unwrap();
    let mut m = Machine::fresh_at(base, mem, "m");
    for (i, &a) in args.iter().enumerate() {
        m.set_reg(reg::A0 + i as u8, a);
    }
    let o = interp.run(ctx, &mut m);
    assert!(o.ok(), "compiled run of {tag} failed: {o:?}");
    (m.reg(reg::A0), m)
}

/// Translation validation: IR semantics == compiled binary semantics, for
/// symbolic inputs, at every optimization level.
#[test]
fn compiled_matches_interp_all_levels() {
    let module = test_module();
    for level in OptLevel::ALL {
        for func in ["max", "bump", "double_bump", "sum8"] {
            reset_ctx();
            let mut ctx = SymCtx::new();
            let nargs = module.func(func).params;
            let args: Vec<BV> = (0..nargs)
                .map(|i| BV::fresh(64, &format!("arg{i}")))
                .collect();
            // IR side.
            let mut ir_mem = fresh_mem();
            let ir_counter0 = ir_mem.read_path("counter", &[PathElem::Field("value")]);
            let ir_r = IrInterp::new(&module).call(&mut ctx, &mut ir_mem, func, &args);
            let ir_counter = ir_mem.read_path("counter", &[PathElem::Field("value")]);
            // Compiled side, with an independent memory whose counter is
            // pinned equal to the IR side's initial value.
            let mut rv_mem = fresh_mem();
            rv_mem.write_path("counter", &[PathElem::Field("value")], ir_counter0);
            let (rv_r, m) = run_compiled(&mut ctx, &module, level, func, &args, rv_mem);
            let rv_counter = m.mem.read_path("counter", &[PathElem::Field("value")]);
            assert!(
                verify(&[], rv_r.eq_(ir_r)).is_proved(),
                "{func} at {level:?}: return value differs"
            );
            assert!(
                verify(&[], rv_counter.eq_(ir_counter)).is_proved(),
                "{func} at {level:?}: global state differs"
            );
        }
    }
}

/// Higher optimization levels execute fewer instructions (the dynamic
/// count is what drives verification time in Fig. 11; static size can
/// grow slightly at O1 due to callee-saved spills in tiny functions).
#[test]
fn opt_levels_reduce_dynamic_instructions() {
    let module = test_module();
    let mut steps = Vec::new();
    for level in OptLevel::ALL {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut asm = Asm::new();
        asm.la(reg::SP, "stack_top");
        asm.define_symbol("stack_top", STACK_TOP);
        asm.call("sum8");
        asm.i(serval_riscv::Insn::Mret);
        compile(&module, level, &mut asm);
        let words = asm.assemble(0x8000_0000);
        let interp = RvInterp::from_words(0x8000_0000, &words, 4096).unwrap();
        let mut m = Machine::fresh_at(0x8000_0000, fresh_mem(), "m");
        let o = interp.run(&mut ctx, &mut m);
        assert!(o.ok(), "{level:?}: {o:?}");
        assert_eq!(m.reg(reg::A0).as_const(), Some((0..8).sum::<u128>()));
        steps.push(o.steps);
    }
    assert!(
        steps[0] > steps[1] && steps[1] >= steps[2],
        "dynamic instruction counts must shrink with optimization: {steps:?}"
    );
}
