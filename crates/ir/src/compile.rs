//! An untrusted IR→RV64 compiler at three optimization levels.
//!
//! Plays gcc's role in the monitors' builds (paper Fig. 11 verifies
//! binaries compiled at `-O0`, `-O1`, `-O2`). Nothing trusts this code:
//! the RISC-V verifier re-verifies whatever comes out.
//!
//! - [`OptLevel::O0`]: every virtual register lives in a stack slot;
//!   each statement loads operands into temporaries and stores back.
//! - [`OptLevel::O1`]: the first ten virtual registers are allocated to
//!   callee-saved registers (saved/restored in the prologue), the rest
//!   spill.
//! - [`OptLevel::O2`]: `O1` plus constant folding and immediate-form
//!   selection (`addi`/`andi`/`ori`/`xori` instead of materializing
//!   constants).

use crate::ir::{BinOp, Func, Module, Pred, Stmt, Term, Val};
use serval_riscv::insn::{IAluOp, Insn, LdOp, RAluOp, StOp};
use serval_riscv::reg;
use serval_riscv::Asm;

/// Compiler optimization level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Stack-machine style.
    O0,
    /// Register allocation.
    O1,
    /// Register allocation + folding + immediate forms.
    O2,
}

impl OptLevel {
    /// All levels, for the Fig. 11 sweep.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];
}

const T0: u8 = reg::T0;
const T1: u8 = reg::T1;
const T2: u8 = reg::T2;
/// Allocatable callee-saved registers (x18..x27).
const S_REGS: [u8; 10] = [18, 19, 20, 21, 22, 23, 24, 25, 26, 27];

/// Where a virtual register lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    SReg(u8),
    Slot(i32),
}

/// Compiles every function in `module` into `asm`, defining one label per
/// function (callable with `asm.call(name)`) and one symbol per global.
pub fn compile(module: &Module, level: OptLevel, asm: &mut Asm) {
    for (name, addr) in &module.globals {
        asm.define_symbol(name, *addr);
    }
    for f in &module.funcs {
        FnCompiler::new(module, f, level).emit(asm);
    }
}

struct FnCompiler<'a> {
    module: &'a Module,
    f: &'a Func,
    level: OptLevel,
    /// Location of each virtual register.
    loc: Vec<Loc>,
    /// Location of each parameter.
    ploc: Vec<Loc>,
    /// Frame size in bytes.
    frame: i32,
    /// Number of callee-saved registers used (saved below ra).
    used_sregs: Vec<u8>,
    /// Known constant values per vreg (O2 folding).
    known: Vec<Option<i64>>,
}

impl<'a> FnCompiler<'a> {
    fn new(module: &'a Module, f: &'a Func, level: OptLevel) -> FnCompiler<'a> {
        // Layout: [ra][saved s-regs][param slots][vreg slots].
        let mut off = 8i32; // after ra at sp+0
        let mut used_sregs = Vec::new();
        let mut loc = Vec::new();
        let mut ploc = Vec::new();
        let alloc_regs = level >= OptLevel::O1;
        if alloc_regs {
            for (i, _) in (0..f.regs).enumerate() {
                if i < S_REGS.len() {
                    let s = S_REGS[i];
                    if !used_sregs.contains(&s) {
                        used_sregs.push(s);
                    }
                    loc.push(Loc::SReg(s));
                } else {
                    loc.push(Loc::Slot(0)); // patched below
                }
            }
        } else {
            loc = vec![Loc::Slot(0); f.regs as usize];
        }
        off += 8 * used_sregs.len() as i32;
        for _ in 0..f.params {
            ploc.push(Loc::Slot(off));
            off += 8;
        }
        for l in loc.iter_mut() {
            if let Loc::Slot(s) = l {
                *s = off;
                off += 8;
                let _ = s;
            }
        }
        let frame = (off + 15) / 16 * 16;
        FnCompiler {
            module,
            f,
            level,
            loc,
            ploc,
            frame,
            used_sregs,
            known: vec![None; f.regs as usize],
        }
    }

    fn block_label(&self, l: &str) -> String {
        format!("{}.{}", self.f.name, l)
    }

    fn emit(mut self, asm: &mut Asm) {
        asm.label(self.f.name);
        // Prologue.
        asm.addi(reg::SP, reg::SP, -self.frame);
        asm.sd(reg::RA, 0, reg::SP);
        for (i, &s) in self.used_sregs.clone().iter().enumerate() {
            asm.sd(s, 8 + 8 * i as i32, reg::SP);
        }
        // Park parameters.
        for i in 0..self.f.params {
            let a = reg::A0 + i as u8;
            match self.ploc[i] {
                Loc::Slot(off) => {
                    asm.sd(a, off, reg::SP);
                }
                Loc::SReg(s) => {
                    asm.mv(s, a);
                }
            }
        }
        for bi in 0..self.f.blocks.len() {
            let block = self.f.blocks[bi].clone();
            // Constant knowledge is block-local: values flowing in through
            // a join (e.g. a loop back-edge) are not constant.
            self.known = vec![None; self.f.regs as usize];
            asm.label(&self.block_label(block.label));
            for stmt in &block.stmts {
                self.stmt(asm, stmt);
            }
            self.term(asm, &block.term);
        }
    }

    /// Loads operand `v` into a register, preferring its home register.
    fn get(&mut self, asm: &mut Asm, v: Val, tmp: u8) -> u8 {
        match v {
            Val::Reg(r) => match self.loc[r as usize] {
                Loc::SReg(s) => s,
                Loc::Slot(off) => {
                    asm.ld(tmp, off, reg::SP);
                    tmp
                }
            },
            Val::Const(c) => {
                if c == 0 {
                    return reg::ZERO;
                }
                asm.li(tmp, c);
                tmp
            }
            Val::Global(name) => {
                asm.la(tmp, name);
                tmp
            }
            Val::Param(i) => match self.ploc[i] {
                Loc::SReg(s) => s,
                Loc::Slot(off) => {
                    asm.ld(tmp, off, reg::SP);
                    tmp
                }
            },
        }
    }

    /// Stores the value in `src` into virtual register `dst`.
    fn put(&mut self, asm: &mut Asm, dst: u32, src: u8) {
        match self.loc[dst as usize] {
            Loc::SReg(s) => {
                if s != src {
                    asm.mv(s, src);
                }
            }
            Loc::Slot(off) => {
                asm.sd(src, off, reg::SP);
            }
        }
    }

    /// The constant value of `v` when statically known (O2 only).
    fn const_of(&self, v: Val) -> Option<i64> {
        if self.level < OptLevel::O2 {
            return None;
        }
        match v {
            Val::Const(c) => Some(c),
            Val::Reg(r) => self.known[r as usize],
            _ => None,
        }
    }

    fn stmt(&mut self, asm: &mut Asm, stmt: &Stmt) {
        match stmt {
            Stmt::Bin { dst, op, a, b } => {
                // O2: full constant folding.
                if let (Some(x), Some(y)) = (self.const_of(*a), self.const_of(*b)) {
                    if let Some(v) = fold(*op, x, y) {
                        self.known[*dst as usize] = Some(v);
                        if (i32::MIN as i64..=u32::MAX as i64).contains(&v) {
                            asm.li(T0, v);
                            self.put(asm, *dst, T0);
                            return;
                        }
                    }
                }
                self.known[*dst as usize] = None;
                // O2: immediate forms for small right-hand constants.
                if let Some(y) = self.const_of(*b) {
                    if (-2048..2048).contains(&y) {
                        if let Some(iop) = imm_form(*op) {
                            let ra = self.get(asm, *a, T0);
                            asm.i(Insn::OpImm {
                                op: iop,
                                rd: T0,
                                rs1: ra,
                                imm: y as i32,
                            });
                            self.put(asm, *dst, T0);
                            return;
                        }
                    }
                }
                let ra = self.get(asm, *a, T0);
                let rb = self.get(asm, *b, T1);
                match op {
                    BinOp::Add => asm.i(Insn::Op { op: RAluOp::Add, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::Sub => asm.i(Insn::Op { op: RAluOp::Sub, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::Mul => asm.i(Insn::Op { op: RAluOp::Mul, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::UDiv => asm.i(Insn::Op { op: RAluOp::Divu, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::URem => asm.i(Insn::Op { op: RAluOp::Remu, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::And => asm.i(Insn::Op { op: RAluOp::And, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::Or => asm.i(Insn::Op { op: RAluOp::Or, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::Xor => asm.i(Insn::Op { op: RAluOp::Xor, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::Shl => asm.i(Insn::Op { op: RAluOp::Sll, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::LShr => asm.i(Insn::Op { op: RAluOp::Srl, rd: T0, rs1: ra, rs2: rb }),
                    BinOp::AShr => asm.i(Insn::Op { op: RAluOp::Sra, rd: T0, rs1: ra, rs2: rb }),
                };
                self.put(asm, *dst, T0);
            }
            Stmt::Icmp { dst, pred, a, b } => {
                self.known[*dst as usize] = None;
                let ra = self.get(asm, *a, T0);
                let rb = self.get(asm, *b, T1);
                self.emit_icmp(asm, *pred, ra, rb);
                self.put(asm, *dst, T0);
            }
            Stmt::Select { dst, c, a, b } => {
                // Branchless select (mask trick): keeps straight-line code
                // straight-line under symbolic evaluation, so data choices
                // merge as ite terms instead of splitting paths.
                self.known[*dst as usize] = None;
                let rc = self.get(asm, *c, T2);
                // T2 = (c != 0) ? all-ones : 0.
                asm.i(Insn::Op { op: RAluOp::Sltu, rd: T2, rs1: reg::ZERO, rs2: rc });
                asm.i(Insn::Op { op: RAluOp::Sub, rd: T2, rs1: reg::ZERO, rs2: T2 });
                let ra = self.get(asm, *a, T0);
                asm.i(Insn::Op { op: RAluOp::And, rd: T0, rs1: ra, rs2: T2 });
                asm.i(Insn::OpImm { op: IAluOp::Xori, rd: T2, rs1: T2, imm: -1 });
                let rb = self.get(asm, *b, T1);
                asm.i(Insn::Op { op: RAluOp::And, rd: T1, rs1: rb, rs2: T2 });
                asm.i(Insn::Op { op: RAluOp::Or, rd: T0, rs1: T0, rs2: T1 });
                self.put(asm, *dst, T0);
            }
            Stmt::Load { dst, addr, bytes } => {
                self.known[*dst as usize] = None;
                let ra = self.get(asm, *addr, T0);
                let op = match bytes {
                    1 => LdOp::Lbu,
                    2 => LdOp::Lhu,
                    4 => LdOp::Lwu,
                    8 => LdOp::Ld,
                    _ => panic!("bad load width {bytes}"),
                };
                asm.i(Insn::Load { op, rd: T0, rs1: ra, off: 0 });
                self.put(asm, *dst, T0);
            }
            Stmt::Store { addr, val, bytes } => {
                let ra = self.get(asm, *addr, T0);
                let rv = self.get(asm, *val, T1);
                let op = match bytes {
                    1 => StOp::Sb,
                    2 => StOp::Sh,
                    4 => StOp::Sw,
                    8 => StOp::Sd,
                    _ => panic!("bad store width {bytes}"),
                };
                asm.i(Insn::Store { op, rs1: ra, rs2: rv, off: 0 });
            }
            Stmt::Call { dst, func, args } => {
                self.known[*dst as usize] = None;
                assert!(args.len() <= 8, "too many call arguments");
                // Load arguments; later a-regs first so earlier loads are
                // not clobbered (params live in slots or s-regs, never in
                // a-regs at this point).
                for (i, &a) in args.iter().enumerate() {
                    let r = self.get(asm, a, T0);
                    if r != reg::A0 + i as u8 {
                        asm.mv(reg::A0 + i as u8, r);
                    }
                }
                let _ = self.module.func(func); // arity/existence check
                asm.call(func);
                self.put(asm, *dst, reg::A0);
            }
        }
    }

    fn emit_icmp(&mut self, asm: &mut Asm, pred: Pred, ra: u8, rb: u8) {
        // Result in T0.
        let slt = |asm: &mut Asm, a, b| {
            asm.i(Insn::Op { op: RAluOp::Slt, rd: T0, rs1: a, rs2: b });
        };
        let sltu = |asm: &mut Asm, a, b| {
            asm.i(Insn::Op { op: RAluOp::Sltu, rd: T0, rs1: a, rs2: b });
        };
        let invert = |asm: &mut Asm| {
            asm.i(Insn::OpImm { op: IAluOp::Xori, rd: T0, rs1: T0, imm: 1 });
        };
        match pred {
            Pred::Eq => {
                asm.i(Insn::Op { op: RAluOp::Sub, rd: T0, rs1: ra, rs2: rb });
                asm.i(Insn::OpImm { op: IAluOp::Sltiu, rd: T0, rs1: T0, imm: 1 });
            }
            Pred::Ne => {
                asm.i(Insn::Op { op: RAluOp::Sub, rd: T0, rs1: ra, rs2: rb });
                asm.i(Insn::Op { op: RAluOp::Sltu, rd: T0, rs1: reg::ZERO, rs2: T0 });
            }
            Pred::Ult => sltu(asm, ra, rb),
            Pred::Ugt => sltu(asm, rb, ra),
            Pred::Ule => {
                sltu(asm, rb, ra);
                invert(asm);
            }
            Pred::Uge => {
                sltu(asm, ra, rb);
                invert(asm);
            }
            Pred::Slt => slt(asm, ra, rb),
            Pred::Sgt => slt(asm, rb, ra),
            Pred::Sle => {
                slt(asm, rb, ra);
                invert(asm);
            }
            Pred::Sge => {
                slt(asm, ra, rb);
                invert(asm);
            }
        }
    }

    fn term(&mut self, asm: &mut Asm, t: &Term) {
        match t {
            Term::Br(next) => {
                let l = self.block_label(next);
                asm.j(&l);
            }
            Term::CondBr(c, then_l, else_l) => {
                let rc = self.get(asm, *c, T0);
                let tl = self.block_label(then_l);
                let el = self.block_label(else_l);
                asm.bnez(rc, &tl);
                asm.j(&el);
            }
            Term::Ret(v) => {
                let r = self.get(asm, *v, T0);
                if r != reg::A0 {
                    asm.mv(reg::A0, r);
                }
                // Epilogue.
                for (i, &s) in self.used_sregs.clone().iter().enumerate() {
                    asm.ld(s, 8 + 8 * i as i32, reg::SP);
                }
                asm.ld(reg::RA, 0, reg::SP);
                asm.addi(reg::SP, reg::SP, self.frame);
                asm.ret();
            }
        }
    }
}

fn fold(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::UDiv => {
            if y == 0 {
                return None;
            }
            ((x as u64) / (y as u64)) as i64
        }
        BinOp::URem => {
            if y == 0 {
                return None;
            }
            ((x as u64) % (y as u64)) as i64
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            ((x as u64) << y) as i64
        }
        BinOp::LShr => {
            if !(0..64).contains(&y) {
                return None;
            }
            ((x as u64) >> y) as i64
        }
        BinOp::AShr => {
            if !(0..64).contains(&y) {
                return None;
            }
            x >> y
        }
    })
}

fn imm_form(op: BinOp) -> Option<IAluOp> {
    Some(match op {
        BinOp::Add => IAluOp::Addi,
        BinOp::And => IAluOp::Andi,
        BinOp::Or => IAluOp::Ori,
        BinOp::Xor => IAluOp::Xori,
        _ => return None,
    })
}
