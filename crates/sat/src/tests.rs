//! Unit and property tests for the CDCL solver.
//!
//! The property tests cross-check the solver against a brute-force
//! enumeration on random small formulas, covering both satisfiable and
//! unsatisfiable instances, with and without assumptions.

use crate::{Lit, SolveResult, Solver, Var};
use serval_check::prelude::*;

fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
    (0..n).map(|_| s.new_var()).collect()
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn unit_clauses() {
    let mut s = Solver::new();
    let v = lits(&mut s, 2);
    assert!(s.add_clause(&[Lit::pos(v[0])]));
    assert!(s.add_clause(&[Lit::neg(v[1])]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(v[0]), Some(true));
    assert_eq!(s.value(v[1]), Some(false));
}

#[test]
fn contradictory_units_unsat() {
    let mut s = Solver::new();
    let v = s.new_var();
    assert!(s.add_clause(&[Lit::pos(v)]));
    assert!(!s.add_clause(&[Lit::neg(v)]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn empty_clause_unsat() {
    let mut s = Solver::new();
    s.new_var();
    assert!(!s.add_clause(&[]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautology_is_dropped() {
    let mut s = Solver::new();
    let v = s.new_var();
    assert!(s.add_clause(&[Lit::pos(v), Lit::neg(v)]));
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn implication_chain_propagates() {
    // x0 & (x0 -> x1) & (x1 -> x2) ... forces all true.
    let mut s = Solver::new();
    let v = lits(&mut s, 20);
    s.add_clause(&[Lit::pos(v[0])]);
    for i in 0..19 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    for &x in &v {
        assert_eq!(s.value(x), Some(true));
    }
}

#[test]
fn pigeonhole_3_into_2_unsat() {
    // PHP(3,2): 3 pigeons, 2 holes. Classic small UNSAT instance that
    // requires real conflict analysis.
    let mut s = Solver::new();
    // p[i][j]: pigeon i in hole j.
    let p: Vec<Vec<Var>> = (0..3).map(|_| lits(&mut s, 2)).collect();
    for row in &p {
        s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
    }
    for j in 0..2 {
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn pigeonhole_5_into_4_unsat() {
    let mut s = Solver::new();
    let n = 5;
    let m = 4;
    let p: Vec<Vec<Var>> = (0..n).map(|_| lits(&mut s, m)).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.stats().conflicts > 0);
}

#[test]
fn assumptions_flip_result() {
    let mut s = Solver::new();
    let v = lits(&mut s, 2);
    s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
    assert_eq!(s.solve_assuming(&[Lit::neg(v[0])]), SolveResult::Sat);
    assert_eq!(s.value(v[1]), Some(true));
    assert_eq!(
        s.solve_assuming(&[Lit::neg(v[0]), Lit::neg(v[1])]),
        SolveResult::Unsat
    );
    // The formula itself is still satisfiable afterwards.
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn unsat_core_is_subset_of_assumptions() {
    let mut s = Solver::new();
    let v = lits(&mut s, 4);
    // v0 -> v1, v1 -> v2.
    s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
    s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
    let asms = [Lit::pos(v[0]), Lit::pos(v[3]), Lit::neg(v[2])];
    assert_eq!(s.solve_assuming(&asms), SolveResult::Unsat);
    let core = s.unsat_core().to_vec();
    assert!(!core.is_empty());
    for l in &core {
        assert!(asms.contains(l), "core literal {:?} not an assumption", l);
    }
    // v3 is irrelevant and should not appear in the core.
    assert!(!core.contains(&Lit::pos(v[3])));
}

#[test]
fn incremental_add_after_solve() {
    let mut s = Solver::new();
    let v = lits(&mut s, 3);
    s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
    assert_eq!(s.solve(), SolveResult::Sat);
    s.add_clause(&[Lit::neg(v[0])]);
    s.add_clause(&[Lit::neg(v[1])]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn conflict_budget_returns_unknown() {
    // A hard instance (PHP 7 into 6) with a tiny budget must give up.
    let mut s = Solver::new();
    let n = 7;
    let m = 6;
    let p: Vec<Vec<Var>> = (0..n).map(|_| lits(&mut s, m)).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s.set_conflict_budget(Some(10));
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// Pigeonhole principle `n` into `m` (unsat when n > m).
fn php(s: &mut Solver, n: usize, m: usize) {
    let p: Vec<Vec<Var>> = (0..n).map(|_| lits(s, m)).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
}

#[test]
fn interrupt_flag_stops_search() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut s = Solver::new();
    php(&mut s, 8, 7);
    let flag = Arc::new(AtomicBool::new(true));
    s.set_interrupt(Some(flag.clone()));
    // Flag already set: the restart-boundary poll fires before any search.
    assert_eq!(s.solve(), SolveResult::Interrupted);
    // Clearing the flag makes the solver usable again.
    flag.store(false, Ordering::Relaxed);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tuned_parameters_preserve_verdicts() {
    // Non-default restart/decay/phase settings change the search order
    // but never the answer.
    let mut s = Solver::new();
    s.set_restart_base(32);
    s.set_var_decay(0.90);
    s.set_default_phase(true);
    php(&mut s, 7, 6);
    assert_eq!(s.solve(), SolveResult::Unsat);

    let mut s2 = Solver::new();
    s2.set_default_phase(true);
    let v = lits(&mut s2, 2);
    s2.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
    assert_eq!(s2.solve(), SolveResult::Sat);
}

#[test]
fn xor_chain_sat() {
    // CNF encoding of x0 ^ x1 ^ ... ^ x9 = 1 via intermediate variables.
    let mut s = Solver::new();
    let x = lits(&mut s, 10);
    let mut acc = x[0];
    for &xi in &x[1..] {
        let out = s.new_var();
        // out = acc ^ xi.
        s.add_clause(&[Lit::neg(out), Lit::pos(acc), Lit::pos(xi)]);
        s.add_clause(&[Lit::neg(out), Lit::neg(acc), Lit::neg(xi)]);
        s.add_clause(&[Lit::pos(out), Lit::neg(acc), Lit::pos(xi)]);
        s.add_clause(&[Lit::pos(out), Lit::pos(acc), Lit::neg(xi)]);
        acc = out;
    }
    s.add_clause(&[Lit::pos(acc)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    let parity = x
        .iter()
        .fold(false, |p, &v| p ^ s.value(v).unwrap());
    assert!(parity, "model must satisfy odd parity");
}

// ---------------------------------------------------------------------
// Property tests vs. brute force
// ---------------------------------------------------------------------

/// Brute-force satisfiability of a CNF over `n` variables (n <= 16).
fn brute_force_sat(n: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
    'outer: for m in 0u32..(1 << n) {
        for clause in cnf {
            let sat = clause
                .iter()
                .any(|&(v, neg)| ((m >> v) & 1 == 1) != neg);
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn clause_strategy(nvars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0..nvars, any::<bool>()), 1..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(
        cnf in prop::collection::vec(clause_strategy(8), 1..40)
    ) {
        let nvars = 8;
        let mut s = Solver::new();
        let vars = lits(&mut s, nvars);
        let mut ok = true;
        for clause in &cnf {
            let c: Vec<Lit> = clause
                .iter()
                .map(|&(v, neg)| Lit::new(vars[v], neg))
                .collect();
            ok &= s.add_clause(&c);
        }
        let expected = brute_force_sat(nvars, &cnf);
        let got = if ok { s.solve() } else { SolveResult::Unsat };
        prop_assert_eq!(got == SolveResult::Sat, expected);
        if got == SolveResult::Sat {
            // The returned model must actually satisfy the formula.
            for clause in &cnf {
                let sat = clause.iter().any(|&(v, neg)| {
                    s.value(vars[v]).unwrap_or(false) != neg
                });
                prop_assert!(sat, "model does not satisfy clause {:?}", clause);
            }
        }
    }

    #[test]
    fn solver_with_assumptions_agrees_with_brute_force(
        cnf in prop::collection::vec(clause_strategy(6), 1..25),
        asm in prop::collection::vec((0..6usize, any::<bool>()), 0..3)
    ) {
        let nvars = 6;
        let mut s = Solver::new();
        let vars = lits(&mut s, nvars);
        let mut ok = true;
        for clause in &cnf {
            let c: Vec<Lit> = clause
                .iter()
                .map(|&(v, neg)| Lit::new(vars[v], neg))
                .collect();
            ok &= s.add_clause(&c);
        }
        // Deduplicate contradictory assumptions on the same variable;
        // brute force treats them as unit clauses.
        let mut full = cnf.clone();
        for &(v, neg) in &asm {
            full.push(vec![(v, neg)]);
        }
        let expected = brute_force_sat(nvars, &full);
        let asml: Vec<Lit> = asm.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
        let got = if ok { s.solve_assuming(&asml) } else { SolveResult::Unsat };
        prop_assert_eq!(got == SolveResult::Sat, expected);
        // Solving twice must be deterministic w.r.t. the verdict.
        let again = if ok { s.solve_assuming(&asml) } else { SolveResult::Unsat };
        prop_assert_eq!(got, again);
    }
}

#[test]
fn graph_coloring_instances() {
    // K4 is 3-colorable? No — needs 4. Check both directions on small
    // complete graphs using direct encoding (vertex×color vars).
    for (n, colors, expect_sat) in [(3usize, 3usize, true), (4, 3, false), (4, 4, true)] {
        let mut s = Solver::new();
        let v: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..colors).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            let c: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
            s.add_clause(&c); // every vertex colored
            for i in 0..colors {
                for j in (i + 1)..colors {
                    s.add_clause(&[Lit::neg(row[i]), Lit::neg(row[j])]);
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for c in 0..colors {
                    s.add_clause(&[Lit::neg(v[a][c]), Lit::neg(v[b][c])]);
                }
            }
        }
        assert_eq!(
            s.solve() == SolveResult::Sat,
            expect_sat,
            "K{n} with {colors} colors"
        );
    }
}

#[test]
fn solve_reuses_learnt_clauses() {
    // Solving the same instance twice must stay correct (learnt clauses
    // and saved phases persist across calls).
    let mut s = Solver::new();
    let n = 6;
    let m = 5;
    let p: Vec<Vec<Var>> = (0..n).map(|_| lits(&mut s, m)).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    let conflicts_first = s.stats().conflicts;
    assert_eq!(s.solve(), SolveResult::Unsat);
    // The second solve benefits from the learnt clauses (strictly fewer
    // *new* conflicts than the first full search).
    assert!(s.stats().conflicts <= conflicts_first * 2);
}

// ---------------------------------------------------------------------
// Activation literals: retract + simplify
// ---------------------------------------------------------------------

#[test]
fn retract_retires_a_guarded_goal() {
    // Guard two contradictory "goals" behind activation literals: each
    // is individually satisfiable under its own activation, and
    // retracting one must not constrain the other.
    let mut s = Solver::new();
    let x = Lit::pos(s.new_var());
    let act1 = Lit::pos(s.new_var());
    let act2 = Lit::pos(s.new_var());
    s.add_clause(&[!act1, x]); // goal 1: x
    s.add_clause(&[!act2, !x]); // goal 2: !x
    assert_eq!(s.solve_assuming(&[act1]), SolveResult::Sat);
    assert_eq!(s.value_lit(x), Some(true));
    assert!(s.retract(act1));
    assert_eq!(s.solve_assuming(&[act2]), SolveResult::Sat);
    assert_eq!(s.value_lit(x), Some(false));
    assert!(s.retract(act2));
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn retract_sweeps_satisfied_clauses() {
    let mut s = Solver::new();
    let vs = lits(&mut s, 4);
    let act = Lit::pos(s.new_var());
    // A few clauses only reachable through the activation literal.
    s.add_clause(&[!act, Lit::pos(vs[0]), Lit::pos(vs[1])]);
    s.add_clause(&[!act, Lit::neg(vs[2]), Lit::pos(vs[3])]);
    // One clause independent of the activation literal.
    s.add_clause(&[Lit::pos(vs[0]), Lit::neg(vs[1])]);
    let before = s.num_clauses();
    assert_eq!(s.solve_assuming(&[act]), SolveResult::Sat);
    assert!(s.retract(act));
    // The guarded clauses are satisfied by !act at level 0 and swept.
    assert!(s.num_clauses() < before, "simplify must sweep retired clauses");
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn simplify_preserves_verdicts() {
    // Pigeonhole 4-into-3 stays unsat through a simplify call.
    let mut s = Solver::new();
    let n = 4;
    let m = 3;
    let p: Vec<Vec<Var>> = (0..n).map(|_| lits(&mut s, m)).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s.simplify();
    assert_eq!(s.solve(), SolveResult::Unsat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solving a random batch of guarded goals one by one, retracting
    /// each activation literal after its answer, yields exactly the
    /// verdicts of solving each goal in a fresh solver over the same
    /// base clauses.
    #[test]
    fn prop_retract_matches_fresh_solvers(
        base in prop::collection::vec(prop::collection::vec(any::<i8>(), 1..4), 0..12),
        goals in prop::collection::vec(prop::collection::vec(any::<i8>(), 1..4), 1..6),
    ) {
        let nvars = 6u32;
        let to_lits = |raw: &[i8], s: &Solver| -> Vec<Lit> {
            raw.iter()
                .map(|&x| {
                    let v = Var((x.unsigned_abs() as u32) % nvars);
                    debug_assert!((v.index() as usize) < s.num_vars());
                    if x < 0 { Lit::neg(v) } else { Lit::pos(v) }
                })
                .collect()
        };

        // Incremental run: one solver, goals guarded + retracted.
        let mut inc = Solver::new();
        for _ in 0..nvars {
            inc.new_var();
        }
        let mut base_ok = true;
        for c in &base {
            let cl = to_lits(c, &inc);
            base_ok &= inc.add_clause(&cl);
        }
        let mut incremental: Vec<bool> = Vec::new();
        for g in &goals {
            let cl = to_lits(g, &inc);
            let act = Lit::pos(inc.new_var());
            let mut guarded = vec![!act];
            guarded.extend(cl);
            inc.add_clause(&guarded);
            let r = inc.solve_assuming(&[act]);
            incremental.push(r == SolveResult::Sat);
            inc.retract(act);
        }

        // Fresh run: one solver per goal.
        for (i, g) in goals.iter().enumerate() {
            let mut fresh = Solver::new();
            for _ in 0..nvars {
                fresh.new_var();
            }
            let mut ok = true;
            for c in &base {
                let cl = to_lits(c, &fresh);
                ok &= fresh.add_clause(&cl);
            }
            let cl = to_lits(g, &fresh);
            ok &= fresh.add_clause(&cl);
            let expect = ok && fresh.solve() == SolveResult::Sat;
            prop_assert_eq!(
                incremental[i],
                expect,
                "goal {} diverged (base_ok={})",
                i,
                base_ok
            );
        }
    }
}

// ---------------------------------------------------------------------
// Inprocessing: subsumption, variable elimination, model reconstruction
// ---------------------------------------------------------------------

#[test]
fn inprocessing_chain_eliminates_and_reconstructs() {
    // Interior variables of an implication chain have one positive and
    // one negative occurrence each — prime BVE fodder. The Sat model
    // must still satisfy every *original* clause via reconstruction.
    let mut s = Solver::new();
    let v = lits(&mut s, 30);
    let mut orig: Vec<Vec<Lit>> = Vec::new();
    for i in 0..29 {
        orig.push(vec![Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    orig.push(vec![Lit::pos(v[0]), Lit::pos(v[29])]);
    for c in &orig {
        assert!(s.add_clause(c));
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(
        s.stats().eliminated_vars > 0,
        "chain interior variables should be eliminated"
    );
    for c in &orig {
        assert!(
            c.iter().any(|&l| s.value_lit(l) == Some(true)),
            "reconstructed model violates {c:?}"
        );
    }
}

#[test]
fn frozen_vars_survive_elimination() {
    let mut s = Solver::new();
    let v = lits(&mut s, 10);
    for i in 0..9 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    for &x in &v {
        s.freeze_var(x);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.stats().eliminated_vars, 0);
}

#[test]
fn eliminated_vars_reintroduced_by_later_clauses() {
    // Solve once (eliminating the chain), then constrain eliminated
    // variables directly: unsatisfiability through the chain is only
    // detectable if the deleted defining clauses transitively return.
    let mut s = Solver::new();
    let v = lits(&mut s, 20);
    for i in 0..19 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.stats().eliminated_vars > 0);
    assert!(s.add_clause(&[Lit::pos(v[0])]));
    // The unit x0 re-propagates the reintroduced chain at level 0, so
    // adding !x19 conflicts immediately — add_clause reports it.
    assert!(!s.add_clause(&[Lit::neg(v[19])]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn assumptions_reintroduce_eliminated_vars() {
    let mut s = Solver::new();
    let v = lits(&mut s, 12);
    for i in 0..11 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(
        s.solve_assuming(&[Lit::pos(v[0]), Lit::neg(v[11])]),
        SolveResult::Unsat
    );
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn subsumption_shrinks_database() {
    // {a} ∪ {a, b, c...} pairs: the short clauses should subsume the
    // long ones during the first inprocessing round.
    let mut s = Solver::new();
    let v = lits(&mut s, 8);
    for i in 0..4 {
        s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 4])]);
        s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 4]), Lit::pos(v[(i + 1) % 4])]);
    }
    // Keep BVE out of the picture so the counter isolates subsumption.
    s.set_inprocess(true, false);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.stats().subsumed > 0, "long clauses should be subsumed");
}

#[test]
fn restart_and_rephase_variants_preserve_verdicts() {
    use crate::Rephase;
    for (geom, rephase) in [
        (true, Rephase::Off),
        (false, Rephase::Invert),
        (true, Rephase::Reset),
    ] {
        let mut s = Solver::new();
        s.set_restart_geometric(geom);
        s.set_rephase(rephase);
        s.set_restart_base(8); // many restarts, so rephasing fires
        php(&mut s, 6, 5);
        assert_eq!(
            s.solve(),
            SolveResult::Unsat,
            "geom={geom} rephase={rephase:?}"
        );
        let mut s2 = Solver::new();
        s2.set_restart_geometric(geom);
        s2.set_rephase(rephase);
        let v = lits(&mut s2, 3);
        s2.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s2.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s2.solve(), SolveResult::Sat);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The inprocessing solver (subsumption + SSR + BVE) must agree
    /// with the plain solver on random CNF, and its models —
    /// reconstructed over eliminated variables — must satisfy the
    /// *original* clauses.
    #[test]
    fn prop_inprocessed_matches_plain(
        cnf in prop::collection::vec(clause_strategy(10), 1..50)
    ) {
        let nvars = 10;
        let build = |inprocess: bool| -> (Solver, Vec<Var>, bool) {
            let mut s = Solver::new();
            s.set_inprocess(inprocess, inprocess);
            let vars = lits(&mut s, nvars);
            let mut ok = true;
            for clause in &cnf {
                let c: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, neg)| Lit::new(vars[v], neg))
                    .collect();
                ok &= s.add_clause(&c);
            }
            (s, vars, ok)
        };
        let (mut plain, _, ok_p) = build(false);
        let (mut inp, vars, ok_i) = build(true);
        prop_assert_eq!(ok_p, ok_i);
        let rp = if ok_p { plain.solve() } else { SolveResult::Unsat };
        let ri = if ok_i { inp.solve() } else { SolveResult::Unsat };
        prop_assert_eq!(rp, ri);
        if ri == SolveResult::Sat {
            for clause in &cnf {
                let sat = clause
                    .iter()
                    .any(|&(v, neg)| inp.value(vars[v]).unwrap_or(false) != neg);
                prop_assert!(sat, "reconstructed model violates {:?}", clause);
            }
        }
        // A second solve (inprocessing re-runs on the shrunk database)
        // must agree with the first.
        if ok_i {
            prop_assert_eq!(inp.solve(), ri);
        }
    }

    /// Assumptions over eliminated variables must pull them back in
    /// with exactly fresh-solver semantics.
    #[test]
    fn prop_inprocessed_assumptions_match_brute_force(
        cnf in prop::collection::vec(clause_strategy(6), 1..25),
        asm in prop::collection::vec((0..6usize, any::<bool>()), 0..3)
    ) {
        let nvars = 6;
        let mut s = Solver::new();
        s.set_inprocess(true, true);
        let vars = lits(&mut s, nvars);
        let mut ok = true;
        for clause in &cnf {
            let c: Vec<Lit> = clause
                .iter()
                .map(|&(v, neg)| Lit::new(vars[v], neg))
                .collect();
            ok &= s.add_clause(&c);
        }
        // A plain solve first, so BVE has a chance to eliminate the
        // variables the assumptions are about to mention.
        if ok {
            s.solve();
        }
        let mut full = cnf.clone();
        for &(v, neg) in &asm {
            full.push(vec![(v, neg)]);
        }
        let expected = brute_force_sat(nvars, &full);
        let asml: Vec<Lit> = asm.iter().map(|&(v, neg)| Lit::new(vars[v], neg)).collect();
        let got = if ok { s.solve_assuming(&asml) } else { SolveResult::Unsat };
        prop_assert_eq!(got == SolveResult::Sat, expected);
    }
}

#[test]
fn pigeonhole_unsat_exercises_recursive_minimization() {
    // PHP(n+1, n): n+1 pigeons into n holes. Famously unsat with long
    // resolution proofs, so conflict analysis runs hot — a good workload
    // for recursive learnt-clause minimization.
    let n = 5;
    let mut s = Solver::new();
    let var = |p: usize, h: usize| -> usize { p * n + h };
    let vars = lits(&mut s, (n + 1) * n);
    for p in 0..=n {
        let holes: Vec<Lit> = (0..n).map(|h| Lit::pos(vars[var(p, h)])).collect();
        assert!(s.add_clause(&holes));
    }
    for h in 0..n {
        for p1 in 0..=n {
            for p2 in (p1 + 1)..=n {
                assert!(s.add_clause(&[
                    Lit::neg(vars[var(p1, h)]),
                    Lit::neg(vars[var(p2, h)]),
                ]));
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    let stats = s.stats();
    assert!(stats.conflicts > 0, "PHP must conflict");
    assert!(
        stats.minimized_lits > 0,
        "recursive minimization should drop literals on PHP ({} conflicts)",
        stats.conflicts
    );
}
