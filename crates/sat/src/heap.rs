//! A binary max-heap over variables ordered by VSIDS activity.
//!
//! The heap supports the operations CDCL needs: pop the most active
//! unassigned variable, re-insert variables when they are unassigned during
//! backtracking, and sift a variable up when its activity is bumped.

use crate::types::Var;

/// Max-heap of variables keyed by an external activity array.
#[derive(Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` is the index of `v` in `heap`, or `NONE` if absent.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarHeap {
    /// Grows the position map to cover `n` variables.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NONE);
        }
    }

    /// Whether `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NONE
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as u32;
        self.heap.push(v.0);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores the heap property after `v`'s activity increased.
    pub fn decrease_key(&mut self, v: Var, activity: &[f64]) {
        let p = self.pos[v.index()];
        if p != NONE {
            self.sift_up(p as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let x = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[parent] as usize] >= act[x as usize] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i] as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let x = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                r
            } else {
                l
            };
            if act[self.heap[c] as usize] <= act[x as usize] {
                break;
            }
            self.heap[i] = self.heap[c];
            self.pos[self.heap[i] as usize] = i as u32;
            i = c;
        }
        self.heap[i] = x;
        self.pos[x as usize] = i as u32;
    }
}
